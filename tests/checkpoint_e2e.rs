//! End-to-end golden test for the persistence layer: condense → train →
//! checkpoint → restore → serve, asserting the restored server produces
//! **bitwise identical** logits to the in-memory pipeline — at 1 worker
//! thread and at 4 — and that the saved image survives the exhaustive
//! fault-injection sweep (every truncation and injected bit flip is a
//! typed error, never a panic or a silently different answer).

use mcond::core::{Checkpoint, InductiveServer};
use mcond::prelude::*;
use mcond::store::corruption_sweep;

/// One small condense+train run shared by the assertions below (computed
/// once; the fault sweep and the golden comparison probe the same bits).
fn condensed_pipeline() -> &'static (InductiveDataset, mcond::core::Condensed, GnnModel) {
    static PIPELINE: std::sync::OnceLock<(InductiveDataset, mcond::core::Condensed, GnnModel)> =
        std::sync::OnceLock::new();
    PIPELINE.get_or_init(build_pipeline)
}

fn build_pipeline() -> (InductiveDataset, mcond::core::Condensed, GnnModel) {
    let data = load_dataset("pubmed", Scale::Small, 11).unwrap();
    let condensed = condense(
        &data,
        &McondConfig {
            ratio: 0.02,
            outer_loops: 1,
            relay_steps: 3,
            mapping_steps: 5,
            support_cap: 32,
            ..McondConfig::default()
        },
    );
    let ops = GraphOps::from_adj(&condensed.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        condensed.synthetic.feature_dim(),
        32,
        condensed.synthetic.num_classes,
        0,
    );
    train(
        &mut model,
        &ops,
        &condensed.synthetic.features,
        &condensed.synthetic.labels,
        &TrainConfig { epochs: 30, ..TrainConfig::default() },
        None,
    );
    (data, condensed, model)
}

#[test]
fn restored_server_is_bitwise_identical_to_in_memory_pipeline() {
    let (data, condensed, model) = condensed_pipeline();
    let ckpt = condensed.checkpoint(model);

    // Persist and restore through the real filesystem.
    let path = std::env::temp_dir().join("mcond_checkpoint_e2e.mcst");
    let written = ckpt.save(&path).expect("save checkpoint");
    assert!(written > 0);
    let restored = Checkpoint::load(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();

    // The restored artifacts carry the exact bits of the originals.
    assert!(restored.synthetic.adj.bit_eq(&ckpt.synthetic.adj));
    assert!(restored.synthetic.features.bit_eq(&ckpt.synthetic.features));
    assert!(restored.mapping.bit_eq(&ckpt.mapping));

    let batches = data.test_batches(64, false);
    for threads in [1, 4] {
        let expected: Vec<DMat> = mcond::par::with_thread_limit(threads, || {
            let live =
                InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, model);
            batches.iter().map(|b| live.serve(b)).collect()
        });
        let got: Vec<DMat> = mcond::par::with_thread_limit(threads, || {
            let server = InductiveServer::from_checkpoint(&restored);
            batches.iter().map(|b| server.serve(b)).collect()
        });
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            assert!(
                g.bit_eq(e),
                "batch {i} logits drifted after checkpoint restore (threads = {threads})"
            );
        }
    }
}

#[test]
fn real_checkpoint_survives_the_fault_sweep() {
    // A real condense→train checkpoint, but from a deliberately tiny graph:
    // the sweep is exhaustive (one load per truncation boundary and per
    // flipped bit), so its cost scales with image size squared — a small
    // image keeps the exhaustiveness affordable.
    let graph = generate_sbm(&SbmConfig {
        nodes: 240,
        edges: 720,
        feature_dim: 12,
        num_classes: 3,
        ..SbmConfig::default()
    });
    let n = graph.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    MatRng::seed_from(13).shuffle(&mut order);
    let data = InductiveDataset::new(
        graph,
        order[..n * 8 / 10].to_vec(),
        order[n * 8 / 10..n * 9 / 10].to_vec(),
        order[n * 9 / 10..].to_vec(),
    );
    let condensed = condense(
        &data,
        &McondConfig {
            ratio: 0.05,
            outer_loops: 1,
            relay_steps: 2,
            mapping_steps: 3,
            support_cap: 16,
            ..McondConfig::default()
        },
    );
    let ops = GraphOps::from_adj(&condensed.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        condensed.synthetic.feature_dim(),
        8,
        condensed.synthetic.num_classes,
        3,
    );
    train(
        &mut model,
        &ops,
        &condensed.synthetic.features,
        &condensed.synthetic.labels,
        &TrainConfig { epochs: 5, ..TrainConfig::default() },
        None,
    );
    let image = condensed.checkpoint(&model).to_writer().to_bytes();

    // Pristine image loads.
    Checkpoint::from_bytes(image.clone()).expect("pristine checkpoint");

    let mut mutations = 0usize;
    for c in corruption_sweep(&image) {
        assert!(
            Checkpoint::from_bytes(c.bytes).is_err(),
            "{} produced a successful load from a corrupted checkpoint",
            c.label
        );
        mutations += 1;
    }
    assert!(mutations > image.len(), "sweep covered only {mutations} mutations");
}
