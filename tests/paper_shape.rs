//! Paper-shape regression tests: the qualitative claims of the paper's
//! evaluation, asserted on one seed of the small-scale datasets.
//!
//! These run the full pipeline several times, so they are `#[ignore]`d by
//! default; run them explicitly (release strongly recommended):
//!
//! ```sh
//! cargo test --release --test paper_shape -- --ignored
//! ```

use mcond::prelude::*;

fn pipeline_cfg(ratio: f64, seed: u64) -> McondConfig {
    McondConfig {
        ratio,
        outer_loops: 6,
        relay_steps: 15,
        mapping_steps: 80,
        support_cap: 300,
        lambda: 10.0,
        beta: 1.0,
        seed,
        ..McondConfig::default()
    }
}

fn train_sgc(graph: &Graph, seed: u64) -> GnnModel {
    let ops = GraphOps::from_adj(&graph.adj);
    let mut model =
        GnnModel::new(GnnKind::Sgc, graph.feature_dim(), 0, graph.num_classes, seed);
    train(
        &mut model,
        &ops,
        &graph.features,
        &graph.labels,
        &TrainConfig { epochs: 150, lr: 0.03, ..TrainConfig::default() },
        None,
    );
    model
}

fn inductive_accuracy(
    model: &GnnModel,
    target: &InferenceTarget,
    data: &InductiveDataset,
) -> f64 {
    let mut hits = 0.0;
    let mut total = 0usize;
    for batch in data.test_batches(100, false) {
        let logits = infer_inductive(model, target, &batch);
        hits += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    hits / total as f64
}

/// The paper's central Table II ordering on the Reddit-like dataset:
/// condensation-based deployment beats starved coresets and VNG by a wide
/// margin, and everything trails Whole.
#[test]
#[ignore = "full pipeline; run with --ignored in release"]
fn reddit_ordering_condensation_beats_coresets_and_vng() {
    let data = load_dataset("reddit", Scale::Small, 0).unwrap();
    let original = data.original_graph();
    let condensed = condense(&data, &pipeline_cfg(0.015, 0));

    let model_o = train_sgc(&original, 0);
    let model_s = train_sgc(&condensed.synthetic, 0);

    let whole = inductive_accuracy(&model_o, &InferenceTarget::Original(&original), &data);
    let mcond_so =
        inductive_accuracy(&model_s, &InferenceTarget::Original(&original), &data);

    let embeddings = {
        let ahat = sym_normalize(&original.adj);
        let mut z = original.features.clone();
        for _ in 0..2 {
            z = ahat.spmm(&z);
        }
        z
    };
    let n_syn = condensed.synthetic.num_nodes();
    let random = coreset(&original, &embeddings, n_syn, CoresetMethod::Random, 0);
    let coreset_acc = inductive_accuracy(
        &model_o,
        &InferenceTarget::Synthetic { graph: &random.graph, mapping: &random.mapping },
        &data,
    );
    let virtual_graph = vng(&original, &original.features, n_syn, 0);
    let vng_acc = inductive_accuracy(
        &model_o,
        &InferenceTarget::Synthetic {
            graph: &virtual_graph.graph,
            mapping: &virtual_graph.mapping,
        },
        &data,
    );

    assert!(whole > mcond_so, "Whole {whole} should top MCond_SO {mcond_so}");
    assert!(
        mcond_so > coreset_acc + 0.10,
        "MCond_SO {mcond_so} should clearly beat the Random coreset {coreset_acc}"
    );
    assert!(
        mcond_so > vng_acc + 0.10,
        "MCond_SO {mcond_so} should clearly beat VNG {vng_acc}"
    );
}

/// Fig. 3/4: synthetic-graph deployment is meaningfully faster and smaller
/// than original-graph deployment, and the gap grows with graph size.
#[test]
#[ignore = "full pipeline; run with --ignored in release"]
fn deployment_cost_gap_grows_with_graph_size() {
    let mut ratios = Vec::new();
    for name in ["pubmed", "reddit"] {
        let data = load_dataset(name, Scale::Small, 0).unwrap();
        let original = data.original_graph();
        let condensed = condense(&data, &pipeline_cfg(0.015, 0));
        let batch = data.test_batches(100, true).remove(0);
        let (adj_o, x_o) = attach_to_original(&original, &batch);
        let (adj_s, x_s) =
            attach_to_synthetic(&condensed.synthetic, &condensed.mapping, &batch);
        let mem_o = adj_o.storage_bytes() + x_o.len() * 4;
        let mem_s = adj_s.storage_bytes() + x_s.len() * 4;
        ratios.push(mem_o as f64 / mem_s as f64);
    }
    assert!(ratios[0] > 2.0, "pubmed compression too small: {}", ratios[0]);
    assert!(
        ratios[1] > ratios[0],
        "compression should grow with graph size: {ratios:?}"
    );
}

/// Table V: the full loss beats the Plain (no L_str, no L_ind) ablation.
#[test]
#[ignore = "full pipeline; run with --ignored in release"]
fn full_losses_beat_plain_ablation() {
    let data = load_dataset("reddit", Scale::Small, 0).unwrap();
    let full_cfg = pipeline_cfg(0.015, 0);
    let plain_cfg = McondConfig {
        use_structure_loss: false,
        use_inductive_loss: false,
        ..full_cfg.clone()
    };
    let evaluate = |cfg: &McondConfig| {
        let condensed = condense(&data, cfg);
        let model = train_sgc(&condensed.synthetic, 0);
        inductive_accuracy(
            &model,
            &InferenceTarget::Synthetic {
                graph: &condensed.synthetic,
                mapping: &condensed.mapping,
            },
            &data,
        )
    };
    let full = evaluate(&full_cfg);
    let plain = evaluate(&plain_cfg);
    assert!(full > plain, "full MCond {full} should beat Plain {plain}");
}
