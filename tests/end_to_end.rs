//! End-to-end integration tests spanning the whole workspace: dataset →
//! condensation → GNN training → inductive inference → calibration.
//!
//! These use deliberately small configurations; they assert *relative*
//! behaviour (orderings, invariants), not absolute accuracy.

use mcond::prelude::*;

fn quick_cfg(ratio: f64, seed: u64) -> McondConfig {
    McondConfig {
        ratio,
        outer_loops: 3,
        relay_steps: 8,
        mapping_steps: 30,
        structure_batch: 128,
        support_cap: 64,
        lambda: 1.0,
        beta: 1.0,
        seed,
        ..McondConfig::default()
    }
}

fn train_sgc(graph: &Graph, seed: u64) -> GnnModel {
    let ops = GraphOps::from_adj(&graph.adj);
    let mut model =
        GnnModel::new(GnnKind::Sgc, graph.feature_dim(), 0, graph.num_classes, seed);
    train(
        &mut model,
        &ops,
        &graph.features,
        &graph.labels,
        &TrainConfig { epochs: 120, lr: 0.05, ..TrainConfig::default() },
        None,
    );
    model
}

fn inductive_accuracy(
    model: &GnnModel,
    target: &InferenceTarget,
    data: &InductiveDataset,
    graph_batch: bool,
) -> f64 {
    let mut hits = 0.0;
    let mut total = 0usize;
    for batch in data.test_batches(100, graph_batch) {
        let logits = infer_inductive(model, target, &batch);
        hits += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    hits / total as f64
}

#[test]
fn condense_then_infer_beats_chance_and_tracks_whole() {
    let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
    let original = data.original_graph();
    let condensed = condense(&data, &quick_cfg(0.02, 0));

    let model_o = train_sgc(&original, 0);
    let whole = inductive_accuracy(&model_o, &InferenceTarget::Original(&original), &data, false);

    let model_s = train_sgc(&condensed.synthetic, 0);
    let target_s = InferenceTarget::Synthetic {
        graph: &condensed.synthetic,
        mapping: &condensed.mapping,
    };
    let on_s = inductive_accuracy(&model_s, &target_s, &data, false);

    let chance = 1.0 / original.num_classes as f64;
    assert!(whole > 0.75, "whole accuracy too low: {whole}");
    assert!(on_s > 2.0 * chance, "synthetic-graph inference at chance: {on_s}");
    assert!(
        on_s > whole - 0.35,
        "synthetic-graph inference too far from whole: {on_s} vs {whole}"
    );
}

#[test]
fn learned_mapping_beats_shuffled_mapping() {
    // Destroying the learned row structure of M must hurt on-S inference.
    let data = load_dataset("pubmed", Scale::Small, 1).unwrap();
    let condensed = condense(&data, &quick_cfg(0.02, 1));
    let model = train_sgc(&condensed.synthetic, 1);

    let good = inductive_accuracy(
        &model,
        &InferenceTarget::Synthetic {
            graph: &condensed.synthetic,
            mapping: &condensed.mapping,
        },
        &data,
        false,
    );

    // Shuffle mapping rows (node identities) with a fixed permutation.
    let n = condensed.dense_mapping.rows();
    let mut perm: Vec<usize> = (0..n).collect();
    MatRng::seed_from(99).shuffle(&mut perm);
    let shuffled_dense = condensed.dense_mapping.select_rows(&perm);
    let (shuffled, _) = sparsify_dense(&shuffled_dense, 0.01);
    let bad = inductive_accuracy(
        &model,
        &InferenceTarget::Synthetic { graph: &condensed.synthetic, mapping: &shuffled },
        &data,
        false,
    );
    assert!(good > bad, "shuffled mapping should hurt: {good} vs {bad}");
}

#[test]
fn condensation_is_deterministic_per_seed() {
    let data = load_dataset("pubmed", Scale::Small, 2).unwrap();
    let a = condense(&data, &quick_cfg(0.02, 7));
    let b = condense(&data, &quick_cfg(0.02, 7));
    assert_eq!(a.synthetic.features, b.synthetic.features);
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.synthetic.adj, b.synthetic.adj);
    let c = condense(&data, &quick_cfg(0.02, 8));
    assert_ne!(a.synthetic.features, c.synthetic.features);
}

#[test]
fn eq11_attachment_matches_manual_block_construction() {
    // attach_to_synthetic must equal hand-building [[A', (aM)ᵀ],[aM, ã]].
    let data = load_dataset("pubmed", Scale::Small, 3).unwrap();
    let condensed = condense(&data, &quick_cfg(0.02, 3));
    let batch = data.test_batches(50, true).remove(0);
    let (adj, x) = attach_to_synthetic(&condensed.synthetic, &condensed.mapping, &batch);

    let n_syn = condensed.synthetic.num_nodes();
    let am = batch.incremental.to_dense().matmul(&condensed.mapping.to_dense());
    for i in 0..batch.len() {
        for j in 0..n_syn {
            let got = adj.get(n_syn + i, j);
            let want = am.get(i, j);
            assert!(
                mcond::linalg::approx_eq(got, want, 1e-5),
                "aM mismatch at ({i}, {j}): {got} vs {want}"
            );
            assert_eq!(adj.get(j, n_syn + i), got, "block asymmetry");
        }
    }
    for (i, j, v) in batch.interconnect.iter() {
        assert_eq!(adj.get(n_syn + i, n_syn + j), v, "ã corner mismatch");
    }
    assert_eq!(x.rows(), n_syn + batch.len());
}

#[test]
fn coresets_and_vng_slot_into_the_same_inference_path() {
    let data = load_dataset("pubmed", Scale::Small, 4).unwrap();
    let original = data.original_graph();
    let model = train_sgc(&original, 4);
    let n_syn = 18;
    for method in CoresetMethod::ALL {
        let reduced = coreset(&original, &original.features, n_syn, method, 4);
        let acc = inductive_accuracy(
            &model,
            &InferenceTarget::Synthetic { graph: &reduced.graph, mapping: &reduced.mapping },
            &data,
            false,
        );
        assert!(acc > 0.3, "{}: accuracy collapsed to {acc}", method.name());
    }
    let virtual_graph = vng(&original, &original.features, n_syn, 4);
    let acc = inductive_accuracy(
        &model,
        &InferenceTarget::Synthetic {
            graph: &virtual_graph.graph,
            mapping: &virtual_graph.mapping,
        },
        &data,
        false,
    );
    assert!(acc > 0.3, "VNG accuracy collapsed to {acc}");
}

#[test]
fn label_and_error_propagation_run_on_condensed_graph() {
    let data = load_dataset("pubmed", Scale::Small, 5).unwrap();
    let condensed = condense(&data, &quick_cfg(0.02, 5));
    let model = train_sgc(&condensed.synthetic, 5);
    let cfg = PropagationConfig::default();
    let n_syn = condensed.synthetic.num_nodes();

    let batch = data.test_batches(100, true).remove(0);
    let (adj, x) = attach_to_synthetic(&condensed.synthetic, &condensed.mapping, &batch);
    let ops = GraphOps::from_adj(&adj);
    let logits = model.predict(&ops, &x);
    let vanilla = accuracy(&logits.slice_rows(n_syn, logits.rows()), &batch.labels);

    let lp = label_propagation(&adj, &condensed.synthetic.labels, n_syn, 3, &cfg);
    let lp_acc = accuracy(&lp.slice_rows(n_syn, lp.rows()), &batch.labels);
    let ep = error_propagation(&adj, &logits, &condensed.synthetic.labels, n_syn, 1.0, &cfg);
    let ep_acc = accuracy(&ep.slice_rows(n_syn, ep.rows()), &batch.labels);

    // Calibration must stay in a sane band around the vanilla prediction.
    assert!(lp_acc > 0.3, "LP collapsed: {lp_acc}");
    assert!(ep_acc >= vanilla - 0.1, "EP broke predictions: {ep_acc} vs {vanilla}");
}

#[test]
fn sparsification_trades_accuracy_for_storage() {
    let data = load_dataset("pubmed", Scale::Small, 6).unwrap();
    let condensed = condense(&data, &quick_cfg(0.02, 6));
    let model = train_sgc(&condensed.synthetic, 6);

    let (adj_loose, map_loose) = condensed.resparsify(0.5, 0.0);
    let (adj_tight, map_tight) = condensed.resparsify(0.5, 0.2);
    assert!(map_tight.nnz() < map_loose.nnz(), "delta must prune entries");
    assert!(map_tight.storage_bytes() < map_loose.storage_bytes());

    // Both still produce usable predictions.
    for (adj, map) in [(adj_loose, map_loose), (adj_tight, map_tight)] {
        let graph = Graph::new(
            adj,
            condensed.synthetic.features.clone(),
            condensed.synthetic.labels.clone(),
            condensed.synthetic.num_classes,
        );
        let acc = inductive_accuracy(
            &model,
            &InferenceTarget::Synthetic { graph: &graph, mapping: &map },
            &data,
            false,
        );
        assert!(acc.is_finite() && acc > 0.2, "accuracy collapsed: {acc}");
    }
}

#[test]
fn every_architecture_runs_inductively_on_the_condensed_graph() {
    let data = load_dataset("pubmed", Scale::Small, 7).unwrap();
    let condensed = condense(&data, &quick_cfg(0.02, 7));
    let batch = data.test_batches(50, false).remove(0);
    let target = InferenceTarget::Synthetic {
        graph: &condensed.synthetic,
        mapping: &condensed.mapping,
    };
    for kind in GnnKind::ALL {
        let ops = GraphOps::from_adj(&condensed.synthetic.adj);
        let mut model = GnnModel::new(
            kind,
            condensed.synthetic.feature_dim(),
            16,
            condensed.synthetic.num_classes,
            7,
        );
        train(
            &mut model,
            &ops,
            &condensed.synthetic.features,
            &condensed.synthetic.labels,
            &TrainConfig { epochs: 40, lr: 0.05, ..TrainConfig::default() },
            None,
        );
        let logits = infer_inductive(&model, &target, &batch);
        assert_eq!(logits.rows(), batch.len(), "{}", kind.name());
        assert!(
            logits.as_slice().iter().all(|v| v.is_finite()),
            "{} produced non-finite logits",
            kind.name()
        );
    }
}
