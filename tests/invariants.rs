//! Cross-crate invariant tests: storage model, normalisation consistency,
//! inductive-split bookkeeping, and on-disk round trips through the whole
//! pipeline.

use mcond::graph::{load_graph, save_graph};
use mcond::prelude::*;

#[test]
fn storage_model_matches_paper_formula() {
    // §II-B: memory is O(||A||_0 + (N + n)d). Our CSR accounting must grow
    // linearly in nnz and the feature block in (N + n)·d.
    let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
    let original = data.original_graph();
    let batch = data.test_batches(100, true).remove(0);
    let (adj, x) = mcond::core::attach_to_original(&original, &batch);

    let nnz = adj.nnz();
    let bytes = adj.storage_bytes();
    // indptr (u64) + cols (u32) + vals (f32): 8·(rows+1) + 8·nnz.
    assert_eq!(bytes, 8 * (adj.rows() + 1) + 8 * nnz);
    assert_eq!(x.rows(), original.num_nodes() + batch.len());
}

#[test]
fn extended_graph_normalisation_is_consistent() {
    // Normalising the extended adjacency directly must equal normalising
    // after a dense round-trip (no CSR artefacts).
    let data = load_dataset("pubmed", Scale::Small, 1).unwrap();
    let original = data.original_graph();
    let batch = data.test_batches(50, true).remove(0);
    let (adj, _) = mcond::core::attach_to_original(&original, &batch);

    let direct = sym_normalize(&adj).to_dense();
    let via_dense = mcond::sparse::sym_normalize_dense(&adj.to_dense());
    for (a, b) in direct.as_slice().iter().zip(via_dense.as_slice()) {
        assert!(mcond::linalg::approx_eq(*a, *b, 1e-4), "{a} vs {b}");
    }
}

#[test]
fn inductive_split_never_leaks_test_edges_into_training() {
    let data = load_dataset("flickr", Scale::Small, 2).unwrap();
    let original = data.original_graph();
    // The original graph must contain only train-train edges: its size can
    // never exceed the full graph's edge count, and every test node's
    // incremental row references only training columns (checked by
    // construction panics) — here we verify edge conservation.
    let full_edges = data.full.num_edges();
    let train_edges = original.num_edges();
    assert!(train_edges < full_edges);

    // Train + incremental + interconnect edges never exceed the full count.
    let batches = data.test_batches(usize::MAX, true);
    let batch = &batches[0];
    let test_edges: usize = batch.incremental.nnz() + batch.interconnect.nnz() / 2;
    assert!(train_edges + test_edges <= full_edges);
}

#[test]
fn pipeline_survives_disk_round_trip() {
    // Save the full graph, reload, rebuild the same split, and verify the
    // original graph and a condensation run are identical.
    let data = load_dataset("pubmed", Scale::Small, 3).unwrap();
    let path = std::env::temp_dir().join("mcond_pipeline_roundtrip.mcg");
    save_graph(&data.full, &path).unwrap();
    let reloaded = load_graph(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let data2 = InductiveDataset::new(
        reloaded,
        data.train_idx.clone(),
        data.val_idx.clone(),
        data.test_idx.clone(),
    );
    let cfg = McondConfig {
        ratio: 0.02,
        outer_loops: 1,
        relay_steps: 3,
        mapping_steps: 5,
        support_cap: 32,
        ..McondConfig::default()
    };
    let a = condense(&data, &cfg);
    let b = condense(&data2, &cfg);
    assert_eq!(a.synthetic.features, b.synthetic.features);
    assert_eq!(a.mapping, b.mapping);
}

#[test]
fn graph_and_node_batch_differ_only_in_interconnections() {
    let data = load_dataset("reddit", Scale::Small, 4).unwrap();
    let nodes: Vec<usize> = data.test_idx[..50].to_vec();
    let gb = data.batch(&nodes, true);
    let nb = data.batch(&nodes, false);
    assert_eq!(gb.incremental, nb.incremental);
    assert_eq!(gb.features, nb.features);
    assert_eq!(gb.labels, nb.labels);
    assert_eq!(nb.interconnect.nnz(), 0);
}

#[test]
fn synthetic_graph_is_a_valid_graph() {
    let data = load_dataset("pubmed", Scale::Small, 5).unwrap();
    let condensed = condense(
        &data,
        &McondConfig {
            ratio: 0.02,
            outer_loops: 2,
            relay_steps: 4,
            mapping_steps: 5,
            support_cap: 32,
            ..McondConfig::default()
        },
    );
    let s = &condensed.synthetic;
    // A' symmetric, weights in (0, 1), zero diagonal.
    for (i, j, v) in s.adj.iter() {
        assert!(v > 0.0 && v < 1.0, "A'[{i}][{j}] = {v}");
        assert!(
            mcond::linalg::approx_eq(s.adj.get(j, i), v, 1e-5),
            "A' asymmetric at ({i}, {j})"
        );
        assert_ne!(i, j, "learned self-loop");
    }
    // Mapping rows are renormalised after Eq. (14) thresholding: every
    // surviving (non-empty) row is a distribution over synthetic nodes —
    // it sums to exactly 1, not merely "at most 1 minus the pruned mass".
    // Rows whose entries were all pruned stay empty (no NaN backfill).
    for i in 0..condensed.mapping.rows() {
        let vals = condensed.mapping.row_vals(i);
        if vals.is_empty() {
            continue;
        }
        let row_sum: f32 = vals.iter().sum();
        assert!(
            mcond::linalg::approx_eq(row_sum, 1.0, 1e-4),
            "mapping row {i} sums to {row_sum}, expected 1"
        );
        assert!(vals.iter().all(|&v| v > 0.0 && v <= 1.0 + 1e-6));
    }
    // Labels cover every class.
    let counts = s.class_counts();
    assert!(counts.iter().all(|&c| c >= 1), "{counts:?}");
}

#[test]
fn resparsify_with_extreme_delta_prunes_rows_without_nans() {
    // Regression: renormalising the mapping after thresholding must leave
    // fully-pruned rows empty instead of dividing by a zero row sum. An
    // extreme δ prunes every entry of most (possibly all) rows; the result
    // must stay finite and any surviving row must still sum to 1.
    let data = load_dataset("pubmed", Scale::Small, 5).unwrap();
    let cfg = McondConfig {
        ratio: 0.02,
        outer_loops: 1,
        relay_steps: 3,
        mapping_steps: 5,
        support_cap: 32,
        ..McondConfig::default()
    };
    let condensed = condense(&data, &cfg);
    let (_, map) = condensed.resparsify(cfg.mu, 0.999_999);
    assert!(map.nnz() < condensed.mapping.nnz(), "extreme delta should prune");
    for i in 0..map.rows() {
        let vals = map.row_vals(i);
        assert!(vals.iter().all(|v| v.is_finite()), "row {i} has non-finite entries");
        if !vals.is_empty() {
            let s: f32 = vals.iter().sum();
            assert!(mcond::linalg::approx_eq(s, 1.0, 1e-4), "row {i} sums to {s}");
        }
    }
}

#[test]
fn cost_meter_reports_synthetic_graph_as_smaller() {
    let data = load_dataset("reddit", Scale::Small, 6).unwrap();
    let original = data.original_graph();
    let condensed = condense(
        &data,
        &McondConfig {
            ratio: 0.01,
            outer_loops: 1,
            relay_steps: 3,
            mapping_steps: 5,
            support_cap: 32,
            ..McondConfig::default()
        },
    );
    let batch = data.test_batches(100, true).remove(0);
    let (adj_o, x_o) = mcond::core::attach_to_original(&original, &batch);
    let (adj_s, x_s) =
        mcond::core::attach_to_synthetic(&condensed.synthetic, &condensed.mapping, &batch);
    let mem_o = adj_o.storage_bytes() + x_o.len() * 4;
    let mem_s = adj_s.storage_bytes() + x_s.len() * 4;
    assert!(
        mem_s * 2 < mem_o,
        "synthetic deployment should be at least 2x smaller: {mem_s} vs {mem_o}"
    );
}
