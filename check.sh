#!/bin/bash
# The standard pre-submit checks for this repository.
set -e

# CI drift guard: .github/workflows/ci.yml must run the exact same tier-1
# commands as this script. If either file is edited without the other, fail
# loudly before running anything.
WORKFLOW="$(dirname "$0")/.github/workflows/ci.yml"
for cmd in \
    "cargo clippy --workspace --all-targets -- -D warnings" \
    "cargo test --workspace" \
    "cargo bench --workspace --no-run" \
    "cargo run --release --example checkpointing" \
    "cargo run --release --example robust_serving" \
    "cargo run --release --example inference_acceleration" \
    "cargo run --release --example serving" \
    "cargo test --release -p mcond-serve --test reload_chaos --test drain_deadline" \
    "cargo test --release -p mcond-core --test delta_equivalence" \
    "cargo bench -p mcond-bench --bench delta_drift" \
    "cargo bench -p mcond-bench --bench serve_fastpath" \
    "cargo bench -p mcond-bench --bench serving_qps" \
    "cargo bench -p mcond-bench --bench reload_swap" \
    "cargo bench -p mcond-bench --bench obs" \
    "cargo bench -p mcond-bench --bench kernels_simd" \
    "cargo run --release -p mcond-bench --bin trace-report -- target/robust_serving_trace.jsonl"
do
    if ! grep -q "run: $cmd\$" "$WORKFLOW"; then
        echo "DRIFT: $WORKFLOW is missing the tier-1 step: $cmd" >&2
        echo "check.sh and the CI workflow must run identical commands." >&2
        exit 1
    fi
done

# The 4-thread and scalar-kernel test passes exist in CI too; their
# commands are the same `cargo test --workspace` line, so guard on the
# env stanzas instead.
if ! grep -q 'MCOND_THREADS: "4"' "$WORKFLOW"; then
    echo "DRIFT: $WORKFLOW is missing the MCOND_THREADS=4 test pass." >&2
    exit 1
fi
if ! grep -q 'MCOND_SIMD: "0"' "$WORKFLOW"; then
    echo "DRIFT: $WORKFLOW is missing the MCOND_SIMD=0 test pass." >&2
    exit 1
fi

cargo fmt --all --check 2>/dev/null || echo "note: rustfmt not enforced (formatting is hand-maintained)"
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
MCOND_THREADS=4 cargo test --workspace
# Third pass with the SIMD tiers disabled: the scalar reference kernels
# must stay correct on their own (they are the MCOND_SIMD escape hatch and
# the baseline every lane tier is tested against).
MCOND_SIMD=0 cargo test --workspace
cargo bench --workspace --no-run
# Checkpoint round-trip smoke: condense → save → restore → serve, bitwise
# verified inside the example (also exercises a corrupted-file rejection).
cargo run --release --example checkpointing
# Chaos sweep: every corrupted batch gets a typed ServeError on both
# serving modes at 1 and 4 threads; valid siblings stay bitwise identical.
# Also asserts the self-profile stage coverage (>= 90% of the serve span)
# and the trace-stamped panic flight dump, and leaves a JSONL trace behind
# for the trace-report smoke below.
MCOND_LOG=target/robust_serving_trace.jsonl cargo run --release --example robust_serving
# Headline speedup demo; asserts the split-operator fast path is bitwise
# identical to the extended reference before reporting numbers.
cargo run --release --example inference_acceleration
# Network serving smoke: checkpoint boot → HTTP front end on localhost →
# wire round trip asserted bitwise identical to the library call.
cargo run --release --example serving
# Fast-path bench smoke (tiny sample budget): regenerates
# results/BENCH_serve_fastpath.json and re-checks the bitwise guard.
MCOND_BENCH_SAMPLES=2 MCOND_BENCH_SAMPLE_MS=1 cargo bench -p mcond-bench --bench serve_fastpath
# Hot-swap robustness in release timing: ≥100 reloads under closed-loop
# load with epoch-verified bitwise answers, corrupt-bundle storms, and
# watchdog recovery of panicked/stalled batchers; plus graceful-drain and
# deadline-budget contracts.
cargo test --release -p mcond-serve --test reload_chaos --test drain_deadline
# Live-graph equivalence: N incremental promotions must be bitwise
# identical to a from-scratch rebuild (adjacency, mapping, degrees, and
# both Exact and patched-FrozenBase serving) at 1 and 4 threads, and a
# refresh replay must reproduce the live state exactly.
cargo test --release -p mcond-core --test delta_equivalence
# Drift-experiment smoke (tiny waves): regenerates
# results/BENCH_delta_drift.json and re-checks the refresh-replay bitwise
# guard over the probe set.
MCOND_DRIFT_WAVES=2 MCOND_DRIFT_WAVE=4 MCOND_DRIFT_EPOCHS=5 MCOND_DRIFT_PROBES=50 cargo bench -p mcond-bench --bench delta_drift
# Closed-loop HTTP load-generator smoke (short levels): regenerates
# results/BENCH_serving_qps.json after verifying wire responses bitwise
# and asserting RSS stays flat across 50 hot reloads.
MCOND_QPS_MS=300 cargo bench -p mcond-bench --bench serving_qps
# Reload-under-load smoke: regenerates results/BENCH_reload_swap.json —
# p50/p99 with vs without a concurrent reload storm, every answer verified
# against the epoch its header claims.
MCOND_RELOAD_MS=300 cargo bench -p mcond-bench --bench reload_swap
# Observability overhead smoke: sink-off vs sharded-registry vs full
# tracing at 1 and 4 threads; regenerates results/BENCH_obs_overhead.json.
MCOND_BENCH_SAMPLES=2 MCOND_BENCH_SAMPLE_MS=1 cargo bench -p mcond-bench --bench obs
# SIMD tier sweep smoke: every available MCOND_SIMD level of the dense and
# sparse kernels; regenerates results/BENCH_kernels_simd.json.
MCOND_BENCH_SAMPLES=2 MCOND_BENCH_SAMPLE_MS=1 cargo bench -p mcond-bench --bench kernels_simd
# Offline trace tooling smoke: fold the robust_serving JSONL trace into a
# call-tree profile (fails if the log is missing or span-free).
cargo run --release -p mcond-bench --bin trace-report -- target/robust_serving_trace.jsonl
echo "all checks passed"
