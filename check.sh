#!/bin/bash
# The standard pre-submit checks for this repository.
set -e

# CI drift guard: .github/workflows/ci.yml must run the exact same tier-1
# commands as this script. If either file is edited without the other, fail
# loudly before running anything.
WORKFLOW="$(dirname "$0")/.github/workflows/ci.yml"
for cmd in \
    "cargo clippy --workspace --all-targets -- -D warnings" \
    "cargo test --workspace" \
    "cargo bench --workspace --no-run"
do
    if ! grep -q "run: $cmd\$" "$WORKFLOW"; then
        echo "DRIFT: $WORKFLOW is missing the tier-1 step: $cmd" >&2
        echo "check.sh and the CI workflow must run identical commands." >&2
        exit 1
    fi
done

cargo fmt --all --check 2>/dev/null || echo "note: rustfmt not enforced (formatting is hand-maintained)"
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo bench --workspace --no-run
echo "all checks passed"
