#!/bin/bash
# The standard pre-submit checks for this repository.
set -e
cargo fmt --all --check 2>/dev/null || echo "note: rustfmt not enforced (formatting is hand-maintained)"
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo bench --workspace --no-run
echo "all checks passed"
