//! Sparse matrix substrate for the `mcond` workspace.
//!
//! Graphs are stored as [`Csr`] (compressed sparse row) matrices; [`Coo`]
//! is the mutable builder format. The kernels here are exactly the ones the
//! paper's pipeline needs:
//!
//! * CSR × dense SpMM — the message-passing primitive (`Â H`),
//! * symmetric GCN normalisation `D̃^{-1/2} Ã D̃^{-1/2}` (Eq. 1),
//! * row normalisation (for incremental adjacencies `a` and `aM`),
//! * threshold sparsification (Eq. 14) with storage accounting.
//!
//! # Example
//! ```
//! use mcond_sparse::{Coo, Csr};
//! use mcond_linalg::DMat;
//! let mut coo = Coo::new(3, 3);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 0, 1.0);
//! let adj: Csr = coo.to_csr();
//! let h = DMat::eye(3);
//! let out = adj.spmm(&h); // one propagation step
//! assert_eq!(out.get(0, 1), 1.0);
//! ```

mod coo;
pub mod io;
mod csr;
mod normalize;
mod sparsify;

pub use coo::Coo;
pub use io::{load_csr, save_csr};
pub use csr::Csr;
pub use normalize::{renormalize_rows, row_normalize_dense, sym_normalize, sym_normalize_dense};
pub use sparsify::{sparsify_dense, SparsifyStats};
