//! On-disk CSR format (`MCS1`, little-endian):
//!
//! ```text
//! magic  b"MCS1"
//! u64    rows    u64 cols    u64 nnz
//! u64*rows  row lengths (indptr deltas)
//! u32*nnz   column indices
//! f32*nnz   values
//! ```

use crate::Csr;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MCS1";

/// Serialises a CSR matrix to `path`.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_csr(m: &Csr, path: &Path) -> io::Result<()> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    w.write_all(&(m.nnz() as u64).to_le_bytes())?;
    for i in 0..m.rows() {
        w.write_all(&(m.row_cols(i).len() as u64).to_le_bytes())?;
    }
    for i in 0..m.rows() {
        for &c in m.row_cols(i) {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for i in 0..m.rows() {
        for &v in m.row_vals(i) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Deserialises a CSR matrix from `path`.
///
/// # Errors
/// Propagates I/O errors; malformed files yield `InvalidData`.
pub fn load_csr(path: &Path) -> io::Result<Csr> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad MCS1 magic"));
    }
    let rows = read_u64(&mut r)? as usize;
    let cols_n = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;
    let mut indptr = Vec::with_capacity(rows + 1);
    indptr.push(0u64);
    let mut acc = 0u64;
    for _ in 0..rows {
        acc += read_u64(&mut r)?;
        indptr.push(acc);
    }
    if acc as usize != nnz {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "row lengths != nnz"));
    }
    let mut cols = vec![0u32; nnz];
    for c in &mut cols {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        *c = u32::from_le_bytes(buf);
        if *c as usize >= cols_n {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "column out of range"));
        }
    }
    let mut vals = vec![0f32; nnz];
    for v in &mut vals {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(Csr::from_raw(rows, cols_n, indptr, cols, vals))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        let mut coo = Coo::new(5, 7);
        coo.push(0, 6, 1.5);
        coo.push(2, 0, -2.0);
        coo.push(2, 3, 0.25);
        coo.push(4, 1, 9.0);
        coo.to_csr()
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let path = std::env::temp_dir().join("mcond_csr_roundtrip.mcs");
        save_csr(&m, &path).unwrap();
        let loaded = load_csr(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, m);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m = Csr::empty(3, 4);
        let path = std::env::temp_dir().join("mcond_csr_empty.mcs");
        save_csr(&m, &path).unwrap();
        let loaded = load_csr(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, m);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = std::env::temp_dir().join("mcond_csr_bad.mcs");
        std::fs::write(&path, b"XXXX0123456789abcdef01234567").unwrap();
        assert!(load_csr(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let m = sample();
        let path = std::env::temp_dir().join("mcond_csr_trunc.mcs");
        save_csr(&m, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_csr(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
