//! Graph normalisations.
//!
//! GCN-style symmetric normalisation (Eq. 1 of the paper):
//! `Â = D̃^{-1/2} Ã D̃^{-1/2}` where `Ã = A + I` and `D̃` its degree matrix.
//! Row normalisation `D^{-1} A` is used for incremental adjacencies where
//! the new nodes have no self-loop in the base graph.

use crate::{Coo, Csr};
use mcond_linalg::DMat;

/// Symmetric GCN normalisation with self-loops: `D̃^{-1/2} (A + I) D̃^{-1/2}`.
///
/// For a binary adjacency the self-loop makes every `D̃` entry ≥ 1, but
/// weighted inputs do reach this function with non-positive degrees: the
/// learned synthetic `A'` can carry negative weights that cancel the
/// self-loop, and extended blocks built from an all-pruned mapping row
/// (preserved empty by [`renormalize_rows`]) contribute zero mass. Such
/// rows get `inv_sqrt = 0` — a zero row, meaning the node neither sends
/// nor receives messages — because the alternative (`1/sqrt(d)` with
/// `d <= 0`) would inject NaN/Inf into every downstream logit, which the
/// serving layer explicitly forbids.
///
/// # Panics
/// Panics when `adj` is not square.
#[must_use]
pub fn sym_normalize(adj: &Csr) -> Csr {
    assert_eq!(adj.rows(), adj.cols(), "sym_normalize: adjacency must be square");
    let n = adj.rows();
    // Degrees of Ã = A + I.
    let mut deg = vec![1.0f32; n]; // self-loop contributes 1
    for (i, _, v) in adj.iter() {
        deg[i] += v;
    }
    let inv_sqrt: Vec<f32> =
        deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    let mut coo = Coo::with_capacity(n, n, adj.nnz() + n);
    for (i, j, v) in adj.iter() {
        coo.push(i, j, v * inv_sqrt[i] * inv_sqrt[j]);
    }
    for (i, &s) in inv_sqrt.iter().enumerate() {
        coo.push(i, i, s * s);
    }
    coo.to_csr()
}

/// Symmetric GCN normalisation of a dense (synthetic) adjacency: adds the
/// self-loop, then scales by `D̃^{-1/2}` on both sides. Used for the learned
/// `A'` which is dense during training.
///
/// # Panics
/// Panics when `adj` is not square.
#[must_use]
pub fn sym_normalize_dense(adj: &DMat) -> DMat {
    assert_eq!(adj.rows(), adj.cols(), "sym_normalize_dense: adjacency must be square");
    let n = adj.rows();
    let mut tilde = adj.clone();
    for i in 0..n {
        let v = tilde.get(i, i) + 1.0;
        tilde.set(i, i, v);
    }
    let deg = tilde.row_sums();
    let inv_sqrt: Vec<f32> =
        deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    let mut out = tilde;
    for i in 0..n {
        let si = inv_sqrt[i];
        for (j, v) in out.row_mut(i).iter_mut().enumerate() {
            *v *= si * inv_sqrt[j];
        }
    }
    out
}

/// Row (random-walk) normalisation of a dense matrix: `D^{-1} A` with
/// zero rows preserved. Used for `aM` blocks where new nodes aggregate from
/// synthetic neighbours.
#[must_use]
pub fn row_normalize_dense(m: &DMat) -> DMat {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let s: f32 = row.iter().sum();
        if s != 0.0 {
            for v in row {
                *v /= s;
            }
        }
    }
    out
}

/// Row (random-walk) renormalisation of a CSR matrix: rescales each row
/// with a *positive, finite* sum to sum to 1; every other row — empty,
/// cancelling, negative, or non-finite — passes through unchanged. Used on
/// the sparsified mapping `M`, whose rows leave Eq. 15 normalised but lose
/// mass when thresholding (Eq. 14) drops small entries — renormalising
/// restores the "distribution over synthetic nodes" semantics the
/// inductive propagation `a M` relies on.
///
/// Rescaling by a negative sum would flip every sign in the row, and a
/// zero-cancelling or overflowed sum would emit ±Inf/NaN weights; both
/// would be silently wrong attachment distributions, so such rows are left
/// exactly as they arrived (downstream coverage accounting and the
/// serving-layer finiteness audit decide what to do with them).
#[must_use]
pub fn renormalize_rows(m: &Csr) -> Csr {
    let mut indptr = Vec::with_capacity(m.rows() + 1);
    indptr.push(0u64);
    let mut cols = Vec::with_capacity(m.nnz());
    let mut vals = Vec::with_capacity(m.nnz());
    for i in 0..m.rows() {
        let s: f32 = m.row_vals(i).iter().sum();
        cols.extend_from_slice(m.row_cols(i));
        if s > 0.0 && s.is_finite() {
            vals.extend(m.row_vals(i).iter().map(|&v| v / s));
        } else {
            vals.extend_from_slice(m.row_vals(i));
        }
        indptr.push(cols.len() as u64);
    }
    Csr::from_raw(m.rows(), m.cols(), indptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::approx_eq;

    fn path_graph(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n - 1 {
            coo.push_sym(i, i + 1, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn sym_normalize_matches_dense_reference() {
        let g = path_graph(4);
        let sparse = sym_normalize(&g).to_dense();
        let dense = sym_normalize_dense(&g.to_dense());
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-5), "{a} vs {b}");
        }
    }

    #[test]
    fn sym_normalize_is_symmetric() {
        let g = path_graph(5);
        let norm = sym_normalize(&g);
        let dense = norm.to_dense();
        for i in 0..5 {
            for j in 0..5 {
                assert!(approx_eq(dense.get(i, j), dense.get(j, i), 1e-6));
            }
        }
    }

    #[test]
    fn sym_normalize_isolated_node_gets_unit_self_loop() {
        // node 2 is isolated; Ã gives it degree 1 so Â[2][2] = 1.
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 1, 1.0);
        let norm = sym_normalize(&coo.to_csr());
        assert!(approx_eq(norm.get(2, 2), 1.0, 1e-6));
    }

    #[test]
    fn sym_normalize_two_regular_values() {
        // Two connected nodes: Ã = [[1,1],[1,1]], deg = 2, Â = all 0.5.
        let mut coo = Coo::new(2, 2);
        coo.push_sym(0, 1, 1.0);
        let norm = sym_normalize(&coo.to_csr()).to_dense();
        for v in norm.as_slice() {
            assert!(approx_eq(*v, 0.5, 1e-6));
        }
    }

    #[test]
    fn row_normalize_preserves_zero_rows_and_makes_distributions() {
        let m = DMat::from_rows(&[&[2., 2., 0.], &[0., 0., 0.], &[1., 1., 2.]]);
        let r = row_normalize_dense(&m);
        assert!(approx_eq(r.row(0).iter().sum::<f32>(), 1.0, 1e-6));
        assert_eq!(r.row(1), &[0., 0., 0.]);
        assert!(approx_eq(r.get(2, 2), 0.5, 1e-6));
    }

    #[test]
    fn renormalize_rows_restores_distributions() {
        let mut coo = Coo::new(3, 2);
        coo.push(0, 0, 0.3);
        coo.push(0, 1, 0.3);
        // row 1 empty (all entries pruned by thresholding)
        coo.push(2, 1, 0.125);
        let r = renormalize_rows(&coo.to_csr());
        assert!(approx_eq(r.row_vals(0).iter().sum::<f32>(), 1.0, 1e-6));
        assert!(approx_eq(r.get(0, 0), 0.5, 1e-6));
        assert_eq!(r.row_nnz(), vec![2, 0, 1]);
        assert!(approx_eq(r.get(2, 1), 1.0, 1e-6));
        // Structure untouched: same nnz, same columns.
        assert_eq!(r.nnz(), 3);
    }

    #[test]
    fn renormalize_rows_guards_non_positive_and_non_finite_sums() {
        // Row 0: cancelling sum (0.5 - 0.5 = 0) — dividing would emit ±Inf.
        // Row 1: negative sum — dividing would flip every sign.
        // Row 2: overflowing sum (f32::MAX + f32::MAX = +Inf) — dividing
        //         would zero the row through Inf.
        // Row 3: healthy positive row — still rescaled to a distribution.
        let mut coo = Coo::new(4, 2);
        coo.push(0, 0, 0.5);
        coo.push(0, 1, -0.5);
        coo.push(1, 0, -0.25);
        coo.push(1, 1, -0.75);
        coo.push(2, 0, f32::MAX);
        coo.push(2, 1, f32::MAX);
        coo.push(3, 0, 0.2);
        coo.push(3, 1, 0.6);
        let m = coo.to_csr();
        let r = renormalize_rows(&m);
        // Guarded rows pass through bitwise untouched.
        for i in 0..3 {
            assert_eq!(r.row_cols(i), m.row_cols(i), "row {i} columns changed");
            assert_eq!(r.row_vals(i), m.row_vals(i), "row {i} values changed");
        }
        // The healthy row is still renormalised.
        assert!(approx_eq(r.get(3, 0), 0.25, 1e-6));
        assert!(approx_eq(r.get(3, 1), 0.75, 1e-6));
        // Nothing in the output is non-finite — the whole point.
        assert!(r.all_finite());
    }

    #[test]
    fn spectral_radius_of_normalized_adjacency_is_bounded() {
        // Power iteration on Â of a path graph: eigenvalues lie in [-1, 1].
        let g = path_graph(8);
        let norm = sym_normalize(&g);
        let mut v = DMat::filled(8, 1, 1.0);
        for _ in 0..50 {
            v = norm.spmm(&v);
            let n = v.frobenius_norm();
            if n > 0.0 {
                v.scale_assign(1.0 / n);
            }
        }
        let rayleigh = v.transpose().matmul(&norm.spmm(&v)).get(0, 0);
        assert!(rayleigh <= 1.0 + 1e-4, "spectral radius {rayleigh} > 1");
    }
}
