//! Threshold sparsification — Eq. (14) of the paper.
//!
//! After training, the dense learned matrices `A'` and `M` are thresholded:
//! entries below `µ` (for `A'`) or `δ` (for `M`) are zeroed, and the result
//! is stored in CSR. This trades accuracy for storage/inference speed —
//! swept in the Fig. 6 experiment.

use crate::Csr;
use mcond_linalg::DMat;

/// Outcome of a sparsification pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SparsifyStats {
    /// Entries kept (≥ threshold).
    pub kept: usize,
    /// Entries dropped (< threshold, including pre-existing zeros).
    pub dropped: usize,
    /// Fraction of entries kept, in `[0, 1]`.
    pub density: f64,
    /// CSR storage footprint of the kept entries, in bytes.
    pub storage_bytes: usize,
}

impl SparsifyStats {
    /// `1 - density`: fraction of entries zeroed.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density
    }
}

/// Applies Eq. (14): keeps entries with `v >= threshold`, zeroes the rest,
/// and returns the CSR result with accounting.
///
/// Thresholding is one-sided (values are non-negative in both `A'` — a
/// sigmoid output — and the normalised `M`), matching the paper.
#[must_use]
pub fn sparsify_dense(m: &DMat, threshold: f32) -> (Csr, SparsifyStats) {
    let mut coo = crate::Coo::new(m.rows(), m.cols());
    let mut kept = 0usize;
    for i in 0..m.rows() {
        for (j, &v) in m.row(i).iter().enumerate() {
            if v >= threshold && v != 0.0 {
                coo.push(i, j, v);
                kept += 1;
            }
        }
    }
    let csr = coo.to_csr();
    let total = m.len();
    let stats = SparsifyStats {
        kept,
        dropped: total - kept,
        density: if total == 0 { 0.0 } else { kept as f64 / total as f64 },
        storage_bytes: csr.storage_bytes(),
    };
    (csr, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_keeps_only_large_entries() {
        let m = DMat::from_rows(&[&[0.1, 0.6], &[0.5, 0.05]]);
        let (csr, stats) = sparsify_dense(&m, 0.5);
        assert_eq!(stats.kept, 2);
        assert_eq!(stats.dropped, 2);
        assert_eq!(csr.get(0, 1), 0.6);
        assert_eq!(csr.get(1, 0), 0.5);
        assert_eq!(csr.get(0, 0), 0.0);
        assert!((stats.density - 0.5).abs() < 1e-12);
        assert!((stats.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_threshold_keeps_all_nonzeros() {
        let m = DMat::from_rows(&[&[0.0, 0.2], &[0.3, 0.0]]);
        let (csr, stats) = sparsify_dense(&m, 0.0);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(stats.kept, 2);
    }

    #[test]
    fn sparsification_is_monotone_in_threshold() {
        let m = DMat::from_rows(&[&[0.1, 0.2, 0.3], &[0.4, 0.5, 0.6]]);
        let mut prev = usize::MAX;
        for t in [0.0, 0.15, 0.35, 0.55, 0.9] {
            let (_, stats) = sparsify_dense(&m, t);
            assert!(stats.kept <= prev, "kept should be non-increasing in threshold");
            prev = stats.kept;
        }
    }

    #[test]
    fn storage_shrinks_with_threshold() {
        let m = DMat::from_rows(&[&[0.1, 0.9], &[0.9, 0.1]]);
        let (_, loose) = sparsify_dense(&m, 0.0);
        let (_, tight) = sparsify_dense(&m, 0.5);
        assert!(tight.storage_bytes < loose.storage_bytes);
    }
}
