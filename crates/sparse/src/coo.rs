//! Coordinate-format sparse builder.

use crate::Csr;

/// A mutable coordinate-list sparse matrix used to build [`Csr`] matrices.
///
/// Duplicate `(row, col)` entries are summed during [`Coo::to_csr`], which is
/// the convenient semantics for accumulating multi-edges and self-loops.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl Coo {
    /// An empty `rows x cols` builder.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, entries: Vec::new() }
    }

    /// An empty builder with capacity for `nnz` entries.
    #[must_use]
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        Self { rows, cols, entries: Vec::with_capacity(nnz) }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (possibly duplicate) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends an entry.
    ///
    /// # Panics
    /// Panics when the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "Coo::push: ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row as u32, col as u32, value));
    }

    /// Appends both `(i, j, v)` and `(j, i, v)` — undirected edge insertion.
    ///
    /// # Panics
    /// Panics when either coordinate is out of bounds or the matrix is not
    /// square.
    pub fn push_sym(&mut self, i: usize, j: usize, value: f32) {
        assert_eq!(self.rows, self.cols, "push_sym needs a square matrix");
        self.push(i, j, value);
        if i != j {
            self.push(j, i, value);
        }
    }

    /// Converts to CSR, summing duplicates and dropping explicit zeros.
    #[must_use]
    pub fn to_csr(&self) -> Csr {
        // Counting sort by row, then per-row sort by column and merge dups.
        let mut counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0u32; self.entries.len()];
        let mut vals = vec![0f32; self.entries.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in &self.entries {
            let pos = cursor[r as usize];
            cols[pos] = c;
            vals[pos] = v;
            cursor[r as usize] += 1;
        }

        let mut out_indptr = Vec::with_capacity(self.rows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        out_indptr.push(0u64);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..self.rows {
            let lo = counts[r];
            let hi = counts[r + 1];
            scratch.clear();
            scratch.extend(cols[lo..hi].iter().copied().zip(vals[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < scratch.len() {
                let (c, mut v) = scratch[k];
                k += 1;
                while k < scratch.len() && scratch[k].0 == c {
                    v += scratch[k].1;
                    k += 1;
                }
                if v != 0.0 {
                    out_cols.push(c);
                    out_vals.push(v);
                }
            }
            out_indptr.push(out_cols.len() as u64);
        }
        Csr::from_raw(self.rows, self.cols, out_indptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), 3.0);
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 0.0);
        coo.push(1, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 0, -1.0); // cancels to zero
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(1, 1), 1.0);
    }

    #[test]
    fn push_sym_inserts_both_directions_once_for_self_loop() {
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(2, 2, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 1.0);
        assert_eq!(csr.get(1, 0), 1.0);
        assert_eq!(csr.get(2, 2), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn columns_are_sorted_within_rows() {
        let mut coo = Coo::new(1, 5);
        for &c in &[4, 0, 2] {
            coo.push(0, c, 1.0);
        }
        let csr = coo.to_csr();
        assert_eq!(csr.row_cols(0), &[0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        Coo::new(1, 1).push(0, 1, 1.0);
    }
}
