//! Compressed-sparse-row matrices and the SpMM kernel.
//!
//! # Parallel execution
//!
//! Both SpMM flavours row-partition their **output** across the
//! `mcond-par` pool once the touched work (`nnz · d`) is large enough:
//!
//! * [`Csr::spmm`] splits its output rows into **nnz-balanced** ranges
//!   (row-count-balanced chunks would starve workers on power-law degree
//!   distributions), each task owning a disjoint `&mut` stripe;
//! * [`Csr::spmm_t`] partitions by output row too — i.e. by *column* of
//!   `self` — and each task binary-searches every CSR row for the column
//!   window it owns, turning the serial scatter into a race-free gather.
//!
//! Per output element the floating-point accumulation order is identical
//! to the serial kernels (ascending source position), so results are
//! bit-for-bit independent of `MCOND_THREADS`.
//!
//! # SIMD
//!
//! Both kernels stream the CSR arrays directly (one `indptr` window per
//! row, then a single pass over that row's column/value slices) and
//! accumulate each touched dense row with [`mcond_linalg::simd::axpy`] —
//! a lane-widened `y += v · x` gather. The lane bodies are instantiated
//! behind `avx2`/`avx512` `#[target_feature]` wrappers and picked by
//! [`mcond_linalg::simd::simd_level`], resolved **once per kernel entry**
//! and threaded through the pool fan-out.
//!
//! Unlike the dense GEMM tiers, every SpMM level is **bitwise identical**
//! to the scalar reference: `axpy` performs exactly `y[i] = y[i] + v*x[i]`
//! per element (multiply then add, no FMA, ascending `i`), so widening the
//! lanes changes neither the per-element operation nor its order.
//! `MCOND_SIMD` therefore affects SpMM speed but never SpMM bits.
//!
//! The parallel `spmm` additionally hands its nnz-balanced ranges to the
//! pool **heaviest-first** ([`mcond_par::parallel_row_ranges_ordered`]):
//! claim order is pure scheduling, so this, too, cannot change results.

use crate::Coo;
use mcond_linalg::simd::{self, SimdLevel};
use mcond_linalg::DMat;
use std::ops::Range;

/// An immutable CSR sparse matrix with `f32` values.
///
/// Row `i`'s entries live at `indptr[i]..indptr[i+1]` in `cols`/`vals`,
/// with column indices sorted ascending and no duplicates (guaranteed by
/// construction through [`Coo::to_csr`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols_n: usize,
    indptr: Vec<u64>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}


/// Reports SpMM work to the observability counters: nonzeros touched, an
/// estimate of bytes moved (index + value per nnz, plus one dense row of
/// `d` f32 values read and written per nnz), and the flop count
/// (`2 · nnz · d` — one multiply and one add per touched dense value),
/// mirroring `linalg.matmul.flops` so bench harnesses can derive GFLOP/s
/// for sparse and dense kernels the same way.
fn count_spmm(nnz: usize, d: usize) {
    mcond_obs::counter_add("sparse.spmm.nnz", nnz as u64);
    mcond_obs::counter_add("sparse.spmm.bytes", (nnz * (8 + 8 * d)) as u64);
    mcond_obs::counter_add("sparse.spmm.flops", (2 * nnz * d) as u64);
}

/// Minimum `nnz · d` work before an SpMM fans out to the pool; small
/// products stay on the serial path where dispatch overhead would dominate.
const PAR_MIN_WORK: usize = 1 << 16;

/// Scalar reference row-gather: the `MCOND_SIMD=0` baseline the lane tiers
/// must match bitwise. Streams the CSR arrays — `indptr` is read once per
/// row, then the row's column/value slices are walked in one pass.
fn spmm_rows_scalar(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    rhs: &DMat,
    rows: Range<usize>,
    out: &mut [f32],
) {
    let d = rhs.cols();
    for (ii, i) in rows.enumerate() {
        let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
        let out_row = &mut out[ii * d..(ii + 1) * d];
        for (&c, &v) in cols[s..e].iter().zip(&vals[s..e]) {
            for (o, x) in out_row.iter_mut().zip(rhs.row(c as usize)) {
                *o += v * *x;
            }
        }
    }
}

/// Lane-widened row gather — same traversal as [`spmm_rows_scalar`] with
/// the inner accumulation replaced by [`simd::axpy`] (bitwise identical
/// per element; see the module docs). Instantiated once per `target_feature`
/// wrapper below so LLVM re-vectorises it at each register width.
#[inline(always)]
fn spmm_rows_lanes(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    rhs: &DMat,
    rows: Range<usize>,
    out: &mut [f32],
) {
    let d = rhs.cols();
    for (ii, i) in rows.enumerate() {
        let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
        let out_row = &mut out[ii * d..(ii + 1) * d];
        for (&c, &v) in cols[s..e].iter().zip(&vals[s..e]) {
            simd::axpy(v, rhs.row(c as usize), out_row);
        }
    }
}

fn spmm_rows_portable(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    rhs: &DMat,
    rows: Range<usize>,
    out: &mut [f32],
) {
    spmm_rows_lanes(indptr, cols, vals, rhs, rows, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_rows_avx2(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    rhs: &DMat,
    rows: Range<usize>,
    out: &mut [f32],
) {
    spmm_rows_lanes(indptr, cols, vals, rhs, rows, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn spmm_rows_avx512(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    rhs: &DMat,
    rows: Range<usize>,
    out: &mut [f32],
) {
    spmm_rows_lanes(indptr, cols, vals, rhs, rows, out);
}

/// Column-window gather for `spmm_t`, scalar reference tier.
fn spmm_t_cols_scalar(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    n_rows: usize,
    rhs: &DMat,
    cols_range: Range<usize>,
    out: &mut [f32],
) {
    let d = rhs.cols();
    let (clo, chi) = (cols_range.start as u32, cols_range.end as u32);
    for i in 0..n_rows {
        let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
        let row_cols = &cols[s..e];
        let lo = row_cols.partition_point(|&c| c < clo);
        let hi = lo + row_cols[lo..].partition_point(|&c| c < chi);
        if lo == hi {
            continue;
        }
        let src = rhs.row(i);
        for (&c, &v) in row_cols[lo..hi].iter().zip(&vals[s + lo..s + hi]) {
            let dst = &mut out[(c as usize - cols_range.start) * d..][..d];
            for (o, x) in dst.iter_mut().zip(src) {
                *o += v * *x;
            }
        }
    }
}

/// Lane-widened twin of [`spmm_t_cols_scalar`]; same bitwise contract as
/// [`spmm_rows_lanes`].
#[inline(always)]
fn spmm_t_cols_lanes(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    n_rows: usize,
    rhs: &DMat,
    cols_range: Range<usize>,
    out: &mut [f32],
) {
    let d = rhs.cols();
    let (clo, chi) = (cols_range.start as u32, cols_range.end as u32);
    for i in 0..n_rows {
        let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
        let row_cols = &cols[s..e];
        let lo = row_cols.partition_point(|&c| c < clo);
        let hi = lo + row_cols[lo..].partition_point(|&c| c < chi);
        if lo == hi {
            continue;
        }
        let src = rhs.row(i);
        for (&c, &v) in row_cols[lo..hi].iter().zip(&vals[s + lo..s + hi]) {
            simd::axpy(v, src, &mut out[(c as usize - cols_range.start) * d..][..d]);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spmm_t_cols_portable(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    n_rows: usize,
    rhs: &DMat,
    cols_range: Range<usize>,
    out: &mut [f32],
) {
    spmm_t_cols_lanes(indptr, cols, vals, n_rows, rhs, cols_range, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_t_cols_avx2(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    n_rows: usize,
    rhs: &DMat,
    cols_range: Range<usize>,
    out: &mut [f32],
) {
    spmm_t_cols_lanes(indptr, cols, vals, n_rows, rhs, cols_range, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn spmm_t_cols_avx512(
    indptr: &[u64],
    cols: &[u32],
    vals: &[f32],
    n_rows: usize,
    rhs: &DMat,
    cols_range: Range<usize>,
    out: &mut [f32],
) {
    spmm_t_cols_lanes(indptr, cols, vals, n_rows, rhs, cols_range, out);
}

impl Csr {
    /// Builds from raw CSR arrays. Callers must uphold the sortedness and
    /// uniqueness invariants; prefer [`Coo::to_csr`].
    ///
    /// # Panics
    /// Panics when the arrays are structurally inconsistent.
    #[must_use]
    pub fn from_raw(
        rows: usize,
        cols_n: usize,
        indptr: Vec<u64>,
        cols: Vec<u32>,
        vals: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "Csr: indptr length");
        assert_eq!(cols.len(), vals.len(), "Csr: cols/vals length mismatch");
        assert_eq!(*indptr.last().unwrap_or(&0) as usize, cols.len(), "Csr: indptr tail");
        // A real assert, not a debug_assert: every SpMM read indexes the
        // dense operand by these columns, so an out-of-range entry would
        // panic (or worse, silently read a wrong row) deep inside a kernel.
        assert!(cols.iter().all(|&c| (c as usize) < cols_n), "Csr: column out of range");
        Self { rows, cols_n, indptr, cols, vals }
    }

    /// An empty (all-zero) matrix.
    #[must_use]
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self::from_raw(rows, cols, vec![0; rows + 1], Vec::new(), Vec::new())
    }

    /// The same matrix with its column space widened to `new_cols`
    /// (entries untouched — the added columns are structurally empty).
    /// Used when a sparse block built against an older, narrower index
    /// space is replayed against a grown one: column ids are stable under
    /// growth, so only the width metadata changes.
    ///
    /// # Panics
    /// Panics when `new_cols` is smaller than the current column count.
    #[must_use]
    pub fn widen_cols(&self, new_cols: usize) -> Self {
        assert!(
            new_cols >= self.cols_n,
            "widen_cols: cannot shrink {} columns to {new_cols}",
            self.cols_n
        );
        Self { cols_n: new_cols, ..self.clone() }
    }

    /// Stacks `other`'s rows below this matrix's rows, **bitwise
    /// preserving** both operands' row structure (no re-sort, no
    /// duplicate merge, no zero drop — unlike a round-trip through
    /// [`Coo::to_csr`](crate::Coo::to_csr)). Used when a live base
    /// appends promoted rows to the mapping `M`: existing rows must not
    /// be perturbed by the append.
    ///
    /// # Panics
    /// Panics when the column counts disagree.
    #[must_use]
    pub fn append_rows(&self, other: &Csr) -> Self {
        assert_eq!(
            self.cols_n, other.cols_n,
            "append_rows: column counts disagree ({} vs {})",
            self.cols_n, other.cols_n
        );
        let mut indptr = self.indptr.clone();
        let base_nnz = *indptr.last().expect("indptr is never empty");
        indptr.extend(other.indptr[1..].iter().map(|&p| base_nnz + p));
        let mut cols = self.cols.clone();
        cols.extend_from_slice(&other.cols);
        let mut vals = self.vals.clone();
        vals.extend_from_slice(&other.vals);
        Self::from_raw(self.rows + other.rows, self.cols_n, indptr, cols, vals)
    }

    /// The sparse identity.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let indptr = (0..=n as u64).collect();
        let cols = (0..n as u32).collect();
        let vals = vec![1.0; n];
        Self::from_raw(n, n, indptr, cols, vals)
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols_n
    }

    /// Number of stored non-zeros.
    #[inline]
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column indices of row `i`.
    #[inline]
    #[must_use]
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.cols[self.indptr[i] as usize..self.indptr[i + 1] as usize]
    }

    /// Values of row `i`, parallel to [`Csr::row_cols`].
    #[inline]
    #[must_use]
    pub fn row_vals(&self, i: usize) -> &[f32] {
        &self.vals[self.indptr[i] as usize..self.indptr[i + 1] as usize]
    }

    /// Bitwise equality: identical shape, structure, and value bits.
    ///
    /// Unlike `==` this treats `NaN` values as equal to themselves and
    /// distinguishes `0.0` from `-0.0` — the contract a serialisation
    /// round-trip must satisfy.
    #[must_use]
    pub fn bit_eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols_n == other.cols_n
            && self.indptr == other.indptr
            && self.cols == other.cols
            && self
                .vals
                .iter()
                .zip(&other.vals)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.vals.len() == other.vals.len()
    }

    /// `true` when every stored value is finite (no `NaN`, no `±Inf`).
    ///
    /// Structure is irrelevant here — only values can be non-finite — and
    /// subnormal values pass. The serving layer uses this to reject
    /// poisoned incremental/interconnect blocks before they reach a kernel.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.vals.iter().all(|v| v.is_finite())
    }

    /// Iterator over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row_cols(i)
                .iter()
                .zip(self.row_vals(i))
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Point lookup via binary search (O(log nnz(row))).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        let cols = self.row_cols(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => self.row_vals(i)[pos],
            Err(_) => 0.0,
        }
    }

    /// Out-degree (number of stored entries) of each row.
    #[must_use]
    pub fn row_nnz(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| (self.indptr[i + 1] - self.indptr[i]) as usize)
            .collect()
    }

    /// Weighted degree (sum of values) of each row.
    #[must_use]
    pub fn row_weighted_degrees(&self) -> Vec<f32> {
        (0..self.rows).map(|i| self.row_vals(i).iter().sum()).collect()
    }

    /// Splits `0..rows` into up to `target_chunks` ranges of roughly equal
    /// stored-entry count — the load-balanced partition the parallel SpMM
    /// uses (row-count chunks would be skewed by hub nodes).
    ///
    /// The ranges tile `0..rows` in ascending order; empty trailing rows
    /// fold into the last range.
    #[must_use]
    pub fn nnz_balanced_row_ranges(&self, target_chunks: usize) -> Vec<Range<usize>> {
        if self.rows == 0 {
            return Vec::new();
        }
        let per_chunk = (self.nnz() / target_chunks.max(1)).max(1) as u64;
        let mut ranges = Vec::new();
        let mut start = 0usize;
        while start < self.rows {
            let goal = self.indptr[start] + per_chunk;
            // First row boundary whose cumulative nnz reaches the goal.
            let rel = self.indptr[start + 1..=self.rows].partition_point(|&x| x < goal);
            let end = (start + 1 + rel).min(self.rows);
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// [`Csr::spmm`] restricted to output rows `rows`, writing into the
    /// caller-provided stripe `out` (`rows.len() * d` values), at the
    /// caller-resolved SIMD tier. All tiers produce identical bits; see the
    /// module docs.
    fn spmm_rows(&self, rhs: &DMat, rows: Range<usize>, out: &mut [f32], level: SimdLevel) {
        let (ip, cs, vs) = (&self.indptr, &self.cols, &self.vals);
        match level {
            SimdLevel::Scalar => spmm_rows_scalar(ip, cs, vs, rhs, rows, out),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the level only resolves to Avx2/Avx512 when runtime
            // detection confirmed the features (simd::simd_level clamps).
            SimdLevel::Avx2 => unsafe { spmm_rows_avx2(ip, cs, vs, rhs, rows, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => unsafe { spmm_rows_avx512(ip, cs, vs, rhs, rows, out) },
            _ => spmm_rows_portable(ip, cs, vs, rhs, rows, out),
        }
    }

    /// Row-subset SpMM: the rows `range` of `self · rhs`, without computing
    /// any other output row.
    ///
    /// This is the bottom-block kernel of the serving fast path: when only
    /// the `n` inductive rows of an extended product are returned, the final
    /// layer can pay `O(nnz(rows) · d)` instead of the full product. Each
    /// output row is accumulated exactly as [`Csr::spmm`] would — ascending
    /// source position — so the result is bitwise identical to
    /// `self.spmm(rhs).slice_rows(range.start, range.end)` at any thread
    /// count.
    ///
    /// # Panics
    /// Panics when `rhs.rows() != self.cols()` or the range exceeds the row
    /// count.
    #[must_use]
    pub fn spmm_row_range(&self, range: Range<usize>, rhs: &DMat) -> DMat {
        assert_eq!(rhs.rows(), self.cols_n, "spmm_row_range: inner dimension mismatch");
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "spmm_row_range: bad range {range:?} for {} rows",
            self.rows
        );
        let d = rhs.cols();
        let nnz = (self.indptr[range.end] - self.indptr[range.start]) as usize;
        count_spmm(nnz, d);
        let mut out = DMat::zeros(range.len(), d);
        let threads = mcond_par::max_threads();
        // Resolve the SIMD tier on the submitting thread, before fan-out.
        let level = simd::simd_level();
        if threads > 1 && nnz * d >= PAR_MIN_WORK && d > 0 {
            // nnz-balance the sub-range the same way spmm balances 0..rows.
            let per_chunk = (nnz / (threads * 4).max(1)).max(1) as u64;
            let mut ranges = Vec::new();
            let mut start = range.start;
            while start < range.end {
                let goal = self.indptr[start] + per_chunk;
                let rel = self.indptr[start + 1..=range.end].partition_point(|&x| x < goal);
                let end = (start + 1 + rel).min(range.end);
                ranges.push(start - range.start..end - range.start);
                start = end;
            }
            let offset = range.start;
            mcond_par::parallel_row_ranges(out.as_mut_slice(), d, &ranges, |rows, chunk| {
                self.spmm_rows(rhs, rows.start + offset..rows.end + offset, chunk, level);
            });
        } else {
            self.spmm_rows(rhs, range, out.as_mut_slice(), level);
        }
        out
    }

    /// Sparse × dense product `self · rhs` — the message-passing kernel.
    ///
    /// Fans out across nnz-balanced output-row ranges when the work is
    /// large enough; results are bitwise identical to the serial path.
    ///
    /// # Panics
    /// Panics when `rhs.rows() != self.cols()`.
    #[must_use]
    pub fn spmm(&self, rhs: &DMat) -> DMat {
        assert_eq!(
            rhs.rows(),
            self.cols_n,
            "spmm: {}x{} · {}x{}",
            self.rows,
            self.cols_n,
            rhs.rows(),
            rhs.cols()
        );
        let d = rhs.cols();
        count_spmm(self.nnz(), d);
        let mut out = DMat::zeros(self.rows, d);
        let threads = mcond_par::max_threads();
        let level = simd::simd_level();
        if threads > 1 && self.nnz() * d >= PAR_MIN_WORK && d > 0 {
            let ranges = self.nnz_balanced_row_ranges(threads * 4);
            // Claim the heaviest ranges first: nnz balancing is only
            // approximate on skewed degree distributions, and a hub-heavy
            // chunk started last would run alone at the tail. Scheduling
            // only — results are identical for any claim order.
            let mut order: Vec<usize> = (0..ranges.len()).collect();
            order.sort_by_key(|&i| {
                std::cmp::Reverse(self.indptr[ranges[i].end] - self.indptr[ranges[i].start])
            });
            mcond_par::parallel_row_ranges_ordered(
                out.as_mut_slice(),
                d,
                &ranges,
                &order,
                |rows, chunk| {
                    self.spmm_rows(rhs, rows, chunk, level);
                },
            );
        } else {
            self.spmm_rows(rhs, 0..self.rows, out.as_mut_slice(), level);
        }
        out
    }

    /// [`Csr::spmm_t`] restricted to output rows (= columns of `self`)
    /// `cols_range`, writing into the stripe `out`. Gathers instead of
    /// scattering: for each CSR row, binary-search the slice of entries
    /// whose column falls in the owned window. For a fixed output row the
    /// contributions still arrive in ascending source-row order — the same
    /// additions, in the same order, as a serial scatter would make.
    fn spmm_t_cols(&self, rhs: &DMat, cols_range: Range<usize>, out: &mut [f32], level: SimdLevel) {
        let (ip, cs, vs, nr) = (&self.indptr, &self.cols, &self.vals, self.rows);
        match level {
            SimdLevel::Scalar => spmm_t_cols_scalar(ip, cs, vs, nr, rhs, cols_range, out),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: level resolution clamps to runtime-detected features.
            SimdLevel::Avx2 => unsafe { spmm_t_cols_avx2(ip, cs, vs, nr, rhs, cols_range, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => unsafe { spmm_t_cols_avx512(ip, cs, vs, nr, rhs, cols_range, out) },
            _ => spmm_t_cols_portable(ip, cs, vs, nr, rhs, cols_range, out),
        }
    }

    /// `selfᵀ · rhs` without materialising the transpose (scatter variant of
    /// [`Csr::spmm`]); used by autodiff backward passes.
    ///
    /// The parallel path partitions by output row (= column of `self`) and
    /// gathers, so it needs no atomics and stays bitwise identical to the
    /// serial scatter.
    ///
    /// # Panics
    /// Panics when `rhs.rows() != self.rows()`.
    #[must_use]
    pub fn spmm_t(&self, rhs: &DMat) -> DMat {
        assert_eq!(rhs.rows(), self.rows, "spmm_t: row mismatch");
        let d = rhs.cols();
        count_spmm(self.nnz(), d);
        let mut out = DMat::zeros(self.cols_n, d);
        let threads = mcond_par::max_threads();
        let level = simd::simd_level();
        // The gather re-scans row *indices* once per task, so demand a bit
        // more work than plain spmm before going parallel.
        if threads > 1 && self.nnz() * d >= 2 * PAR_MIN_WORK && d > 0 && self.cols_n > 1 {
            mcond_par::parallel_row_chunks(out.as_mut_slice(), d, 16, |cols_range, chunk| {
                self.spmm_t_cols(rhs, cols_range, chunk, level);
            });
        } else {
            // Serial path: the full-window gather visits each (row, col)
            // pair exactly once in the same order as the classic scatter,
            // so this stays bitwise identical to the historical kernel.
            self.spmm_t_cols(rhs, 0..self.cols_n, out.as_mut_slice(), level);
        }
        out
    }

    /// Materialises the matrix densely (tests and small synthetic graphs).
    #[must_use]
    pub fn to_dense(&self) -> DMat {
        let mut out = DMat::zeros(self.rows, self.cols_n);
        for (i, j, v) in self.iter() {
            out.set(i, j, v);
        }
        out
    }

    /// Converts a dense matrix to CSR, keeping entries with `|v| > 0`.
    #[must_use]
    pub fn from_dense(m: &DMat) -> Self {
        let mut coo = Coo::with_capacity(m.rows(), m.cols(), m.count_above(0.0));
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Materialised transpose in CSR form.
    #[must_use]
    pub fn transpose(&self) -> Csr {
        let mut coo = Coo::with_capacity(self.cols_n, self.rows, self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(j, i, v);
        }
        coo.to_csr()
    }

    /// Extracts the sub-matrix of the given rows (in order), keeping all
    /// columns.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Csr {
        let mut indptr = Vec::with_capacity(indices.len() + 1);
        indptr.push(0u64);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for &i in indices {
            assert!(i < self.rows, "select_rows: {i} out of bounds");
            cols.extend_from_slice(self.row_cols(i));
            vals.extend_from_slice(self.row_vals(i));
            indptr.push(cols.len() as u64);
        }
        Csr::from_raw(indices.len(), self.cols_n, indptr, cols, vals)
    }

    /// Induced subgraph: keeps rows and columns in `nodes`, relabelling them
    /// to `0..nodes.len()` in order. `nodes` must be duplicate-free.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Csr {
        let mut relabel = vec![u32::MAX; self.cols_n];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < self.rows, "induced_subgraph: {old} out of bounds");
            relabel[old] = new as u32;
        }
        let mut coo = Coo::new(nodes.len(), nodes.len());
        for (new_i, &old_i) in nodes.iter().enumerate() {
            for (&c, &v) in self.row_cols(old_i).iter().zip(self.row_vals(old_i)) {
                let new_j = relabel[c as usize];
                if new_j != u32::MAX {
                    coo.push(new_i, new_j as usize, v);
                }
            }
        }
        coo.to_csr()
    }

    /// A copy with `f` applied to every stored value; entries mapped to zero
    /// are kept structurally (use sparsification to drop them).
    #[must_use]
    pub fn map_values(&self, f: impl Fn(f32) -> f32) -> Csr {
        let mut out = self.clone();
        for v in &mut out.vals {
            *v = f(*v);
        }
        out
    }

    /// Bytes needed to store the matrix (indptr + cols + vals) — the storage
    /// model used by the paper's memory comparisons.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<u64>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f32>()
    }

    /// Block matrix `[[self, bᵀ], [b, c]]` where `b : n x rows(self)` is the
    /// incremental adjacency of `n` new nodes and `c : n x n` their
    /// interconnections — Eq. (3)/(11) of the paper.
    ///
    /// # Panics
    /// Panics on dimension mismatches or when `self` is not square.
    #[must_use]
    pub fn block_extend(&self, b: &Csr, c: &Csr) -> Csr {
        assert_eq!(self.rows, self.cols_n, "block_extend: base must be square");
        assert_eq!(b.cols(), self.rows, "block_extend: incremental column count");
        assert_eq!(c.rows(), b.rows(), "block_extend: corner row count");
        assert_eq!(c.cols(), b.rows(), "block_extend: corner must be square");
        let n_new = b.rows();
        let total = self.rows + n_new;
        let mut coo = Coo::with_capacity(total, total, self.nnz() + 2 * b.nnz() + c.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, v);
        }
        for (i, j, v) in b.iter() {
            coo.push(self.rows + i, j, v);
            coo.push(j, self.rows + i, v);
        }
        for (i, j, v) in c.iter() {
            coo.push(self.rows + i, self.rows + j, v);
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [[0, 1, 0], [2, 0, 3], [0, 0, 4]]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 2, 4.0);
        coo.to_csr()
    }

    #[test]
    fn structure_accessors() {
        let m = small();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_cols(1), &[0, 2]);
        assert_eq!(m.row_vals(1), &[2.0, 3.0]);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row_nnz(), vec![1, 2, 1]);
        assert_eq!(m.row_weighted_degrees(), vec![1.0, 5.0, 4.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let x = DMat::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spmm_t_matches_transpose_spmm() {
        let m = small();
        let x = DMat::from_rows(&[&[1., 0.], &[0., 1.], &[1., 1.]]);
        assert_eq!(m.spmm_t(&x), m.transpose().spmm(&x));
    }

    #[test]
    fn dense_round_trip() {
        let m = small();
        assert_eq!(Csr::from_dense(&m.to_dense()), m);
    }

    #[test]
    fn select_rows_keeps_rows() {
        let m = small();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 2), 4.0);
        assert_eq!(s.get(1, 1), 1.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let m = small();
        let s = m.induced_subgraph(&[1, 2]);
        assert_eq!(s.rows(), 2);
        // original (1,2,3.0) -> (0,1); (2,2,4.0) -> (1,1); (1,0) dropped.
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 1), 4.0);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn append_rows_preserves_both_operands_bitwise() {
        let top = small();
        // Bottom rows carry an explicit zero and an unsorted-within-COO
        // duplicate-free pattern; append must keep them verbatim where a
        // Coo round-trip would drop/merge.
        let bottom = Csr::from_raw(2, 3, vec![0, 2, 3], vec![2, 0, 1], vec![0.0, -1.5, 7.0]);
        let stacked = top.append_rows(&bottom);
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.cols(), 3);
        assert_eq!(stacked.nnz(), top.nnz() + bottom.nnz());
        for i in 0..3 {
            assert_eq!(stacked.row_cols(i), top.row_cols(i));
            assert_eq!(stacked.row_vals(i), top.row_vals(i));
        }
        for i in 0..2 {
            assert_eq!(stacked.row_cols(3 + i), bottom.row_cols(i));
            assert_eq!(stacked.row_vals(3 + i), bottom.row_vals(i));
        }
        // Appending nothing is an identity, including on empty matrices.
        assert!(top.append_rows(&Csr::empty(0, 3)).bit_eq(&top));
    }

    #[test]
    #[should_panic(expected = "append_rows: column counts disagree")]
    fn append_rows_rejects_width_mismatch() {
        let _ = small().append_rows(&Csr::empty(1, 4));
    }

    #[test]
    fn block_extend_builds_eq3_layout() {
        let a = Csr::eye(2);
        // one new node connected to original node 1 with weight 0.5
        let mut b = Coo::new(1, 2);
        b.push(0, 1, 0.5);
        let ext = a.block_extend(&b.to_csr(), &Csr::empty(1, 1));
        assert_eq!(ext.rows(), 3);
        assert_eq!(ext.get(2, 1), 0.5);
        assert_eq!(ext.get(1, 2), 0.5);
        assert_eq!(ext.get(0, 0), 1.0);
        assert_eq!(ext.get(2, 2), 0.0);
    }

    #[test]
    fn storage_bytes_counts_arrays() {
        let m = small();
        assert_eq!(m.storage_bytes(), 4 * 8 + 4 * 4 + 4 * 4);
    }

    #[test]
    fn eye_is_identity_under_spmm() {
        let x = DMat::from_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(Csr::eye(2).spmm(&x), x);
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn from_raw_rejects_out_of_range_column() {
        let _ = Csr::from_raw(1, 2, vec![0, 1], vec![2], vec![1.0]);
    }

    #[test]
    fn all_finite_checks_values_only() {
        let m = small();
        assert!(m.all_finite());
        assert!(Csr::empty(3, 3).all_finite());
        // Subnormal values are finite.
        let tiny = m.map_values(|_| f32::MIN_POSITIVE / 4.0);
        assert!(tiny.row_vals(0)[0].is_subnormal() && tiny.all_finite());
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let poisoned = m.map_values(|v| if v == 3.0 { bad } else { v });
            assert!(!poisoned.all_finite(), "{bad} accepted");
        }
    }

    // `block_extend` feeds the extended adjacency straight into message
    // passing, so a shape mismatch must fail loudly here (documented
    // asserts) rather than produce a silently wrong extended graph. These
    // pin the exact failure for each block.

    #[test]
    #[should_panic(expected = "base must be square")]
    fn block_extend_rejects_rectangular_base() {
        let base = Csr::empty(2, 3);
        let _ = base.block_extend(&Csr::empty(1, 2), &Csr::empty(1, 1));
    }

    #[test]
    #[should_panic(expected = "incremental column count")]
    fn block_extend_rejects_wrong_incremental_width() {
        // Incremental block indexes a 5-node base, but the base has 2.
        let _ = Csr::eye(2).block_extend(&Csr::empty(1, 5), &Csr::empty(1, 1));
    }

    #[test]
    #[should_panic(expected = "corner row count")]
    fn block_extend_rejects_interconnect_row_mismatch() {
        // 1 new node but a 2-row interconnect.
        let _ = Csr::eye(2).block_extend(&Csr::empty(1, 2), &Csr::empty(2, 2));
    }

    #[test]
    #[should_panic(expected = "corner must be square")]
    fn block_extend_rejects_rectangular_interconnect() {
        let _ = Csr::eye(2).block_extend(&Csr::empty(1, 2), &Csr::empty(1, 3));
    }

    /// Deterministic pseudo-random graph big enough to clear the parallel
    /// thresholds, with skewed row lengths so the nnz-balanced partition
    /// and the spmm_t column windows both get exercised on ragged input.
    fn random_csr(rows: usize, cols: usize, seed: u64) -> Csr {
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* — plenty for test data.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut coo = Coo::new(rows, cols);
        for i in 0..rows {
            let deg = 1 + (next() as usize % 16) + if i % 37 == 0 { 64 } else { 0 };
            for _ in 0..deg {
                let c = (next() as usize) % cols;
                let v = ((next() % 2000) as f32 - 1000.0) / 500.0;
                coo.push(i, c, v);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn nnz_balanced_ranges_tile_all_rows() {
        let m = random_csr(300, 200, 9);
        let ranges = m.nnz_balanced_row_ranges(8);
        let mut cursor = 0;
        for r in &ranges {
            assert_eq!(r.start, cursor);
            assert!(r.end > r.start);
            cursor = r.end;
        }
        assert_eq!(cursor, m.rows());
        // Balance: no chunk should hold more than ~3x its fair nnz share.
        let fair = m.nnz() / 8;
        for r in &ranges {
            let chunk_nnz = (m.indptr[r.end] - m.indptr[r.start]) as usize;
            assert!(chunk_nnz <= 3 * fair.max(1), "chunk {r:?} holds {chunk_nnz} nnz");
        }
    }

    /// The row-subset kernel is bitwise identical to slicing the full
    /// product, for every sub-range — including empty ones — and at both
    /// 1 and 4 threads.
    #[test]
    fn spmm_row_range_matches_sliced_full_product() {
        let m = random_csr(400, 250, 23);
        let mut x = DMat::zeros(250, 48);
        for i in 0..250 {
            for j in 0..48 {
                x.set(i, j, ((i * 48 + j) as f32).sin());
            }
        }
        let full = m.spmm(&x);
        for range in [0..400, 0..1, 399..400, 137..400, 50..51, 200..200] {
            let serial = mcond_par::with_thread_limit(1, || {
                m.spmm_row_range(range.clone(), &x)
            });
            let parallel = mcond_par::with_thread_limit(4, || {
                m.spmm_row_range(range.clone(), &x)
            });
            let expect = full.slice_rows(range.start, range.end);
            assert_eq!(serial.as_slice(), expect.as_slice(), "range {range:?} (serial)");
            assert_eq!(parallel.as_slice(), expect.as_slice(), "range {range:?} (parallel)");
        }
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn spmm_row_range_rejects_out_of_bounds() {
        let m = small();
        let _ = m.spmm_row_range(2..4, &DMat::zeros(3, 1));
    }

    /// The determinism contract: spmm and spmm_t outputs are bitwise
    /// identical whether the pool runs 1 thread or 4 — the parallel paths
    /// never reorder any per-element accumulation.
    #[test]
    fn parallel_spmm_is_bitwise_deterministic() {
        let m = random_csr(500, 300, 17);
        let mut x = DMat::zeros(300, 64);
        for i in 0..300 {
            for j in 0..64 {
                x.set(i, j, ((i * 64 + j) as f32).sin());
            }
        }
        let mut y = DMat::zeros(500, 64);
        for i in 0..500 {
            for j in 0..64 {
                y.set(i, j, ((i * 64 + j) as f32).cos());
            }
        }
        assert!(m.nnz() * 64 >= 2 * PAR_MIN_WORK, "test graph too small to fan out");
        let serial = mcond_par::with_thread_limit(1, || (m.spmm(&x), m.spmm_t(&y)));
        let parallel = mcond_par::with_thread_limit(4, || (m.spmm(&x), m.spmm_t(&y)));
        assert_eq!(serial.0.as_slice(), parallel.0.as_slice(), "spmm drifted");
        assert_eq!(serial.1.as_slice(), parallel.1.as_slice(), "spmm_t drifted");
    }

    /// The SpMM-specific SIMD contract (stronger than the dense one):
    /// every lane tier is **bitwise identical to the scalar reference**, at
    /// every thread count — `MCOND_SIMD` may never change sparse results.
    #[test]
    fn spmm_is_bitwise_identical_across_simd_levels() {
        let m = random_csr(500, 300, 29);
        let mut x = DMat::zeros(300, 48);
        for i in 0..300 {
            for j in 0..48 {
                x.set(i, j, ((i * 48 + j) as f32).sin() * 3.0);
            }
        }
        let mut y = DMat::zeros(500, 48);
        for i in 0..500 {
            for j in 0..48 {
                y.set(i, j, ((i * 48 + j) as f32).cos() * 3.0);
            }
        }
        let reference = simd::with_simd_level(SimdLevel::Scalar, || {
            mcond_par::with_thread_limit(1, || {
                (m.spmm(&x), m.spmm_t(&y), m.spmm_row_range(123..457, &x))
            })
        });
        for level in simd::available_levels() {
            for threads in [1, 4] {
                let got = simd::with_simd_level(level, || {
                    mcond_par::with_thread_limit(threads, || {
                        (m.spmm(&x), m.spmm_t(&y), m.spmm_row_range(123..457, &x))
                    })
                });
                let tag = format!("{} @ {threads} threads", level.name());
                assert_eq!(got.0.as_slice(), reference.0.as_slice(), "spmm drifted ({tag})");
                assert_eq!(got.1.as_slice(), reference.1.as_slice(), "spmm_t drifted ({tag})");
                assert_eq!(
                    got.2.as_slice(),
                    reference.2.as_slice(),
                    "spmm_row_range drifted ({tag})"
                );
            }
        }
    }

    /// Ragged dense widths exercise the axpy tail path (`d` not a multiple
    /// of the lane width), including the empty-rhs edge.
    #[test]
    fn spmm_simd_handles_ragged_widths() {
        let m = random_csr(64, 40, 31);
        for d in [0, 1, 3, 7, 8, 9, 17] {
            let mut x = DMat::zeros(40, d);
            for i in 0..40 {
                for j in 0..d {
                    x.set(i, j, ((i * d + j) as f32).sin());
                }
            }
            let reference =
                simd::with_simd_level(SimdLevel::Scalar, || (m.spmm(&x), m.spmm_t(&m.spmm(&x))));
            for level in simd::available_levels() {
                let got = simd::with_simd_level(level, || (m.spmm(&x), m.spmm_t(&m.spmm(&x))));
                assert_eq!(got.0.as_slice(), reference.0.as_slice(), "d={d} {}", level.name());
                assert_eq!(got.1.as_slice(), reference.1.as_slice(), "d={d} {}", level.name());
            }
        }
    }

    /// The heaviest-first claim order must be a valid permutation on skewed
    /// graphs (hub rows) — exercised implicitly by spmm, pinned here by
    /// running a hub-heavy product at 4 threads and checking against the
    /// dense result.
    #[test]
    fn heaviest_first_schedule_preserves_results_on_hub_graphs() {
        // One hub row holding ~half the nnz plus a uniform remainder.
        let mut coo = Coo::new(200, 200);
        for j in 0..200 {
            coo.push(7, j, (j as f32 + 1.0) / 100.0);
        }
        for i in 0..200 {
            for k in 0..3 {
                coo.push(i, (i * 13 + k * 67 + 1) % 200, 1.0);
            }
        }
        let m = coo.to_csr();
        let mut x = DMat::zeros(200, 96);
        for i in 0..200 {
            for j in 0..96 {
                x.set(i, j, ((i * 96 + j) as f32).sin());
            }
        }
        assert!(m.nnz() * 96 >= PAR_MIN_WORK, "hub graph too small to fan out");
        let serial = mcond_par::with_thread_limit(1, || m.spmm(&x));
        let parallel = mcond_par::with_thread_limit(4, || m.spmm(&x));
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }
}
