//! Compressed-sparse-row matrices and the SpMM kernel.

use crate::Coo;
use mcond_linalg::DMat;

/// An immutable CSR sparse matrix with `f32` values.
///
/// Row `i`'s entries live at `indptr[i]..indptr[i+1]` in `cols`/`vals`,
/// with column indices sorted ascending and no duplicates (guaranteed by
/// construction through [`Coo::to_csr`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols_n: usize,
    indptr: Vec<u64>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}


/// Reports SpMM work to the observability counters: nonzeros touched and
/// an estimate of bytes moved (index + value per nnz, plus one dense row of
/// `d` f32 values read and written per nnz).
fn count_spmm(nnz: usize, d: usize) {
    mcond_obs::counter_add("sparse.spmm.nnz", nnz as u64);
    mcond_obs::counter_add("sparse.spmm.bytes", (nnz * (8 + 8 * d)) as u64);
}

impl Csr {
    /// Builds from raw CSR arrays. Callers must uphold the sortedness and
    /// uniqueness invariants; prefer [`Coo::to_csr`].
    ///
    /// # Panics
    /// Panics when the arrays are structurally inconsistent.
    #[must_use]
    pub fn from_raw(
        rows: usize,
        cols_n: usize,
        indptr: Vec<u64>,
        cols: Vec<u32>,
        vals: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "Csr: indptr length");
        assert_eq!(cols.len(), vals.len(), "Csr: cols/vals length mismatch");
        assert_eq!(*indptr.last().unwrap_or(&0) as usize, cols.len(), "Csr: indptr tail");
        debug_assert!(cols.iter().all(|&c| (c as usize) < cols_n), "Csr: column out of range");
        Self { rows, cols_n, indptr, cols, vals }
    }

    /// An empty (all-zero) matrix.
    #[must_use]
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self::from_raw(rows, cols, vec![0; rows + 1], Vec::new(), Vec::new())
    }

    /// The sparse identity.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let indptr = (0..=n as u64).collect();
        let cols = (0..n as u32).collect();
        let vals = vec![1.0; n];
        Self::from_raw(n, n, indptr, cols, vals)
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols_n
    }

    /// Number of stored non-zeros.
    #[inline]
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column indices of row `i`.
    #[inline]
    #[must_use]
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.cols[self.indptr[i] as usize..self.indptr[i + 1] as usize]
    }

    /// Values of row `i`, parallel to [`Csr::row_cols`].
    #[inline]
    #[must_use]
    pub fn row_vals(&self, i: usize) -> &[f32] {
        &self.vals[self.indptr[i] as usize..self.indptr[i + 1] as usize]
    }

    /// Iterator over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row_cols(i)
                .iter()
                .zip(self.row_vals(i))
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Point lookup via binary search (O(log nnz(row))).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        let cols = self.row_cols(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => self.row_vals(i)[pos],
            Err(_) => 0.0,
        }
    }

    /// Out-degree (number of stored entries) of each row.
    #[must_use]
    pub fn row_nnz(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| (self.indptr[i + 1] - self.indptr[i]) as usize)
            .collect()
    }

    /// Weighted degree (sum of values) of each row.
    #[must_use]
    pub fn row_weighted_degrees(&self) -> Vec<f32> {
        (0..self.rows).map(|i| self.row_vals(i).iter().sum()).collect()
    }

    /// Sparse × dense product `self · rhs` — the message-passing kernel.
    ///
    /// # Panics
    /// Panics when `rhs.rows() != self.cols()`.
    #[must_use]
    pub fn spmm(&self, rhs: &DMat) -> DMat {
        assert_eq!(
            rhs.rows(),
            self.cols_n,
            "spmm: {}x{} · {}x{}",
            self.rows,
            self.cols_n,
            rhs.rows(),
            rhs.cols()
        );
        let d = rhs.cols();
        count_spmm(self.nnz(), d);
        let mut out = DMat::zeros(self.rows, d);
        for i in 0..self.rows {
            let out_row = out.row_mut(i);
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                let src = rhs.row(c as usize);
                for (o, s) in out_row.iter_mut().zip(src) {
                    *o += v * *s;
                }
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materialising the transpose (scatter variant of
    /// [`Csr::spmm`]); used by autodiff backward passes.
    ///
    /// # Panics
    /// Panics when `rhs.rows() != self.rows()`.
    #[must_use]
    pub fn spmm_t(&self, rhs: &DMat) -> DMat {
        assert_eq!(rhs.rows(), self.rows, "spmm_t: row mismatch");
        let d = rhs.cols();
        count_spmm(self.nnz(), d);
        let mut out = DMat::zeros(self.cols_n, d);
        for i in 0..self.rows {
            let src = rhs.row(i);
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                let dst = out.row_mut(c as usize);
                for (o, s) in dst.iter_mut().zip(src) {
                    *o += v * *s;
                }
            }
        }
        out
    }

    /// Materialises the matrix densely (tests and small synthetic graphs).
    #[must_use]
    pub fn to_dense(&self) -> DMat {
        let mut out = DMat::zeros(self.rows, self.cols_n);
        for (i, j, v) in self.iter() {
            out.set(i, j, v);
        }
        out
    }

    /// Converts a dense matrix to CSR, keeping entries with `|v| > 0`.
    #[must_use]
    pub fn from_dense(m: &DMat) -> Self {
        let mut coo = Coo::with_capacity(m.rows(), m.cols(), m.count_above(0.0));
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Materialised transpose in CSR form.
    #[must_use]
    pub fn transpose(&self) -> Csr {
        let mut coo = Coo::with_capacity(self.cols_n, self.rows, self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(j, i, v);
        }
        coo.to_csr()
    }

    /// Extracts the sub-matrix of the given rows (in order), keeping all
    /// columns.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Csr {
        let mut indptr = Vec::with_capacity(indices.len() + 1);
        indptr.push(0u64);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for &i in indices {
            assert!(i < self.rows, "select_rows: {i} out of bounds");
            cols.extend_from_slice(self.row_cols(i));
            vals.extend_from_slice(self.row_vals(i));
            indptr.push(cols.len() as u64);
        }
        Csr::from_raw(indices.len(), self.cols_n, indptr, cols, vals)
    }

    /// Induced subgraph: keeps rows and columns in `nodes`, relabelling them
    /// to `0..nodes.len()` in order. `nodes` must be duplicate-free.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Csr {
        let mut relabel = vec![u32::MAX; self.cols_n];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < self.rows, "induced_subgraph: {old} out of bounds");
            relabel[old] = new as u32;
        }
        let mut coo = Coo::new(nodes.len(), nodes.len());
        for (new_i, &old_i) in nodes.iter().enumerate() {
            for (&c, &v) in self.row_cols(old_i).iter().zip(self.row_vals(old_i)) {
                let new_j = relabel[c as usize];
                if new_j != u32::MAX {
                    coo.push(new_i, new_j as usize, v);
                }
            }
        }
        coo.to_csr()
    }

    /// A copy with `f` applied to every stored value; entries mapped to zero
    /// are kept structurally (use sparsification to drop them).
    #[must_use]
    pub fn map_values(&self, f: impl Fn(f32) -> f32) -> Csr {
        let mut out = self.clone();
        for v in &mut out.vals {
            *v = f(*v);
        }
        out
    }

    /// Bytes needed to store the matrix (indptr + cols + vals) — the storage
    /// model used by the paper's memory comparisons.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<u64>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f32>()
    }

    /// Block matrix `[[self, bᵀ], [b, c]]` where `b : n x rows(self)` is the
    /// incremental adjacency of `n` new nodes and `c : n x n` their
    /// interconnections — Eq. (3)/(11) of the paper.
    ///
    /// # Panics
    /// Panics on dimension mismatches or when `self` is not square.
    #[must_use]
    pub fn block_extend(&self, b: &Csr, c: &Csr) -> Csr {
        assert_eq!(self.rows, self.cols_n, "block_extend: base must be square");
        assert_eq!(b.cols(), self.rows, "block_extend: incremental column count");
        assert_eq!(c.rows(), b.rows(), "block_extend: corner row count");
        assert_eq!(c.cols(), b.rows(), "block_extend: corner must be square");
        let n_new = b.rows();
        let total = self.rows + n_new;
        let mut coo = Coo::with_capacity(total, total, self.nnz() + 2 * b.nnz() + c.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, v);
        }
        for (i, j, v) in b.iter() {
            coo.push(self.rows + i, j, v);
            coo.push(j, self.rows + i, v);
        }
        for (i, j, v) in c.iter() {
            coo.push(self.rows + i, self.rows + j, v);
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [[0, 1, 0], [2, 0, 3], [0, 0, 4]]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 2, 4.0);
        coo.to_csr()
    }

    #[test]
    fn structure_accessors() {
        let m = small();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_cols(1), &[0, 2]);
        assert_eq!(m.row_vals(1), &[2.0, 3.0]);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row_nnz(), vec![1, 2, 1]);
        assert_eq!(m.row_weighted_degrees(), vec![1.0, 5.0, 4.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let x = DMat::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spmm_t_matches_transpose_spmm() {
        let m = small();
        let x = DMat::from_rows(&[&[1., 0.], &[0., 1.], &[1., 1.]]);
        assert_eq!(m.spmm_t(&x), m.transpose().spmm(&x));
    }

    #[test]
    fn dense_round_trip() {
        let m = small();
        assert_eq!(Csr::from_dense(&m.to_dense()), m);
    }

    #[test]
    fn select_rows_keeps_rows() {
        let m = small();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 2), 4.0);
        assert_eq!(s.get(1, 1), 1.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let m = small();
        let s = m.induced_subgraph(&[1, 2]);
        assert_eq!(s.rows(), 2);
        // original (1,2,3.0) -> (0,1); (2,2,4.0) -> (1,1); (1,0) dropped.
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 1), 4.0);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn block_extend_builds_eq3_layout() {
        let a = Csr::eye(2);
        // one new node connected to original node 1 with weight 0.5
        let mut b = Coo::new(1, 2);
        b.push(0, 1, 0.5);
        let ext = a.block_extend(&b.to_csr(), &Csr::empty(1, 1));
        assert_eq!(ext.rows(), 3);
        assert_eq!(ext.get(2, 1), 0.5);
        assert_eq!(ext.get(1, 2), 0.5);
        assert_eq!(ext.get(0, 0), 1.0);
        assert_eq!(ext.get(2, 2), 0.0);
    }

    #[test]
    fn storage_bytes_counts_arrays() {
        let m = small();
        assert_eq!(m.storage_bytes(), 4 * 8 + 4 * 4 + 4 * 4);
    }

    #[test]
    fn eye_is_identity_under_spmm() {
        let x = DMat::from_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(Csr::eye(2).spmm(&x), x);
    }
}
