//! Property tests: sparse algebra must agree with the dense reference.

use mcond_linalg::{approx_eq, DMat};
use mcond_sparse::{row_normalize_dense, sparsify_dense, sym_normalize, Coo, Csr};
use proptest::prelude::*;

/// Random sparse square matrix as (n, entries).
fn arb_sparse(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, f32)>)> {
    (2..=max_n).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -5.0f32..5.0);
        proptest::collection::vec(entry, 0..n * 3)
            .prop_map(move |entries| (n, entries))
    })
}

fn build(n: usize, entries: &[(usize, usize, f32)]) -> Csr {
    let mut coo = Coo::new(n, n);
    for &(i, j, v) in entries {
        coo.push(i, j, v);
    }
    coo.to_csr()
}

proptest! {
    #[test]
    fn spmm_equals_dense_matmul((n, entries) in arb_sparse(12)) {
        let csr = build(n, &entries);
        let x = DMat::from_vec(n, 3, (0..n * 3).map(|i| (i % 7) as f32 - 3.0).collect());
        let sparse = csr.spmm(&x);
        let dense = csr.to_dense().matmul(&x);
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!(approx_eq(*a, *b, 1e-3), "{} vs {}", a, b);
        }
    }

    #[test]
    fn dense_round_trip((n, entries) in arb_sparse(10)) {
        let csr = build(n, &entries);
        prop_assert_eq!(Csr::from_dense(&csr.to_dense()), csr);
    }

    #[test]
    fn transpose_involutive((n, entries) in arb_sparse(10)) {
        let csr = build(n, &entries);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn spmm_t_is_transpose_spmm((n, entries) in arb_sparse(10)) {
        let csr = build(n, &entries);
        let x = DMat::from_vec(n, 2, (0..n * 2).map(|i| i as f32 * 0.1).collect());
        let a = csr.spmm_t(&x);
        let b = csr.transpose().spmm(&x);
        for (x1, x2) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!(approx_eq(*x1, *x2, 1e-3));
        }
    }

    #[test]
    fn sym_normalize_rows_bounded((n, entries) in arb_sparse(10)) {
        // Use |v| so weights are non-negative like real graphs.
        let mut coo = Coo::new(n, n);
        for &(i, j, v) in &entries {
            if i != j {
                coo.push_sym(i, j, v.abs());
            }
        }
        let norm = sym_normalize(&coo.to_csr());
        // Every value of D^-1/2 Ã D^-1/2 lies in [0, 1].
        for (_, _, v) in norm.iter() {
            prop_assert!((0.0..=1.0 + 1e-5).contains(&v), "out of range: {}", v);
        }
    }

    #[test]
    fn sparsify_never_keeps_below_threshold(
        rows in 1usize..8, cols in 1usize..8, t in 0.0f32..1.0,
        seed in proptest::collection::vec(0.0f32..1.0, 64)
    ) {
        let m = DMat::from_vec(rows, cols, seed[..rows * cols].to_vec());
        let (csr, stats) = sparsify_dense(&m, t);
        for (_, _, v) in csr.iter() {
            prop_assert!(v >= t);
        }
        prop_assert_eq!(stats.kept + stats.dropped, rows * cols);
        prop_assert_eq!(csr.nnz(), stats.kept);
    }

    #[test]
    fn row_normalize_rows_sum_to_one_or_zero(
        rows in 1usize..6, cols in 1usize..6,
        seed in proptest::collection::vec(0.0f32..1.0, 36)
    ) {
        let m = DMat::from_vec(rows, cols, seed[..rows * cols].to_vec());
        let r = row_normalize_dense(&m);
        for i in 0..rows {
            let s: f32 = r.row(i).iter().sum();
            prop_assert!(approx_eq(s, 1.0, 1e-4) || approx_eq(s, 0.0, 1e-6));
        }
    }

    #[test]
    fn induced_subgraph_entries_match((n, entries) in arb_sparse(10)) {
        let csr = build(n, &entries);
        let keep: Vec<usize> = (0..n).step_by(2).collect();
        let sub = csr.induced_subgraph(&keep);
        for (si, &oi) in keep.iter().enumerate() {
            for (sj, &oj) in keep.iter().enumerate() {
                prop_assert_eq!(sub.get(si, sj), csr.get(oi, oj));
            }
        }
    }
}
