//! Property-style tests: sparse algebra must agree with the dense
//! reference. Cases come from the workspace's seeded [`MatRng`] (no
//! external fuzzing crate — the build is hermetic); assertion messages
//! carry the case index for deterministic replay.

use mcond_linalg::simd::{self, SimdLevel};
use mcond_linalg::{approx_eq, DMat, MatRng};
use mcond_sparse::{row_normalize_dense, sparsify_dense, sym_normalize, Coo, Csr};

const CASES: u64 = 64;

fn case_rng(salt: u64, case: u64) -> MatRng {
    MatRng::seed_from(0x5AA5 ^ (salt << 32) ^ case)
}

/// Random sparse square matrix as (n, entries).
fn arb_sparse(rng: &mut MatRng, max_n: usize) -> (usize, Vec<(usize, usize, f32)>) {
    let n = 2 + rng.index(max_n - 1);
    let count = rng.index(n * 3);
    let entries = (0..count)
        .map(|_| (rng.index(n), rng.index(n), 10.0 * rng.unit() - 5.0))
        .collect();
    (n, entries)
}

fn build(n: usize, entries: &[(usize, usize, f32)]) -> Csr {
    let mut coo = Coo::new(n, n);
    for &(i, j, v) in entries {
        coo.push(i, j, v);
    }
    coo.to_csr()
}

#[test]
fn spmm_equals_dense_matmul() {
    for case in 0..CASES {
        let (n, entries) = arb_sparse(&mut case_rng(1, case), 12);
        let csr = build(n, &entries);
        let x = DMat::from_vec(n, 3, (0..n * 3).map(|i| (i % 7) as f32 - 3.0).collect());
        let sparse = csr.spmm(&x);
        let dense = csr.to_dense().matmul(&x);
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-3), "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn dense_round_trip() {
    for case in 0..CASES {
        let (n, entries) = arb_sparse(&mut case_rng(2, case), 10);
        let csr = build(n, &entries);
        assert_eq!(Csr::from_dense(&csr.to_dense()), csr, "case {case}");
    }
}

#[test]
fn transpose_involutive() {
    for case in 0..CASES {
        let (n, entries) = arb_sparse(&mut case_rng(3, case), 10);
        let csr = build(n, &entries);
        assert_eq!(csr.transpose().transpose(), csr, "case {case}");
    }
}

#[test]
fn spmm_t_is_transpose_spmm() {
    for case in 0..CASES {
        let (n, entries) = arb_sparse(&mut case_rng(4, case), 10);
        let csr = build(n, &entries);
        let x = DMat::from_vec(n, 2, (0..n * 2).map(|i| i as f32 * 0.1).collect());
        let a = csr.spmm_t(&x);
        let b = csr.transpose().spmm(&x);
        for (x1, x2) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*x1, *x2, 1e-3), "case {case}: {x1} vs {x2}");
        }
    }
}

#[test]
fn sym_normalize_rows_bounded() {
    for case in 0..CASES {
        let (n, entries) = arb_sparse(&mut case_rng(5, case), 10);
        // Use |v| so weights are non-negative like real graphs.
        let mut coo = Coo::new(n, n);
        for &(i, j, v) in &entries {
            if i != j {
                coo.push_sym(i, j, v.abs());
            }
        }
        let norm = sym_normalize(&coo.to_csr());
        // Every value of D^-1/2 Ã D^-1/2 lies in [0, 1].
        for (_, _, v) in norm.iter() {
            assert!((0.0..=1.0 + 1e-5).contains(&v), "case {case}: out of range {v}");
        }
    }
}

#[test]
fn sparsify_never_keeps_below_threshold() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let rows = 1 + rng.index(7);
        let cols = 1 + rng.index(7);
        let t = rng.unit();
        let m = rng.uniform(rows, cols, 0.0, 1.0);
        let (csr, stats) = sparsify_dense(&m, t);
        for (_, _, v) in csr.iter() {
            assert!(v >= t, "case {case}: kept {v} below threshold {t}");
        }
        assert_eq!(stats.kept + stats.dropped, rows * cols, "case {case}");
        assert_eq!(csr.nnz(), stats.kept, "case {case}");
    }
}

#[test]
fn row_normalize_rows_sum_to_one_or_zero() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let rows = 1 + rng.index(5);
        let cols = 1 + rng.index(5);
        let m = rng.uniform(rows, cols, 0.0, 1.0);
        let r = row_normalize_dense(&m);
        for i in 0..rows {
            let s: f32 = r.row(i).iter().sum();
            assert!(
                approx_eq(s, 1.0, 1e-4) || approx_eq(s, 0.0, 1e-6),
                "case {case}: row {i} sums to {s}"
            );
        }
    }
}

#[test]
fn induced_subgraph_entries_match() {
    for case in 0..CASES {
        let (n, entries) = arb_sparse(&mut case_rng(8, case), 10);
        let csr = build(n, &entries);
        let keep: Vec<usize> = (0..n).step_by(2).collect();
        let sub = csr.induced_subgraph(&keep);
        for (si, &oi) in keep.iter().enumerate() {
            for (sj, &oj) in keep.iter().enumerate() {
                assert_eq!(sub.get(si, sj), csr.get(oi, oj), "case {case}: ({si},{sj})");
            }
        }
    }
}

/// SpMM's SIMD contract is stricter than the dense one: every lane tier is
/// **bitwise** equal to the scalar reference, on arbitrary sparsity
/// patterns and dense widths that straddle the lane count — including
/// width 1 and the all-zero matrix.
#[test]
fn spmm_simd_tiers_are_bitwise_scalar_on_arbitrary_patterns() {
    for case in 0..32u64 {
        let mut rng = case_rng(20, case);
        let (n, entries) = arb_sparse(&mut rng, 14);
        let csr = build(n, &entries);
        let d = [1, 3, 7, 8, 9, 16, 17][case as usize % 7];
        let x = DMat::from_vec(n, d, (0..n * d).map(|i| ((i as f32) * 0.31).sin() * 4.0).collect());
        let reference = simd::with_simd_level(SimdLevel::Scalar, || (csr.spmm(&x), csr.spmm_t(&x)));
        for level in simd::available_levels() {
            let got = simd::with_simd_level(level, || (csr.spmm(&x), csr.spmm_t(&x)));
            let bits = |m: &DMat| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got.0), bits(&reference.0), "case {case} spmm at {}", level.name());
            assert_eq!(bits(&got.1), bits(&reference.1), "case {case} spmm_t at {}", level.name());
        }
    }
}

/// Non-finite stored values propagate identically at every tier (the
/// serving layer's poisoned-block detection depends on NaN/Inf surviving
/// the kernel unchanged).
#[test]
fn spmm_simd_tiers_propagate_non_finite_values() {
    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, bad);
        coo.push(3, 0, -1.5);
        let csr = coo.to_csr();
        let x = DMat::from_vec(4, 9, (0..36).map(|i| i as f32 + 1.0).collect());
        let reference = simd::with_simd_level(SimdLevel::Scalar, || csr.spmm(&x));
        for level in simd::available_levels() {
            let got = simd::with_simd_level(level, || csr.spmm(&x));
            for (g, r) in got.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(g.to_bits(), r.to_bits(), "{bad} at {}", level.name());
            }
        }
    }
}
