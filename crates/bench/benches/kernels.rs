//! Microbenchmarks of the hot algebra kernels: dense GEMM (all transpose
//! flavours) and sparse×dense SpMM — the primitives behind every training
//! step and inference pass, and the subject of the DESIGN.md ablation on
//! CSR SpMM vs dense matmul for synthetic-graph inference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mcond_graph::{generate_sbm, SbmConfig};
use mcond_linalg::MatRng;
use mcond_sparse::sym_normalize;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let mut rng = MatRng::seed_from(1);
        let a = rng.uniform(n, n, -1.0, 1.0);
        let b = rng.uniform(n, n, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul_tn(&b)));
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for &n in &[1_000usize, 4_000] {
        let graph = generate_sbm(&SbmConfig {
            nodes: n,
            edges: n * 10,
            feature_dim: 64,
            ..SbmConfig::default()
        });
        let ahat = sym_normalize(&graph.adj);
        let dense = ahat.to_dense();
        // One propagation step, sparse vs dense representation of Â.
        group.bench_with_input(BenchmarkId::new("csr", n), &n, |bch, _| {
            bch.iter(|| black_box(ahat.spmm(&graph.features)));
        });
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |bch, _| {
                bch.iter(|| black_box(dense.matmul(&graph.features)));
            });
        }
    }
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let graph = generate_sbm(&SbmConfig {
        nodes: 4_000,
        edges: 40_000,
        feature_dim: 8,
        ..SbmConfig::default()
    });
    c.bench_function("sym_normalize/4000", |b| {
        b.iter(|| black_box(sym_normalize(&graph.adj)));
    });
}

criterion_group!(benches, bench_matmul, bench_spmm, bench_normalize);
criterion_main!(benches);
