//! Microbenchmarks of the hot algebra kernels: dense GEMM (all transpose
//! flavours) and sparse×dense SpMM — the primitives behind every training
//! step and inference pass, and the subject of the DESIGN.md ablation on
//! CSR SpMM vs dense matmul for synthetic-graph inference.

use mcond_bench::microbench::{black_box, Bench};
use mcond_graph::{generate_sbm, SbmConfig};
use mcond_linalg::MatRng;
use mcond_sparse::sym_normalize;

fn bench_matmul(bench: &mut Bench) {
    for &n in &[64usize, 128, 256] {
        let mut rng = MatRng::seed_from(1);
        let a = rng.uniform(n, n, -1.0, 1.0);
        let b = rng.uniform(n, n, -1.0, 1.0);
        bench.run(&format!("matmul/nn/{n}"), || black_box(a.matmul(&b)));
        bench.run(&format!("matmul/tn/{n}"), || black_box(a.matmul_tn(&b)));
        bench.run(&format!("matmul/nt/{n}"), || black_box(a.matmul_nt(&b)));
    }
}

fn bench_spmm(bench: &mut Bench) {
    for &n in &[1_000usize, 4_000] {
        let graph = generate_sbm(&SbmConfig {
            nodes: n,
            edges: n * 10,
            feature_dim: 64,
            ..SbmConfig::default()
        });
        let ahat = sym_normalize(&graph.adj);
        let dense = ahat.to_dense();
        // One propagation step, sparse vs dense representation of Â.
        bench.run(&format!("spmm/csr/{n}"), || black_box(ahat.spmm(&graph.features)));
        if n <= 1_000 {
            bench.run(&format!("spmm/dense/{n}"), || black_box(dense.matmul(&graph.features)));
        }
    }
}

fn bench_normalize(bench: &mut Bench) {
    let graph = generate_sbm(&SbmConfig {
        nodes: 4_000,
        edges: 40_000,
        feature_dim: 8,
        ..SbmConfig::default()
    });
    bench.run("sym_normalize/4000", || black_box(sym_normalize(&graph.adj)));
}

fn main() {
    let mut bench = Bench::from_env();
    bench_matmul(&mut bench);
    bench_spmm(&mut bench);
    bench_normalize(&mut bench);
    bench.finish("kernel microbenches");
}
