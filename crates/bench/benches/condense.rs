//! Condensation-cost microbenches and the DESIGN.md ablations on the
//! gradient-matching distance: one full alternating-optimisation step, the
//! Eq. (5) column-cosine distance versus a plain L2 alternative, and the
//! Eq. (6) pairwise adjacency generator.

use mcond_autodiff::Tape;
use mcond_bench::microbench::{black_box, Bench};
use mcond_core::{condense, AdjacencyGenerator, McondConfig};
use mcond_graph::{load_dataset, Scale};
use mcond_linalg::MatRng;

fn bench_condense_step(bench: &mut Bench) {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    // One outer loop with one relay/mapping step each isolates the per-step
    // cost of Algorithm 1.
    let cfg = McondConfig {
        ratio: 0.02,
        outer_loops: 1,
        relay_steps: 1,
        mapping_steps: 1,
        support_cap: 64,
        ..McondConfig::default()
    };
    bench.run("condense/one_step_pubmed_small", || black_box(condense(&data, &cfg)));
}

fn bench_gradient_distance(bench: &mut Bench) {
    // Ablation: Eq. (5) column-cosine distance vs plain L2 on the stacked
    // relay gradients ((d+1) x C matrices).
    let mut rng = MatRng::seed_from(3);
    let g1 = rng.normal(65, 8, 0.0, 1.0);
    let g2 = rng.normal(65, 8, 0.0, 1.0);
    bench.run("gradient_distance/cosine_columns", || {
        let mut tape = Tape::new();
        let a = tape.param(g1.clone());
        let t = tape.constant(g2.clone());
        let loss = tape.cosine_col_dist(a, t);
        black_box(tape.backward(loss))
    });
    bench.run("gradient_distance/l2", || {
        let mut tape = Tape::new();
        let a = tape.param(g1.clone());
        let t = tape.constant(g2.clone());
        let diff = tape.sub(a, t);
        let loss = tape.l21(diff);
        black_box(tape.backward(loss))
    });
}

fn bench_adjacency_generator(bench: &mut Bench) {
    // Eq. (6) is quadratic in N'; measure the forward+backward cost at the
    // synthetic sizes the experiments use.
    for &n in &[20usize, 40, 80] {
        let mut rng = MatRng::seed_from(4);
        let generator = AdjacencyGenerator::init(64, 64, &mut rng);
        let xs = rng.normal(n, 64, 0.0, 1.0);
        bench.run(&format!("adjacency_generator/forward_backward/{n}"), || {
            let mut tape = Tape::new();
            let ps = generator.tape_params(&mut tape);
            let x = tape.param(xs.clone());
            let a = generator.adjacency(&mut tape, &ps, x);
            let loss = tape.l21(a);
            black_box(tape.backward(loss))
        });
    }
}

fn main() {
    let mut bench = Bench::from_env().sample_size(10);
    bench_condense_step(&mut bench);
    bench_gradient_distance(&mut bench);
    bench_adjacency_generator(&mut bench);
    bench.finish("condensation microbenches");
}
