//! Condensation-cost microbenches and the DESIGN.md ablations on the
//! gradient-matching distance: one full alternating-optimisation step, the
//! Eq. (5) column-cosine distance versus a plain L2 alternative, and the
//! Eq. (6) pairwise adjacency generator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcond_autodiff::Tape;
use mcond_core::{condense, AdjacencyGenerator, McondConfig};
use mcond_graph::{load_dataset, Scale};
use mcond_linalg::MatRng;

fn bench_condense_step(c: &mut Criterion) {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    // One outer loop with one relay/mapping step each isolates the per-step
    // cost of Algorithm 1.
    let cfg = McondConfig {
        ratio: 0.02,
        outer_loops: 1,
        relay_steps: 1,
        mapping_steps: 1,
        support_cap: 64,
        ..McondConfig::default()
    };
    c.bench_function("condense/one_step_pubmed_small", |b| {
        b.iter(|| black_box(condense(&data, &cfg)));
    });
}

fn bench_gradient_distance(c: &mut Criterion) {
    // Ablation: Eq. (5) column-cosine distance vs plain L2 on the stacked
    // relay gradients ((d+1) x C matrices).
    let mut rng = MatRng::seed_from(3);
    let g1 = rng.normal(65, 8, 0.0, 1.0);
    let g2 = rng.normal(65, 8, 0.0, 1.0);
    let mut group = c.benchmark_group("gradient_distance");
    group.bench_function("cosine_columns", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let a = tape.param(g1.clone());
            let t = tape.constant(g2.clone());
            let loss = tape.cosine_col_dist(a, t);
            black_box(tape.backward(loss))
        });
    });
    group.bench_function("l2", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let a = tape.param(g1.clone());
            let t = tape.constant(g2.clone());
            let diff = tape.sub(a, t);
            let loss = tape.l21(diff);
            black_box(tape.backward(loss))
        });
    });
    group.finish();
}

fn bench_adjacency_generator(c: &mut Criterion) {
    // Eq. (6) is quadratic in N'; measure the forward+backward cost at the
    // synthetic sizes the experiments use.
    let mut group = c.benchmark_group("adjacency_generator");
    for &n in &[20usize, 40, 80] {
        let mut rng = MatRng::seed_from(4);
        let generator = AdjacencyGenerator::init(64, 64, &mut rng);
        let xs = rng.normal(n, 64, 0.0, 1.0);
        group.bench_function(format!("forward_backward/{n}"), |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let ps = generator.tape_params(&mut tape);
                let x = tape.param(xs.clone());
                let a = generator.adjacency(&mut tape, &ps, x);
                let loss = tape.l21(a);
                black_box(tape.backward(loss))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_condense_step, bench_gradient_distance, bench_adjacency_generator
}
criterion_main!(benches);
