//! Legacy-vs-fastpath serving latency: the vstack-and-slice reference path
//! (`ServeMode::Extended`), the split-operator zero-copy fast path
//! (`ServeMode::Exact`, the default), and the opt-in frozen-base cache
//! (`ServeMode::FrozenBase`), each on both attachment targets — the
//! original graph (Eq. 3) and a reduced graph + mapping (Eq. 11).
//!
//! Each mode serves the same batch set serially; the report records the
//! per-mode median, the speedup over the Extended baseline, and (from the
//! attached metrics snapshot) the base-feature bytes the fast path never
//! copied. The equivalence contract itself (`Exact` logits bitwise equal
//! to `Extended`) is enforced by the `fastpath_equivalence` test — the
//! bench asserts it once more on one batch so a perf number is never
//! reported for a divergent path.
//!
//! Output: `results/BENCH_serve_fastpath.json`.

use mcond_bench::microbench::{black_box, Bench};
use mcond_bench::{print_table, Row, TableReport};
use mcond_core::{vng, InductiveServer, ServeMode};
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{load_dataset, NodeBatch, Scale};

const MODES: [(&str, ServeMode); 3] = [
    ("extended", ServeMode::Extended),
    ("exact", ServeMode::Exact),
    ("frozen", ServeMode::FrozenBase),
];

fn bench_serving(
    bench: &mut Bench,
    target: &str,
    make: &dyn Fn(ServeMode) -> InductiveServer<'static>,
    batches: &[NodeBatch],
) {
    // Guard the contract before timing it: the fast path must agree with
    // the reference bitwise (Exact) before its latency means anything.
    let reference = make(ServeMode::Extended).serve(&batches[0]);
    let fast = make(ServeMode::Exact).serve(&batches[0]);
    assert_eq!(
        reference.as_slice(),
        fast.as_slice(),
        "{target}: exact fast path diverged from the extended reference"
    );

    for (name, mode) in MODES {
        let server = make(mode);
        bench.run(&format!("serve/{target}/{name}"), || {
            for batch in batches {
                black_box(server.serve(batch));
            }
        });
    }
}

fn report(bench: &Bench, targets: &[&str]) -> TableReport {
    let mut report = TableReport::new("serving fast path (median over the batch sweep)");
    let median = |name: &str| {
        bench
            .results()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.median_ns)
            .unwrap_or(f64::NAN)
    };
    for target in targets {
        let extended = median(&format!("serve/{target}/extended"));
        for (name, _) in MODES {
            let m = median(&format!("serve/{target}/{name}"));
            report.push(
                Row::new()
                    .key("target", target)
                    .key("mode", name)
                    .metric("median_ns", m)
                    .metric("speedup_vs_extended", extended / m),
            );
        }
    }
    report.attach_metrics(&mcond_obs::snapshot());
    report
}

fn main() {
    let mut bench = Bench::from_env();
    let data = load_dataset("pubmed", Scale::Small, 0).expect("pubmed generator");
    let original = Box::leak(Box::new(data.original_graph()));
    let model = Box::leak(Box::new(GnnModel::new(
        GnnKind::Gcn,
        data.full.feature_dim(),
        16,
        data.full.num_classes,
        2,
    )));
    let batches = data.test_batches(40, true);

    // Eq. 3: attach to the original training graph.
    bench_serving(
        &mut bench,
        "original",
        &|mode| InductiveServer::on_original(original, model).with_serve_mode(mode),
        &batches,
    );

    // Eq. 11: attach to a reduced graph through its mapping (VNG stands in
    // for a condensed artifact — serving cost only depends on N' and nnz).
    let n_virtual = (original.num_nodes() / 20).max(original.num_classes);
    let reduced = Box::leak(Box::new(vng(original, &original.features, n_virtual, 3)));
    bench_serving(
        &mut bench,
        "synthetic",
        &|mode| {
            InductiveServer::on_synthetic(&reduced.graph, &reduced.mapping, model)
                .with_serve_mode(mode)
        },
        &batches,
    );

    let report = report(&bench, &["original", "synthetic"]);
    bench.finish("serving fast path microbenches");
    print_table(&report);
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let _ = std::fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/BENCH_serve_fastpath.json");
    if let Err(e) = report.dump_json(&path) {
        eprintln!("cannot write {path}: {e}");
    }
}
