//! SIMD-tier sweep of the hot kernels: every `MCOND_SIMD` level of the
//! dense GEMM flavours, matvec, and CSR SpMM, timed at one thread so the
//! rows isolate vectorisation from pool fan-out.
//!
//! Each row derives GFLOP/s from the kernels' own flop counters
//! (`linalg.matmul.flops`, `sparse.spmm.flops`) rather than a hand-written
//! formula: the counter delta of a single call is divided by the median
//! time, so the number stays honest if a kernel's flop model ever changes.
//! `speedup_vs_scalar` compares each level against the retained scalar
//! reference kernels — the headline number the SIMD rewrite is judged on.
//!
//! Output: `results/BENCH_kernels_simd.json` (plus the usual
//! `MCOND_BENCH_JSON` dump when that variable is set).

use mcond_bench::microbench::{black_box, Bench};
use mcond_bench::{print_table, Row, TableReport};
use mcond_graph::{generate_sbm, SbmConfig};
use mcond_linalg::simd::{self, SimdLevel};
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{sym_normalize, Csr};

/// One kernel under test: a name, the flop counter it bumps, and the call.
struct Kernel {
    name: &'static str,
    flops_counter: &'static str,
    call: Box<dyn Fn() -> DMat>,
}

fn kernels() -> Vec<Kernel> {
    let mut rng = MatRng::seed_from(1);
    let a = rng.uniform(512, 512, -1.0, 1.0);
    let b = rng.uniform(512, 512, -1.0, 1.0);
    let at = rng.uniform(384, 256, -1.0, 1.0);
    let bt = rng.uniform(384, 256, -1.0, 1.0);
    let v = rng.uniform(1024, 1024, -1.0, 1.0);
    let x: Vec<f32> = rng.uniform(1024, 1, -1.0, 1.0).as_slice().to_vec();
    let graph = generate_sbm(&SbmConfig {
        nodes: 8_000,
        edges: 80_000,
        feature_dim: 64,
        ..SbmConfig::default()
    });
    let ahat = sym_normalize(&graph.adj);
    let feats = graph.features.clone();
    let ahat_t: Csr = ahat.clone();
    let feats_t = graph.features;
    vec![
        Kernel {
            name: "matmul/512",
            flops_counter: "linalg.matmul.flops",
            call: Box::new(move || a.matmul(&b)),
        },
        Kernel {
            name: "matmul_tn/384x256",
            flops_counter: "linalg.matmul.flops",
            call: Box::new({
                let (at, bt) = (at.clone(), bt.clone());
                move || at.matmul_tn(&bt)
            }),
        },
        Kernel {
            name: "matmul_nt/384x256",
            flops_counter: "linalg.matmul.flops",
            call: Box::new(move || bt.matmul_nt(&at)),
        },
        Kernel {
            name: "matvec/1024",
            flops_counter: "linalg.matmul.flops",
            call: Box::new(move || DMat::from_vec(1024, 1, v.matvec(&x))),
        },
        Kernel {
            name: "spmm/sbm8000",
            flops_counter: "sparse.spmm.flops",
            call: Box::new(move || ahat.spmm(&feats)),
        },
        Kernel {
            name: "spmm_t/sbm8000",
            flops_counter: "sparse.spmm.flops",
            call: Box::new(move || ahat_t.spmm_t(&feats_t)),
        },
    ]
}

/// Flops one invocation of `call` books on `counter`, read from the
/// observability registry (metrics are force-enabled in `main`).
fn flops_per_call(counter: &str, call: &dyn Fn() -> DMat) -> f64 {
    let before = mcond_obs::snapshot().counter(counter);
    black_box(call());
    let after = mcond_obs::snapshot().counter(counter);
    #[allow(clippy::cast_precision_loss)]
    {
        (after - before) as f64
    }
}

fn main() {
    // Counters on (no event sink): GFLOP/s comes from the kernels' own
    // flop accounting.
    mcond_obs::enable_metrics();
    let mut bench = Bench::from_env();
    let mut report = TableReport::new("SIMD kernel tiers (1 thread, scalar reference = 1.0x)");
    let levels: Vec<SimdLevel> = simd::available_levels();
    for kernel in kernels() {
        let flops = flops_per_call(kernel.flops_counter, &kernel.call);
        let mut scalar_median = f64::NAN;
        for &level in &levels {
            let name = format!("{}/{}", kernel.name, level.name());
            mcond_par::with_thread_limit(1, || {
                simd::with_simd_level(level, || {
                    bench.run(&name, || black_box((kernel.call)()));
                });
            });
            let median = bench
                .results()
                .last()
                .map(|m| m.median_ns)
                .unwrap_or(f64::NAN);
            if level == SimdLevel::Scalar {
                scalar_median = median;
            }
            report.push(
                Row::new()
                    .key("kernel", kernel.name)
                    .key("level", level.name())
                    .key("threads", 1)
                    .metric("median_ns", median)
                    .metric("gflops", flops / median)
                    .metric("speedup_vs_scalar", scalar_median / median),
            );
        }
    }
    report.attach_metrics(&mcond_obs::snapshot());
    bench.finish("SIMD kernel microbenches");
    print_table(&report);
    // Anchor at the workspace root (cargo bench runs with the package dir
    // as CWD) so the baseline lands next to the experiment outputs.
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let _ = std::fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/BENCH_kernels_simd.json");
    if let Err(e) = report.dump_json(&path) {
        eprintln!("cannot write {path}: {e}");
    }
}
