//! Closed-loop HTTP serving load generator: p50/p99 latency vs offered
//! QPS over a real localhost socket.
//!
//! A pubmed-small checkpoint (original training graph behind an identity
//! mapping) is saved to disk, booted through the owned-epoch path
//! (`boot_slot`), and served behind the `mcond-serve` front end — the
//! same artifact-file lifecycle production uses, with nothing leaked.
//! Before any timing, every batch's HTTP response is verified bitwise
//! identical to a direct `try_serve` call, so the numbers below are for
//! provably-correct responses; then 50 hot reloads of the same bundle
//! must leave process RSS flat — the guard that the epoch machinery
//! actually frees retired checkpoints. Each offered-QPS level runs a
//! paced closed-loop: every client thread schedules sends at its share
//! of the offered rate but never pipelines — it waits for each response
//! before the next send, so latency feedback throttles the achieved rate
//! the way real callers do. Shed responses (429) are counted separately
//! and excluded from the latency distribution.
//!
//! Knobs: `MCOND_QPS_MS` (per-level duration, default 1500),
//! `MCOND_QPS_CLIENTS` (client threads, default 4).
//!
//! Output: `results/BENCH_serving_qps.json`.

use mcond_bench::{print_table, Row, TableReport};
use mcond_core::Checkpoint;
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{load_dataset, NodeBatch, Scale};
use mcond_serve::{boot_slot, spawn, Client, PostError, ServeConfig};
use mcond_sparse::Csr;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const OFFERED_QPS: [f64; 3] = [100.0, 400.0, 1600.0];
/// Hot reloads the RSS-flatness guard performs.
const RELOADS: usize = 50;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Resident set size in KiB from `/proc/self/status` (Linux only; `None`
/// elsewhere, which skips the flatness assertion).
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

struct LevelOutcome {
    latencies_us: Vec<f64>,
    shed: u64,
    elapsed: Duration,
}

/// One closed-loop level: `clients` threads pace sends to hit
/// `offered_qps` in aggregate, each waiting for its response before the
/// next scheduled send.
fn run_level(
    addr: SocketAddr,
    batches: &Arc<Vec<NodeBatch>>,
    offered_qps: f64,
    clients: usize,
    duration: Duration,
) -> LevelOutcome {
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let shed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    #[allow(clippy::cast_precision_loss)]
    let interval = Duration::from_secs_f64(clients as f64 / offered_qps);
    let workers: Vec<_> = (0..clients)
        .map(|t| {
            let batches = Arc::clone(batches);
            let latencies = Arc::clone(&latencies);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(30)).expect("connect");
                // Stagger thread phases so the aggregate arrival process
                // is smooth rather than `clients`-bursty.
                let phase = interval.mul_f64(t as f64 / clients as f64);
                let mut local = Vec::new();
                let mut i = t;
                loop {
                    let k = local.len() as u32;
                    let due = start + phase + interval * k;
                    let now = Instant::now();
                    if now.duration_since(start) >= duration {
                        break;
                    }
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let sent = Instant::now();
                    match client.post_batch(&batches[i % batches.len()]) {
                        Ok(_) => {
                            local.push(sent.elapsed().as_secs_f64() * 1e6);
                        }
                        Err(PostError::Http { status: 429, .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            // Count the slot as used so pacing holds.
                            local.push(f64::NAN);
                        }
                        Err(e) => panic!("client {t}: {e}"),
                    }
                    i += 1;
                }
                let mut all = latencies.lock().unwrap();
                all.extend(local.into_iter().filter(|v| v.is_finite()));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("load client panicked");
    }
    let elapsed = start.elapsed();
    let mut latencies_us = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    latencies_us.sort_by(f64::total_cmp);
    LevelOutcome { latencies_us, shed: shed.load(Ordering::Relaxed), elapsed }
}

fn main() {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("pubmed generator");
    let original = data.original_graph();
    let n_train = original.num_nodes();
    let model = GnnModel::new(
        GnnKind::Gcn,
        data.full.feature_dim(),
        16,
        data.full.num_classes,
        2,
    );
    // Identity mapping over the training graph: the original-graph serving
    // setting (Eq. 3) expressed as a bootable checkpoint artifact.
    let ckpt = Checkpoint::new(original, Csr::eye(n_train), model).expect("bundle agrees");
    let ckpt_path = std::env::temp_dir()
        .join(format!("mcond_bench_qps_{}.mcst", std::process::id()));
    let ckpt_bytes = ckpt.save(&ckpt_path).expect("save checkpoint");
    drop(ckpt);

    let slot = boot_slot(&ckpt_path).expect("boot from checkpoint");
    let batches = Arc::new(data.test_batches(25, true));

    let handle = spawn(
        Arc::clone(&slot),
        ServeConfig {
            coalesce_window: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("spawn front end");
    let addr = handle.addr();

    // Correctness before latency: every batch's HTTP logits must be
    // bitwise identical to the direct library call on the boot epoch.
    {
        let epoch = slot.load();
        let mut client = Client::connect(addr, Duration::from_secs(30)).expect("connect");
        for (i, batch) in batches.iter().enumerate() {
            let direct = epoch.server().try_serve(batch).expect("batch valid");
            let (_, wire) = client.post_batch(batch).expect("HTTP serve");
            assert!(
                wire.bit_eq(&direct),
                "batch {i}: HTTP response diverged from try_serve — refusing to time"
            );
        }
        println!(
            "verified {} batches bitwise identical over the socket",
            batches.len()
        );
    }

    // Leak guard: 50 hot reloads of the same bundle must leave RSS flat.
    // Every reload loads + canaries + installs a fresh epoch; the retired
    // one must free once the slot drops it — per-reload growth means the
    // `Box::leak` era came back.
    {
        let before_kb = rss_kb();
        for i in 0..RELOADS {
            handle.reload(&ckpt_path).unwrap_or_else(|e| panic!("reload {i}: {e}"));
        }
        assert_eq!(handle.epoch(), 1 + RELOADS as u64, "one epoch per reload");
        if let (Some(before), Some(after)) = (before_kb, rss_kb()) {
            let growth_kb = after.saturating_sub(before);
            let ckpt_kb = ckpt_bytes.div_ceil(1024);
            // A real leak retains ~RELOADS× the checkpoint; allow ample
            // allocator noise below that.
            let budget_kb = (10 * ckpt_kb).max(16 * 1024);
            println!(
                "rss after {RELOADS} reloads: {before} KiB -> {after} KiB \
                 (growth {growth_kb} KiB, budget {budget_kb} KiB, bundle {ckpt_kb} KiB)"
            );
            assert!(
                growth_kb < budget_kb,
                "process RSS grew {growth_kb} KiB across {RELOADS} reloads \
                 (budget {budget_kb} KiB): retired epochs are not being freed"
            );
        } else {
            println!("rss flatness guard skipped: /proc/self/status unavailable");
        }
    }

    let duration = Duration::from_millis(env_usize("MCOND_QPS_MS", 1500) as u64);
    let clients = env_usize("MCOND_QPS_CLIENTS", 4);
    let mut report =
        TableReport::new("closed-loop serving latency vs offered QPS (pubmed-small, Eq. 3)");
    for offered in OFFERED_QPS {
        let out = run_level(addr, &batches, offered, clients, duration);
        #[allow(clippy::cast_precision_loss)]
        let achieved = out.latencies_us.len() as f64 / out.elapsed.as_secs_f64();
        report.push(
            Row::new()
                .key("offered_qps", format!("{offered}"))
                .metric("achieved_qps", achieved)
                .metric("p50_us", percentile(&out.latencies_us, 0.50))
                .metric("p99_us", percentile(&out.latencies_us, 0.99))
                .metric("requests", out.latencies_us.len() as f64)
                .metric("shed", out.shed as f64),
        );
    }
    report.attach_metrics(&mcond_obs::snapshot());
    print_table(&report);
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let _ = std::fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/BENCH_serving_qps.json");
    if let Err(e) = report.dump_json(&path) {
        eprintln!("cannot write {path}: {e}");
    }
    handle.shutdown();
    std::fs::remove_file(&ckpt_path).ok();
}
