//! Hot-swap latency impact: serving p50/p99 with and without a concurrent
//! checkpoint reload storm.
//!
//! Two bitwise-distinct pubmed-small checkpoints (same shapes, different
//! weight seeds) alternate through `ServeHandle::reload` while paced
//! closed-loop clients hammer `/v1/serve`. Every response is verified
//! against the exact checkpoint its `x-mcond-epoch` header claims — the
//! benchmark refuses to report latencies for answers that are not
//! provably epoch-consistent. The headline comparison is the baseline
//! phase (no reloads) against the storm phase (a reload every few
//! milliseconds): the epoch-slot design claims a swap is one pointer
//! exchange, so the p99 delta is the honest price of hot reloading.
//!
//! Knobs: `MCOND_RELOAD_MS` (per-phase duration, default 1500),
//! `MCOND_RELOAD_CLIENTS` (client threads, default 4),
//! `MCOND_RELOAD_QPS` (aggregate offered rate, default 200).
//!
//! Output: `results/BENCH_reload_swap.json`.

use mcond_bench::{print_table, Row, TableReport};
use mcond_core::{Checkpoint, InductiveServer};
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{load_dataset, NodeBatch, Scale};
use mcond_serve::{boot_slot, spawn, Client, PostError, ServeConfig, ServeHandle};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Per-batch expected logits for both checkpoints: epoch parity decides
/// which one a given answer must match (boot = A = odd epochs, every
/// reload alternates starting with B).
struct Expected {
    a: Vec<Vec<f32>>,
    b: Vec<Vec<f32>>,
}

impl Expected {
    fn verify(&self, batch_idx: usize, epoch: u64, logits: &[f32]) {
        let want = if epoch % 2 == 1 { &self.a[batch_idx] } else { &self.b[batch_idx] };
        assert_eq!(
            logits,
            want.as_slice(),
            "batch {batch_idx} on epoch {epoch}: logits are not bitwise the checkpoint \
             this epoch installed — refusing to report latencies for wrong answers"
        );
    }
}

struct PhaseOutcome {
    latencies_us: Vec<f64>,
    shed: u64,
    requests: usize,
}

/// One paced closed-loop phase with per-response epoch verification.
fn run_phase(
    addr: SocketAddr,
    batches: &Arc<Vec<NodeBatch>>,
    expected: &Arc<Expected>,
    offered_qps: f64,
    clients: usize,
    duration: Duration,
) -> PhaseOutcome {
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let shed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    #[allow(clippy::cast_precision_loss)]
    let interval = Duration::from_secs_f64(clients as f64 / offered_qps);
    let workers: Vec<_> = (0..clients)
        .map(|t| {
            let batches = Arc::clone(batches);
            let expected = Arc::clone(expected);
            let latencies = Arc::clone(&latencies);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(30)).expect("connect");
                let phase = interval.mul_f64(t as f64 / clients as f64);
                let mut local = Vec::new();
                let mut i = t;
                loop {
                    let k = local.len() as u32;
                    let due = start + phase + interval * k;
                    let now = Instant::now();
                    if now.duration_since(start) >= duration {
                        break;
                    }
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let batch_idx = i % batches.len();
                    let sent = Instant::now();
                    match client.post_batch_tagged(&batches[batch_idx]) {
                        Ok(reply) => {
                            let epoch =
                                reply.epoch.expect("every response carries x-mcond-epoch");
                            expected.verify(batch_idx, epoch, reply.logits.as_slice());
                            local.push(sent.elapsed().as_secs_f64() * 1e6);
                        }
                        Err(PostError::Http { status: 429, .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            local.push(f64::NAN);
                        }
                        Err(e) => panic!("client {t}: non-200 under the storm: {e}"),
                    }
                    i += 1;
                }
                let mut all = latencies.lock().unwrap();
                all.extend(local.into_iter().filter(|v| v.is_finite()));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("load client panicked");
    }
    let mut latencies_us = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    latencies_us.sort_by(f64::total_cmp);
    let requests = latencies_us.len();
    PhaseOutcome { latencies_us, shed: shed.load(Ordering::Relaxed), requests }
}

/// Alternates reloads B, A, B, ... (preserving the epoch-parity contract)
/// until `stop`; returns the number of swaps performed.
fn reload_storm(
    handle: &ServeHandle,
    path_a: &PathBuf,
    path_b: &PathBuf,
    stop: &AtomicBool,
) -> usize {
    let mut n = 0usize;
    while !stop.load(Ordering::Acquire) {
        let path = if n.is_multiple_of(2) { path_b } else { path_a };
        handle.reload(path).unwrap_or_else(|e| panic!("reload {n}: {e}"));
        n += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    n
}

fn main() {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("pubmed generator");
    let original = data.original_graph();
    let n_train = original.num_nodes();
    let make_ckpt = |seed: u64| {
        let model = GnnModel::new(
            GnnKind::Gcn,
            data.full.feature_dim(),
            16,
            data.full.num_classes,
            seed,
        );
        Checkpoint::new(original.clone(), mcond_sparse::Csr::eye(n_train), model)
            .expect("bundle agrees")
    };
    let ckpt_a = make_ckpt(2);
    let ckpt_b = make_ckpt(3);
    let batches = Arc::new(data.test_batches(25, true));
    let expected = Arc::new(Expected {
        a: {
            let server = InductiveServer::from_checkpoint(&ckpt_a);
            batches
                .iter()
                .map(|b| server.try_serve(b).expect("valid").as_slice().to_vec())
                .collect()
        },
        b: {
            let server = InductiveServer::from_checkpoint(&ckpt_b);
            batches
                .iter()
                .map(|b| server.try_serve(b).expect("valid").as_slice().to_vec())
                .collect()
        },
    });
    assert_ne!(expected.a, expected.b, "checkpoints must be bitwise distinguishable");

    let pid = std::process::id();
    let path_a = std::env::temp_dir().join(format!("mcond_bench_swap_a_{pid}.mcst"));
    let path_b = std::env::temp_dir().join(format!("mcond_bench_swap_b_{pid}.mcst"));
    ckpt_a.save(&path_a).expect("save A");
    ckpt_b.save(&path_b).expect("save B");
    drop((ckpt_a, ckpt_b));

    let slot = boot_slot(&path_a).expect("boot from checkpoint A");
    let handle = spawn(
        slot,
        ServeConfig {
            coalesce_window: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("spawn front end");
    let addr = handle.addr();

    let duration = Duration::from_millis(env_usize("MCOND_RELOAD_MS", 1500) as u64);
    let clients = env_usize("MCOND_RELOAD_CLIENTS", 4);
    #[allow(clippy::cast_precision_loss)]
    let qps = env_usize("MCOND_RELOAD_QPS", 200) as f64;

    let mut report = TableReport::new(
        "serving latency with vs without a concurrent checkpoint reload storm (pubmed-small)",
    );

    let baseline = run_phase(addr, &batches, &expected, qps, clients, duration);
    report.push(
        Row::new()
            .key("phase", "baseline")
            .metric("p50_us", percentile(&baseline.latencies_us, 0.50))
            .metric("p99_us", percentile(&baseline.latencies_us, 0.99))
            .metric("requests", baseline.requests as f64)
            .metric("shed", baseline.shed as f64)
            .metric("reloads", 0.0),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let storm = std::thread::scope(|s| {
        let reloader = {
            let stop = Arc::clone(&stop);
            let (handle, path_a, path_b) = (&handle, &path_a, &path_b);
            s.spawn(move || reload_storm(handle, path_a, path_b, &stop))
        };
        let out = run_phase(addr, &batches, &expected, qps, clients, duration);
        stop.store(true, Ordering::Release);
        let reloads = reloader.join().expect("reloader panicked");
        (out, reloads)
    });
    let (storm_out, reloads) = storm;
    assert!(reloads > 0, "the storm phase must actually reload");
    assert_eq!(handle.epoch(), 1 + reloads as u64, "one epoch per swap");
    report.push(
        Row::new()
            .key("phase", "reload_storm")
            .metric("p50_us", percentile(&storm_out.latencies_us, 0.50))
            .metric("p99_us", percentile(&storm_out.latencies_us, 0.99))
            .metric("requests", storm_out.requests as f64)
            .metric("shed", storm_out.shed as f64)
            .metric("reloads", reloads as f64),
    );
    println!(
        "storm phase: {} requests verified epoch-true across {} hot swaps",
        storm_out.requests, reloads
    );

    report.attach_metrics(&mcond_obs::snapshot());
    print_table(&report);
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let _ = std::fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/BENCH_reload_swap.json");
    if let Err(e) = report.dump_json(&path) {
        eprintln!("cannot write {path}: {e}");
    }
    handle.shutdown();
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}
