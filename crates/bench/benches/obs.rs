//! Overhead of the observability substrate itself: the same kernel loop
//! with the sink disabled (the production default — every probe must
//! collapse to one relaxed atomic load) versus with metrics aggregation
//! forced on. Run with `MCOND_LOG` unset to see the zero-cost baseline;
//! the disabled and plain variants should be indistinguishable.

use mcond_bench::microbench::{black_box, Bench};
use mcond_linalg::MatRng;

fn main() {
    assert!(
        std::env::var("MCOND_LOG").map_or(true, |v| v.is_empty()),
        "run the overhead bench with MCOND_LOG unset so the disabled \
         baseline is actually disabled"
    );
    let mut bench = Bench::from_env();
    let mut rng = MatRng::seed_from(7);
    let a = rng.uniform(64, 64, -1.0, 1.0);
    let b = rng.uniform(64, 64, -1.0, 1.0);

    // Baseline: the raw kernel. Instrumented: same kernel, probes compiled
    // in but sink disabled — the acceptance bar is "no measurable overhead".
    bench.run("obs_overhead/matmul64_raw_loop", || black_box(a.matmul(&b)));
    bench.run("obs_overhead/matmul64_probes_disabled", || {
        let _span = mcond_obs::span("bench.matmul");
        mcond_obs::counter_add("bench.flops", 2 * 64 * 64 * 64);
        black_box(a.matmul(&b))
    });

    // Per-probe cost in isolation, disabled vs metrics forced on.
    bench.run("obs_overhead/probe_disabled", || {
        mcond_obs::counter_add("bench.probe", 1);
        black_box(())
    });
    mcond_obs::enable_metrics();
    bench.run("obs_overhead/probe_metrics_on", || {
        mcond_obs::counter_add("bench.probe", 1);
        black_box(())
    });
    bench.finish("observability overhead");
}
