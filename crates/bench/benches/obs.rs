//! Overhead of the observability substrate across its operating points:
//!
//! * **Sink off** (the production default) — every probe must collapse to
//!   one relaxed atomic load; the raw loop and the probed loop should be
//!   indistinguishable.
//! * **Metrics on** — the sharded registry versus an in-bench
//!   reproduction of the old design (one process-wide `Mutex<BTreeMap>`
//!   every probe contends on), hammered at 1 and 4 threads through the
//!   same `mcond_par` fan-out serving uses. The report carries the
//!   `speedup_vs_global_lock` the sharding buys under contention. Note
//!   the `host_threads` row when reading it: on a single-core host the
//!   4 threads timeslice instead of contending, the global lock is never
//!   held by a running thread while another probes, and the speedup
//!   converges to ~1x (the sharded path's thread-local indirection even
//!   costs a few ns serially); the win materialises with real hardware
//!   parallelism, where every probe ping-pongs the shared lock's cache
//!   line across cores.
//! * **Full tracing** — per-request trace id + span + counter with an
//!   attached sink, at 1 and 4 threads, the worst-case hot path.
//!
//! Run with `MCOND_LOG` unset so the disabled baseline is actually
//! disabled. Output: `results/BENCH_obs_overhead.json`.

use mcond_bench::microbench::{black_box, Bench};
use mcond_bench::{print_table, Row, TableReport};
use mcond_linalg::MatRng;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Probes per hammer-loop iteration; reported numbers are per probe.
const OPS: usize = 8_192;

/// The pre-sharding registry design, reproduced in-bench: every probe from
/// every thread funnels through one process-wide lock.
struct GlobalLockRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

impl GlobalLockRegistry {
    const fn new() -> Self {
        Self { counters: Mutex::new(BTreeMap::new()) }
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut map = self.counters.lock().unwrap();
        *map.entry(name).or_insert(0) += delta;
    }
}

static GLOBAL_LOCK: GlobalLockRegistry = GlobalLockRegistry::new();

fn hammer_sharded(threads: usize) {
    mcond_par::with_thread_limit(threads, || {
        mcond_par::parallel_for_chunks(OPS, 64, |range| {
            for _ in range {
                mcond_obs::counter_add("bench.obs.sharded", 1);
            }
        });
    });
}

fn hammer_global_lock(threads: usize) {
    mcond_par::with_thread_limit(threads, || {
        mcond_par::parallel_for_chunks(OPS, 64, |range| {
            for _ in range {
                GLOBAL_LOCK.add("bench.obs.global", 1);
            }
        });
    });
}

/// Requests per full-tracing iteration (trace id + span + counter each).
const REQUESTS: usize = 256;

fn traced_requests(threads: usize) {
    mcond_par::with_thread_limit(threads, || {
        mcond_par::parallel_for_chunks(REQUESTS, 1, |range| {
            for _ in range {
                let _trace = mcond_obs::begin_trace();
                let _span = mcond_obs::span("bench.request");
                mcond_obs::counter_add("bench.obs.traced", 1);
            }
        });
    });
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    assert!(
        std::env::var("MCOND_LOG").map_or(true, |v| v.is_empty()),
        "run the overhead bench with MCOND_LOG unset so the disabled \
         baseline is actually disabled"
    );
    let mut bench = Bench::from_env();
    let mut rng = MatRng::seed_from(7);
    let a = rng.uniform(64, 64, -1.0, 1.0);
    let b = rng.uniform(64, 64, -1.0, 1.0);

    // --- Sink off: probes must cost one relaxed atomic load. -------------
    bench.run("obs/off/matmul64_raw", || black_box(a.matmul(&b)));
    bench.run("obs/off/matmul64_probed", || {
        let _span = mcond_obs::span("bench.matmul");
        mcond_obs::counter_add("bench.flops", 2 * 64 * 64 * 64);
        black_box(a.matmul(&b))
    });
    bench.run("obs/off/probe", || {
        mcond_obs::counter_add("bench.probe", 1);
        black_box(())
    });
    bench.run("obs/off/span", || {
        let _span = mcond_obs::span("bench.span");
        black_box(())
    });

    // --- Metrics on: sharded registry vs the old global lock, under the
    // --- same fan-out serving uses. ---------------------------------------
    mcond_obs::enable_metrics();
    bench.run("obs/metrics/probe", || {
        mcond_obs::counter_add("bench.probe", 1);
        black_box(())
    });
    for threads in [1usize, 4] {
        bench.run(&format!("obs/metrics/sharded/t{threads}"), || hammer_sharded(threads));
        bench.run(&format!("obs/metrics/global_lock/t{threads}"), || {
            hammer_global_lock(threads);
        });
    }

    // --- Full tracing: sink attached, one trace + span + counter per
    // --- request. The capture buffer is cleared each iteration so memory
    // --- stays bounded across calibration. --------------------------------
    let cap = mcond_obs::testing::capture();
    for threads in [1usize, 4] {
        bench.run(&format!("obs/tracing_full/t{threads}"), || {
            cap.clear();
            traced_requests(threads);
        });
    }
    drop(cap);

    // --- Report. ----------------------------------------------------------
    let median = |name: &str| {
        bench.results().iter().find(|m| m.name == name).map(|m| m.median_ns).unwrap_or(f64::NAN)
    };
    let mut report = TableReport::new("observability overhead");
    let host_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    report.push(
        Row::new().key("bench", "host_threads").metric("value", host_threads as f64),
    );
    for name in ["obs/off/matmul64_raw", "obs/off/matmul64_probed"] {
        report.push(Row::new().key("bench", name).metric("median_ns", median(name)));
    }
    for name in ["obs/off/probe", "obs/off/span", "obs/metrics/probe"] {
        report.push(Row::new().key("bench", name).metric("ns_per_probe", median(name)));
    }
    for threads in [1usize, 4] {
        let sharded = median(&format!("obs/metrics/sharded/t{threads}"));
        let global = median(&format!("obs/metrics/global_lock/t{threads}"));
        report.push(
            Row::new()
                .key("bench", format!("obs/metrics/registry/t{threads}"))
                .metric("sharded_ns_per_probe", sharded / OPS as f64)
                .metric("global_lock_ns_per_probe", global / OPS as f64)
                .metric("speedup_vs_global_lock", global / sharded),
        );
    }
    for threads in [1usize, 4] {
        let traced = median(&format!("obs/tracing_full/t{threads}"));
        report.push(
            Row::new()
                .key("bench", format!("obs/tracing_full/t{threads}"))
                .metric("ns_per_request", traced / REQUESTS as f64),
        );
    }
    report.attach_metrics(&mcond_obs::snapshot());

    bench.finish("observability overhead");
    print_table(&report);
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let _ = std::fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/BENCH_obs_overhead.json");
    if let Err(e) = report.dump_json(&path) {
        eprintln!("cannot write {path}: {e}");
    }
}
