//! Drift experiment: inductive serving accuracy vs promoted-node count
//! between refreshes — the live-graph lifecycle opened by `core::delta`.
//!
//! A pubmed-small condensation is trained once, then held-out test nodes
//! are split into a fixed probe set and a promotion stream. The stream is
//! promoted into the live base in waves ([`LiveBase::promote`]); after
//! every wave the probe set is re-served and scored against ground truth,
//! charting how accuracy moves as the base absorbs approximately-attached
//! nodes without a refresh. The final phase runs the incremental refresh
//! (Eq. 12–15 re-sparsification + log replay) and re-scores the probes —
//! the replay-equivalence guard asserts the refreshed logits are bitwise
//! identical to the live base's, so the refresh row's accuracy delta is
//! provably zero and its cost columns (wall ms, checkpoint bytes) are the
//! honest price of the operation. An original-graph reference row (Eq. 3,
//! full neighbourhood) bounds what serving could score with no
//! condensation at all.
//!
//! Knobs: `MCOND_DRIFT_WAVES` (promotion waves, default 5),
//! `MCOND_DRIFT_WAVE` (nodes per wave, default 16),
//! `MCOND_DRIFT_PROBES` (probe nodes, default 100),
//! `MCOND_DRIFT_EPOCHS` (training epochs, default 80).
//!
//! Output: `results/BENCH_delta_drift.json`.

use mcond_bench::{print_table, Row, TableReport};
use mcond_core::{condense, GraphDelta, InductiveServer, LiveBase, McondConfig};
use mcond_gnn::{accuracy, train, GnnKind, GnnModel, GraphOps, TrainConfig};
use mcond_graph::{load_dataset, InductiveDataset, NodeBatch, Scale};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Chunks `nodes` into probe batches of at most 25 (the serving batch
/// size the other benches use).
fn probe_batches(data: &InductiveDataset, nodes: &[usize]) -> Vec<NodeBatch> {
    nodes.chunks(25).map(|c| data.batch(c, true)).collect()
}

/// Serves every probe batch and returns (accuracy over all probes,
/// elapsed milliseconds). Panics on any serve error — probes were built
/// against the original training width and must stay valid under prefix
/// widening as the base grows.
fn score(server: &InductiveServer, probes: &[NodeBatch]) -> (f64, f64) {
    let start = Instant::now();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, batch) in probes.iter().enumerate() {
        let logits = server.try_serve(batch).unwrap_or_else(|e| panic!("probe batch {i}: {e}"));
        #[allow(clippy::cast_precision_loss)]
        let acc = accuracy(&logits, &batch.labels);
        correct += (acc * batch.labels.len() as f64).round() as usize;
        total += batch.labels.len();
    }
    #[allow(clippy::cast_precision_loss)]
    (correct as f64 / total as f64, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let waves = env_usize("MCOND_DRIFT_WAVES", 5);
    let wave_nodes = env_usize("MCOND_DRIFT_WAVE", 16);
    let n_probes = env_usize("MCOND_DRIFT_PROBES", 100);
    let epochs = env_usize("MCOND_DRIFT_EPOCHS", 80);

    let data = load_dataset("pubmed", Scale::Small, 0).expect("pubmed generator");
    assert!(
        n_probes + waves * wave_nodes <= data.test_idx.len(),
        "probe set and promotion stream overlap: {} probes + {}x{} promoted > {} test nodes",
        n_probes,
        waves,
        wave_nodes,
        data.test_idx.len()
    );
    let probes = probe_batches(&data, &data.test_idx[..n_probes]);
    let stream = &data.test_idx[n_probes..n_probes + waves * wave_nodes];

    let cfg = McondConfig { ratio: 0.02, ..McondConfig::default() };
    let condensed = condense(&data, &cfg);
    let syn = condensed.synthetic.clone();
    let mut model =
        GnnModel::new(GnnKind::Gcn, data.full.feature_dim(), 32, data.full.num_classes, 7);
    train(
        &mut model,
        &GraphOps::from_adj(&syn.adj),
        &syn.features,
        &syn.labels,
        &TrainConfig { epochs, ..TrainConfig::default() },
        None,
    );

    let mut report = TableReport::new(
        "probe accuracy vs promoted-node count between refreshes (pubmed-small)",
    );

    // Upper reference: serving on the full original graph (Eq. 3) — what
    // the probes score with no condensation in the loop at all.
    let original = data.original_graph();
    let reference = InductiveServer::on_original(&original, &model);
    let (ref_acc, ref_ms) = score(&reference, &probes);
    report.push(
        Row::new()
            .key("phase", "reference_original")
            .metric("promoted", 0.0)
            .metric("accuracy", ref_acc)
            .metric("eval_ms", ref_ms),
    );

    let mut live =
        LiveBase::synthetic(syn, condensed.mapping.clone()).with_frozen_cache(&model);
    #[allow(clippy::cast_precision_loss)]
    let mut push_live_row = |live: &LiveBase, phase: String, promoted: usize| -> f64 {
        let (acc, eval_ms) = score(&live.server(&model), &probes);
        report.push(
            Row::new()
                .key("phase", phase)
                .metric("promoted", promoted as f64)
                .metric("accuracy", acc)
                .metric("base_nodes", live.base().num_nodes() as f64)
                .metric("mapping_nnz", live.mapping().expect("synthetic base").nnz() as f64)
                .metric("eval_ms", eval_ms),
        );
        acc
    };
    push_live_row(&live, "live".to_owned(), 0);

    for (w, chunk) in stream.chunks(wave_nodes).enumerate() {
        let delta = GraphDelta::from_batch(&data.batch(chunk, true));
        let promo = live.promote(&delta).unwrap_or_else(|e| panic!("wave {w}: {e}"));
        let promoted = wave_nodes * (w + 1);
        println!(
            "wave {w}: promoted {} nodes ({} edges), base version {} (cache {:?})",
            promo.nodes, promo.edges, promo.version, promo.cache
        );
        push_live_row(&live, "live".to_owned(), promoted);
    }

    // Incremental refresh: Eq. 12–15 re-sparsification + log replay. The
    // replayed state must be bitwise what the live base already serves —
    // guard that here so the cost columns describe a provably-lossless
    // operation.
    let refresh_start = Instant::now();
    let (refreshed, ckpt) =
        live.refresh(&condensed, &model, cfg.mu, cfg.delta).expect("refresh");
    let refresh_ms = refresh_start.elapsed().as_secs_f64() * 1e3;
    {
        let live_srv = live.server(&model);
        let fresh_srv = refreshed.server(&model);
        for (i, batch) in probes.iter().enumerate() {
            let a = live_srv.try_serve(batch).expect("live probe");
            let b = fresh_srv.try_serve(batch).expect("refreshed probe");
            assert!(
                a.bit_eq(&b),
                "probe batch {i}: refresh replay diverged from the live base — refusing to report"
            );
        }
        println!("verified {} probe batches bitwise stable across refresh", probes.len());
    }
    let ckpt_bytes = ckpt.to_writer().to_bytes().len();
    let lineage = ckpt.lineage.expect("refresh stamps lineage");
    #[allow(clippy::cast_precision_loss)]
    {
        let (acc, eval_ms) = score(&refreshed.server(&model), &probes);
        report.push(
            Row::new()
                .key("phase", "refreshed")
                .metric("promoted", lineage.promoted_nodes as f64)
                .metric("accuracy", acc)
                .metric("base_nodes", refreshed.base().num_nodes() as f64)
                .metric("mapping_nnz", refreshed.mapping().expect("synthetic").nnz() as f64)
                .metric("eval_ms", eval_ms)
                .metric("refresh_ms", refresh_ms)
                .metric("checkpoint_bytes", ckpt_bytes as f64),
        );
    }

    report.attach_metrics(&mcond_obs::snapshot());
    print_table(&report);
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out_dir).expect("create results dir");
    report
        .dump_json(&format!("{out_dir}/BENCH_delta_drift.json"))
        .expect("write BENCH_delta_drift.json");
    println!("wrote {out_dir}/BENCH_delta_drift.json");
}
