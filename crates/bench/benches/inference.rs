//! The Fig. 3 / Fig. 4 kernel as a microbench: end-to-end inductive
//! inference of one test batch on the original graph (Eq. 3) versus the
//! condensed graph through the mapping (Eq. 11), plus the Table III
//! propagation kernels on both targets.

use mcond_bench::microbench::{black_box, Bench};
use mcond_bench::pipeline::{build_pipeline, Pipeline};
use mcond_core::{InductiveServer, InferenceTarget};
use mcond_gnn::GraphOps;
use mcond_graph::Scale;
use mcond_propagate::{label_propagation, PropagationConfig};

fn pipeline() -> Pipeline {
    build_pipeline("reddit", Scale::Small, 0.015, 0, Some(60))
}

fn bench_inductive_inference(bench: &mut Bench, p: &Pipeline) {
    let batch = &p.data.test_batches(100, true)[0];
    let original = InferenceTarget::Original(&p.original);
    let synthetic = InferenceTarget::Synthetic {
        graph: &p.mcond.synthetic,
        mapping: &p.mcond.mapping,
    };

    bench.run("inductive_inference/original_graph", || {
        let (adj, x) = original.attach(batch);
        let ops = GraphOps::from_adj(&adj);
        black_box(p.model_original.predict(&ops, &x))
    });
    bench.run("inductive_inference/synthetic_graph", || {
        let (adj, x) = synthetic.attach(batch);
        let ops = GraphOps::from_adj(&adj);
        black_box(p.model_original.predict(&ops, &x))
    });
}

fn bench_propagation(bench: &mut Bench, p: &Pipeline) {
    let batch = &p.data.test_batches(100, true)[0];
    let cfg = PropagationConfig::default();

    let (adj_o, _) = InferenceTarget::Original(&p.original).attach(batch);
    let (adj_s, _) = InferenceTarget::Synthetic {
        graph: &p.mcond.synthetic,
        mapping: &p.mcond.mapping,
    }
    .attach(batch);

    bench.run("label_propagation/original_graph", || {
        black_box(label_propagation(
            &adj_o,
            &p.original.labels,
            p.original.num_nodes(),
            p.original.num_classes,
            &cfg,
        ))
    });
    bench.run("label_propagation/synthetic_graph", || {
        black_box(label_propagation(
            &adj_s,
            &p.mcond.synthetic.labels,
            p.mcond.synthetic.num_nodes(),
            p.original.num_classes,
            &cfg,
        ))
    });
}

/// The serving ablation: per-batch materialised attachment (copies the
/// base CSR each call) versus the lazy extended propagator of
/// `InductiveServer` — same logits, different per-batch cost.
fn bench_serving(bench: &mut Bench, p: &Pipeline) {
    let batch = &p.data.test_batches(100, true)[0];
    let original = InferenceTarget::Original(&p.original);
    let server = InductiveServer::on_original(&p.original, &p.model_original);

    bench.run("serving_original_graph/materialised_per_batch", || {
        let (adj, x) = original.attach(batch);
        let ops = GraphOps::from_adj(&adj);
        let logits = p.model_original.predict(&ops, &x);
        black_box(logits.slice_rows(p.original.num_nodes(), x.rows()))
    });
    bench.run("serving_original_graph/lazy_extended_server", || {
        black_box(server.serve(batch))
    });
}

fn main() {
    let p = pipeline();
    let mut bench = Bench::from_env().sample_size(20);
    bench_inductive_inference(&mut bench, &p);
    bench_propagation(&mut bench, &p);
    bench_serving(&mut bench, &p);
    bench.finish("inductive inference microbenches");
}
