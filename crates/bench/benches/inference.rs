//! The Fig. 3 / Fig. 4 kernel as a Criterion bench: end-to-end inductive
//! inference of one test batch on the original graph (Eq. 3) versus the
//! condensed graph through the mapping (Eq. 11), plus the Table III
//! propagation kernels on both targets.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcond_bench::pipeline::{build_pipeline, Pipeline};
use mcond_core::{InductiveServer, InferenceTarget};
use mcond_gnn::GraphOps;
use mcond_graph::Scale;
use mcond_propagate::{label_propagation, PropagationConfig};

fn pipeline() -> Pipeline {
    build_pipeline("reddit", Scale::Small, 0.015, 0, Some(60))
}

fn bench_inductive_inference(c: &mut Criterion) {
    let p = pipeline();
    let batch = &p.data.test_batches(100, true)[0];
    let original = InferenceTarget::Original(&p.original);
    let synthetic = InferenceTarget::Synthetic {
        graph: &p.mcond.synthetic,
        mapping: &p.mcond.mapping,
    };

    let mut group = c.benchmark_group("inductive_inference");
    group.bench_function("original_graph", |b| {
        b.iter(|| {
            let (adj, x) = original.attach(batch);
            let ops = GraphOps::from_adj(&adj);
            black_box(p.model_original.predict(&ops, &x))
        });
    });
    group.bench_function("synthetic_graph", |b| {
        b.iter(|| {
            let (adj, x) = synthetic.attach(batch);
            let ops = GraphOps::from_adj(&adj);
            black_box(p.model_original.predict(&ops, &x))
        });
    });
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let p = pipeline();
    let batch = &p.data.test_batches(100, true)[0];
    let cfg = PropagationConfig::default();

    let (adj_o, _) = InferenceTarget::Original(&p.original).attach(batch);
    let (adj_s, _) = InferenceTarget::Synthetic {
        graph: &p.mcond.synthetic,
        mapping: &p.mcond.mapping,
    }
    .attach(batch);

    let mut group = c.benchmark_group("label_propagation");
    group.bench_function("original_graph", |b| {
        b.iter(|| {
            black_box(label_propagation(
                &adj_o,
                &p.original.labels,
                p.original.num_nodes(),
                p.original.num_classes,
                &cfg,
            ))
        });
    });
    group.bench_function("synthetic_graph", |b| {
        b.iter(|| {
            black_box(label_propagation(
                &adj_s,
                &p.mcond.synthetic.labels,
                p.mcond.synthetic.num_nodes(),
                p.original.num_classes,
                &cfg,
            ))
        });
    });
    group.finish();
}

/// The serving ablation: per-batch materialised attachment (copies the
/// base CSR each call) versus the lazy extended propagator of
/// `InductiveServer` — same logits, different per-batch cost.
fn bench_serving(c: &mut Criterion) {
    let p = pipeline();
    let batch = &p.data.test_batches(100, true)[0];
    let original = InferenceTarget::Original(&p.original);
    let server = InductiveServer::on_original(&p.original, &p.model_original);

    let mut group = c.benchmark_group("serving_original_graph");
    group.bench_function("materialised_per_batch", |b| {
        b.iter(|| {
            let (adj, x) = original.attach(batch);
            let ops = GraphOps::from_adj(&adj);
            let logits = p.model_original.predict(&ops, &x);
            black_box(logits.slice_rows(p.original.num_nodes(), x.rows()))
        });
    });
    group.bench_function("lazy_extended_server", |b| {
        b.iter(|| black_box(server.serve(batch)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inductive_inference, bench_propagation, bench_serving
}
criterion_main!(benches);
