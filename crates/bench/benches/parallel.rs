//! Serial-vs-parallel speedup of the `mcond-par` fan-out paths: dense GEMM,
//! CSR SpMM on an SBM graph, and concurrent batch serving. Each kernel runs
//! once under `with_thread_limit(1)` (forced-serial baseline) and once under
//! `with_thread_limit(4)` — forced explicitly, because the ambient default
//! is serial unless `MCOND_THREADS` is exported, and an earlier version of
//! this bench silently timed the serial path twice. The report records both
//! timings and their ratio so later PRs have a perf baseline to regress
//! against.
//!
//! On a single-core machine the 4-thread rows still run (the pool
//! oversubscribes) and the speedup simply records ~1.0 — the bench never
//! fails on thread availability.
//!
//! Output: `results/BENCH_parallel.json` (plus the usual `MCOND_BENCH_JSON`
//! dump of the raw measurements when that variable is set).

use mcond_bench::microbench::{black_box, Bench};
use mcond_bench::{print_table, Row, TableReport};
use mcond_core::InductiveServer;
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{generate_sbm, load_dataset, SbmConfig, Scale};
use mcond_linalg::MatRng;
use mcond_sparse::sym_normalize;

const SERIAL: &str = "serial";
const PARALLEL: &str = "parallel";

/// Thread count of the parallel arm. Pinned (not `max_threads()`) so the
/// recorded rows mean the same thing on every machine.
const PAR_THREADS: usize = 4;

fn bench_matmul(bench: &mut Bench) {
    let mut rng = MatRng::seed_from(1);
    let a = rng.uniform(512, 512, -1.0, 1.0);
    let b = rng.uniform(512, 512, -1.0, 1.0);
    bench.run(&format!("matmul/512/{SERIAL}"), || {
        mcond_par::with_thread_limit(1, || black_box(a.matmul(&b)))
    });
    bench.run(&format!("matmul/512/{PARALLEL}"), || {
        mcond_par::with_thread_limit(PAR_THREADS, || black_box(a.matmul(&b)))
    });
}

fn bench_spmm(bench: &mut Bench) {
    let graph = generate_sbm(&SbmConfig {
        nodes: 8_000,
        edges: 80_000,
        feature_dim: 64,
        ..SbmConfig::default()
    });
    let ahat = sym_normalize(&graph.adj);
    bench.run(&format!("spmm/sbm8000/{SERIAL}"), || {
        mcond_par::with_thread_limit(1, || black_box(ahat.spmm(&graph.features)))
    });
    bench.run(&format!("spmm/sbm8000/{PARALLEL}"), || {
        mcond_par::with_thread_limit(PAR_THREADS, || black_box(ahat.spmm(&graph.features)))
    });
}

fn bench_serve_many(bench: &mut Bench) {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("pubmed generator");
    let original = data.original_graph();
    let model =
        GnnModel::new(GnnKind::Gcn, data.full.feature_dim(), 16, data.full.num_classes, 2);
    let server = InductiveServer::on_original(&original, &model);
    let batches = data.test_batches(40, true);
    bench.run(&format!("serve_many/pubmed/{SERIAL}"), || {
        mcond_par::with_thread_limit(1, || black_box(server.serve_many(&batches)))
    });
    bench.run(&format!("serve_many/pubmed/{PARALLEL}"), || {
        mcond_par::with_thread_limit(PAR_THREADS, || black_box(server.serve_many(&batches)))
    });
}

/// Folds the raw measurements into one row per kernel with serial/parallel
/// medians and their ratio.
fn speedup_report(bench: &Bench) -> TableReport {
    let mut report = TableReport::new("parallel speedup (serial median / parallel median)");
    let median = |name: &str| {
        bench
            .results()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.median_ns)
            .unwrap_or(f64::NAN)
    };
    for kernel in ["matmul/512", "spmm/sbm8000", "serve_many/pubmed"] {
        let serial = median(&format!("{kernel}/{SERIAL}"));
        let parallel = median(&format!("{kernel}/{PARALLEL}"));
        report.push(
            Row::new()
                .key("kernel", kernel)
                .key("serial_threads", 1)
                .key("parallel_threads", PAR_THREADS)
                .metric("serial_median_ns", serial)
                .metric("parallel_median_ns", parallel)
                .metric("speedup", serial / parallel),
        );
    }
    report.attach_metrics(&mcond_obs::snapshot());
    report
}

fn main() {
    let mut bench = Bench::from_env();
    bench_matmul(&mut bench);
    bench_spmm(&mut bench);
    bench_serve_many(&mut bench);
    let report = speedup_report(&bench);
    bench.finish("parallel kernel microbenches");
    print_table(&report);
    // Anchor at the workspace root (cargo bench runs with the package dir
    // as CWD) so the baseline lands next to the experiment outputs.
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let _ = std::fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/BENCH_parallel.json");
    if let Err(e) = report.dump_json(&path) {
        eprintln!("cannot write {path}: {e}");
    }
}
