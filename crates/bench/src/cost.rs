//! Shared driver for the Fig. 3 / Fig. 4 inference-cost experiments.

use crate::pipeline::{build_pipeline, default_batch_size};
use crate::{evaluate_inductive, parse_args, print_table, propagated_embeddings, Row, TableReport};
use mcond_core::{coreset, vng, CoresetMethod, InductiveServer, InferenceTarget};
use mcond_graph::dataset_spec;
use mcond_obs::MetricsSnapshot;

/// Re-labels every metric in `snapshot` with `prefix` so snapshots from
/// several servers (or datasets) coexist in one report.
fn prefixed(snapshot: &MetricsSnapshot, prefix: &str) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: snapshot.counters.iter().map(|(k, v)| (format!("{prefix}{k}"), *v)).collect(),
        gauges: snapshot.gauges.iter().map(|(k, v)| (format!("{prefix}{k}"), *v)).collect(),
        histograms: snapshot
            .histograms
            .iter()
            .map(|(k, v)| (format!("{prefix}{k}"), *v))
            .collect(),
    }
}

/// Runs the inference time/memory comparison for one batch setting and
/// prints/dumps the report. Annotates each method with its acceleration and
/// compression rate versus Whole, as the figures do.
pub fn run_cost_experiment(graph_batch: bool, title: &str) {
    let args = parse_args();
    // Aggregate kernel counters (FLOPs, SpMM traffic) even when no event
    // sink is configured, so the JSON dump always carries them.
    mcond_obs::enable_metrics();
    let mut report = TableReport::new(title);
    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        for &ratio in &spec.ratios {
            let p = build_pipeline(name, args.scale, ratio, args.seed, args.epochs);
            let batches = p.data.test_batches(default_batch_size(args.scale), graph_batch);
            let embeddings = propagated_embeddings(&p.original, 2);
            let n_syn = p.mcond.synthetic.num_nodes();

            let whole = evaluate_inductive(
                &p.model_original,
                &InferenceTarget::Original(&p.original),
                &batches,
            );
            let random =
                coreset(&p.original, &embeddings, n_syn, CoresetMethod::Random, args.seed);
            let random_cost = evaluate_inductive(
                &p.model_original,
                &InferenceTarget::Synthetic { graph: &random.graph, mapping: &random.mapping },
                &batches,
            );
            let virtual_graph = vng(&p.original, &p.original.features, n_syn, args.seed);
            let vng_cost = evaluate_inductive(
                &p.model_original,
                &InferenceTarget::Synthetic {
                    graph: &virtual_graph.graph,
                    mapping: &virtual_graph.mapping,
                },
                &batches,
            );
            let mcond_cost = evaluate_inductive(
                &p.model_original,
                &InferenceTarget::Synthetic {
                    graph: &p.mcond.synthetic,
                    mapping: &p.mcond.mapping,
                },
                &batches,
            );

            for (method, res) in [
                ("Whole", whole),
                ("Random", random_cost),
                ("VNG", vng_cost),
                ("MCond", mcond_cost),
            ] {
                report.push(
                    Row::new()
                        .key("dataset", name)
                        .key("r", format!("{:.2}%", 100.0 * ratio))
                        .key("method", method)
                        .metric("time_ms", 1000.0 * res.seconds_per_batch)
                        .metric("memory_MB", res.memory_bytes as f64 / 1e6)
                        .metric(
                            "speedup_vs_whole",
                            whole.seconds_per_batch / res.seconds_per_batch.max(1e-12),
                        )
                        .metric(
                            "compression_vs_whole",
                            whole.memory_bytes as f64 / res.memory_bytes.max(1) as f64,
                        ),
                );
            }

            // Serving pass: push the same batches through the lazy
            // `InductiveServer` on both deployment targets and fold the
            // request-level latency/fanout histograms into the dump.
            let server_whole = InductiveServer::on_original(&p.original, &p.model_original);
            let server_mcond = InductiveServer::on_synthetic(
                &p.mcond.synthetic,
                &p.mcond.mapping,
                &p.model_original,
            );
            for batch in &batches {
                let _ = server_whole.serve(batch);
                let _ = server_mcond.serve(batch);
            }
            let tag = format!("{name}/r={ratio}/");
            report.attach_metrics(&prefixed(
                &server_whole.metrics_snapshot(),
                &format!("{tag}whole."),
            ));
            report.attach_metrics(&prefixed(
                &server_mcond.metrics_snapshot(),
                &format!("{tag}mcond."),
            ));
        }
    }
    report.attach_metrics(&mcond_obs::snapshot());
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
