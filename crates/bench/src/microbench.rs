//! Minimal in-repo microbenchmark harness.
//!
//! The workspace builds hermetically with no external crates, so the
//! `benches/` targets (all `harness = false` binaries) drive this module
//! instead of an external benchmarking framework. The protocol is the
//! usual one: double the iteration count until one sample exceeds a
//! minimum wall-clock budget, then time a fixed number of samples and
//! report per-iteration statistics from the sample distribution.
//!
//! Environment knobs:
//! * `MCOND_BENCH_SAMPLES` — samples per bench (default 20; set low for
//!   smoke runs).
//! * `MCOND_BENCH_SAMPLE_MS` — minimum milliseconds per sample
//!   (default 10).
//! * `MCOND_BENCH_JSON` — when set to a path, the run also dumps a
//!   [`TableReport`](crate::TableReport) JSON file of every measurement.

pub use std::hint::black_box;
use std::time::Instant;

use crate::{Row, TableReport};

/// One finished measurement, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Bench name (slash-separated, e.g. `matmul/nn/128`).
    pub name: String,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample — the least noisy estimate on a quiet machine.
    pub min_ns: f64,
    /// Iterations timed per sample.
    pub iters: u64,
}

/// A benchmark session: run closures, collect [`Measurement`]s, print a
/// human-readable line per bench and optionally dump JSON at the end.
pub struct Bench {
    samples: usize,
    min_sample_ns: u128,
    results: Vec<Measurement>,
}

impl Bench {
    /// A session configured from the environment (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        let samples = std::env::var("MCOND_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20)
            .max(1);
        let sample_ms: u128 = std::env::var("MCOND_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10)
            .max(1);
        Self { samples, min_sample_ns: sample_ms * 1_000_000, results: Vec::new() }
    }

    /// Overrides the sample count (e.g. for expensive end-to-end benches).
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, records the measurement, and prints one summary line.
    pub fn run<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibration: double iterations until one batch fills the budget.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed >= self.min_sample_ns || iters >= 1 << 24 {
                break;
            }
            // Jump straight towards the budget instead of pure doubling so
            // calibration stays cheap for fast closures.
            let factor = if elapsed == 0 {
                16
            } else {
                (self.min_sample_ns / elapsed.max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(factor);
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                #[allow(clippy::cast_precision_loss)]
                {
                    t.elapsed().as_nanos() as f64 / iters as f64
                }
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min_ns = per_iter[0];
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<44} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {iters} iters)",
            fmt_ns(median_ns),
            fmt_ns(mean_ns),
            fmt_ns(min_ns),
            per_iter.len(),
        );
        self.results.push(Measurement {
            name: name.to_owned(),
            mean_ns,
            median_ns,
            min_ns,
            iters,
        });
    }

    /// The measurements recorded so far.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Finishes the session: folds the measurements into a
    /// [`TableReport`] and dumps it when `MCOND_BENCH_JSON` is set.
    pub fn finish(self, title: &str) -> TableReport {
        let mut report = TableReport::new(title);
        for m in &self.results {
            report.push(
                Row::new()
                    .key("bench", &m.name)
                    .metric("median_ns", m.median_ns)
                    .metric("mean_ns", m.mean_ns)
                    .metric("min_ns", m.min_ns),
            );
        }
        report.attach_metrics(&mcond_obs::snapshot());
        if let Ok(path) = std::env::var("MCOND_BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = report.dump_json(&path) {
                    eprintln!("MCOND_BENCH_JSON: cannot write {path}: {e}");
                }
            }
        }
        report
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_recorded_and_reported() {
        std::env::remove_var("MCOND_BENCH_JSON");
        let mut bench = Bench::from_env().sample_size(3);
        let mut acc = 0u64;
        bench.run("noop_add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(bench.results().len(), 1);
        let m = &bench.results()[0];
        assert!(m.min_ns >= 0.0 && m.min_ns <= m.mean_ns * 1.0001);
        let report = bench.finish("test benches");
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].keys[0].1, "noop_add");
    }
}
