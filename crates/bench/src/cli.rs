//! Minimal argument parsing shared by the experiment binaries.

use mcond_graph::Scale;

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// `--scale small|paper` (default `small`).
    pub scale: Scale,
    /// `--seed N` base seed (default 0).
    pub seed: u64,
    /// `--repeats N` independent runs per cell (default 3; the paper uses
    /// 5).
    pub repeats: usize,
    /// `--datasets a,b,c` filter (default: all three).
    pub datasets: Vec<String>,
    /// `--json PATH` also dump machine-readable results.
    pub json: Option<String>,
    /// `--epochs N` override GNN training epochs.
    pub epochs: Option<usize>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 0,
            repeats: 3,
            datasets: vec!["pubmed".into(), "flickr".into(), "reddit".into()],
            json: None,
            epochs: None,
        }
    }
}

/// Parses `std::env::args`, exiting with a usage message on errors.
#[must_use]
pub fn parse_args() -> BenchArgs {
    parse_from(std::env::args().skip(1))
}

fn parse_from(args: impl Iterator<Item = String>) -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut it = args.peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| usage(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--scale" => {
                out.scale = match value("--scale").as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => usage(&format!("unknown scale {other:?}")),
                }
            }
            "--seed" => {
                out.seed = value("--seed").parse().unwrap_or_else(|_| usage("bad --seed"))
            }
            "--repeats" => {
                out.repeats =
                    value("--repeats").parse().unwrap_or_else(|_| usage("bad --repeats"))
            }
            "--datasets" => {
                out.datasets = value("--datasets").split(',').map(str::to_owned).collect()
            }
            "--json" => out.json = Some(value("--json")),
            "--epochs" => {
                out.epochs =
                    Some(value("--epochs").parse().unwrap_or_else(|_| usage("bad --epochs")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if out.repeats == 0 {
        usage("--repeats must be positive");
    }
    out
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <experiment> [--scale small|paper] [--seed N] [--repeats N] \
         [--datasets pubmed,flickr,reddit] [--json PATH] [--epochs N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> BenchArgs {
        parse_from(items.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_are_sane() {
        let args = parse(&[]);
        assert_eq!(args.scale, Scale::Small);
        assert_eq!(args.repeats, 3);
        assert_eq!(args.datasets.len(), 3);
    }

    #[test]
    fn flags_override_defaults() {
        let args = parse(&[
            "--scale", "paper", "--seed", "9", "--repeats", "5", "--datasets", "reddit",
            "--epochs", "40",
        ]);
        assert_eq!(args.scale, Scale::Paper);
        assert_eq!(args.seed, 9);
        assert_eq!(args.repeats, 5);
        assert_eq!(args.datasets, vec!["reddit".to_owned()]);
        assert_eq!(args.epochs, Some(40));
    }
}
