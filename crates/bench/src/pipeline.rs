//! Shared construction of the per-(dataset, ratio, seed) experiment state.

use crate::eval::train_on_graph;
use mcond_core::{condense, Condensed, McondConfig};
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{load_dataset, Graph, InductiveDataset, Scale};

/// Everything the experiment binaries need for one configuration: the
/// dataset, the MCond artefacts, and SGC models trained on each side.
pub struct Pipeline {
    /// The inductive dataset.
    pub data: InductiveDataset,
    /// The original (training) graph `T`.
    pub original: Graph,
    /// MCond condensation output (`S`, `M`, traces).
    pub mcond: Condensed,
    /// SGC trained on the original graph (the `O->·` model).
    pub model_original: GnnModel,
    /// SGC trained on the MCond synthetic graph (the `S->·` model).
    pub model_synthetic: GnnModel,
    /// Epochs used for GNN training (scale-dependent).
    pub epochs: usize,
}

/// Per-dataset loss weights `(λ, β)` selected on the validation split with
/// the Fig. 7 sweep (the paper grid-searches both per dataset; §IV-A).
#[must_use]
pub fn tuned_loss_weights(dataset: &str) -> (f32, f32) {
    match dataset {
        "pubmed" => (1.0, 1.0),
        "flickr" => (10.0, 10.0),
        // reddit and unknown datasets.
        _ => (10.0, 1.0),
    }
}

/// Default condensation configuration per dataset and scale: the paper's
/// 3000–4000 epochs map to (outer × relay) steps here; the small scale uses
/// enough to converge on the synthetic datasets in seconds.
#[must_use]
pub fn default_condense_config(
    dataset: &str,
    scale: Scale,
    ratio: f64,
    seed: u64,
) -> McondConfig {
    let (lambda, beta) = tuned_loss_weights(dataset);
    match scale {
        Scale::Small => McondConfig {
            ratio,
            outer_loops: 6,
            relay_steps: 15,
            mapping_steps: 80,
            support_cap: 300,
            lambda,
            beta,
            seed,
            ..McondConfig::default()
        },
        Scale::Paper => McondConfig {
            ratio,
            outer_loops: 10,
            relay_steps: 25,
            mapping_steps: 100,
            support_cap: 512,
            structure_batch: 1024,
            transductive_batch: 4096,
            lambda,
            beta,
            seed,
            ..McondConfig::default()
        },
    }
}

/// GNN training epochs per scale.
#[must_use]
pub fn default_epochs(scale: Scale) -> usize {
    match scale {
        Scale::Small => 150,
        Scale::Paper => 400,
    }
}

/// Inference batch size per scale. The paper evaluates with batches of
/// 1000 test nodes on graphs of 20k-233k nodes; the small scale uses 100 so
/// a batch stays a comparably small fraction of the graph (otherwise the
/// graph-batch setting's test-test interconnections dominate and inflate
/// every baseline).
#[must_use]
pub fn default_batch_size(scale: Scale) -> usize {
    match scale {
        Scale::Small => 100,
        Scale::Paper => 1000,
    }
}

/// Builds the full pipeline for one configuration.
///
/// # Panics
/// Panics on unknown dataset names (the binaries validate earlier).
#[must_use]
pub fn build_pipeline(
    dataset: &str,
    scale: Scale,
    ratio: f64,
    seed: u64,
    epochs_override: Option<usize>,
) -> Pipeline {
    let data = load_dataset(dataset, scale, seed).expect("dataset name validated by caller");
    let original = data.original_graph();
    let cfg = default_condense_config(dataset, scale, ratio, seed);
    let mcond = condense(&data, &cfg);
    let epochs = epochs_override.unwrap_or_else(|| default_epochs(scale));
    let model_original = train_on_graph(&original, GnnKind::Sgc, epochs, 64, seed);
    let model_synthetic = train_on_graph(&mcond.synthetic, GnnKind::Sgc, epochs, 64, seed);
    Pipeline { data, original, mcond, model_original, model_synthetic, epochs }
}
