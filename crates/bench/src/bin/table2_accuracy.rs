//! Table II: inductive test accuracy of every method under both batch
//! settings and both condensation ratios.
//!
//! Methods: Whole (O->O), Random/Degree/Herding/K-Center coresets and VNG
//! (train on T, infer on reduced graph), MCond_OS (O->S), GCond (S->O),
//! MCond_SO (S->O), MCond_SS (S->S).

use mcond_bench::{
    evaluate_inductive, mean_std, parse_args, print_table, propagated_embeddings,
    train_on_graph, Row, TableReport,
};
use mcond_bench::pipeline::{build_pipeline, default_batch_size, default_condense_config, default_epochs};
use mcond_core::{condense, coreset, vng, CoresetMethod, InferenceTarget, McondConfig};
use mcond_gnn::GnnKind;
use mcond_graph::dataset_spec;

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("Table II — inductive test accuracy (%)");
    let batch_size = default_batch_size(args.scale);

    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        for &ratio in &spec.ratios {
            for &graph_batch in &[true, false] {
                let batch_label = if graph_batch { "graph" } else { "node" };
                // method -> accuracy per repeat (percent).
                let mut cells: Vec<(String, Vec<f64>)> = Vec::new();
                let record = |cells: &mut Vec<(String, Vec<f64>)>, m: &str, v: f64| {
                    if let Some(slot) = cells.iter_mut().find(|(k, _)| k == m) {
                        slot.1.push(v);
                    } else {
                        cells.push((m.to_owned(), vec![v]));
                    }
                };

                for rep in 0..args.repeats {
                    let seed = args.seed + rep as u64;
                    let p = build_pipeline(name, args.scale, ratio, seed, args.epochs);
                    let batches = p.data.test_batches(batch_size, graph_batch);
                    let orig_target = InferenceTarget::Original(&p.original);

                    // Whole: O->O.
                    let whole =
                        evaluate_inductive(&p.model_original, &orig_target, &batches);
                    record(&mut cells, "Whole", 100.0 * whole.accuracy);

                    // Coresets and VNG: train on T, infer on reduced graph.
                    let embeddings = propagated_embeddings(&p.original, 2);
                    let n_syn = p.mcond.synthetic.num_nodes();
                    for method in CoresetMethod::ALL {
                        let reduced =
                            coreset(&p.original, &embeddings, n_syn, method, seed);
                        let target = InferenceTarget::Synthetic {
                            graph: &reduced.graph,
                            mapping: &reduced.mapping,
                        };
                        let r = evaluate_inductive(&p.model_original, &target, &batches);
                        record(&mut cells, method.name(), 100.0 * r.accuracy);
                    }
                    let virtual_graph = vng(&p.original, &p.original.features, n_syn, seed);
                    let vng_target = InferenceTarget::Synthetic {
                        graph: &virtual_graph.graph,
                        mapping: &virtual_graph.mapping,
                    };
                    let r = evaluate_inductive(&p.model_original, &vng_target, &batches);
                    record(&mut cells, "VNG", 100.0 * r.accuracy);

                    // MCond targets.
                    let mcond_target = InferenceTarget::Synthetic {
                        graph: &p.mcond.synthetic,
                        mapping: &p.mcond.mapping,
                    };
                    let os = evaluate_inductive(&p.model_original, &mcond_target, &batches);
                    record(&mut cells, "MCond_OS", 100.0 * os.accuracy);
                    let so = evaluate_inductive(&p.model_synthetic, &orig_target, &batches);
                    record(&mut cells, "MCond_SO", 100.0 * so.accuracy);
                    let ss = evaluate_inductive(&p.model_synthetic, &mcond_target, &batches);
                    record(&mut cells, "MCond_SS", 100.0 * ss.accuracy);

                    // GCond baseline: separate condensation without the MCond
                    // additions, trained on S, inferred on the original.
                    let scale_defaults = default_condense_config(name, args.scale, ratio, seed);
                    let gcond_cfg = McondConfig {
                        outer_loops: scale_defaults.outer_loops,
                        relay_steps: scale_defaults.relay_steps,
                        ..McondConfig::gcond(ratio, seed)
                    };
                    let gcond = condense(&p.data, &gcond_cfg);
                    let epochs = args.epochs.unwrap_or_else(|| default_epochs(args.scale));
                    let gcond_model =
                        train_on_graph(&gcond.synthetic, GnnKind::Sgc, epochs, 64, seed);
                    let g = evaluate_inductive(&gcond_model, &orig_target, &batches);
                    record(&mut cells, "GCond", 100.0 * g.accuracy);
                }

                for (method, accs) in cells {
                    let (mean, std) = mean_std(&accs);
                    report.push(
                        Row::new()
                            .key("dataset", name)
                            .key("batch", batch_label)
                            .key("r", format!("{:.2}%", 100.0 * ratio))
                            .key("method", method)
                            .metric("acc", mean)
                            .metric("std", std),
                    );
                }
            }
        }
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
