//! Table IV: generalisability of the synthetic graph and mapping across GNN
//! architectures. Each architecture is trained on the MCond synthetic graph
//! and evaluated both on the original graph (MCond_SO) and on the synthetic
//! graph through the mapping (MCond_SS), reporting accuracy and per-batch
//! inference time.

use mcond_bench::pipeline::{default_batch_size, build_pipeline, default_epochs};
use mcond_bench::{evaluate_inductive, parse_args, print_table, train_on_graph, Row, TableReport};
use mcond_core::InferenceTarget;
use mcond_gnn::GnnKind;
use mcond_graph::dataset_spec;

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("Table IV — accuracy and time across GNN architectures");
    let architectures = [GnnKind::Gcn, GnnKind::Sage, GnnKind::Appnp, GnnKind::Cheby];

    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        let ratio = if name == "reddit" { spec.ratios[0] } else { spec.ratios[1] };
        let p = build_pipeline(name, args.scale, ratio, args.seed, args.epochs);
        let epochs = args.epochs.unwrap_or_else(|| default_epochs(args.scale));

        for &graph_batch in &[true, false] {
            let batch_label = if graph_batch { "graph" } else { "node" };
            let batches = p.data.test_batches(default_batch_size(args.scale), graph_batch);
            for kind in architectures {
                let model = train_on_graph(&p.mcond.synthetic, kind, epochs, 64, args.seed);
                let so = evaluate_inductive(
                    &model,
                    &InferenceTarget::Original(&p.original),
                    &batches,
                );
                let ss = evaluate_inductive(
                    &model,
                    &InferenceTarget::Synthetic {
                        graph: &p.mcond.synthetic,
                        mapping: &p.mcond.mapping,
                    },
                    &batches,
                );
                for (setting, res) in [("MCond_SO", so), ("MCond_SS", ss)] {
                    report.push(
                        Row::new()
                            .key("dataset", format!("{name} ({:.2}%)", 100.0 * ratio))
                            .key("batch", batch_label)
                            .key("arch", kind.name())
                            .key("setting", setting)
                            .metric("acc", 100.0 * res.accuracy)
                            .metric("time_ms", 1000.0 * res.seconds_per_batch),
                    );
                }
            }
        }
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
