//! Design-choice ablations called out in DESIGN.md §4 (not in the paper):
//!
//! * gradient distance: Eq. (5) column-cosine vs plain Frobenius L2,
//! * gradient matching granularity: whole-graph vs per-class (the original
//!   GCond formulation),
//!
//! evaluated as MCond_SO accuracy (the setting most sensitive to synthetic
//! graph quality).

use mcond_bench::pipeline::{default_batch_size, default_condense_config, default_epochs};
use mcond_bench::{
    evaluate_inductive, mean_std, parse_args, print_table, train_on_graph, Row, TableReport,
};
use mcond_core::{condense, GradDistance, InferenceTarget, McondConfig};
use mcond_gnn::GnnKind;
use mcond_graph::{dataset_spec, load_dataset};

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("Design ablation — gradient distance and granularity");
    type Tweak = fn(&mut McondConfig);
    let variants: [(&str, Tweak); 4] = [
        ("cosine/whole-graph (default)", |_| {}),
        ("L2/whole-graph", |c| c.grad_distance = GradDistance::L2),
        ("cosine/per-class", |c| c.per_class_matching = true),
        ("L2/per-class", |c| {
            c.grad_distance = GradDistance::L2;
            c.per_class_matching = true;
        }),
    ];

    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        let ratio = spec.ratios[1];
        for (variant, tweak) in variants {
            let mut accs = Vec::with_capacity(args.repeats);
            for rep in 0..args.repeats {
                let seed = args.seed + rep as u64;
                let data = load_dataset(name, args.scale, seed).expect("known dataset");
                let mut cfg = default_condense_config(name, args.scale, ratio, seed);
                tweak(&mut cfg);
                let condensed = condense(&data, &cfg);
                let epochs = args.epochs.unwrap_or_else(|| default_epochs(args.scale));
                let model =
                    train_on_graph(&condensed.synthetic, GnnKind::Sgc, epochs, 64, seed);
                let batches = data.test_batches(default_batch_size(args.scale), false);
                let res = evaluate_inductive(
                    &model,
                    &InferenceTarget::Original(&data.original_graph()),
                    &batches,
                );
                accs.push(100.0 * res.accuracy);
            }
            let (mean, std) = mean_std(&accs);
            report.push(
                Row::new()
                    .key("dataset", format!("{name} ({:.2}%)", 100.0 * ratio))
                    .key("variant", variant)
                    .metric("acc_SO", mean)
                    .metric("std", std),
            );
        }
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
