//! Fig. 7: sensitivity of MCond_OS (node batch) to the loss weights `λ`
//! (structure loss) and `β` (inductive loss), swept on Flickr as in the
//! paper (other datasets can be selected with `--datasets`).

use mcond_bench::pipeline::{default_batch_size, default_condense_config, default_epochs};
use mcond_bench::{evaluate_inductive, parse_args, print_table, train_on_graph, Row, TableReport};
use mcond_core::{condense, InferenceTarget};
use mcond_gnn::GnnKind;
use mcond_graph::{dataset_spec, load_dataset};

fn main() {
    let mut args = parse_args();
    if args.datasets.len() > 1 {
        // The paper sweeps one dataset (Flickr); default to it.
        args.datasets = vec!["flickr".to_owned()];
    }
    let name = args.datasets[0].clone();
    let spec = dataset_spec(&name, args.scale, args.seed).expect("known dataset");
    let ratio = spec.ratios[1];
    let data = load_dataset(&name, args.scale, args.seed).expect("known dataset");
    let epochs = args.epochs.unwrap_or_else(|| default_epochs(args.scale));

    let lambdas = [0.0, 0.01, 0.1, 1.0, 10.0, 100.0];
    let betas = [0.0, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0];

    let mut report =
        TableReport::new(&format!("Fig. 7 — λ/β sensitivity of MCond_OS on {name}"));

    let mut evaluate = |lambda: f32, beta: f32, which: &str| {
        let mut cfg = default_condense_config(&name, args.scale, ratio, args.seed);
        cfg.lambda = lambda;
        cfg.beta = beta;
        cfg.use_structure_loss = lambda > 0.0;
        cfg.use_inductive_loss = beta > 0.0;
        let condensed = condense(&data, &cfg);
        let model = train_on_graph(
            &data.original_graph(),
            GnnKind::Sgc,
            epochs,
            64,
            args.seed,
        );
        let batches = data.test_batches(default_batch_size(args.scale), false);
        let res = evaluate_inductive(
            &model,
            &InferenceTarget::Synthetic {
                graph: &condensed.synthetic,
                mapping: &condensed.mapping,
            },
            &batches,
        );
        report.push(
            Row::new()
                .key("sweep", which)
                .key("lambda", lambda)
                .key("beta", beta)
                .metric("acc_node_batch", 100.0 * res.accuracy),
        );
    };

    let default_beta = 100.0;
    let default_lambda = 0.1;
    for &lambda in &lambdas {
        evaluate(lambda, default_beta, "lambda");
    }
    for &beta in &betas {
        evaluate(default_lambda, beta, "beta");
    }

    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
