//! Table I: dataset properties. Generates every dataset at the requested
//! scale and prints node/edge/feature/class counts and the training-set
//! size (the original graph handed to condensation), alongside homophily
//! as a sanity column for the synthetic substitution.

use mcond_bench::{parse_args, print_table, Row, TableReport};
use mcond_graph::load_dataset;

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("Table I — dataset properties");
    for name in &args.datasets {
        let data = match load_dataset(name, args.scale, args.seed) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("skipping {name}: {e}");
                continue;
            }
        };
        let stats = data.full.stats();
        report.push(
            Row::new()
                .key("dataset", name)
                .metric("#nodes", stats.nodes as f64)
                .metric("#edges", stats.edges as f64)
                .metric("#feature", stats.features as f64)
                .metric("#class", stats.classes as f64)
                .metric("#training", data.train_idx.len() as f64)
                .metric("homophily", data.full.edge_homophily()),
        );
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
