//! Fig. 6: the sparsity/accuracy trade-off of the mapping threshold `δ`
//! (Eq. 14), under the MCond_OS node-batch setting. One condensation run
//! per dataset is re-sparsified across the δ sweep.

use mcond_bench::pipeline::{build_pipeline, default_batch_size};
use mcond_bench::{evaluate_inductive, parse_args, print_table, Row, TableReport};
use mcond_core::InferenceTarget;
use mcond_graph::dataset_spec;

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("Fig. 6 — accuracy vs mapping sparsity under δ");
    let deltas = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];

    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        let ratio = if name == "reddit" { spec.ratios[0] } else { spec.ratios[1] };
        let p = build_pipeline(name, args.scale, ratio, args.seed, args.epochs);
        let batches = p.data.test_batches(default_batch_size(args.scale), false);
        let total_entries = (p.mcond.dense_mapping.rows() * p.mcond.dense_mapping.cols()) as f64;

        for &delta in &deltas {
            let (adj, mapping) = p.mcond.resparsify(0.5, delta);
            let synthetic = mcond_graph::Graph::new(
                adj,
                p.mcond.synthetic.features.clone(),
                p.mcond.synthetic.labels.clone(),
                p.mcond.synthetic.num_classes,
            );
            let res = evaluate_inductive(
                &p.model_original,
                &InferenceTarget::Synthetic { graph: &synthetic, mapping: &mapping },
                &batches,
            );
            report.push(
                Row::new()
                    .key("dataset", format!("{name} ({:.2}%)", 100.0 * ratio))
                    .key("delta", delta)
                    .metric("acc", 100.0 * res.accuracy)
                    .metric("sparsity", 1.0 - mapping.nnz() as f64 / total_entries)
                    .metric("mapping_nnz", mapping.nnz() as f64)
                    .metric("mapping_MB", mapping.storage_bytes() as f64 / 1e6),
            );
        }
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
