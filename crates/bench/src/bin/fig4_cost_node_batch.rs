//! Fig. 4: inference time and memory under the **node batch** setting
//! (inductive nodes arrive without interconnections; ã = 0).

fn main() {
    mcond_bench::cost::run_cost_experiment(false, "Fig. 4 — inference cost, node batch");
}
