//! Offline trace reporter: folds a JSONL event log (written via
//! `MCOND_LOG=<path>`) into the same call-tree profile the in-process
//! profiler produces, and prints it as a text table — or, with `--folded`,
//! as folded-stack lines ready for the common flamegraph tooling.
//!
//! ```text
//! MCOND_LOG=events.jsonl cargo run --example robust_serving
//! cargo run -p mcond-bench --bin trace-report -- events.jsonl
//! cargo run -p mcond-bench --bin trace-report -- events.jsonl --folded
//! ```

use mcond_obs::{Json, Profile};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut folded = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--folded" => folded = true,
            "--help" | "-h" => {
                eprintln!("usage: trace-report <events.jsonl> [--folded]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("trace-report: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace-report <events.jsonl> [--folded]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let profile = Profile::from_jsonl(&text);
    if profile.is_empty() {
        eprintln!("trace-report: no span records in {path}");
        return ExitCode::FAILURE;
    }
    if folded {
        println!("{}", profile.folded());
        return ExitCode::SUCCESS;
    }

    // Header line: how many records / distinct traces the log covers.
    let mut records = 0usize;
    let mut traces: BTreeSet<u64> = BTreeSet::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(j) = Json::parse(line) else { continue };
        records += 1;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        if let Some(t) = j.get("trace").and_then(Json::as_f64) {
            if t > 0.0 {
                traces.insert(t as u64);
            }
        }
    }
    println!("{path}: {records} records, {} traced requests", traces.len());
    print!("{}", profile.table());
    ExitCode::SUCCESS
}
