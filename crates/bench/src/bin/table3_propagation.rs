//! Table III: label propagation (LP) and error propagation (EP) on the
//! original (O) versus synthetic (S) graph, with per-batch propagation time
//! and the S-vs-O acceleration ratio.
//!
//! The vanilla model is SGC trained on the synthetic graph (matching the
//! paper's Table III baseline rows, which equal MCond_SO / MCond_SS).

use mcond_bench::pipeline::{build_pipeline, default_batch_size};
use mcond_bench::{parse_args, print_table, Row, TableReport};
use mcond_core::InferenceTarget;
use mcond_gnn::{accuracy, GnnModel, GraphOps};
use mcond_graph::dataset_spec;
use mcond_propagate::{error_propagation, label_propagation, PropagationConfig};
use std::time::Instant;

struct Outcome {
    vanilla: f64,
    lp: f64,
    ep: f64,
    propagation_ms: f64,
}

fn evaluate(
    model: &GnnModel,
    target: &InferenceTarget,
    batches: &[mcond_graph::NodeBatch],
    base_labels: &[usize],
    num_classes: usize,
) -> Outcome {
    let cfg = PropagationConfig::default();
    let n_base = target.base_nodes();
    let mut vanilla_hits = 0.0;
    let mut lp_hits = 0.0;
    let mut ep_hits = 0.0;
    let mut nodes = 0usize;
    let mut prop_seconds = 0.0;
    for batch in batches {
        let (adj, x) = target.attach(batch);
        let ops = GraphOps::from_adj(&adj);
        let logits = model.predict(&ops, &x);
        let test_logits = logits.slice_rows(n_base, logits.rows());
        vanilla_hits += accuracy(&test_logits, &batch.labels) * batch.len() as f64;

        let start = Instant::now();
        let lp_scores = label_propagation(&adj, base_labels, n_base, num_classes, &cfg);
        let ep_scores = error_propagation(&adj, &logits, base_labels, n_base, 1.0, &cfg);
        prop_seconds += start.elapsed().as_secs_f64();

        let lp_test = lp_scores.slice_rows(n_base, lp_scores.rows());
        let ep_test = ep_scores.slice_rows(n_base, ep_scores.rows());
        lp_hits += accuracy(&lp_test, &batch.labels) * batch.len() as f64;
        ep_hits += accuracy(&ep_test, &batch.labels) * batch.len() as f64;
        nodes += batch.len();
    }
    let n = nodes.max(1) as f64;
    Outcome {
        vanilla: 100.0 * vanilla_hits / n,
        lp: 100.0 * lp_hits / n,
        ep: 100.0 * ep_hits / n,
        // LP+EP measured together above; report the per-batch half as the
        // per-technique propagation time.
        propagation_ms: 500.0 * prop_seconds / batches.len().max(1) as f64,
    }
}

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("Table III — label/error propagation on O vs S");
    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        // Paper uses the larger ratio for Pubmed/Flickr, the smaller for
        // Reddit.
        let ratio = if name == "reddit" { spec.ratios[0] } else { spec.ratios[1] };
        let p = build_pipeline(name, args.scale, ratio, args.seed, args.epochs);
        for &graph_batch in &[true, false] {
            let batch_label = if graph_batch { "graph" } else { "node" };
            let batches = p.data.test_batches(default_batch_size(args.scale), graph_batch);

            let orig = evaluate(
                &p.model_synthetic,
                &InferenceTarget::Original(&p.original),
                &batches,
                &p.original.labels,
                p.original.num_classes,
            );
            let syn = evaluate(
                &p.model_synthetic,
                &InferenceTarget::Synthetic {
                    graph: &p.mcond.synthetic,
                    mapping: &p.mcond.mapping,
                },
                &batches,
                &p.mcond.synthetic.labels,
                p.original.num_classes,
            );

            for (graph_label, o, accel) in [
                ("O", &orig, 1.0),
                ("S", &syn, orig.propagation_ms / syn.propagation_ms.max(1e-9)),
            ] {
                report.push(
                    Row::new()
                        .key("dataset", format!("{name} ({:.2}%)", 100.0 * ratio))
                        .key("batch", batch_label)
                        .key("graph", graph_label)
                        .metric("vanilla", o.vanilla)
                        .metric("LP", o.lp)
                        .metric("EP", o.ep)
                        .metric("prop_time_ms", o.propagation_ms)
                        .metric("accel", accel),
                );
            }
        }
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
