//! Dataset-difficulty diagnostics for the synthetic stand-ins.
//!
//! The paper's result ordering depends on three dataset traits:
//!
//! * **feature-only accuracy** (SGC with 0 hops) must sit well below
//! * **structure accuracy** (Whole: SGC with 2 hops on the full graph), and
//! * **coreset starvation**: at ratio `r`, a test node should have ≈
//!   `r · degree` edges into a random coreset — when this is ≪ 1 the
//!   coreset baselines collapse, as on real Reddit.
//!
//! Run after touching the generator knobs in `mcond-graph/src/specs.rs`.

use mcond_bench::pipeline::default_batch_size;
use mcond_bench::{evaluate_inductive, parse_args, print_table, Row, TableReport};
use mcond_core::InferenceTarget;
use mcond_gnn::{train, GnnKind, GnnModel, GraphOps, TrainConfig};
use mcond_graph::{dataset_spec, load_dataset};

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("dataset difficulty calibration");
    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        let data = load_dataset(name, args.scale, args.seed).expect("known dataset");
        let original = data.original_graph();
        let ops = GraphOps::from_adj(&original.adj);
        let epochs = args.epochs.unwrap_or(150);
        let cfg = TrainConfig { epochs, lr: 0.03, ..TrainConfig::default() };

        let eval_with_hops = |hops: usize| -> f64 {
            let mut model = GnnModel::new(
                GnnKind::Sgc,
                original.feature_dim(),
                0,
                original.num_classes,
                args.seed,
            );
            model.hops = hops;
            train(&mut model, &ops, &original.features, &original.labels, &cfg, None);
            let batches = data.test_batches(default_batch_size(args.scale), false);
            evaluate_inductive(&model, &InferenceTarget::Original(&original), &batches)
                .accuracy
        };
        let feature_only = eval_with_hops(0);
        let structural = eval_with_hops(2);

        // Mean test-node edges into the training graph, and the expected
        // edges into a random coreset of size r·N at each paper ratio.
        let batches = data.test_batches(usize::MAX, false);
        let test_degree = batches
            .iter()
            .map(|b| b.incremental.nnz() as f64)
            .sum::<f64>()
            / data.test_idx.len() as f64;

        report.push(
            Row::new()
                .key("dataset", name)
                .metric("feature_only_acc", 100.0 * feature_only)
                .metric("whole_acc", 100.0 * structural)
                .metric("structure_gain", 100.0 * (structural - feature_only))
                .metric("test_degree", test_degree)
                .metric("coreset_edges_r0", test_degree * spec.ratios[0])
                .metric("coreset_edges_r1", test_degree * spec.ratios[1]),
        );
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
