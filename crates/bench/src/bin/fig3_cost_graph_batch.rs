//! Fig. 3: inference time and memory under the **graph batch** setting for
//! each dataset and reduction ratio, with the MCond-vs-Whole acceleration
//! and compression rates the figure annotates.

fn main() {
    mcond_bench::cost::run_cost_experiment(true, "Fig. 3 — inference cost, graph batch");
}
