//! Fig. 5: mapping-matrix visualisation and the initialisation study.
//!
//! (a) class-correlation block structure of the *trained* mapping,
//! (b) the same for the class-aware *initialisation*,
//! (c) mapping-loss curves for class-aware versus random initialisation,
//!     plus the resulting MCond_SS accuracy of both.
//!
//! The class-correlation matrices are printed as text heat rows (mean
//! mapping weight from original-class a to synthetic-class b, classes
//! ordered by size as in the paper).

use mcond_bench::pipeline::{default_batch_size, default_condense_config, default_epochs};
use mcond_bench::{evaluate_inductive, parse_args, print_table, train_on_graph, Row, TableReport};
use mcond_core::{class_correlation_of, condense, InferenceTarget, Mapping};
use mcond_gnn::GnnKind;
use mcond_graph::load_dataset;
use mcond_linalg::DMat;

fn print_correlation(title: &str, corr: &DMat, order: &[usize]) {
    println!("\n--- {title} (classes ordered by size) ---");
    for &a in order {
        let row: Vec<String> =
            order.iter().map(|&b| format!("{:.3}", corr.get(a, b))).collect();
        println!("  {}", row.join(" "));
    }
}

fn main() {
    let args = parse_args();
    // The paper shows Reddit; any requested dataset works.
    let name = args.datasets.first().map_or("reddit", String::as_str);
    let data = load_dataset(name, args.scale, args.seed).expect("known dataset");
    let original = data.original_graph();
    let ratio = 0.01_f64.max(original.num_classes as f64 / original.num_nodes() as f64);
    let cfg = default_condense_config(name, args.scale, ratio, args.seed);

    // Class order by size, descending (paper orders classes by class size).
    let mut order: Vec<usize> = (0..original.num_classes).collect();
    let counts = original.class_counts();
    order.sort_by_key(|&c| std::cmp::Reverse(counts[c]));

    // --- (a)/(b): trained vs initialised correlation. -----------------------
    let condensed = condense(&data, &cfg);
    let init_mapping =
        Mapping::class_init(&original.labels, &condensed.synthetic.labels, cfg.epsilon);
    let trained_corr = class_correlation_of(
        &condensed.dense_mapping,
        &original.labels,
        &condensed.synthetic.labels,
        original.num_classes,
    );
    let init_corr = init_mapping.class_correlation(
        &original.labels,
        &condensed.synthetic.labels,
        original.num_classes,
    );
    print_correlation("Fig. 5(a) — trained mapping M", &trained_corr, &order);
    print_correlation("Fig. 5(b) — class-aware initialisation", &init_corr, &order);

    // --- (c): loss curves and accuracy, class-aware vs random init. ---------
    let mut report = TableReport::new("Fig. 5(c) — initialisation study");
    let epochs = args.epochs.unwrap_or_else(|| default_epochs(args.scale));
    for (label, class_aware) in [("class-aware init", true), ("random init", false)] {
        let mut variant_cfg = cfg.clone();
        variant_cfg.class_aware_init = class_aware;
        let result = condense(&data, &variant_cfg);
        let losses = &result.history.mapping_loss;
        let first = losses.first().copied().unwrap_or(0.0);
        let last = losses.last().copied().unwrap_or(0.0);
        println!("\nmapping-loss curve ({label}):");
        let stride = (losses.len() / 10).max(1);
        let samples: Vec<String> = losses
            .iter()
            .step_by(stride)
            .map(|v| format!("{v:.4}"))
            .collect();
        println!("  {}", samples.join(" -> "));

        let model = train_on_graph(&result.synthetic, GnnKind::Sgc, epochs, 64, args.seed);
        let batches = data.test_batches(default_batch_size(args.scale), false);
        let res = evaluate_inductive(
            &model,
            &InferenceTarget::Synthetic {
                graph: &result.synthetic,
                mapping: &result.mapping,
            },
            &batches,
        );
        report.push(
            Row::new()
                .key("dataset", name)
                .key("init", label)
                .metric("first_loss", f64::from(first))
                .metric("final_loss", f64::from(last))
                .metric("acc_node_batch", 100.0 * res.accuracy),
        );
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
