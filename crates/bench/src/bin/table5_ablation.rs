//! Table V: optimisation-constraint ablation under the MCond_SS setting —
//! "Plain" (no L_str, no L_ind), "w/o L_str", "w/o L_ind", and full MCond.

use mcond_bench::pipeline::{default_batch_size, default_condense_config, default_epochs};
use mcond_bench::{
    evaluate_inductive, mean_std, parse_args, print_table, train_on_graph, Row, TableReport,
};
use mcond_core::{condense, InferenceTarget, McondConfig};
use mcond_gnn::GnnKind;
use mcond_graph::{dataset_spec, load_dataset};

fn main() {
    let args = parse_args();
    let mut report = TableReport::new("Table V — optimisation-constraint ablation (MCond_SS)");
    type Tweak = fn(&mut McondConfig);
    let variants: [(&str, Tweak); 4] = [
        ("Plain", |c| {
            c.use_structure_loss = false;
            c.use_inductive_loss = false;
        }),
        ("w/o L_str", |c| c.use_structure_loss = false),
        ("w/o L_ind", |c| c.use_inductive_loss = false),
        ("MCond_SS", |_| {}),
    ];

    for name in &args.datasets {
        let Ok(spec) = dataset_spec(name, args.scale, args.seed) else {
            eprintln!("skipping unknown dataset {name}");
            continue;
        };
        let ratio = if name == "reddit" { spec.ratios[0] } else { spec.ratios[1] };
        for (variant_name, tweak) in variants {
            for &graph_batch in &[true, false] {
                let mut accs = Vec::with_capacity(args.repeats);
                for rep in 0..args.repeats {
                    let seed = args.seed + rep as u64;
                    let data = load_dataset(name, args.scale, seed).expect("known dataset");
                    let mut cfg = default_condense_config(name, args.scale, ratio, seed);
                    tweak(&mut cfg);
                    let condensed = condense(&data, &cfg);
                    let epochs = args.epochs.unwrap_or_else(|| default_epochs(args.scale));
                    let model =
                        train_on_graph(&condensed.synthetic, GnnKind::Sgc, epochs, 64, seed);
                    let batches = data.test_batches(default_batch_size(args.scale), graph_batch);
                    let res = evaluate_inductive(
                        &model,
                        &InferenceTarget::Synthetic {
                            graph: &condensed.synthetic,
                            mapping: &condensed.mapping,
                        },
                        &batches,
                    );
                    accs.push(100.0 * res.accuracy);
                }
                let (mean, std) = mean_std(&accs);
                report.push(
                    Row::new()
                        .key("dataset", format!("{name} ({:.2}%)", 100.0 * ratio))
                        .key("method", variant_name)
                        .key("batch", if graph_batch { "graph" } else { "node" })
                        .metric("acc", mean)
                        .metric("std", std),
                );
            }
        }
    }
    print_table(&report);
    if let Some(path) = &args.json {
        report.dump_json(path).expect("write json");
    }
}
