//! The train-once / infer-per-batch evaluation loop behind every table.

use mcond_core::InferenceTarget;
use mcond_gnn::{accuracy, train, CostMeter, GnnKind, GnnModel, GraphOps, TrainConfig};
use mcond_graph::{Graph, NodeBatch};
use mcond_linalg::DMat;
use mcond_sparse::sym_normalize;

/// The paper's four deployment settings (§IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalSetting {
    /// Train and infer on the original graph ("Whole").
    OriginalToOriginal,
    /// Train on the original graph, infer on the synthetic one (MCond_OS,
    /// coresets, VNG).
    OriginalToSynthetic,
    /// Train on the synthetic graph, infer on the original (GCond,
    /// MCond_SO).
    SyntheticToOriginal,
    /// Train and infer on the synthetic graph (MCond_SS).
    SyntheticToSynthetic,
}

impl EvalSetting {
    /// Table II column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EvalSetting::OriginalToOriginal => "O->O",
            EvalSetting::OriginalToSynthetic => "O->S",
            EvalSetting::SyntheticToOriginal => "S->O",
            EvalSetting::SyntheticToSynthetic => "S->S",
        }
    }
}

/// One evaluated cell: accuracy plus the Fig. 3/4 cost quantities.
#[derive(Clone, Copy, Debug)]
pub struct EvalResult {
    /// Test accuracy over all batches.
    pub accuracy: f64,
    /// Mean inference seconds per batch.
    pub seconds_per_batch: f64,
    /// Peak memory (storage model) over batches, bytes.
    pub memory_bytes: usize,
}

/// Trains a fresh GNN of the given kind on a fully labelled graph.
#[must_use]
pub fn train_on_graph(
    graph: &Graph,
    kind: GnnKind,
    epochs: usize,
    hidden: usize,
    seed: u64,
) -> GnnModel {
    let ops = GraphOps::from_adj(&graph.adj);
    let mut model = GnnModel::new(
        kind,
        graph.feature_dim(),
        hidden,
        graph.num_classes,
        seed,
    );
    let cfg = TrainConfig { epochs, lr: 0.03, weight_decay: 5e-4, patience: None };
    let _ = train(&mut model, &ops, &graph.features, &graph.labels, &cfg, None);
    model
}

/// L-hop propagated features `Â^L X` — the embeddings handed to the
/// Herding / K-Center / VNG baselines.
#[must_use]
pub fn propagated_embeddings(graph: &Graph, hops: usize) -> DMat {
    let ahat = sym_normalize(&graph.adj);
    let mut z = graph.features.clone();
    for _ in 0..hops {
        z = ahat.spmm(&z);
    }
    z
}

/// Evaluates a trained model on inductive batches against a deployment
/// target, timing each batch's end-to-end inference (attach + normalize +
/// forward) and accounting the storage model of §II-B.
#[must_use]
pub fn evaluate_inductive(
    model: &GnnModel,
    target: &InferenceTarget,
    batches: &[NodeBatch],
) -> EvalResult {
    let meter = CostMeter { repeats: 1 };
    let mut correct_weighted = 0.0f64;
    let mut total_nodes = 0usize;
    let mut total_seconds = 0.0f64;
    let mut peak_memory = 0usize;
    for batch in batches {
        // Memory accounting needs the extended matrices; the timed closure
        // re-attaches so the measured cost covers the full Eq. (3)/(11)
        // pipeline (attach + normalise + forward), as the paper measures.
        let (adj, x) = target.attach(batch);
        let n_base = target.base_nodes();
        let (logits, cost) = meter.measure(&adj, x.rows(), x.cols(), || {
            let (adj, x) = target.attach(batch);
            let ops = GraphOps::from_adj(&adj);
            let full = model.predict(&ops, &x);
            full.slice_rows(n_base, full.rows())
        });
        correct_weighted += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total_nodes += batch.len();
        total_seconds += cost.seconds;
        peak_memory = peak_memory.max(cost.memory_bytes);
    }
    EvalResult {
        accuracy: if total_nodes == 0 { 0.0 } else { correct_weighted / total_nodes as f64 },
        seconds_per_batch: if batches.is_empty() {
            0.0
        } else {
            total_seconds / batches.len() as f64
        },
        memory_bytes: peak_memory,
    }
}

/// Mean and sample standard deviation of repeated accuracy measurements.
#[must_use]
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_graph::{load_dataset, Scale};

    #[test]
    fn whole_pipeline_beats_chance_on_small_pubmed() {
        let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
        let original = data.original_graph();
        let model = train_on_graph(&original, GnnKind::Sgc, 150, 32, 0);
        let batches = data.test_batches(100, true);
        let result =
            evaluate_inductive(&model, &InferenceTarget::Original(&original), &batches);
        assert!(result.accuracy > 0.55, "accuracy {}", result.accuracy);
        assert!(result.seconds_per_batch > 0.0);
        assert!(result.memory_bytes > 0);
    }

    #[test]
    fn mean_std_computes_sample_statistics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }

    #[test]
    fn propagated_embeddings_shape() {
        let data = load_dataset("pubmed", Scale::Small, 1).unwrap();
        let orig = data.original_graph();
        let z = propagated_embeddings(&orig, 2);
        assert_eq!(z.shape(), (orig.num_nodes(), orig.feature_dim()));
    }
}
