//! Table rendering and machine-readable result dumps.

use mcond_obs::{Json, MetricsSnapshot};

/// One result row: free-form key columns plus named numeric metrics.
#[derive(Clone, Debug)]
pub struct Row {
    /// Key columns (dataset, method, ratio, …) in table order.
    pub keys: Vec<(String, String)>,
    /// Metric columns (accuracy, time, memory, …) in table order.
    pub metrics: Vec<(String, f64)>,
}

impl Row {
    /// Starts a row.
    #[must_use]
    pub fn new() -> Self {
        Self { keys: Vec::new(), metrics: Vec::new() }
    }

    /// Adds a key column.
    #[must_use]
    pub fn key(mut self, name: &str, value: impl ToString) -> Self {
        self.keys.push((name.to_owned(), value.to_string()));
        self
    }

    /// Adds a metric column.
    #[must_use]
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        self.metrics.push((name.to_owned(), value));
        self
    }

    fn to_json(&self) -> Json {
        let mut keys = Json::obj();
        for (k, v) in &self.keys {
            keys.insert(k, v.as_str());
        }
        let mut metrics = Json::obj();
        for (k, v) in &self.metrics {
            metrics.insert(k, *v);
        }
        Json::obj().with("keys", keys).with("metrics", metrics)
    }
}

impl Default for Row {
    fn default() -> Self {
        Self::new()
    }
}

/// A titled collection of rows, optionally carrying the observability
/// counters/histograms captured while the experiment ran.
#[derive(Clone, Debug)]
pub struct TableReport {
    /// Table/figure title (e.g. `"Table II — inductive accuracy"`).
    pub title: String,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Pipeline metrics (kernel counters, serve latency histograms, …)
    /// folded into the JSON dump when non-empty.
    pub metrics: MetricsSnapshot,
}

impl TableReport {
    /// An empty report.
    #[must_use]
    pub fn new(title: &str) -> Self {
        Self { title: title.to_owned(), rows: Vec::new(), metrics: MetricsSnapshot::default() }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Merges an observability snapshot into the report (e.g. a server's
    /// latency histograms or the global kernel counters).
    pub fn attach_metrics(&mut self, snapshot: &MetricsSnapshot) {
        self.metrics.counters.extend(snapshot.counters.iter().cloned());
        self.metrics.gauges.extend(snapshot.gauges.iter().cloned());
        self.metrics.histograms.extend(snapshot.histograms.iter().cloned());
    }

    /// The report as a JSON value: `{title, rows, [metrics]}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self.rows.iter().map(Row::to_json).collect();
        let mut json = Json::obj().with("title", self.title.as_str()).with("rows", rows);
        if !self.metrics.is_empty() {
            json.insert("metrics", self.metrics.to_json());
        }
        json
    }

    /// Writes the report as pretty-printed JSON to `path`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn dump_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().pretty())
    }
}

/// Renders a report as an aligned text table to stdout.
pub fn print_table(report: &TableReport) {
    println!("\n=== {} ===", report.title);
    let Some(first) = report.rows.first() else {
        println!("(no rows)");
        return;
    };
    let headers: Vec<String> = first
        .keys
        .iter()
        .map(|(k, _)| k.clone())
        .chain(first.metrics.iter().map(|(k, _)| k.clone()))
        .collect();
    let mut cells: Vec<Vec<String>> = vec![headers];
    for row in &report.rows {
        cells.push(
            row.keys
                .iter()
                .map(|(_, v)| v.clone())
                .chain(row.metrics.iter().map(|(_, v)| format_metric(*v)))
                .collect(),
        );
    }
    let cols = cells[0].len();
    if cols == 0 {
        println!("(no columns)");
        return;
    }
    let widths: Vec<usize> = (0..cols)
        .map(|c| cells.iter().map(|r| r.get(c).map_or(0, String::len)).max().unwrap_or(0))
        .collect();
    for (i, row) in cells.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{cell:>w$}", w = *w))
            .collect();
        println!("{}", line.join("  "));
        if i == 0 {
            println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        }
    }
}

fn format_metric(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 1e7 {
        format!("{v:.0}")
    } else if v.abs() >= 1e6 {
        format!("{:.3e}", v)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_keep_column_order() {
        let row = Row::new().key("dataset", "pubmed").key("r", 0.01).metric("acc", 0.78);
        assert_eq!(row.keys[0].0, "dataset");
        assert_eq!(row.keys[1].1, "0.01");
        assert_eq!(row.metrics[0], ("acc".to_owned(), 0.78));
    }

    #[test]
    fn json_dump_round_trips() {
        let mut report = TableReport::new("test");
        report.push(Row::new().key("k", "v").metric("m", 1.5));
        let path = std::env::temp_dir().join("mcond_report_test.json");
        report.dump_json(path.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"title\": \"test\""));
        assert!(text.contains("1.5"));
        // The dump is parseable JSON with the same structure.
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("title").and_then(Json::as_str), Some("test"));
        let rows = parsed.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(
            rows[0].get("metrics").and_then(|m| m.get("m")).and_then(Json::as_f64),
            Some(1.5)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn attached_metrics_appear_in_the_dump() {
        let mut report = TableReport::new("with metrics");
        report.push(Row::new().key("k", "v").metric("m", 2.0));
        let snap = MetricsSnapshot {
            counters: vec![("linalg.matmul.flops".to_owned(), 1234)],
            gauges: vec![],
            histograms: vec![],
        };
        report.attach_metrics(&snap);
        let json = report.to_json();
        assert_eq!(
            json.get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("linalg.matmul.flops"))
                .and_then(Json::as_f64),
            Some(1234.0)
        );
        // Empty snapshots stay out of the dump entirely.
        let bare = TableReport::new("bare").to_json();
        assert!(bare.get("metrics").is_none());
    }

    #[test]
    fn print_table_survives_empty_rows_and_columns() {
        // No rows at all.
        print_table(&TableReport::new("empty"));
        // A row with zero columns used to underflow the separator width.
        let mut report = TableReport::new("zero-cols");
        report.push(Row::new());
        print_table(&report);
    }

    #[test]
    fn metric_formatting_scales() {
        assert_eq!(format_metric(0.0), "0");
        assert_eq!(format_metric(0.78125), "0.7812");
        assert_eq!(format_metric(123.456), "123.5");
        assert!(format_metric(2.5e7).contains('e'));
        assert!(format_metric(0.0001).contains('e'));
    }
}
