//! Table rendering and machine-readable result dumps.

use serde::Serialize;

/// One result row: free-form key columns plus named numeric metrics.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Key columns (dataset, method, ratio, …) in table order.
    pub keys: Vec<(String, String)>,
    /// Metric columns (accuracy, time, memory, …) in table order.
    pub metrics: Vec<(String, f64)>,
}

impl Row {
    /// Starts a row.
    #[must_use]
    pub fn new() -> Self {
        Self { keys: Vec::new(), metrics: Vec::new() }
    }

    /// Adds a key column.
    #[must_use]
    pub fn key(mut self, name: &str, value: impl ToString) -> Self {
        self.keys.push((name.to_owned(), value.to_string()));
        self
    }

    /// Adds a metric column.
    #[must_use]
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        self.metrics.push((name.to_owned(), value));
        self
    }
}

impl Default for Row {
    fn default() -> Self {
        Self::new()
    }
}

/// A titled collection of rows.
#[derive(Clone, Debug, Serialize)]
pub struct TableReport {
    /// Table/figure title (e.g. `"Table II — inductive accuracy"`).
    pub title: String,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl TableReport {
    /// An empty report.
    #[must_use]
    pub fn new(title: &str) -> Self {
        Self { title: title.to_owned(), rows: Vec::new() }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Writes the report as JSON to `path`.
    ///
    /// # Errors
    /// Propagates I/O and serialisation errors.
    pub fn dump_json(&self, path: &str) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }
}

/// Renders a report as an aligned text table to stdout.
pub fn print_table(report: &TableReport) {
    println!("\n=== {} ===", report.title);
    let Some(first) = report.rows.first() else {
        println!("(no rows)");
        return;
    };
    let headers: Vec<String> = first
        .keys
        .iter()
        .map(|(k, _)| k.clone())
        .chain(first.metrics.iter().map(|(k, _)| k.clone()))
        .collect();
    let mut cells: Vec<Vec<String>> = vec![headers];
    for row in &report.rows {
        cells.push(
            row.keys
                .iter()
                .map(|(_, v)| v.clone())
                .chain(row.metrics.iter().map(|(_, v)| format_metric(*v)))
                .collect(),
        );
    }
    let cols = cells[0].len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| cells.iter().map(|r| r.get(c).map_or(0, String::len)).max().unwrap_or(0))
        .collect();
    for (i, row) in cells.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{cell:>w$}", w = *w))
            .collect();
        println!("{}", line.join("  "));
        if i == 0 {
            println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        }
    }
}

fn format_metric(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 1e7 {
        format!("{v:.0}")
    } else if v.abs() >= 1e6 {
        format!("{:.3e}", v)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_keep_column_order() {
        let row = Row::new().key("dataset", "pubmed").key("r", 0.01).metric("acc", 0.78);
        assert_eq!(row.keys[0].0, "dataset");
        assert_eq!(row.keys[1].1, "0.01");
        assert_eq!(row.metrics[0], ("acc".to_owned(), 0.78));
    }

    #[test]
    fn json_dump_round_trips() {
        let mut report = TableReport::new("test");
        report.push(Row::new().key("k", "v").metric("m", 1.5));
        let path = std::env::temp_dir().join("mcond_report_test.json");
        report.dump_json(path.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"title\": \"test\""));
        assert!(text.contains("1.5"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metric_formatting_scales() {
        assert_eq!(format_metric(0.0), "0");
        assert_eq!(format_metric(0.78125), "0.7812");
        assert_eq!(format_metric(123.456), "123.5");
        assert!(format_metric(2.5e7).contains('e'));
        assert!(format_metric(0.0001).contains('e'));
    }
}
