//! Shared experiment harness for the MCond reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library holds the common machinery: CLI parsing, the
//! train-once/infer-per-batch evaluation loop, and table/JSON reporting.

pub mod cli;
pub mod cost;
pub mod microbench;
pub mod pipeline;
pub mod eval;
pub mod report;

pub use cli::{parse_args, BenchArgs};
pub use microbench::Bench;
pub use eval::{
    evaluate_inductive, mean_std, propagated_embeddings, train_on_graph, EvalResult, EvalSetting,
};
pub use pipeline::{build_pipeline, default_batch_size, default_condense_config, default_epochs, Pipeline};
pub use report::{print_table, Row, TableReport};
