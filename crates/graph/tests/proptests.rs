//! Property tests of the dataset substrate: generator invariants and
//! inductive-split bookkeeping under arbitrary configurations.

use mcond_graph::{generate_sbm, InductiveDataset, SbmConfig};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = SbmConfig> {
    (
        30usize..150,        // nodes
        1usize..5,           // classes
        0.0f64..1.0,         // homophily
        0.0f64..1.5,         // imbalance
        1usize..4,           // subclusters
        1u64..50,            // seed
    )
        .prop_map(|(nodes, classes, homophily, imbalance, subclusters, seed)| SbmConfig {
            nodes,
            edges: nodes * 3,
            feature_dim: 8,
            num_classes: classes,
            homophily,
            class_imbalance: imbalance,
            subclusters_per_class: subclusters,
            seed,
            ..SbmConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_graphs_are_structurally_valid(cfg in arb_cfg()) {
        let g = generate_sbm(&cfg);
        prop_assert_eq!(g.num_nodes(), cfg.nodes);
        prop_assert_eq!(g.feature_dim(), cfg.feature_dim);
        prop_assert!(g.labels.iter().all(|&y| y < cfg.num_classes));
        // Symmetric binary adjacency without self-loops.
        for (i, j, v) in g.adj.iter() {
            prop_assert_eq!(v, 1.0);
            prop_assert_ne!(i, j);
            prop_assert_eq!(g.adj.get(j, i), 1.0);
        }
        // Every class non-empty.
        prop_assert!(g.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn generation_is_deterministic(cfg in arb_cfg()) {
        let a = generate_sbm(&cfg);
        let b = generate_sbm(&cfg);
        prop_assert_eq!(a.adj, b.adj);
        prop_assert_eq!(a.features, b.features);
        prop_assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn induced_subgraph_edge_count_never_grows(cfg in arb_cfg(), frac in 0.2f64..0.9) {
        let g = generate_sbm(&cfg);
        let keep: Vec<usize> = (0..g.num_nodes())
            .filter(|i| (i * 7919 % 100) as f64 / 100.0 < frac)
            .collect();
        prop_assume!(keep.len() >= 2);
        let sub = g.induced_subgraph(&keep);
        prop_assert!(sub.num_edges() <= g.num_edges());
        prop_assert_eq!(sub.num_nodes(), keep.len());
    }

    #[test]
    fn inductive_batches_partition_edges(cfg in arb_cfg()) {
        let g = generate_sbm(&cfg);
        let n = g.num_nodes();
        // Split: first 60% train, next 20% val, last 20% test (ids as given).
        let train: Vec<usize> = (0..n * 6 / 10).collect();
        let val: Vec<usize> = (n * 6 / 10..n * 8 / 10).collect();
        let test: Vec<usize> = (n * 8 / 10..n).collect();
        prop_assume!(!test.is_empty() && !train.is_empty());
        let data = InductiveDataset::new(g, train.clone(), val, test.clone());

        let batch = data.batch(&test, true);
        // Every incremental edge must exist in the full graph between the
        // right endpoints.
        for (pos, tcol, v) in batch.incremental.iter() {
            let full_i = test[pos];
            let full_j = train[tcol];
            prop_assert_eq!(data.full.adj.get(full_i, full_j), v);
        }
        // Interconnections are symmetric within the batch.
        for (a, b, v) in batch.interconnect.iter() {
            prop_assert_eq!(batch.interconnect.get(b, a), v);
        }
    }

    #[test]
    fn batching_is_stable_under_chunking(cfg in arb_cfg(), chunk in 1usize..20) {
        let g = generate_sbm(&cfg);
        let n = g.num_nodes();
        let train: Vec<usize> = (0..n * 7 / 10).collect();
        let test: Vec<usize> = (n * 7 / 10..n).collect();
        prop_assume!(!test.is_empty());
        let data = InductiveDataset::new(g, train, vec![], test.clone());
        let batches = data.test_batches(chunk, false);
        let total: usize = batches.iter().map(mcond_graph::NodeBatch::len).sum();
        prop_assert_eq!(total, test.len());
        // Labels concatenate to the test labels in order.
        let labels: Vec<usize> =
            batches.iter().flat_map(|b| b.labels.iter().copied()).collect();
        let expected: Vec<usize> = test.iter().map(|&i| data.full.labels[i]).collect();
        prop_assert_eq!(labels, expected);
    }

    #[test]
    fn homophily_metric_is_a_probability(cfg in arb_cfg()) {
        let g = generate_sbm(&cfg);
        let h = g.edge_homophily();
        prop_assert!((0.0..=1.0).contains(&h));
    }
}
