//! Property-style tests of the dataset substrate: generator invariants and
//! inductive-split bookkeeping under randomized configurations drawn from
//! the workspace's seeded [`MatRng`] (no external fuzzing crate).

use mcond_graph::{generate_sbm, InductiveDataset, SbmConfig};
use mcond_linalg::MatRng;

const CASES: u64 = 32;

fn case_rng(salt: u64, case: u64) -> MatRng {
    MatRng::seed_from(0x6AB4 ^ (salt << 32) ^ case)
}

fn arb_cfg(rng: &mut MatRng) -> SbmConfig {
    let nodes = 30 + rng.index(120);
    SbmConfig {
        nodes,
        edges: nodes * 3,
        feature_dim: 8,
        num_classes: 1 + rng.index(4),
        homophily: f64::from(rng.unit()),
        class_imbalance: 1.5 * f64::from(rng.unit()),
        subclusters_per_class: 1 + rng.index(3),
        seed: 1 + rng.index(49) as u64,
        ..SbmConfig::default()
    }
}

#[test]
fn generated_graphs_are_structurally_valid() {
    for case in 0..CASES {
        let cfg = arb_cfg(&mut case_rng(1, case));
        let g = generate_sbm(&cfg);
        assert_eq!(g.num_nodes(), cfg.nodes, "case {case}");
        assert_eq!(g.feature_dim(), cfg.feature_dim, "case {case}");
        assert!(g.labels.iter().all(|&y| y < cfg.num_classes), "case {case}");
        // Symmetric binary adjacency without self-loops.
        for (i, j, v) in g.adj.iter() {
            assert_eq!(v, 1.0, "case {case}");
            assert_ne!(i, j, "case {case}");
            assert_eq!(g.adj.get(j, i), 1.0, "case {case}");
        }
        // Every class non-empty.
        assert!(g.class_counts().iter().all(|&c| c > 0), "case {case}");
    }
}

#[test]
fn generation_is_deterministic() {
    for case in 0..CASES {
        let cfg = arb_cfg(&mut case_rng(2, case));
        let a = generate_sbm(&cfg);
        let b = generate_sbm(&cfg);
        assert_eq!(a.adj, b.adj, "case {case}");
        assert_eq!(a.features, b.features, "case {case}");
        assert_eq!(a.labels, b.labels, "case {case}");
    }
}

#[test]
fn induced_subgraph_edge_count_never_grows() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let cfg = arb_cfg(&mut rng);
        let frac = 0.2 + 0.7 * f64::from(rng.unit());
        let g = generate_sbm(&cfg);
        let keep: Vec<usize> = (0..g.num_nodes())
            .filter(|i| (i * 7919 % 100) as f64 / 100.0 < frac)
            .collect();
        if keep.len() < 2 {
            continue;
        }
        let sub = g.induced_subgraph(&keep);
        assert!(sub.num_edges() <= g.num_edges(), "case {case}");
        assert_eq!(sub.num_nodes(), keep.len(), "case {case}");
    }
}

#[test]
fn inductive_batches_partition_edges() {
    for case in 0..CASES {
        let cfg = arb_cfg(&mut case_rng(4, case));
        let g = generate_sbm(&cfg);
        let n = g.num_nodes();
        // Split: first 60% train, next 20% val, last 20% test (ids as given).
        let train: Vec<usize> = (0..n * 6 / 10).collect();
        let val: Vec<usize> = (n * 6 / 10..n * 8 / 10).collect();
        let test: Vec<usize> = (n * 8 / 10..n).collect();
        if test.is_empty() || train.is_empty() {
            continue;
        }
        let data = InductiveDataset::new(g, train.clone(), val, test.clone());

        let batch = data.batch(&test, true);
        // Every incremental edge must exist in the full graph between the
        // right endpoints.
        for (pos, tcol, v) in batch.incremental.iter() {
            let full_i = test[pos];
            let full_j = train[tcol];
            assert_eq!(data.full.adj.get(full_i, full_j), v, "case {case}");
        }
        // Interconnections are symmetric within the batch.
        for (a, b, v) in batch.interconnect.iter() {
            assert_eq!(batch.interconnect.get(b, a), v, "case {case}");
        }
    }
}

#[test]
fn batching_is_stable_under_chunking() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let cfg = arb_cfg(&mut rng);
        let chunk = 1 + rng.index(19);
        let g = generate_sbm(&cfg);
        let n = g.num_nodes();
        let train: Vec<usize> = (0..n * 7 / 10).collect();
        let test: Vec<usize> = (n * 7 / 10..n).collect();
        if test.is_empty() {
            continue;
        }
        let data = InductiveDataset::new(g, train, vec![], test.clone());
        let batches = data.test_batches(chunk, false);
        let total: usize = batches.iter().map(mcond_graph::NodeBatch::len).sum();
        assert_eq!(total, test.len(), "case {case}");
        // Labels concatenate to the test labels in order.
        let labels: Vec<usize> =
            batches.iter().flat_map(|b| b.labels.iter().copied()).collect();
        let expected: Vec<usize> = test.iter().map(|&i| data.full.labels[i]).collect();
        assert_eq!(labels, expected, "case {case}");
    }
}

#[test]
fn homophily_metric_is_a_probability() {
    for case in 0..CASES {
        let cfg = arb_cfg(&mut case_rng(6, case));
        let g = generate_sbm(&cfg);
        let h = g.edge_homophily();
        assert!((0.0..=1.0).contains(&h), "case {case}: {h}");
    }
}
