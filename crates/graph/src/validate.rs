//! Request validation for inductive serving.
//!
//! A [`NodeBatch`](crate::NodeBatch) arriving at a server is untrusted
//! input: it may have been assembled against the wrong base graph, carry
//! non-finite features, or be structurally inconsistent (truncated labels,
//! an interconnect block of the wrong shape). Every inconsistency is a
//! typed [`BatchError`] so serving layers can reject a request instead of
//! panicking deep inside a kernel — see `mcond-core`'s
//! `InductiveServer::try_serve`.

use crate::NodeBatch;
use std::fmt;

/// A structural or numerical defect in a [`NodeBatch`].
///
/// Variants are ordered roughly by how early the defect is detectable:
/// internal row-count consistency first, then cross-checks against the
/// serving base, then value hygiene.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A component's row count disagrees with the batch's node count
    /// (`labels.len()`): truncated label vectors and missing feature or
    /// incremental rows all land here.
    RowCountMismatch {
        /// Which component disagrees (`"features"` / `"incremental"`).
        component: &'static str,
        /// Rows the component actually has.
        rows: usize,
        /// The batch's node count.
        expected: usize,
    },
    /// The interconnect block `ã` is not `n x n` — including out-of-range
    /// interconnect columns, which manifest as a too-wide block.
    InterconnectShape {
        /// Actual rows of the interconnect block.
        rows: usize,
        /// Actual columns of the interconnect block.
        cols: usize,
        /// The batch's node count `n`.
        expected: usize,
    },
    /// The incremental adjacency's columns do not index the serving base
    /// (original training nodes for Eq. 3, mapping rows for Eq. 11): the
    /// batch indexes a different base graph.
    IncrementalWidth {
        /// Columns the incremental block actually has.
        got: usize,
        /// Base width the server expected.
        expected: usize,
    },
    /// Feature dimension disagrees with the base features.
    FeatureDim {
        /// Columns the batch features actually have.
        got: usize,
        /// Feature dimension of the serving base.
        expected: usize,
    },
    /// A component carries a `NaN` or `±Inf` value.
    NonFinite {
        /// Which component is poisoned (`"features"` / `"incremental"` /
        /// `"interconnect"`).
        component: &'static str,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::RowCountMismatch { component, rows, expected } => write!(
                f,
                "batch {component} has {rows} rows but the batch holds {expected} nodes"
            ),
            BatchError::InterconnectShape { rows, cols, expected } => write!(
                f,
                "batch interconnect is {rows}x{cols} but must be \
                 {expected}x{expected} (columns may only index batch nodes)"
            ),
            BatchError::IncrementalWidth { got, expected } => write!(
                f,
                "batch incremental width {got} does not match the serving base \
                 width {expected}: batch indexes a different base graph"
            ),
            BatchError::FeatureDim { got, expected } => write!(
                f,
                "batch feature dimension {got} does not match the base feature \
                 dimension {expected}"
            ),
            BatchError::NonFinite { component } => {
                write!(f, "batch {component} contains a non-finite (NaN/Inf) value")
            }
        }
    }
}

impl std::error::Error for BatchError {}

impl NodeBatch {
    /// Validates the batch against a serving base: `base_cols` is the
    /// width the incremental adjacency must have (training-node count for
    /// Eq. 3 attachment, mapping rows for Eq. 11) and `feature_dim` the
    /// base's feature dimension.
    ///
    /// Checks, in order: internal row-count consistency (features and
    /// incremental rows vs. `labels.len()`), the interconnect's `n x n`
    /// shape, the incremental width, the feature dimension, and finally
    /// that every value in features/incremental/interconnect is finite.
    /// Returns the first defect found; an empty batch with consistent
    /// shapes is valid.
    ///
    /// # Errors
    /// The first [`BatchError`] detected, in the order above.
    pub fn validate_against(&self, base_cols: usize, feature_dim: usize) -> Result<(), BatchError> {
        self.validate_impl(base_cols, feature_dim, false)
    }

    /// [`validate_against`](NodeBatch::validate_against) for a **live**
    /// (growable) serving base: the incremental width may be *narrower*
    /// than `base_cols`. Delta promotions only ever append base nodes —
    /// existing ids never change meaning — so a batch assembled against an
    /// older, smaller base still addresses a valid prefix of the grown
    /// index space. A *wider* batch still fails with
    /// [`BatchError::IncrementalWidth`]: it indexes nodes this base does
    /// not have.
    ///
    /// # Errors
    /// The first [`BatchError`] detected, in
    /// [`validate_against`](NodeBatch::validate_against)'s order.
    pub fn validate_against_prefix(
        &self,
        base_cols: usize,
        feature_dim: usize,
    ) -> Result<(), BatchError> {
        self.validate_impl(base_cols, feature_dim, true)
    }

    fn validate_impl(
        &self,
        base_cols: usize,
        feature_dim: usize,
        allow_prefix: bool,
    ) -> Result<(), BatchError> {
        let n = self.labels.len();
        if self.features.rows() != n {
            return Err(BatchError::RowCountMismatch {
                component: "features",
                rows: self.features.rows(),
                expected: n,
            });
        }
        if self.incremental.rows() != n {
            return Err(BatchError::RowCountMismatch {
                component: "incremental",
                rows: self.incremental.rows(),
                expected: n,
            });
        }
        if self.interconnect.rows() != n || self.interconnect.cols() != n {
            return Err(BatchError::InterconnectShape {
                rows: self.interconnect.rows(),
                cols: self.interconnect.cols(),
                expected: n,
            });
        }
        let width_ok = if allow_prefix {
            self.incremental.cols() <= base_cols
        } else {
            self.incremental.cols() == base_cols
        };
        if !width_ok {
            return Err(BatchError::IncrementalWidth {
                got: self.incremental.cols(),
                expected: base_cols,
            });
        }
        if self.features.cols() != feature_dim {
            return Err(BatchError::FeatureDim {
                got: self.features.cols(),
                expected: feature_dim,
            });
        }
        if !self.features.all_finite() {
            return Err(BatchError::NonFinite { component: "features" });
        }
        if !self.incremental.all_finite() {
            return Err(BatchError::NonFinite { component: "incremental" });
        }
        if !self.interconnect.all_finite() {
            return Err(BatchError::NonFinite { component: "interconnect" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::DMat;
    use mcond_sparse::{Coo, Csr};

    /// A consistent 2-node batch against a 3-node base with 2-dim features.
    fn valid() -> NodeBatch {
        let mut inc = Coo::new(2, 3);
        inc.push(0, 1, 1.0);
        inc.push(1, 2, 0.5);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 1.0);
        NodeBatch {
            features: DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
            incremental: inc.to_csr(),
            interconnect: inter.to_csr(),
            labels: vec![0, 1],
        }
    }

    #[test]
    fn valid_batch_passes() {
        assert_eq!(valid().validate_against(3, 2), Ok(()));
    }

    #[test]
    fn empty_batch_is_valid() {
        let b = NodeBatch {
            features: DMat::zeros(0, 2),
            incremental: Csr::empty(0, 3),
            interconnect: Csr::empty(0, 0),
            labels: Vec::new(),
        };
        assert_eq!(b.validate_against(3, 2), Ok(()));
    }

    #[test]
    fn truncated_labels_are_a_row_count_mismatch() {
        let mut b = valid();
        b.labels.pop();
        assert_eq!(
            b.validate_against(3, 2),
            Err(BatchError::RowCountMismatch { component: "features", rows: 2, expected: 1 })
        );
    }

    #[test]
    fn missing_feature_row_is_detected() {
        let mut b = valid();
        b.features = b.features.slice_rows(0, 1);
        assert_eq!(
            b.validate_against(3, 2),
            Err(BatchError::RowCountMismatch { component: "features", rows: 1, expected: 2 })
        );
    }

    #[test]
    fn interconnect_with_out_of_range_columns_is_rejected() {
        let mut b = valid();
        let mut inter = Coo::new(2, 5);
        inter.push(0, 4, 1.0); // column 4 indexes no batch node
        b.interconnect = inter.to_csr();
        assert_eq!(
            b.validate_against(3, 2),
            Err(BatchError::InterconnectShape { rows: 2, cols: 5, expected: 2 })
        );
    }

    #[test]
    fn wrong_incremental_width_names_the_base_mismatch() {
        let b = valid();
        let err = b.validate_against(7, 2).unwrap_err();
        assert_eq!(err, BatchError::IncrementalWidth { got: 3, expected: 7 });
        assert!(err.to_string().contains("different base graph"));
    }

    #[test]
    fn prefix_validation_accepts_narrower_but_not_wider_batches() {
        let b = valid(); // incremental is 2x3
        // Against a base that has since grown to 7 nodes: prefix-valid.
        assert_eq!(b.validate_against_prefix(7, 2), Ok(()));
        // Exact width still passes, and the strict form still rejects.
        assert_eq!(b.validate_against_prefix(3, 2), Ok(()));
        assert!(b.validate_against(7, 2).is_err());
        // Wider than the base: indexes nodes that do not exist.
        assert_eq!(
            b.validate_against_prefix(2, 2),
            Err(BatchError::IncrementalWidth { got: 3, expected: 2 })
        );
    }

    #[test]
    fn feature_dim_mismatch_is_rejected() {
        let b = valid();
        assert_eq!(
            b.validate_against(3, 5),
            Err(BatchError::FeatureDim { got: 2, expected: 5 })
        );
    }

    #[test]
    fn non_finite_values_are_rejected_per_component() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut b = valid();
            b.features.set(1, 0, bad);
            assert_eq!(
                b.validate_against(3, 2),
                Err(BatchError::NonFinite { component: "features" }),
            );

            let mut b = valid();
            b.incremental = b.incremental.map_values(|_| bad);
            assert_eq!(
                b.validate_against(3, 2),
                Err(BatchError::NonFinite { component: "incremental" }),
            );

            let mut b = valid();
            b.interconnect = b.interconnect.map_values(|_| bad);
            assert_eq!(
                b.validate_against(3, 2),
                Err(BatchError::NonFinite { component: "interconnect" }),
            );
        }
    }
}
