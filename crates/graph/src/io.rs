//! On-disk graph format.
//!
//! A small self-describing binary format so real datasets (Planetoid
//! Pubmed, GraphSAINT Flickr, GraphSAGE Reddit) can be converted once and
//! dropped in place of the synthetic generators. Layout (little-endian):
//!
//! ```text
//! magic   b"MCG1"
//! u64     N (nodes)        u64 d (feature dim)   u64 C (classes)
//! u64     nnz
//! u64*N+1 CSR indptr       u32*nnz CSR cols      f32*nnz CSR vals
//! f32*N*d features (row-major)
//! u32*N   labels
//! ```

use crate::Graph;
use mcond_linalg::DMat;
use mcond_sparse::Csr;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MCG1";

/// Serialises a graph to `path`.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_graph(graph: &Graph, path: &Path) -> io::Result<()> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    let n = graph.num_nodes();
    let d = graph.feature_dim();
    write_u64(&mut w, n as u64)?;
    write_u64(&mut w, d as u64)?;
    write_u64(&mut w, graph.num_classes as u64)?;
    write_u64(&mut w, graph.adj.nnz() as u64)?;
    for i in 0..=n {
        let v = if i == 0 { 0 } else { graph.adj.row_cols(i - 1).len() as u64 };
        // indptr reconstructed cumulatively on read; store row lengths.
        write_u64(&mut w, v)?;
    }
    for i in 0..n {
        for &c in graph.adj.row_cols(i) {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for i in 0..n {
        for &v in graph.adj.row_vals(i) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    for &v in graph.features.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    for &y in &graph.labels {
        w.write_all(&(y as u32).to_le_bytes())?;
    }
    w.flush()
}

/// Deserialises a graph from `path`.
///
/// # Errors
/// Propagates I/O errors; malformed files yield `InvalidData`.
pub fn load_graph(path: &Path) -> io::Result<Graph> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n = read_u64(&mut r)? as usize;
    let d = read_u64(&mut r)? as usize;
    let classes = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;

    let mut indptr = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    for _ in 0..=n {
        acc += read_u64(&mut r)?;
        indptr.push(acc);
    }
    if *indptr.last().unwrap_or(&0) as usize != nnz {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "indptr/nnz mismatch"));
    }
    let mut cols = vec![0u32; nnz];
    for c in &mut cols {
        *c = read_u32(&mut r)?;
    }
    let mut vals = vec![0f32; nnz];
    for v in &mut vals {
        *v = read_f32(&mut r)?;
    }
    let adj = Csr::from_raw(n, n, indptr, cols, vals);

    let mut feat = vec![0f32; n * d];
    for v in &mut feat {
        *v = read_f32(&mut r)?;
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(read_u32(&mut r)? as usize);
    }
    if labels.iter().any(|&y| y >= classes) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "label out of range"));
    }
    Ok(Graph::new(adj, DMat::from_vec(n, d, feat), labels, classes))
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbm::{generate_sbm, SbmConfig};

    #[test]
    fn round_trip_preserves_graph() {
        let g = generate_sbm(&SbmConfig {
            nodes: 60,
            edges: 150,
            feature_dim: 5,
            num_classes: 3,
            ..SbmConfig::default()
        });
        let dir = std::env::temp_dir().join("mcond_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mcg");
        save_graph(&g, &path).unwrap();
        let loaded = load_graph(&path).unwrap();
        assert_eq!(loaded.adj, g.adj);
        assert_eq!(loaded.features, g.features);
        assert_eq!(loaded.labels, g.labels);
        assert_eq!(loaded.num_classes, g.num_classes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = std::env::temp_dir().join("mcond_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.mcg");
        std::fs::write(&path, b"NOPE12345678").unwrap();
        let err = load_graph(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let g = generate_sbm(&SbmConfig { nodes: 20, edges: 40, ..SbmConfig::default() });
        let dir = std::env::temp_dir().join("mcond_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.mcg");
        save_graph(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_graph(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
