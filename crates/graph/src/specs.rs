//! Named dataset presets calibrated to the paper's Table I.
//!
//! Two scales per dataset:
//!
//! * [`Scale::Paper`] matches Table I's node/edge/feature/class counts and
//!   split sizes exactly (Reddit: 233k nodes, 11.6M edges — minutes to
//!   generate, hours to run full experiments on CPU).
//! * [`Scale::Small`] keeps the *shape* (class count, homophily, degree
//!   skew, split proportions) at laptop size; it is the default for tests
//!   and the experiment binaries.

use crate::sbm::{generate_sbm, SbmConfig};
use crate::{Graph, InductiveDataset};
use mcond_linalg::MatRng;

/// Experiment scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-sized datasets preserving the statistical shape.
    Small,
    /// Table-I-sized datasets.
    Paper,
}

/// A named dataset recipe: block-model parameters plus split sizes.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name (`pubmed`, `flickr`, `reddit`).
    pub name: &'static str,
    /// Block-model parameters.
    pub sbm: SbmConfig,
    /// Number of training nodes (the original graph `T`).
    pub train: usize,
    /// Number of validation (support) nodes.
    pub val: usize,
    /// Number of test nodes.
    pub test: usize,
    /// Condensation ratios `r` evaluated in the paper for this dataset.
    pub ratios: [f64; 2],
}

/// The dataset names understood by [`load_dataset`].
pub const DATASET_NAMES: [&str; 3] = ["pubmed", "flickr", "reddit"];

/// Returns the recipe for a named dataset at the requested scale.
///
/// # Errors
/// Returns an error string for unknown names.
pub fn dataset_spec(name: &str, scale: Scale, seed: u64) -> Result<DatasetSpec, String> {
    // Paper Table I: (nodes, edges, features, classes, train). Homophily /
    // imbalance / signal knobs are chosen to mimic each dataset's published
    // character: Pubmed is a homophilous citation net, Flickr is noisier and
    // less homophilous (GNN accuracies are low there), Reddit is large,
    // dense, highly homophilous and class-imbalanced.
    let spec = match (name, scale) {
        ("pubmed", Scale::Paper) => DatasetSpec {
            name: "pubmed",
            sbm: SbmConfig {
                nodes: 19_717,
                edges: 44_338,
                feature_dim: 500,
                num_classes: 3,
                homophily: 0.8,
                degree_exponent: 2.4,
                class_imbalance: 0.3,
                subclusters_per_class: 8,
                subcluster_affinity: 0.85,
                center_scale: 0.15,
                feature_noise: 1.0,
                seed,
            },
            train: 18_217,
            val: 500,
            test: 1_000,
            ratios: [0.0016, 0.0032],
        },
        ("pubmed", Scale::Small) => DatasetSpec {
            name: "pubmed",
            sbm: SbmConfig {
                nodes: 1_200,
                edges: 3_600,
                feature_dim: 64,
                num_classes: 3,
                homophily: 0.85,
                degree_exponent: 2.4,
                class_imbalance: 0.3,
                subclusters_per_class: 8,
                subcluster_affinity: 0.85,
                center_scale: 0.15,
                feature_noise: 1.0,
                seed,
            },
            train: 900,
            val: 100,
            test: 200,
            ratios: [0.01, 0.02],
        },
        ("flickr", Scale::Paper) => DatasetSpec {
            name: "flickr",
            sbm: SbmConfig {
                nodes: 89_250,
                edges: 899_756,
                feature_dim: 500,
                num_classes: 7,
                homophily: 0.4,
                degree_exponent: 2.2,
                class_imbalance: 0.6,
                subclusters_per_class: 8,
                subcluster_affinity: 0.85,
                center_scale: 0.22,
                feature_noise: 1.2,
                seed,
            },
            train: 44_625,
            val: 22_312,
            test: 22_313,
            ratios: [0.001, 0.005],
        },
        ("flickr", Scale::Small) => DatasetSpec {
            name: "flickr",
            sbm: SbmConfig {
                nodes: 2_000,
                edges: 20_000,
                feature_dim: 64,
                num_classes: 7,
                homophily: 0.45,
                degree_exponent: 2.2,
                class_imbalance: 0.6,
                subclusters_per_class: 8,
                subcluster_affinity: 0.85,
                center_scale: 0.22,
                feature_noise: 1.2,
                seed,
            },
            train: 1_000,
            val: 500,
            test: 500,
            ratios: [0.01, 0.03],
        },
        ("reddit", Scale::Paper) => DatasetSpec {
            name: "reddit",
            sbm: SbmConfig {
                nodes: 232_965,
                edges: 11_606_919,
                feature_dim: 602,
                num_classes: 41,
                homophily: 0.9,
                degree_exponent: 2.1,
                class_imbalance: 1.0,
                subclusters_per_class: 16,
                subcluster_affinity: 0.85,
                center_scale: 0.15,
                feature_noise: 1.0,
                seed,
            },
            train: 153_932,
            val: 23_699,
            test: 55_334,
            ratios: [0.001, 0.005],
        },
        ("reddit", Scale::Small) => DatasetSpec {
            name: "reddit",
            sbm: SbmConfig {
                nodes: 4_000,
                edges: 80_000,
                feature_dim: 96,
                num_classes: 8,
                homophily: 0.92,
                degree_exponent: 2.1,
                class_imbalance: 1.0,
                subclusters_per_class: 16,
                subcluster_affinity: 0.85,
                center_scale: 0.15,
                feature_noise: 1.0,
                seed,
            },
            train: 2_600,
            val: 400,
            test: 1_000,
            ratios: [0.0075, 0.015],
        },
        _ => {
            return Err(format!(
                "unknown dataset {name:?}; expected one of {DATASET_NAMES:?}"
            ))
        }
    };
    Ok(spec)
}

/// Generates the named dataset and its inductive split.
///
/// # Errors
/// Returns an error string for unknown names.
pub fn load_dataset(name: &str, scale: Scale, seed: u64) -> Result<InductiveDataset, String> {
    let spec = dataset_spec(name, scale, seed)?;
    Ok(build_split(generate_sbm(&spec.sbm), &spec, seed))
}

/// Randomly partitions a graph's nodes per the spec's split sizes.
fn build_split(graph: Graph, spec: &DatasetSpec, seed: u64) -> InductiveDataset {
    assert!(
        spec.train + spec.val + spec.test <= graph.num_nodes(),
        "split sizes exceed node count"
    );
    // Derive the split from an independent stream so the graph content and
    // split assignment can be varied separately.
    let mut rng = MatRng::seed_from(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let mut order: Vec<usize> = (0..graph.num_nodes()).collect();
    rng.shuffle(&mut order);
    let train = order[..spec.train].to_vec();
    let val = order[spec.train..spec.train + spec.val].to_vec();
    let test = order[spec.train + spec.val..spec.train + spec.val + spec.test].to_vec();
    InductiveDataset::new(graph, train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve_at_small_scale() {
        for name in DATASET_NAMES {
            let data = load_dataset(name, Scale::Small, 0).unwrap();
            assert!(data.original_graph().num_nodes() > 0, "{name}");
        }
    }

    #[test]
    fn unknown_name_errors() {
        assert!(load_dataset("cora", Scale::Small, 0).is_err());
        assert!(dataset_spec("", Scale::Paper, 0).is_err());
    }

    #[test]
    fn paper_scale_spec_matches_table1() {
        let spec = dataset_spec("reddit", Scale::Paper, 0).unwrap();
        assert_eq!(spec.sbm.nodes, 232_965);
        assert_eq!(spec.sbm.edges, 11_606_919);
        assert_eq!(spec.sbm.feature_dim, 602);
        assert_eq!(spec.sbm.num_classes, 41);
        assert_eq!(spec.train, 153_932);
    }

    #[test]
    fn small_split_sizes_are_exact() {
        let data = load_dataset("pubmed", Scale::Small, 3).unwrap();
        assert_eq!(data.train_idx.len(), 900);
        assert_eq!(data.val_idx.len(), 100);
        assert_eq!(data.test_idx.len(), 200);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let a = load_dataset("flickr", Scale::Small, 5).unwrap();
        let b = load_dataset("flickr", Scale::Small, 5).unwrap();
        assert_eq!(a.train_idx, b.train_idx);
        assert_eq!(a.test_idx, b.test_idx);
    }

    #[test]
    fn dataset_characters_are_ordered() {
        // Reddit-small must be more homophilous than Flickr-small, and
        // Flickr-small denser than Pubmed-small — the traits the paper's
        // result ordering depends on.
        let pubmed = load_dataset("pubmed", Scale::Small, 0).unwrap();
        let flickr = load_dataset("flickr", Scale::Small, 0).unwrap();
        let reddit = load_dataset("reddit", Scale::Small, 0).unwrap();
        assert!(reddit.full.edge_homophily() > flickr.full.edge_homophily());
        let avg_deg = |g: &Graph| 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(avg_deg(&flickr.full) > avg_deg(&pubmed.full));
    }
}
