//! Plain-text importers for real datasets.
//!
//! Real Pubmed/Flickr/Reddit (or any attributed graph) can be exported from
//! their Python loaders into two text files and imported here once, then
//! saved to the fast binary `MCG1` format:
//!
//! * **edge list** — one `src dst` (or `src,dst` / `src\tdst`) pair per
//!   line; `#`-prefixed lines are comments; edges are made symmetric.
//! * **node table** — one line per node, ordered by node id:
//!   `label feat_0 feat_1 …` with the same separators.
//!
//! ```no_run
//! use mcond_graph::{import_graph, save_graph};
//! let g = import_graph(
//!     std::path::Path::new("reddit_edges.txt"),
//!     std::path::Path::new("reddit_nodes.txt"),
//! ).unwrap();
//! save_graph(&g, std::path::Path::new("reddit.mcg")).unwrap();
//! ```

use crate::Graph;
use mcond_linalg::DMat;
use mcond_sparse::Coo;
use std::io::{self, BufRead};
use std::path::Path;

/// Imports a graph from an edge-list file and a node table file.
///
/// # Errors
/// Returns `InvalidData` for malformed lines, inconsistent feature widths,
/// out-of-range node ids, or an empty node table.
pub fn import_graph(edges_path: &Path, nodes_path: &Path) -> io::Result<Graph> {
    let (labels, features) = read_node_table(nodes_path)?;
    let n = labels.len();
    let mut coo = Coo::new(n, n);
    for (lineno, line) in open_lines(edges_path)?.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = split_fields(trimmed);
        let src = parse_id(fields.next(), n, edges_path, lineno)?;
        let dst = parse_id(fields.next(), n, edges_path, lineno)?;
        if src != dst {
            coo.push_sym(src, dst, 1.0);
        }
    }
    let adj = coo.to_csr().map_values(|_| 1.0);
    let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    Ok(Graph::new(adj, features, labels, num_classes))
}

/// Reads the `label feat…` node table; returns labels and the feature
/// matrix.
fn read_node_table(path: &Path) -> io::Result<(Vec<usize>, DMat)> {
    let mut labels = Vec::new();
    let mut data: Vec<f32> = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, line) in open_lines(path)?.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = split_fields(trimmed);
        let label: usize = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad_line(path, lineno, "expected integer label"))?;
        let row: Result<Vec<f32>, _> = fields.map(str::parse).collect();
        let row = row.map_err(|_| bad_line(path, lineno, "non-numeric feature"))?;
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => {
                return Err(bad_line(path, lineno, "inconsistent feature width"));
            }
            _ => {}
        }
        labels.push(label);
        data.extend(row);
    }
    if labels.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: empty node table", path.display()),
        ));
    }
    let d = width.unwrap_or(0);
    Ok((labels.clone(), DMat::from_vec(labels.len(), d, data)))
}

fn open_lines(path: &Path) -> io::Result<impl Iterator<Item = io::Result<String>>> {
    Ok(io::BufReader::new(std::fs::File::open(path)?).lines())
}

/// Splits on whitespace, commas, or tabs.
fn split_fields(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| c.is_whitespace() || c == ',').filter(|f| !f.is_empty())
}

fn parse_id(
    field: Option<&str>,
    n: usize,
    path: &Path,
    lineno: usize,
) -> io::Result<usize> {
    let id: usize = field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| bad_line(path, lineno, "expected node id"))?;
    if id >= n {
        return Err(bad_line(path, lineno, "node id exceeds node-table length"));
    }
    Ok(id)
}

fn bad_line(path: &Path, lineno: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}:{}: {msg}", path.display(), lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_files(edges: &str, nodes: &str, tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("mcond_import_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        let e = dir.join("edges.txt");
        let v = dir.join("nodes.txt");
        std::fs::write(&e, edges).unwrap();
        std::fs::write(&v, nodes).unwrap();
        (e, v)
    }

    #[test]
    fn imports_whitespace_separated_files() {
        let (e, v) = write_files(
            "# a comment\n0 1\n1 2\n\n2 0\n",
            "0 1.0 2.0\n1 0.5 -1.0\n0 0.0 0.0\n",
            "basic",
        );
        let g = import_graph(&e, &v).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_classes, 2);
        assert_eq!(g.labels, vec![0, 1, 0]);
        assert_eq!(g.feature_dim(), 2);
        assert_eq!(g.adj.get(0, 1), 1.0);
        assert_eq!(g.adj.get(1, 0), 1.0);
    }

    #[test]
    fn accepts_commas_and_dedupes_edges() {
        let (e, v) = write_files("0,1\n1,0\n0,1\n", "0,1.0\n1,2.0\n", "commas");
        let g = import_graph(&e, &v).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.adj.get(0, 1), 1.0);
    }

    #[test]
    fn drops_self_loops() {
        let (e, v) = write_files("0 0\n0 1\n", "0 1.0\n0 1.0\n", "selfloop");
        let g = import_graph(&e, &v).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.adj.get(0, 0), 0.0);
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let (e, v) = write_files("0 7\n", "0 1.0\n1 1.0\n", "range");
        let err = import_graph(&e, &v).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn rejects_ragged_features() {
        let (e, v) = write_files("0 1\n", "0 1.0 2.0\n1 1.0\n", "ragged");
        let err = import_graph(&e, &v).unwrap_err();
        assert!(err.to_string().contains("inconsistent"));
    }

    #[test]
    fn rejects_empty_node_table() {
        let (e, v) = write_files("", "# only comments\n", "empty");
        assert!(import_graph(&e, &v).is_err());
    }

    #[test]
    fn round_trips_through_binary_format() {
        let (e, v) = write_files(
            "0 1\n1 2\n2 3\n3 0\n",
            "0 1.0 0.0\n1 0.0 1.0\n2 1.0 1.0\n1 0.5 0.5\n",
            "roundtrip",
        );
        let g = import_graph(&e, &v).unwrap();
        let path = std::env::temp_dir().join("mcond_import_roundtrip.mcg");
        crate::save_graph(&g, &path).unwrap();
        let loaded = crate::load_graph(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.adj, g.adj);
        assert_eq!(loaded.labels, g.labels);
    }
}
