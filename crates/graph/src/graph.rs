//! The attributed graph type.

use mcond_linalg::DMat;
use mcond_sparse::Csr;

/// An attributed, labelled graph `T = {A, X, Y}` (paper §II-A).
///
/// The adjacency is stored in CSR and is expected to be symmetric with
/// binary weights for real datasets (the synthetic graph `S` produced by
/// condensation is weighted).
#[derive(Clone, Debug)]
pub struct Graph {
    /// `N x N` adjacency matrix.
    pub adj: Csr,
    /// `N x d` node features.
    pub features: DMat,
    /// Class label per node, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes `C`.
    pub num_classes: usize,
}

/// Summary statistics — the columns of the paper's Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Node count `N`.
    pub nodes: usize,
    /// Undirected edge count (stored directed entries / 2, self-loops count
    /// once).
    pub edges: usize,
    /// Feature dimension `d`.
    pub features: usize,
    /// Class count `C`.
    pub classes: usize,
}

impl Graph {
    /// Constructs a graph, validating cross-field consistency.
    ///
    /// # Panics
    /// Panics when dimensions disagree or a label is out of range.
    #[must_use]
    pub fn new(adj: Csr, features: DMat, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "Graph: adjacency must be square");
        assert_eq!(adj.rows(), features.rows(), "Graph: adjacency/features mismatch");
        assert_eq!(features.rows(), labels.len(), "Graph: features/labels mismatch");
        assert!(
            labels.iter().all(|&y| y < num_classes),
            "Graph: label out of range (num_classes = {num_classes})"
        );
        Self { adj, features, labels, num_classes }
    }

    /// Number of nodes `N`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Feature dimension `d`.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Undirected edge count (half the stored directed non-zeros, counting
    /// self-loops once).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        let self_loops = (0..self.num_nodes()).filter(|&i| self.adj.get(i, i) != 0.0).count();
        (self.adj.nnz() - self_loops) / 2 + self_loops
    }

    /// Table-I style statistics.
    #[must_use]
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            features: self.feature_dim(),
            classes: self.num_classes,
        }
    }

    /// Node count per class.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }

    /// Node indices belonging to class `c`.
    #[must_use]
    pub fn class_members(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &y)| (y == c).then_some(i))
            .collect()
    }

    /// Edge homophily: fraction of (directed) edges whose endpoints share a
    /// class. Returns 0 for edgeless graphs.
    #[must_use]
    pub fn edge_homophily(&self) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for (i, j, _) in self.adj.iter() {
            if i != j {
                total += 1;
                if self.labels[i] == self.labels[j] {
                    same += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }

    /// The induced subgraph on `nodes` (relabelled to `0..nodes.len()`),
    /// carrying features and labels along.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Graph {
        Graph::new(
            self.adj.induced_subgraph(nodes),
            self.features.select_rows(nodes),
            nodes.iter().map(|&i| self.labels[i]).collect(),
            self.num_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_sparse::Coo;

    fn toy() -> Graph {
        // Triangle 0-1-2 plus pendant 3 attached to 0; labels 0,0,1,1.
        let mut coo = Coo::new(4, 4);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (0, 3)] {
            coo.push_sym(i, j, 1.0);
        }
        Graph::new(
            coo.to_csr(),
            DMat::from_rows(&[&[1., 0.], &[1., 0.], &[0., 1.], &[0., 1.]]),
            vec![0, 0, 1, 1],
            2,
        )
    }

    #[test]
    fn counts_and_stats() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.feature_dim(), 2);
        assert_eq!(
            g.stats(),
            GraphStats { nodes: 4, edges: 4, features: 2, classes: 2 }
        );
    }

    #[test]
    fn class_bookkeeping() {
        let g = toy();
        assert_eq!(g.class_counts(), vec![2, 2]);
        assert_eq!(g.class_members(1), vec![2, 3]);
    }

    #[test]
    fn homophily_of_toy() {
        // Same-class directed edges: (0,1),(1,0) = 2 of 8.
        let g = toy();
        assert!((g.edge_homophily() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_carries_attributes() {
        let g = toy();
        let sub = g.induced_subgraph(&[0, 2]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.labels, vec![0, 1]);
        assert_eq!(sub.adj.get(0, 1), 1.0);
        assert_eq!(sub.features.row(1), &[0., 1.]);
    }

    #[test]
    fn self_loops_counted_once() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 1.0);
        let g = Graph::new(coo.to_csr(), DMat::zeros(2, 1), vec![0, 0], 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn invalid_label_panics() {
        let _ = Graph::new(Csr::empty(1, 1), DMat::zeros(1, 1), vec![5], 2);
    }
}
