//! Inductive dataset splits (paper §II-B, §IV-A).
//!
//! The *original graph* `T` handed to condensation is the induced subgraph
//! of the training nodes. Validation and test nodes are **inductive**: they
//! are invisible during condensation and arrive at inference time with an
//! incremental adjacency `a : n x N` into the training nodes (Eq. 3), plus —
//! in the *graph batch* setting — their interconnections `ã : n x n`.

use crate::Graph;
use mcond_sparse::{Coo, Csr};

/// A graph with a train/val/test node partition, pre-assembled for the
/// inductive evaluation protocol.
#[derive(Clone, Debug)]
pub struct InductiveDataset {
    /// The complete graph (all splits).
    pub full: Graph,
    /// Training node ids in `full` — these form the original graph `T`.
    pub train_idx: Vec<usize>,
    /// Validation node ids (inductive; used as *support nodes* `T_sup` for
    /// the mapping's inductive loss, per the paper's protocol).
    pub val_idx: Vec<usize>,
    /// Test node ids (inductive).
    pub test_idx: Vec<usize>,
}

/// One batch of inductive nodes prepared for Eq. (3)/(11): features, the
/// incremental adjacency into the training nodes, their interconnections,
/// and ground-truth labels.
#[derive(Clone, Debug)]
pub struct NodeBatch {
    /// `n x d` features `x`.
    pub features: mcond_linalg::DMat,
    /// `n x N_train` incremental adjacency `a` (edges to training nodes,
    /// training-subgraph column indexing).
    pub incremental: Csr,
    /// `n x n` interconnections `ã` among the batch (empty in the *node
    /// batch* setting).
    pub interconnect: Csr,
    /// Ground-truth labels.
    pub labels: Vec<usize>,
}

impl InductiveDataset {
    /// Builds a split, checking the partition is disjoint and in-bounds.
    ///
    /// # Panics
    /// Panics when the index sets overlap or exceed the node count.
    #[must_use]
    pub fn new(
        full: Graph,
        train_idx: Vec<usize>,
        val_idx: Vec<usize>,
        test_idx: Vec<usize>,
    ) -> Self {
        let n = full.num_nodes();
        let mut seen = vec![false; n];
        for &i in train_idx.iter().chain(&val_idx).chain(&test_idx) {
            assert!(i < n, "InductiveDataset: node {i} out of bounds");
            assert!(!seen[i], "InductiveDataset: node {i} appears in two splits");
            seen[i] = true;
        }
        Self { full, train_idx, val_idx, test_idx }
    }

    /// The original graph `T`: the induced training subgraph with features
    /// and labels (training-local node ids).
    #[must_use]
    pub fn original_graph(&self) -> Graph {
        self.full.induced_subgraph(&self.train_idx)
    }

    /// Assembles the [`NodeBatch`] for a set of inductive node ids.
    ///
    /// `graph_batch` controls whether interconnections among the batch are
    /// kept (`true`, the paper's *graph batch* setting) or zeroed (`false`,
    /// *node batch*).
    ///
    /// # Panics
    /// Panics when a node id is out of bounds or belongs to the training
    /// split (training nodes are not inductive).
    #[must_use]
    pub fn batch(&self, nodes: &[usize], graph_batch: bool) -> NodeBatch {
        let n_train = self.train_idx.len();
        // Map full-graph id -> training-local id.
        let mut train_pos = vec![u32::MAX; self.full.num_nodes()];
        for (pos, &t) in self.train_idx.iter().enumerate() {
            train_pos[t] = pos as u32;
        }
        let mut batch_pos = vec![u32::MAX; self.full.num_nodes()];
        for (pos, &b) in nodes.iter().enumerate() {
            assert!(b < self.full.num_nodes(), "batch: node {b} out of bounds");
            assert!(
                train_pos[b] == u32::MAX,
                "batch: node {b} is a training node, not inductive"
            );
            batch_pos[b] = pos as u32;
        }

        let mut inc = Coo::new(nodes.len(), n_train);
        let mut inter = Coo::new(nodes.len(), nodes.len());
        for (pos, &b) in nodes.iter().enumerate() {
            for (&c, &v) in self.full.adj.row_cols(b).iter().zip(self.full.adj.row_vals(b)) {
                let c = c as usize;
                if train_pos[c] != u32::MAX {
                    inc.push(pos, train_pos[c] as usize, v);
                } else if graph_batch && batch_pos[c] != u32::MAX {
                    inter.push(pos, batch_pos[c] as usize, v);
                }
            }
        }
        NodeBatch {
            features: self.full.features.select_rows(nodes),
            incremental: inc.to_csr(),
            interconnect: inter.to_csr(),
            labels: nodes.iter().map(|&i| self.full.labels[i]).collect(),
        }
    }

    /// Splits the test nodes into consecutive batches of at most
    /// `batch_size` (the paper evaluates with batches of 1000).
    #[must_use]
    pub fn test_batches(&self, batch_size: usize, graph_batch: bool) -> Vec<NodeBatch> {
        self.test_idx
            .chunks(batch_size.max(1))
            .map(|chunk| self.batch(chunk, graph_batch))
            .collect()
    }

    /// The support-node batch (validation nodes), used to train the
    /// inductive mapping loss — labels are *not* exposed to training code
    /// paths by convention (the paper uses only features and connectivity).
    #[must_use]
    pub fn support_batch(&self, graph_batch: bool) -> NodeBatch {
        self.batch(&self.val_idx, graph_batch)
    }
}

impl NodeBatch {
    /// Number of inductive nodes in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::DMat;
    use mcond_sparse::Coo;

    /// 6-node graph: train {0,1,2} form a triangle, val {3}, test {4,5}.
    /// Edges: triangle 0-1-2, 3-0, 4-1, 5-2, 4-5.
    fn toy() -> InductiveDataset {
        let mut coo = Coo::new(6, 6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
            coo.push_sym(i, j, 1.0);
        }
        let features = DMat::from_vec(6, 1, (0..6).map(|i| i as f32).collect());
        let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
        InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5])
    }

    #[test]
    fn original_graph_is_training_triangle() {
        let data = toy();
        let orig = data.original_graph();
        assert_eq!(orig.num_nodes(), 3);
        assert_eq!(orig.num_edges(), 3);
        assert_eq!(orig.labels, vec![0, 1, 0]);
    }

    #[test]
    fn batch_builds_incremental_adjacency() {
        let data = toy();
        let b = data.batch(&[4, 5], true);
        assert_eq!(b.len(), 2);
        // node 4 connects to training node 1 (local id 1)
        assert_eq!(b.incremental.get(0, 1), 1.0);
        // node 5 connects to training node 2 (local id 2)
        assert_eq!(b.incremental.get(1, 2), 1.0);
        // interconnect 4-5 present in graph batch
        assert_eq!(b.interconnect.get(0, 1), 1.0);
        assert_eq!(b.interconnect.get(1, 0), 1.0);
        assert_eq!(b.labels, vec![0, 1]);
        assert_eq!(b.features.row(0), &[4.0]);
    }

    #[test]
    fn node_batch_zeroes_interconnections() {
        let data = toy();
        let b = data.batch(&[4, 5], false);
        assert_eq!(b.interconnect.nnz(), 0);
        assert_eq!(b.incremental.nnz(), 2);
    }

    #[test]
    fn edges_to_other_inductive_nodes_outside_batch_are_dropped() {
        let data = toy();
        // Batch {4} alone: its edge to 5 (inductive, not in batch) vanishes.
        let b = data.batch(&[4], true);
        assert_eq!(b.interconnect.nnz(), 0);
        assert_eq!(b.incremental.nnz(), 1);
    }

    #[test]
    fn test_batches_partition_test_nodes() {
        let data = toy();
        let batches = data.test_batches(1, false);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].labels, vec![0]);
        assert_eq!(batches[1].labels, vec![1]);
    }

    #[test]
    fn support_batch_uses_validation_nodes() {
        let data = toy();
        let s = data.support_batch(false);
        assert_eq!(s.len(), 1);
        assert_eq!(s.incremental.get(0, 0), 1.0); // val node 3 - train node 0
    }

    #[test]
    #[should_panic(expected = "appears in two splits")]
    fn overlapping_splits_panic() {
        let data = toy();
        let _ = InductiveDataset::new(data.full, vec![0, 1], vec![1], vec![2]);
    }

    #[test]
    #[should_panic(expected = "is a training node")]
    fn batching_training_node_panics() {
        let data = toy();
        let _ = data.batch(&[0], false);
    }
}
