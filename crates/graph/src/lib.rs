//! Graph data substrate for the `mcond` workspace.
//!
//! Provides the attributed-graph type consumed by every algorithm
//! ([`Graph`]), the **inductive split** machinery of the paper's evaluation
//! ([`InductiveDataset`]: the original graph is the induced training
//! subgraph; validation/test nodes are *inductive* and arrive with an
//! incremental adjacency `a` into the training nodes), and calibrated
//! synthetic generators standing in for Pubmed / Flickr / Reddit
//! (see `DESIGN.md` §3 for the substitution rationale).
//!
//! # Example
//! ```
//! use mcond_graph::{load_dataset, Scale};
//! let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
//! assert_eq!(data.full.num_classes, 3);
//! let original = data.original_graph();
//! assert_eq!(original.num_nodes(), data.train_idx.len());
//! ```

mod graph;
mod import;
mod inductive;
mod io;
mod sbm;
mod specs;
mod validate;

pub use graph::{Graph, GraphStats};
pub use import::import_graph;
pub use inductive::{InductiveDataset, NodeBatch};
pub use validate::BatchError;
pub use io::{load_graph, save_graph};
pub use sbm::{generate_sbm, SbmConfig};
pub use specs::{dataset_spec, load_dataset, DatasetSpec, Scale, DATASET_NAMES};
