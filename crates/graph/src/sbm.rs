//! Degree-corrected, class-assortative stochastic block model with
//! class-conditioned Gaussian features.
//!
//! This is the dataset *simulator* standing in for the paper's Pubmed /
//! Flickr / Reddit downloads (see `DESIGN.md` §3). The knobs below are the
//! properties that drive the behaviour of every algorithm under test:
//! graph size, sparsity, degree skew, label imbalance, homophily (what GNN
//! message passing exploits), and feature informativeness.

use crate::Graph;
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};

/// Configuration for [`generate_sbm`].
#[derive(Clone, Debug)]
pub struct SbmConfig {
    /// Node count `N`.
    pub nodes: usize,
    /// Target *undirected* edge count. Duplicate draws are collapsed and
    /// topped up in rounds, so the realised count meets or slightly
    /// exceeds the target (unless the requested density saturates).
    pub edges: usize,
    /// Feature dimension `d`.
    pub feature_dim: usize,
    /// Class count `C`.
    pub num_classes: usize,
    /// Probability that an edge endpoint is drawn from the same class
    /// (edge homophily; citation/social graphs sit around 0.7–0.9).
    pub homophily: f64,
    /// Pareto tail exponent for degree propensities; smaller = heavier
    /// tail. Values around 2.5 resemble citation/social degree skew.
    pub degree_exponent: f64,
    /// Class-size imbalance: class `c` has mass `∝ (c + 1)^{-imbalance}`.
    /// `0.0` gives balanced classes; Reddit-like data sits near `1.0`.
    pub class_imbalance: f64,
    /// Sub-communities per class. Real graphs have structure far finer than
    /// their label partition (Reddit's 41 classes contain thousands of
    /// topical threads); with more than one subcluster, same-class edges
    /// prefer the same sub-community and features carry a sub-community
    /// offset, so class-level clustering (the VNG/coreset inductive bias)
    /// genuinely loses information. `1` disables.
    pub subclusters_per_class: usize,
    /// Probability that a same-class edge stays within the endpoint's
    /// sub-community (ignored when `subclusters_per_class == 1`).
    pub subcluster_affinity: f64,
    /// Distance between class feature centers (signal).
    pub center_scale: f32,
    /// Per-node feature noise standard deviation.
    pub feature_noise: f32,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        Self {
            nodes: 1000,
            edges: 3000,
            feature_dim: 32,
            num_classes: 4,
            homophily: 0.8,
            degree_exponent: 2.5,
            class_imbalance: 0.5,
            subclusters_per_class: 1,
            subcluster_affinity: 0.85,
            center_scale: 1.0,
            feature_noise: 0.7,
            seed: 0,
        }
    }
}

/// Generates an attributed graph from the block model.
///
/// # Panics
/// Panics on degenerate configs (no nodes, no classes, more classes than
/// nodes).
#[must_use]
pub fn generate_sbm(cfg: &SbmConfig) -> Graph {
    assert!(cfg.nodes > 0, "generate_sbm: need at least one node");
    assert!(cfg.num_classes > 0, "generate_sbm: need at least one class");
    assert!(cfg.num_classes <= cfg.nodes, "generate_sbm: more classes than nodes");
    assert!(cfg.subclusters_per_class >= 1, "generate_sbm: need at least one subcluster");
    let mut rng = MatRng::seed_from(cfg.seed);

    let labels = sample_labels(cfg, &mut rng);
    let subclusters = sample_subclusters(cfg, &labels, &mut rng);
    let features = sample_features(cfg, &labels, &subclusters, &mut rng);
    let adj = sample_edges(cfg, &labels, &subclusters, &mut rng);
    Graph::new(adj, features, labels, cfg.num_classes)
}

/// Uniform sub-community assignment within each class. The global id of
/// node `i`'s sub-community is `labels[i] * S + s_i`.
fn sample_subclusters(cfg: &SbmConfig, labels: &[usize], rng: &mut MatRng) -> Vec<usize> {
    let s = cfg.subclusters_per_class;
    labels.iter().map(|&y| y * s + rng.index(s)).collect()
}

/// Class sizes `∝ (c + 1)^{-imbalance}`, each class non-empty, shuffled over
/// nodes.
fn sample_labels(cfg: &SbmConfig, rng: &mut MatRng) -> Vec<usize> {
    let c = cfg.num_classes;
    let weights: Vec<f64> = (0..c).map(|k| ((k + 1) as f64).powf(-cfg.class_imbalance)).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| ((w / total) * cfg.nodes as f64).floor() as usize).collect();
    // Every class keeps at least one member; distribute the remainder to the
    // largest classes first.
    for s in &mut sizes {
        if *s == 0 {
            *s = 1;
        }
    }
    let mut assigned: usize = sizes.iter().sum();
    while assigned > cfg.nodes {
        let i = sizes.iter().enumerate().max_by_key(|&(_, &s)| s).map(|(i, _)| i).unwrap();
        sizes[i] -= 1;
        assigned -= 1;
    }
    let mut k = 0;
    while assigned < cfg.nodes {
        sizes[k % c] += 1;
        assigned += 1;
        k += 1;
    }
    let mut labels = Vec::with_capacity(cfg.nodes);
    for (class, &size) in sizes.iter().enumerate() {
        labels.extend(std::iter::repeat_n(class, size));
    }
    rng.shuffle(&mut labels);
    labels
}

/// Class centers on a Gaussian cloud, sub-community offsets of the same
/// magnitude around each class center; node features = class center +
/// sub-community offset + noise.
fn sample_features(
    cfg: &SbmConfig,
    labels: &[usize],
    subclusters: &[usize],
    rng: &mut MatRng,
) -> DMat {
    let centers = rng.normal(cfg.num_classes, cfg.feature_dim, 0.0, cfg.center_scale);
    let offsets = rng.normal(
        cfg.num_classes * cfg.subclusters_per_class,
        cfg.feature_dim,
        0.0,
        cfg.center_scale,
    );
    let mut features = rng.normal(cfg.nodes, cfg.feature_dim, 0.0, cfg.feature_noise);
    for (i, &y) in labels.iter().enumerate() {
        let row = features.row_mut(i);
        for ((v, c), o) in row.iter_mut().zip(centers.row(y)).zip(offsets.row(subclusters[i])) {
            *v += *c + *o;
        }
    }
    features
}

/// Degree-corrected assortative edge sampling with sub-community affinity.
fn sample_edges(
    cfg: &SbmConfig,
    labels: &[usize],
    subclusters: &[usize],
    rng: &mut MatRng,
) -> Csr {
    let n = cfg.nodes;
    // Pareto degree propensities: w = u^{-1/(γ-1)}, clamped to bound hubs.
    let gamma = cfg.degree_exponent.max(1.5);
    let propensity: Vec<f64> = (0..n)
        .map(|_| {
            let u = f64::from(rng.unit()).max(1e-9);
            u.powf(-1.0 / (gamma - 1.0)).min(n as f64 / 10.0)
        })
        .collect();

    // Per-class and per-sub-community member lists with cumulative
    // propensities for weighted draws.
    let mut class_members: Vec<Vec<usize>> = vec![Vec::new(); cfg.num_classes];
    for (i, &y) in labels.iter().enumerate() {
        class_members[y].push(i);
    }
    let mut sub_members: Vec<Vec<usize>> =
        vec![Vec::new(); cfg.num_classes * cfg.subclusters_per_class];
    for (i, &s) in subclusters.iter().enumerate() {
        sub_members[s].push(i);
    }
    let cumsum_of = |members: &[usize]| -> Vec<f64> {
        let mut acc = 0.0;
        members
            .iter()
            .map(|&i| {
                acc += propensity[i];
                acc
            })
            .collect()
    };
    let class_cumsums: Vec<Vec<f64>> =
        class_members.iter().map(|m| cumsum_of(m)).collect();
    let sub_cumsums: Vec<Vec<f64>> = sub_members.iter().map(|m| cumsum_of(m)).collect();
    let global_cumsum: Vec<f64> = {
        let mut acc = 0.0;
        propensity
            .iter()
            .map(|&w| {
                acc += w;
                acc
            })
            .collect()
    };

    let draw_weighted = |cum: &[f64], rng: &mut MatRng| -> usize {
        let total = *cum.last().expect("non-empty cumsum");
        let target = f64::from(rng.unit()) * total;
        cum.partition_point(|&v| v < target).min(cum.len() - 1)
    };

    let sample_one = |rng: &mut MatRng| -> Option<(usize, usize)> {
        let u = draw_weighted(&global_cumsum, rng);
        let same_class = f64::from(rng.unit()) < cfg.homophily;
        let v = if same_class || cfg.num_classes == 1 {
            let su = subclusters[u];
            let within_sub = cfg.subclusters_per_class > 1
                && sub_members[su].len() > 1
                && f64::from(rng.unit()) < cfg.subcluster_affinity;
            if within_sub {
                sub_members[su][draw_weighted(&sub_cumsums[su], rng)]
            } else {
                let c = labels[u];
                class_members[c][draw_weighted(&class_cumsums[c], rng)]
            }
        } else {
            // Rejection-sample a different class endpoint (cheap: homophily
            // below 1 means most mass is off the diagonal classes anyway).
            let mut v = draw_weighted(&global_cumsum, rng);
            let mut tries = 0;
            while labels[v] == labels[u] && tries < 16 {
                v = draw_weighted(&global_cumsum, rng);
                tries += 1;
            }
            v
        };
        (u != v).then_some((u, v))
    };

    // Weighted endpoint sampling collapses many duplicates on dense,
    // hub-heavy configs; top up in rounds until the realised undirected
    // edge count reaches the target (or the density saturates).
    let mut coo = Coo::with_capacity(n, n, cfg.edges * 2);
    let mut csr = Csr::empty(n, n);
    for _round in 0..6 {
        let realised = csr.nnz() / 2;
        if realised >= cfg.edges {
            break;
        }
        let missing = cfg.edges - realised;
        // Slight overdraw: later rounds hit duplicates more often.
        let draws = missing + missing / 4;
        for _ in 0..draws {
            if let Some((u, v)) = sample_one(rng) {
                coo.push_sym(u, v, 1.0);
            }
        }
        // Collapse multi-edges to binary weights.
        csr = coo.to_csr().map_values(|_| 1.0);
    }
    csr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SbmConfig {
        SbmConfig { nodes: 400, edges: 1200, num_classes: 4, ..SbmConfig::default() }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate_sbm(&small_cfg());
        let b = generate_sbm(&small_cfg());
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn seed_changes_output() {
        let a = generate_sbm(&small_cfg());
        let b = generate_sbm(&SbmConfig { seed: 1, ..small_cfg() });
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn realised_size_is_close_to_target() {
        // Top-up rounds overdraw slightly, so the realised count lands at
        // or a little above the target.
        let g = generate_sbm(&small_cfg());
        assert_eq!(g.num_nodes(), 400);
        let e = g.num_edges() as f64;
        assert!((1200.0..1500.0).contains(&e), "edges {e} far from target 1200");
    }

    #[test]
    fn homophily_is_respected() {
        let high = generate_sbm(&SbmConfig { homophily: 0.9, ..small_cfg() });
        let low = generate_sbm(&SbmConfig { homophily: 0.2, ..small_cfg() });
        assert!(high.edge_homophily() > 0.7, "high: {}", high.edge_homophily());
        assert!(
            low.edge_homophily() < high.edge_homophily(),
            "low {} vs high {}",
            low.edge_homophily(),
            high.edge_homophily()
        );
    }

    #[test]
    fn adjacency_is_symmetric_and_binary() {
        let g = generate_sbm(&small_cfg());
        for (i, j, v) in g.adj.iter() {
            assert_eq!(v, 1.0);
            assert_eq!(g.adj.get(j, i), 1.0);
            assert_ne!(i, j, "unexpected self-loop");
        }
    }

    #[test]
    fn class_imbalance_orders_class_sizes() {
        let g = generate_sbm(&SbmConfig { class_imbalance: 1.2, ..small_cfg() });
        let counts = g.class_counts();
        assert!(counts[0] > counts[3], "counts {counts:?} not skewed");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn features_are_class_informative() {
        // Nearest-class-centroid on features must beat chance comfortably.
        let g = generate_sbm(&SbmConfig { center_scale: 1.5, ..small_cfg() });
        let c = g.num_classes;
        let d = g.feature_dim();
        let mut centroids = DMat::zeros(c, d);
        let counts = g.class_counts();
        for (i, &y) in g.labels.iter().enumerate() {
            for (dst, v) in centroids.row_mut(y).iter_mut().zip(g.features.row(i)) {
                *dst += *v / counts[y] as f32;
            }
        }
        let correct = (0..g.num_nodes())
            .filter(|&i| {
                let best = (0..c)
                    .min_by(|&a, &b| {
                        g.features
                            .row_sq_dist(i, &centroids, a)
                            .partial_cmp(&g.features.row_sq_dist(i, &centroids, b))
                            .unwrap()
                    })
                    .unwrap();
                best == g.labels[i]
            })
            .count();
        let acc = correct as f64 / g.num_nodes() as f64;
        assert!(acc > 0.6, "feature signal too weak: {acc}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate_sbm(&SbmConfig { nodes: 1000, edges: 4000, ..small_cfg() });
        let mut deg = g.adj.row_nnz();
        deg.sort_unstable();
        let max = *deg.last().unwrap() as f64;
        let median = deg[deg.len() / 2] as f64;
        assert!(max > 4.0 * median.max(1.0), "max {max} vs median {median}: no skew");
    }
}
