//! Concurrency integration: N client threads hammer a live server over
//! localhost and every HTTP response must be bitwise identical to a
//! direct `try_serve` call for the same batch — at 1 and 4 worker
//! threads — while panicking requests answer 500 without harming their
//! coalesced siblings.

mod common;

use mcond_core::chaos::corrupted_batches;
use mcond_graph::NodeBatch;
use mcond_serve::{spawn, Client, PostError, ServeConfig};
use std::time::Duration;

/// The batch mix each client thread cycles through.
fn batch_mix() -> Vec<NodeBatch> {
    let data = common::dataset();
    vec![
        data.batch(&[4, 5], true),
        data.batch(&[4], false),
        data.batch(&[5], true),
        data.batch(&[], true),
    ]
}

/// 8 client threads × 6 rounds against servers pinned to 1 and 4 worker
/// threads: every 200 is bitwise equal to the library call, every trace
/// id is echoed in the `x-mcond-trace` header path (via the body field
/// the codec returns).
#[test]
fn responses_are_bitwise_identical_to_direct_calls_across_thread_counts() {
    let batches = batch_mix();
    for worker_threads in [1usize, 4] {
        let slot = common::leaked_slot(common::FEATURE_DIM);
        let epoch = slot.load();
        let expected: Vec<_> = batches
            .iter()
            .map(|b| epoch.server().try_serve(b).expect("fixture batch is valid"))
            .collect();
        let cfg = ServeConfig {
            thread_limit: Some(worker_threads),
            // A wide window forces real coalescing across client threads.
            coalesce_window: Duration::from_millis(5),
            ..ServeConfig::default()
        };
        let handle = spawn(slot, cfg).expect("spawn front end");
        let addr = handle.addr();

        let workers: Vec<_> = (0..8)
            .map(|t| {
                let batches = batches.clone();
                let expected: Vec<Vec<f32>> =
                    expected.iter().map(|m| m.as_slice().to_vec()).collect();
                std::thread::spawn(move || {
                    let mut client =
                        Client::connect(addr, Duration::from_secs(10)).expect("connect");
                    for round in 0..6 {
                        let i = (t + round) % batches.len();
                        let (_trace, logits) =
                            client.post_batch(&batches[i]).expect("200 for a valid batch");
                        assert_eq!(
                            logits.as_slice(),
                            expected[i].as_slice(),
                            "thread {t} round {round}: HTTP logits drifted from try_serve \
                             at {worker_threads} worker threads"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client thread panicked");
        }
        handle.shutdown();
    }
}

/// A server whose model is misconfigured past validation (in_dim 5 vs
/// 3-dim features) panics inside the forward pass: over HTTP that is a
/// 500 with kind "panicked", while the empty batch coalesced next to it
/// — which skips the forward pass — still answers 200.
#[test]
fn panicking_request_returns_500_while_siblings_succeed() {
    let data = common::dataset();
    let handle = spawn(
        common::leaked_slot(5),
        ServeConfig { coalesce_window: Duration::from_millis(20), ..ServeConfig::default() },
    )
    .expect("spawn front end");
    let addr = handle.addr();

    let poison = data.batch(&[4], false);
    let empty = data.batch(&[], true);
    let victim = std::thread::spawn(move || {
        let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
        client.post_batch(&poison)
    });
    let sibling = std::thread::spawn(move || {
        let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
        client.post_batch(&empty)
    });

    match victim.join().unwrap() {
        Err(PostError::Http { status, body }) => {
            assert_eq!(status, 500, "panic maps to 500");
            assert!(body.contains("panicked"), "error envelope names the kind: {body}");
        }
        other => panic!("expected 500 for the panicking request, got {other:?}"),
    }
    let (_, logits) = sibling.join().unwrap().expect("empty sibling survives the panic");
    assert_eq!(logits.rows(), 0, "empty batch answers an empty logit matrix");

    // The server itself survives: fresh empty request still 200.
    let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
    let (_, again) = client.post_batch(&data.batch(&[], false)).expect("server survives");
    assert_eq!(again.rows(), 0);
    handle.shutdown();
}

/// The core chaos catalogue over the wire: every corrupted batch maps to
/// a 4xx (InvalidBatch → 400) and a healthy donor keeps serving bitwise
/// stable logits between corruptions.
#[test]
fn corrupted_batches_map_to_client_errors_over_http() {
    let data = common::dataset();
    let slot = common::leaked_slot(common::FEATURE_DIM);
    let donor = data.batch(&[4, 5], true);
    let reference = slot.load().server().try_serve(&donor).expect("donor valid");

    let handle = spawn(slot, ServeConfig::default()).expect("spawn front end");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    for case in corrupted_batches(&donor) {
        match client.post_batch(&case.batch) {
            Err(PostError::Http { status, .. }) => {
                // Non-finite payloads die in the codec (400); the rest
                // reach the server and come back as typed InvalidBatch
                // (also 400).
                assert_eq!(status, 400, "case {}: corruption must map to 400", case.name);
            }
            Ok(_) => panic!("case {}: corrupted batch was served", case.name),
            Err(other) => panic!("case {}: transport-level failure {other}", case.name),
        }
        let (_, logits) = client.post_batch(&donor).expect("donor still serves");
        assert_eq!(
            logits.as_slice(),
            reference.as_slice(),
            "case {}: donor logits drifted after the corruption",
            case.name
        );
    }
    handle.shutdown();
}
