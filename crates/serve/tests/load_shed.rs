//! Load shedding and backpressure: with the batcher's dequeue gate
//! paused, the bounded queue fills deterministically; overflow requests
//! get 429 + `Retry-After` and the `serve.http.shed` counter moves; on
//! resume every queued request drains to exactly one 200 — nothing
//! dropped, nothing duplicated — and fresh traffic is readmitted.

mod common;

use mcond_obs::Json;
use mcond_serve::{spawn, Client, ServeConfig};
use std::time::Duration;

/// Reads the process-scope value of a counter from `GET /metrics`.
fn counter(client: &mut Client, name: &str) -> u64 {
    let resp = client.request("GET", "/metrics", b"").expect("metrics");
    assert_eq!(resp.status, 200);
    for line in resp.text().lines().filter(|l| !l.is_empty()) {
        let j = Json::parse(line).expect("metrics line parses");
        if j.get("scope").and_then(Json::as_str) == Some("process") {
            let metrics = j.get("metrics").expect("metrics object");
            if let Some(v) = metrics
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_f64)
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                return v as u64;
            }
            return 0;
        }
    }
    panic!("no process-scope metrics line");
}

#[test]
fn saturated_queue_sheds_with_retry_after_then_drains_back_to_200s() {
    const QUEUE: usize = 4;
    let data = common::dataset();
    let handle = spawn(
        common::leaked_slot(common::FEATURE_DIM),
        ServeConfig {
            queue_capacity: QUEUE,
            // Shed purely on depth in this test: the EWMA threshold is
            // parked out of reach.
            shed_wait_us: u64::MAX,
            ..ServeConfig::default()
        },
    )
    .expect("spawn front end");
    let addr = handle.addr();

    let mut probe = Client::connect(addr, Duration::from_secs(5)).unwrap();
    let shed_before = counter(&mut probe, "serve.http.shed");
    let admitted_before = counter(&mut probe, "serve.http.admitted");

    // Close the dequeue gate, then give the batcher time to finish any
    // in-flight poll and park — from here on admitted jobs only queue.
    handle.pause();
    std::thread::sleep(Duration::from_millis(120));

    let batch = data.batch(&[4], false);
    let queued: Vec<_> = (0..QUEUE)
        .map(|i| {
            let batch = batch.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(30))
                    .unwrap_or_else(|e| panic!("client {i}: {e}"));
                client.post_batch(&batch)
            })
        })
        .collect();
    // Wait until every queued client is actually admitted before probing
    // the overflow path — the admitted counter makes this deterministic.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while counter(&mut probe, "serve.http.admitted") < admitted_before + QUEUE as u64 {
        assert!(std::time::Instant::now() < deadline, "queue never saturated");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Overflow requests: all shed with 429 + Retry-After, all counted.
    for i in 0..4 {
        let resp = probe
            .request("POST", "/v1/serve", mcond_serve::encode_batch(&batch).as_bytes())
            .expect("overflow probe");
        assert_eq!(resp.status, 429, "overflow {i} must shed");
        assert_eq!(resp.header("retry-after"), Some("1"), "429 must carry Retry-After");
    }
    let shed_during = counter(&mut probe, "serve.http.shed");
    assert!(
        shed_during >= shed_before + 4,
        "shed counter must move: before {shed_before}, during {shed_during}"
    );

    // Pressure drops: every queued request drains to exactly one 200
    // with the same logits.
    handle.resume();
    let mut served = 0;
    for (i, worker) in queued.into_iter().enumerate() {
        let (_, logits) = worker
            .join()
            .expect("queued client panicked")
            .unwrap_or_else(|e| panic!("queued client {i} not served after resume: {e}"));
        assert_eq!(logits.rows(), 1, "one logit row per one-node batch");
        served += 1;
    }
    assert_eq!(served, QUEUE, "no dropped or duplicated responses");

    // Fresh traffic is readmitted once drained.
    let (_, logits) = probe.post_batch(&batch).expect("server drained back to 200s");
    assert_eq!(logits.rows(), 1);
    handle.shutdown();
}
