//! Protocol robustness: every malformed-HTTP case in the
//! `mcond_serve::chaos` corpus gets a clean typed status or a clean
//! close — never a panic, never a connection hung past its deadline —
//! and the server keeps answering healthy requests after each abuse.

mod common;

use mcond_serve::chaos::{protocol_corpus, ChaosWrite, Expect};
use mcond_serve::{spawn, Client, ServeConfig, ServeHandle};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

const READ_TIMEOUT: Duration = Duration::from_millis(300);

fn spawn_toy() -> ServeHandle {
    let cfg = ServeConfig { read_timeout: READ_TIMEOUT, ..ServeConfig::default() };
    spawn(common::leaked_slot(common::FEATURE_DIM), cfg).expect("spawn front end")
}

/// Runs one scripted case and returns every status the server answered
/// (empty when it closed silently).
fn run_case(handle: &ServeHandle, writes: &[ChaosWrite]) -> Vec<u16> {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
    for w in writes {
        match w {
            ChaosWrite::Bytes(b) => {
                // The server may have already rejected and closed; a
                // failed write is part of the scenario, not an error.
                if (&stream).write_all(b).is_err() {
                    break;
                }
            }
            ChaosWrite::Pause(d) => std::thread::sleep(*d),
            ChaosWrite::CloseWrite => {
                let _ = stream.shutdown(Shutdown::Write);
            }
        }
    }
    // Drain everything until EOF, bounded by a hard deadline — a case
    // that never reaches EOF is a hung connection, which the corpus
    // contract forbids.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        assert!(Instant::now() < deadline, "connection hung past the drain deadline");
        match (&stream).read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    parse_statuses(&buf)
}

/// Splits a byte stream of back-to-back `Content-Length`-framed
/// responses into their status codes.
fn parse_statuses(mut buf: &[u8]) -> Vec<u16> {
    let mut statuses = Vec::new();
    while !buf.is_empty() {
        let head_end = buf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response head is complete");
        let head = std::str::from_utf8(&buf[..head_end]).expect("ASCII head");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code in the status line");
        statuses.push(status);
        let len: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        buf = &buf[(head_end + 4 + len).min(buf.len())..];
    }
    statuses
}

#[test]
fn corpus_yields_clean_statuses_and_the_server_survives() {
    let handle = spawn_toy();
    let corpus = protocol_corpus(
        &ServeConfig::default().limits,
        READ_TIMEOUT,
        common::INC_COLS,
        common::FEATURE_DIM,
    );
    for case in &corpus {
        let got = run_case(&handle, &case.writes);
        match case.expect {
            Expect::Statuses(want) => {
                assert_eq!(got, want, "case {}: wrong status sequence", case.name);
            }
            Expect::Closed => {
                assert!(got.is_empty(), "case {}: expected silent close, got {got:?}", case.name);
            }
            Expect::StatusOrClosed(want) => {
                assert!(
                    got.is_empty() || got == [want],
                    "case {}: expected [{want}] or close, got {got:?}",
                    case.name
                );
            }
        }
        // Graceful degradation: the abuse must not poison later
        // connections.
        let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
        let resp = client.request("GET", "/healthz", b"").unwrap();
        assert_eq!(resp.status, 200, "case {}: server unhealthy afterwards", case.name);
    }
    handle.shutdown();
}

#[test]
fn keep_alive_connection_serves_the_corpus_of_good_requests_back_to_back() {
    let handle = spawn_toy();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
    for _ in 0..8 {
        let h = client.request("GET", "/healthz", b"").unwrap();
        assert_eq!(h.status, 200);
        let m = client.request("GET", "/metrics", b"").unwrap();
        assert_eq!(m.status, 200);
        // Two JSONL lines: server scope + process scope.
        let text = m.text();
        let lines: Vec<_> = text.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 2, "metrics is JSONL with two scopes");
        for line in lines {
            assert!(mcond_obs::Json::parse(line).is_ok(), "metrics line is valid JSON: {line}");
        }
    }
    handle.shutdown();
}
