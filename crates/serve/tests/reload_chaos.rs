//! Hot-swap chaos: ≥100 checkpoint reloads under closed-loop client load
//! with zero non-200s, every answer bitwise-verified against the exact
//! epoch its `x-mcond-epoch` header claims; corrupt-checkpoint reload
//! storms that never disturb serving; and the watchdog recovering a
//! panicked or wedged batcher with typed answers for its orphans.

mod common;

use common::counter;
use mcond_core::{GraphDelta, InductiveServer, LiveBase};
use mcond_graph::NodeBatch;
use mcond_linalg::MatRng;
use mcond_serve::{boot_slot, spawn, Client, PostError, ServeConfig};
use mcond_sparse::{Coo, Csr};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many hot swaps the storm performs (ISSUE floor: 100).
const RELOADS: usize = 100;

fn reload_body(path: &std::path::Path) -> Vec<u8> {
    format!("{{\"path\": \"{}\"}}", path.display()).into_bytes()
}

/// The probe batch the closed-loop clients hammer: one test node from the
/// toy split, valid against every toy checkpoint.
fn probe_batch() -> NodeBatch {
    common::dataset().batch(&[4, 5], true)
}

/// Expected logits for `batch` under the checkpoint `seed` produces —
/// computed through the plain borrowing server, the reference the wire
/// answers must match bitwise.
fn expected_logits(seed: u64, batch: &NodeBatch) -> Vec<f32> {
    let ckpt = common::toy_checkpoint(seed);
    let server = InductiveServer::from_checkpoint(&ckpt);
    server.try_serve(batch).expect("probe batch valid").as_slice().to_vec()
}

/// ≥100 hot swaps between two bitwise-distinct checkpoints while four
/// closed-loop clients hammer `/v1/serve`: every response is a 200, and
/// every response's logits match the checkpoint its epoch header claims —
/// epoch parity tells us which file was live (boot = A = odd epochs).
#[test]
fn hundred_reloads_under_load_serve_only_200s_with_epoch_true_answers() {
    const SEED_A: u64 = 11;
    const SEED_B: u64 = 22;
    let path_a = common::checkpoint_file("storm_a", SEED_A);
    let path_b = common::checkpoint_file("storm_b", SEED_B);
    let batch = probe_batch();
    let want_a = expected_logits(SEED_A, &batch);
    let want_b = expected_logits(SEED_B, &batch);
    assert_ne!(want_a, want_b, "the two checkpoints must be bitwise distinguishable");

    let slot = boot_slot(&path_a).expect("boot from checkpoint A");
    let handle = spawn(slot, ServeConfig::default()).expect("spawn front end");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let batch = batch.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(30)).expect("connect");
                let mut seen: Vec<(u64, Vec<f32>)> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let reply = client
                        .post_batch_tagged(&batch)
                        .unwrap_or_else(|e| panic!("client {t}: non-200 under reload storm: {e}"));
                    let epoch = reply.epoch.expect("every response carries x-mcond-epoch");
                    seen.push((epoch, reply.logits.as_slice().to_vec()));
                }
                seen
            })
        })
        .collect();

    // The storm: alternate B, A, B, A, ... so epoch e serves A when e is
    // odd (epoch 1 booted from A) and B when e is even.
    let mut admin = Client::connect(addr, Duration::from_secs(30)).expect("admin connect");
    for i in 1..=RELOADS {
        let path = if i % 2 == 1 { &path_b } else { &path_a };
        let resp = admin
            .request("POST", "/v1/admin/reload", &reload_body(path))
            .expect("reload request");
        assert_eq!(resp.status, 200, "reload {i} failed: {}", resp.text());
    }
    stop.store(true, Ordering::Release);

    let mut total = 0usize;
    let mut epochs_seen = std::collections::BTreeSet::new();
    for worker in clients {
        for (epoch, logits) in worker.join().expect("client thread panicked") {
            let want = if epoch % 2 == 1 { &want_a } else { &want_b };
            assert_eq!(
                &logits, want,
                "epoch {epoch}: logits are not bitwise the checkpoint this epoch installed"
            );
            epochs_seen.insert(epoch);
            total += 1;
        }
    }
    assert!(total > 0, "closed-loop clients must actually serve traffic");
    assert!(
        epochs_seen.len() >= 2,
        "traffic must span multiple epochs to prove the swap happened under load; saw {epochs_seen:?}"
    );
    assert_eq!(handle.epoch(), 1 + RELOADS as u64, "one epoch per successful reload");

    handle.shutdown();
    std::fs::remove_file(path_a).ok();
    std::fs::remove_file(path_b).ok();
}

/// The live-graph loop under traffic: 100 cycles of promote-one-node →
/// lineage-stamped checkpoint → hot swap, while four closed-loop clients
/// hammer `/v1/serve` with an *original-width* probe batch. Zero non-200s
/// — prefix validation keeps old clients serveable against every grown
/// epoch — and each successful swap advances exactly one epoch.
#[test]
fn interleaved_promotions_and_hot_swaps_serve_only_200s() {
    const CYCLES: usize = 100;
    let ckpt0 = common::toy_checkpoint(41);
    let model = ckpt0.model.clone();
    let mut live = LiveBase::synthetic(ckpt0.synthetic.clone(), ckpt0.mapping.clone());
    let path = std::env::temp_dir().join(format!(
        "mcond_serve_interleave_{}.mcst",
        std::process::id()
    ));
    ckpt0.save(&path).expect("save boot checkpoint");

    let slot = boot_slot(&path).expect("boot from checkpoint");
    let handle = spawn(slot, ServeConfig::default()).expect("spawn front end");
    let addr = handle.addr();
    let batch = probe_batch();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let batch = batch.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(30)).expect("connect");
                let mut served = 0usize;
                while !stop.load(Ordering::Acquire) {
                    client.post_batch_tagged(&batch).unwrap_or_else(|e| {
                        panic!("client {t}: non-200 during promote/swap interleave: {e}")
                    });
                    served += 1;
                }
                served
            })
        })
        .collect();

    let mut admin = Client::connect(addr, Duration::from_secs(30)).expect("admin connect");
    for i in 1..=CYCLES {
        // Promote one node, attached to a rotating original train node.
        let width = live.inc_width();
        let mut inc = Coo::new(1, width);
        inc.push(0, i % common::INC_COLS, 1.0);
        let delta = GraphDelta::new(NodeBatch {
            features: MatRng::seed_from(1000 + i as u64).normal(
                1,
                common::FEATURE_DIM,
                0.0,
                1.0,
            ),
            incremental: inc.to_csr(),
            interconnect: Csr::empty(1, 1),
            labels: vec![i % 2],
        });
        let report = live.promote(&delta).unwrap_or_else(|e| panic!("promotion {i}: {e}"));
        assert_eq!(report.version, i as u64);

        // Emit the grown, lineage-stamped bundle and hot-swap it in.
        live.checkpoint(&model)
            .expect("live checkpoint")
            .save(&path)
            .expect("save grown checkpoint");
        let resp = admin
            .request("POST", "/v1/admin/reload", &reload_body(&path))
            .expect("reload request");
        assert_eq!(resp.status, 200, "swap {i} failed: {}", resp.text());
    }
    stop.store(true, Ordering::Release);

    let total: usize = clients.into_iter().map(|c| c.join().expect("client panicked")).sum();
    assert!(total > 0, "closed-loop clients must actually serve traffic");
    assert_eq!(handle.epoch(), 1 + CYCLES as u64, "one epoch per promote/swap cycle");

    // The final epoch serves the fully grown base and reports its lineage.
    let (ckpt, _) = mcond_core::Checkpoint::load_for_serving(&path).expect("reload final");
    let lineage = ckpt.lineage.expect("promoted checkpoints carry lineage");
    assert_eq!(lineage.promotions, CYCLES as u64);
    assert_eq!(lineage.promoted_nodes, CYCLES as u64);
    assert_eq!(lineage.base_nodes, (2 + CYCLES) as u64);

    handle.shutdown();
    std::fs::remove_file(path).ok();
}

/// A storm of reloads pointing at a corrupt bundle: the first attempt is
/// rejected 422 by CRC validation, immediate retries are rejected 429 by
/// the exponential backoff, and between every rejection the old epoch
/// keeps answering bitwise-identical logits. A valid bundle after the
/// backoff elapses swaps cleanly and resets the gate.
#[test]
fn corrupt_reload_storm_never_disturbs_serving_and_backoff_gates_retries() {
    const SEED_A: u64 = 31;
    const SEED_B: u64 = 32;
    let path_a = common::checkpoint_file("corrupt_good", SEED_A);
    let path_b = common::checkpoint_file("corrupt_next", SEED_B);

    // Corrupt copy of A: flip a byte mid-file so a section CRC breaks.
    let corrupt = std::env::temp_dir()
        .join(format!("mcond_serve_corrupt_{}_{SEED_A}.mcst", std::process::id()));
    let mut bytes = std::fs::read(&path_a).expect("read valid bundle");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&corrupt, &bytes).expect("write corrupt bundle");

    let batch = probe_batch();
    let want_a = expected_logits(SEED_A, &batch);

    let slot = boot_slot(&path_a).expect("boot from checkpoint A");
    let cfg = ServeConfig {
        reload_backoff: Duration::from_millis(200),
        reload_backoff_cap: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let handle = spawn(slot, cfg).expect("spawn front end");
    let mut admin = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    let mut serve = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();

    let mut saw_422 = 0u32;
    let mut saw_429 = 0u32;
    for i in 0..10 {
        let resp = admin
            .request("POST", "/v1/admin/reload", &reload_body(&corrupt))
            .expect("reload request");
        match resp.status {
            422 => saw_422 += 1,
            429 => {
                let retry: u64 = resp
                    .header("retry-after")
                    .expect("backoff rejection advertises Retry-After")
                    .parse()
                    .expect("integral Retry-After");
                assert!(retry >= 1, "Retry-After floor is one second");
                saw_429 += 1;
            }
            other => panic!("attempt {i}: corrupt reload must answer 422 or 429, got {other}"),
        }
        // The old epoch is bitwise untouched between every rejection.
        let reply = serve.post_batch_tagged(&batch).expect("serving survives the storm");
        assert_eq!(reply.epoch, Some(1), "no corrupt bundle ever became an epoch");
        assert_eq!(
            reply.logits.as_slice(),
            want_a.as_slice(),
            "attempt {i}: in-flight answers drifted during the corrupt storm"
        );
    }
    assert!(saw_422 >= 1, "the CRC rejection must surface at least once");
    assert!(saw_429 >= 1, "the backoff must gate at least one immediate retry");
    assert_eq!(handle.epoch(), 1, "corrupt bundles never swap");

    // Wait out the armed backoff (doubled per failure, capped at 2s) and
    // prove a valid bundle still swaps — failure never bricks reloads.
    std::thread::sleep(Duration::from_millis(2_200));
    let resp = admin
        .request("POST", "/v1/admin/reload", &reload_body(&path_b))
        .expect("reload request");
    assert_eq!(resp.status, 200, "valid reload after backoff: {}", resp.text());
    assert_eq!(handle.epoch(), 2);
    let reply = serve.post_batch_tagged(&batch).expect("serving continues on the new epoch");
    assert_eq!(reply.epoch, Some(2));
    assert_eq!(reply.logits.as_slice(), expected_logits(SEED_B, &batch).as_slice());

    handle.shutdown();
    for p in [path_a, path_b, corrupt] {
        std::fs::remove_file(p).ok();
    }
}

/// A panicked batcher: the heartbeat dies, the watchdog respawns within
/// one period, and a request queued across the gap is served by the
/// replacement — the client sees a plain 200, never an error.
#[test]
fn watchdog_respawns_a_panicked_batcher_and_queued_work_survives() {
    let data = common::dataset();
    let cfg = ServeConfig {
        watchdog_period: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let handle = spawn(common::leaked_slot(common::FEATURE_DIM), cfg).expect("spawn front end");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(30)).unwrap();
    let restarts_before = counter(&mut client, "serve.watchdog.restarts");

    let batch = data.batch(&[4], false);
    let (_, logits) = client.post_batch(&batch).expect("healthy before the chaos");
    assert_eq!(logits.rows(), 1);

    handle.inject_batcher_panic();
    // Let the batcher actually hit the injected panic on its next tick.
    std::thread::sleep(Duration::from_millis(60));

    let t0 = Instant::now();
    let (_, logits) = client
        .post_batch(&batch)
        .expect("request queued across the panic is served by the respawned batcher");
    assert_eq!(logits.rows(), 1);
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "recovery must land within a couple of watchdog periods, took {:?}",
        t0.elapsed()
    );
    let restarts_after = counter(&mut client, "serve.watchdog.restarts");
    assert!(
        restarts_after > restarts_before,
        "the restart must be counted: before {restarts_before}, after {restarts_after}"
    );
    handle.shutdown();
}

/// A wedged batcher with a job already in flight: the watchdog answers
/// the orphan with a typed `503 aborted` instead of leaving its handler
/// to time out, and a fresh request lands on the replacement.
#[test]
fn watchdog_aborts_inflight_orphans_of_a_stalled_batcher() {
    let data = common::dataset();
    let cfg = ServeConfig {
        watchdog_period: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let handle = spawn(common::leaked_slot(common::FEATURE_DIM), cfg).expect("spawn front end");
    let addr = handle.addr();

    // The stall triggers after the batcher takes its *next* batch in
    // flight — exactly the window where a job is dequeued but unanswered.
    handle.inject_batcher_stall(Duration::from_secs(5));
    let batch = data.batch(&[4], false);
    let t0 = Instant::now();
    let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
    match client.post_batch(&batch) {
        Err(PostError::Http { status, body }) => {
            assert_eq!(status, 503, "orphaned job answers a typed 503");
            assert!(body.contains("aborted"), "error envelope names the kind: {body}");
        }
        other => panic!("expected the watchdog to abort the orphan, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "the orphan must be answered within a couple of watchdog periods, not the \
         5s stall: took {:?}",
        t0.elapsed()
    );

    // The replacement batcher serves fresh traffic long before the wedged
    // predecessor wakes (it self-retires via the generation check).
    let mut fresh = Client::connect(addr, Duration::from_secs(30)).unwrap();
    let (_, logits) = fresh.post_batch(&batch).expect("replacement batcher serves");
    assert_eq!(logits.rows(), 1);
    handle.shutdown();
}
