//! Shared fixture for the serve integration suites: the same 6-node toy
//! split as `mcond-core`'s chaos sweep, leaked into `'static` servers the
//! front end's connection threads can share.

// Each test binary includes this module but uses a different subset.
#![allow(dead_code)]

use mcond_core::InductiveServer;
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{Graph, InductiveDataset};
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};
use std::sync::Arc;

/// Incremental width every request against the toy server must have
/// (mapping rows for Eq. 11 serving).
pub const INC_COLS: usize = 3;
/// Feature dimension of the toy split.
pub const FEATURE_DIM: usize = 3;

/// 6-node toy split: train {0,1,2} triangle, val {3}, test {4,5}.
pub fn dataset() -> InductiveDataset {
    let mut coo = Coo::new(6, 6);
    for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
        coo.push_sym(i, j, 1.0);
    }
    let features = MatRng::seed_from(7).normal(6, FEATURE_DIM, 0.0, 1.0);
    let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
    InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5])
}

/// Synthetic-mode server over a leaked 2-node synthetic graph and 3x2
/// mapping. `model_in_dim = FEATURE_DIM` gives a healthy server;
/// `model_in_dim = 5` passes validation but panics inside the forward
/// pass (the chaos-sweep misconfiguration), for exercising 500s.
pub fn leaked_server(model_in_dim: usize) -> Arc<InductiveServer<'static>> {
    let syn: &'static Graph = Box::leak(Box::new(Graph::new(
        Csr::eye(2),
        DMat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]),
        vec![0, 1],
        2,
    )));
    let mut map = Coo::new(INC_COLS, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    map.push(2, 1, 1.0);
    let mapping: &'static Csr = Box::leak(Box::new(map.to_csr()));
    let model: &'static GnnModel =
        Box::leak(Box::new(GnnModel::new(GnnKind::Gcn, model_in_dim, 4, 2, 1)));
    Arc::new(InductiveServer::on_synthetic(syn, mapping, model))
}
