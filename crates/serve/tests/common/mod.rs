//! Shared fixture for the serve integration suites: the same 6-node toy
//! split as `mcond-core`'s chaos sweep, leaked into `'static` servers and
//! wrapped in epoch slots the front end's hot-swap machinery expects.

// Each test binary includes this module but uses a different subset.
#![allow(dead_code)]

use mcond_core::{Checkpoint, EpochServer, EpochSlot, InductiveServer};
use mcond_serve::Client;
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{Graph, InductiveDataset};
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};
use std::path::PathBuf;
use std::sync::Arc;

/// Incremental width every request against the toy server must have
/// (mapping rows for Eq. 11 serving).
pub const INC_COLS: usize = 3;
/// Feature dimension of the toy split.
pub const FEATURE_DIM: usize = 3;

/// 6-node toy split: train {0,1,2} triangle, val {3}, test {4,5}.
pub fn dataset() -> InductiveDataset {
    let mut coo = Coo::new(6, 6);
    for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
        coo.push_sym(i, j, 1.0);
    }
    let features = MatRng::seed_from(7).normal(6, FEATURE_DIM, 0.0, 1.0);
    let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
    InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5])
}

/// Boot epoch slot over a leaked 2-node synthetic graph and 3x2 mapping.
/// `model_in_dim = FEATURE_DIM` gives a healthy server;
/// `model_in_dim = 5` passes validation but panics inside the forward
/// pass (the chaos-sweep misconfiguration), for exercising 500s — the
/// `from_static` escape hatch exists exactly because `Checkpoint::new`
/// would reject that fixture.
pub fn leaked_slot(model_in_dim: usize) -> Arc<EpochSlot> {
    let syn: &'static Graph = Box::leak(Box::new(Graph::new(
        Csr::eye(2),
        DMat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]),
        vec![0, 1],
        2,
    )));
    let mut map = Coo::new(INC_COLS, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    map.push(2, 1, 1.0);
    let mapping: &'static Csr = Box::leak(Box::new(map.to_csr()));
    let model: &'static GnnModel =
        Box::leak(Box::new(GnnModel::new(GnnKind::Gcn, model_in_dim, 4, 2, 1)));
    let server = InductiveServer::on_synthetic(syn, mapping, model);
    Arc::new(EpochSlot::new(EpochServer::from_static(server, "toy-fixture")))
}

/// A valid, saveable checkpoint over the same toy shapes as
/// [`leaked_slot`] — 2 synthetic nodes, 3-dim features, 3x2 mapping.
/// Different `seed`s produce bitwise-distinct model weights, which is
/// what the reload chaos suite alternates between to prove each answer
/// came from the epoch its header claims.
pub fn toy_checkpoint(seed: u64) -> Checkpoint {
    let mut coo = Coo::new(2, 2);
    coo.push_sym(0, 1, 1.0);
    let graph = Graph::new(
        coo.to_csr(),
        DMat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]),
        vec![0, 1],
        2,
    );
    let mut map = Coo::new(INC_COLS, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    map.push(2, 1, 1.0);
    let model = GnnModel::new(GnnKind::Gcn, FEATURE_DIM, 4, 2, seed);
    Checkpoint::new(graph, map.to_csr(), model).expect("toy checkpoint is valid")
}

/// Reads the process-scope value of a counter from `GET /metrics`.
pub fn counter(client: &mut Client, name: &str) -> u64 {
    let resp = client.request("GET", "/metrics", b"").expect("metrics");
    assert_eq!(resp.status, 200);
    for line in resp.text().lines().filter(|l| !l.is_empty()) {
        let j = mcond_obs::Json::parse(line).expect("metrics line parses");
        if j.get("scope").and_then(mcond_obs::Json::as_str) == Some("process") {
            let metrics = j.get("metrics").expect("metrics object");
            if let Some(v) = metrics
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(mcond_obs::Json::as_f64)
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                return v as u64;
            }
            return 0;
        }
    }
    panic!("no process-scope metrics line");
}

/// Saves [`toy_checkpoint`]`(seed)` under a unique temp path (per process
/// and tag, so parallel test binaries never collide) and returns it.
pub fn checkpoint_file(tag: &str, seed: u64) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "mcond_serve_{tag}_{}_{seed}.mcst",
        std::process::id()
    ));
    toy_checkpoint(seed).save(&path).expect("save toy checkpoint");
    path
}
