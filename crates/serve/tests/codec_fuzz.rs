//! Seeded property fuzzing of the wire codec, in the same style as the
//! store fault-injection suite: random `NodeBatch`es (including NaN/Inf
//! contamination and empty shapes) must either round-trip bitwise or
//! fail with a typed [`CodecError`]; random byte mutations and
//! truncations of valid payloads must never panic the decoder.

use mcond_graph::NodeBatch;
use mcond_linalg::MatRng;
use mcond_serve::{decode_batch, decode_logits, encode_batch, encode_logits, CodecError};
use mcond_sparse::Coo;

/// Draws a random batch: `n×d` features, `n×base` incremental, `n×n`
/// interconnect, with occasional degenerate shapes.
fn random_batch(rng: &mut MatRng, round: usize) -> NodeBatch {
    let n = [0usize, 1, 2, 3, 5, 8][round % 6];
    let d = 1 + round % 4;
    let base = 1 + round % 5;
    let features = rng.normal(n, d, 0.0, 10.0);
    let mut inc = Coo::new(n, base);
    let mut inter = Coo::new(n, n);
    for i in 0..n {
        inc.push(i, i % base, rng.normal(1, 1, 0.0, 1.0).get(0, 0));
        if n > 1 {
            inter.push(i, (i + 1) % n, 1.0);
        }
    }
    NodeBatch {
        features,
        incremental: inc.to_csr(),
        interconnect: inter.to_csr(),
        labels: (0..n).map(|i| i % 2).collect(),
    }
}

/// Seeds a deterministic corruption into the batch's floats.
fn poison(batch: &mut NodeBatch, round: usize) {
    if batch.features.rows() == 0 {
        return;
    }
    let bad = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][round % 3];
    batch.features.set(0, 0, bad);
}

#[test]
fn clean_batches_round_trip_bitwise() {
    let mut rng = MatRng::seed_from(0x5EED);
    for round in 0..200 {
        let batch = random_batch(&mut rng, round);
        let text = encode_batch(&batch);
        let back = decode_batch(&text)
            .unwrap_or_else(|e| panic!("round {round}: clean batch failed decode: {e}"));
        assert!(back.features.bit_eq(&batch.features), "round {round}: features drifted");
        assert!(back.incremental.bit_eq(&batch.incremental), "round {round}: incremental");
        assert!(back.interconnect.bit_eq(&batch.interconnect), "round {round}: interconnect");
        assert_eq!(back.labels, batch.labels, "round {round}: labels");
    }
}

#[test]
fn non_finite_payloads_fail_typed_never_panic() {
    let mut rng = MatRng::seed_from(0xBAD);
    let mut typed_failures = 0;
    for round in 0..120 {
        let mut batch = random_batch(&mut rng, round);
        poison(&mut batch, round);
        match decode_batch(&encode_batch(&batch)) {
            Ok(back) => {
                // Empty batches have nothing to poison and stay clean.
                assert_eq!(batch.features.rows(), 0, "round {round}: poison decoded");
                assert_eq!(back.features.rows(), 0);
            }
            Err(CodecError::Type { field, .. }) => {
                assert_eq!(field, "features", "round {round}");
                typed_failures += 1;
            }
            Err(other) => panic!("round {round}: wrong error class: {other}"),
        }
    }
    assert!(typed_failures > 50, "poisoning must actually exercise the error path");
}

#[test]
fn logits_round_trip_bitwise_including_edge_floats() {
    let specials: &[f32] = &[
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        1.0e-40, // subnormal
        123_456.75,
    ];
    let mut rng = MatRng::seed_from(0xF10A7);
    for round in 0..100 {
        let rows = round % 5;
        let cols = 1 + round % 3;
        let mut logits = rng.normal(rows, cols, 0.0, 1.0e6);
        if rows > 0 {
            logits.set(0, 0, specials[round % specials.len()]);
        }
        let (trace, back) = decode_logits(&encode_logits(round as u64, &logits))
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(trace, round as u64);
        assert!(back.bit_eq(&logits), "round {round}: logits drifted");
    }
}

/// Byte-level adversarial pass: mutate or truncate a valid payload at a
/// seeded random position. The decoder must return — `Ok` or typed
/// `Err` — but never panic (the harness would abort on panic).
#[test]
fn mutated_and_truncated_payloads_never_panic() {
    let mut rng = MatRng::seed_from(0xC0DEC);
    let base = {
        let batch = random_batch(&mut rng, 4);
        encode_batch(&batch)
    };
    let draw = |rng: &mut MatRng, bound: usize| -> usize {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let v = (rng.normal(1, 1, 0.0, 1.0).get(0, 0).abs() * 1.0e4) as usize;
        v % bound.max(1)
    };
    let mut outcomes = [0usize; 2];
    for round in 0..600 {
        let mut bytes = base.clone().into_bytes();
        if round % 3 == 0 {
            // Truncation.
            bytes.truncate(draw(&mut rng, bytes.len()));
        } else {
            // Single-byte mutation over printable-ish space.
            let pos = draw(&mut rng, bytes.len());
            let delta = 1 + (draw(&mut rng, 94)) as u8;
            bytes[pos] = 32 + (bytes[pos].wrapping_add(delta)) % 95;
        }
        // Non-UTF8 never reaches the codec in the server (the endpoint
        // rejects it first); nothing to assert for that branch.
        if let Ok(text) = String::from_utf8(bytes) {
            match decode_batch(&text) {
                Ok(_) => outcomes[0] += 1,
                Err(_) => outcomes[1] += 1,
            }
        }
    }
    assert!(outcomes[1] > 100, "mutations must exercise the error paths: {outcomes:?}");
}
