//! Graceful drain and deadline budgets: keep-alive clients with queued
//! requests get exactly one complete response during shutdown (never a
//! mid-reply connection reset), at 1 and 4 worker threads; queued work
//! whose deadline budget expires answers a typed `503` instead of a stale
//! result; and `/healthz` reports the supervision vitals.

mod common;

use common::counter;
use mcond_obs::Json;
use mcond_serve::{encode_batch, spawn, Client, PostError, ServeConfig};
use std::time::Duration;

/// Queued keep-alive requests across a graceful shutdown: each of the
/// four blocked clients receives exactly one complete `200` — the drain
/// serves everything admitted before it began — and the connection is
/// closed cleanly *after* the reply, proven by the next request on the
/// same socket failing without ever corrupting the first.
#[test]
fn drain_serves_every_queued_request_exactly_once_across_thread_counts() {
    const QUEUED: usize = 4;
    let data = common::dataset();
    for worker_threads in [1usize, 4] {
        let handle = spawn(
            common::leaked_slot(common::FEATURE_DIM),
            ServeConfig {
                thread_limit: Some(worker_threads),
                ..ServeConfig::default()
            },
        )
        .expect("spawn front end");
        let addr = handle.addr();

        let mut probe = Client::connect(addr, Duration::from_secs(5)).unwrap();
        let admitted_before = counter(&mut probe, "serve.http.admitted");

        // Park the batcher so the clients' requests are queued — admitted
        // but unanswered — when the shutdown begins.
        handle.pause();
        std::thread::sleep(Duration::from_millis(80));

        let batch = data.batch(&[4], false);
        let clients: Vec<_> = (0..QUEUED)
            .map(|i| {
                let batch = batch.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr, Duration::from_secs(30))
                        .unwrap_or_else(|e| panic!("client {i}: {e}"));
                    let first = client.post_batch(&batch);
                    // The drain must close the connection *after* the one
                    // complete reply; a second request can only fail.
                    let second = client.post_batch(&batch);
                    (first, second)
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter(&mut probe, "serve.http.admitted") < admitted_before + QUEUED as u64 {
            assert!(std::time::Instant::now() < deadline, "clients never queued");
            std::thread::sleep(Duration::from_millis(10));
        }

        // Graceful drain: resume the batcher, serve the queue, then stop.
        handle.shutdown();

        for (i, worker) in clients.into_iter().enumerate() {
            let (first, second) = worker.join().expect("client thread panicked");
            let (_, logits) = first.unwrap_or_else(|e| {
                panic!(
                    "client {i} at {worker_threads} threads: queued request must be \
                     served during the drain, got {e}"
                )
            });
            assert_eq!(logits.rows(), 1, "one complete logit row — no truncated reply");
            assert!(
                second.is_err(),
                "client {i}: the drained connection must be closed after its one reply"
            );
        }
    }
}

/// A request whose `x-mcond-deadline-ms` budget expires while queued is
/// answered `503 deadline_exceeded` by the batcher's sweep, and the
/// expiry is counted.
#[test]
fn deadline_header_expires_queued_work_with_typed_503() {
    let data = common::dataset();
    let handle =
        spawn(common::leaked_slot(common::FEATURE_DIM), ServeConfig::default()).expect("spawn");
    let addr = handle.addr();

    let mut probe = Client::connect(addr, Duration::from_secs(5)).unwrap();
    let expired_before = counter(&mut probe, "serve.http.deadline_expired");

    // Sanity: a roomy budget serves normally.
    let body = encode_batch(&data.batch(&[4], false));
    let resp = probe
        .request_with("POST", "/v1/serve", &[("x-mcond-deadline-ms", "30000")], body.as_bytes())
        .expect("roomy deadline");
    assert_eq!(resp.status, 200, "a roomy budget serves: {}", resp.text());

    // Park the batcher past the budget, then let it sweep.
    handle.pause();
    std::thread::sleep(Duration::from_millis(60));
    let waiter = {
        let body = body.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
            client.request_with(
                "POST",
                "/v1/serve",
                &[("x-mcond-deadline-ms", "80")],
                body.as_bytes(),
            )
        })
    };
    std::thread::sleep(Duration::from_millis(250));
    handle.resume();

    let resp = waiter.join().expect("client thread").expect("queued request answered");
    assert_eq!(resp.status, 503, "expired budget answers 503: {}", resp.text());
    assert!(
        resp.text().contains("deadline_exceeded"),
        "error envelope names the kind: {}",
        resp.text()
    );
    let expired_after = counter(&mut probe, "serve.http.deadline_expired");
    assert!(
        expired_after > expired_before,
        "expiry must count: before {expired_before}, after {expired_after}"
    );
    handle.shutdown();
}

/// Without the header, [`ServeConfig::default_deadline`] applies the same
/// budget; a malformed header is a `400` before admission.
#[test]
fn default_deadline_applies_and_malformed_header_is_400() {
    let data = common::dataset();
    let handle = spawn(
        common::leaked_slot(common::FEATURE_DIM),
        ServeConfig {
            default_deadline: Some(Duration::from_millis(80)),
            ..ServeConfig::default()
        },
    )
    .expect("spawn");
    let addr = handle.addr();
    let body = encode_batch(&data.batch(&[4], false));

    // Malformed budgets never reach the queue.
    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    // "18000000000000000000" parses as u64 but would overflow Instant
    // arithmetic; "86400001" is one past the 24h cap.
    for bad in ["0", "-5", "soon", "", "18000000000000000000", "86400001"] {
        let resp = client
            .request_with("POST", "/v1/serve", &[("x-mcond-deadline-ms", bad)], body.as_bytes())
            .expect("request");
        assert_eq!(resp.status, 400, "budget {bad:?} must be rejected");
        assert!(resp.text().contains("bad_deadline"), "{}", resp.text());
    }

    handle.pause();
    std::thread::sleep(Duration::from_millis(60));
    let waiter = {
        let body = body.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
            // No header: the configured default budget governs.
            client.request("POST", "/v1/serve", body.as_bytes())
        })
    };
    std::thread::sleep(Duration::from_millis(250));
    handle.resume();
    let resp = waiter.join().expect("client thread").expect("queued request answered");
    assert_eq!(resp.status, 503, "default budget expired: {}", resp.text());
    assert!(resp.text().contains("deadline_exceeded"), "{}", resp.text());
    handle.shutdown();
}

/// `GET /healthz` carries the supervision vitals: epoch + checkpoint id,
/// queue depth, and a fresh batcher heartbeat age.
#[test]
fn healthz_reports_epoch_checkpoint_queue_depth_and_heartbeat() {
    let handle =
        spawn(common::leaked_slot(common::FEATURE_DIM), ServeConfig::default()).expect("spawn");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
    let resp = client.request("GET", "/healthz", b"").expect("healthz");
    assert_eq!(resp.status, 200);
    let j = Json::parse(&resp.text()).expect("healthz body is JSON");
    assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(j.get("epoch").and_then(Json::as_f64), Some(1.0), "boot epoch is 1");
    assert_eq!(
        j.get("checkpoint").and_then(Json::as_str),
        Some("toy-fixture"),
        "checkpoint id surfaces for operators"
    );
    assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(0.0), "idle queue");
    let heartbeat = j
        .get("heartbeat_age_ms")
        .and_then(Json::as_f64)
        .expect("heartbeat age present");
    assert!(heartbeat < 5_000.0, "a live batcher has a fresh heartbeat, saw {heartbeat}");
    handle.shutdown();
}

/// Requests that arrive *after* a drain began answer `503`, not a hang:
/// the full shutdown story from a client's perspective is "one response
/// per admitted request, a clean refusal for everything later".
#[test]
fn requests_after_shutdown_are_refused_not_hung() {
    let data = common::dataset();
    let handle =
        spawn(common::leaked_slot(common::FEATURE_DIM), ServeConfig::default()).expect("spawn");
    let addr = handle.addr();
    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    let batch = data.batch(&[4], false);
    client.post_batch(&batch).expect("healthy before shutdown");
    handle.shutdown();
    match client.post_batch(&batch) {
        Err(PostError::Io(_)) => {} // connection closed by the drain
        Err(PostError::Http { status, .. }) => {
            assert_eq!(status, 503, "a reachable drained server refuses typed");
        }
        Err(PostError::Codec(e)) => panic!("drained server corrupted a reply: {e}"),
        Ok(_) => panic!("a drained server must not serve new work"),
    }
}
