//! Incremental HTTP/1.1 request parsing and response framing.
//!
//! The workspace builds hermetically with no external crates, so the
//! network front end parses HTTP itself. The parser is *incremental*: a
//! connection handler feeds it whatever bytes `read` returned and asks for
//! the next complete request — partial requests simply report "need more
//! bytes", so split bodies, pipelined requests, and slow writers all fall
//! out of the same state machine. Every way a peer can violate the
//! protocol maps to a typed [`HttpError`] with a definite status code —
//! the malformed-request corpus in [`crate::chaos`] sweeps them all and
//! asserts the server never panics or hangs.
//!
//! Deliberately out of scope (this is a serving endpoint, not a general
//! web server): chunked transfer encoding (`501`), HTTP/2 (`505`), and
//! multipart bodies. Requests are framed by `Content-Length` only.

use std::fmt;

/// Hard framing limits a connection must respect.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (everything before the
    /// blank line).
    pub max_header_bytes: usize,
    /// Maximum `Content-Length` a request may declare.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self { max_header_bytes: 8 * 1024, max_body_bytes: 8 * 1024 * 1024 }
    }
}

/// A protocol violation, each with the HTTP status the server answers
/// before closing the connection (framing is unrecoverable after any of
/// these).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is not `METHOD TARGET VERSION`.
    BadRequestLine,
    /// The version token is not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion,
    /// A header line has no `:` separator or an empty name.
    BadHeader,
    /// Request line + headers exceed [`HttpLimits::max_header_bytes`].
    HeaderTooLarge,
    /// `Content-Length` is present but not a non-negative integer, or
    /// appears more than once with conflicting values (RFC 9112 §6.3 —
    /// behind a proxy that picks the other value, honouring either copy
    /// silently is a request-smuggling vector).
    BadContentLength,
    /// A method that carries a body arrived without `Content-Length`.
    LengthRequired,
    /// The declared body exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        max: usize,
    },
    /// `Transfer-Encoding` framing is not supported.
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The response status for this violation.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine
            | HttpError::BadHeader
            | HttpError::BadContentLength => 400,
            HttpError::BadVersion => 505,
            HttpError::HeaderTooLarge => 431,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedTransferEncoding => 501,
        }
    }

    /// Short stable identifier used in error response bodies.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::BadRequestLine => "bad_request_line",
            HttpError::BadVersion => "bad_version",
            HttpError::BadHeader => "bad_header",
            HttpError::HeaderTooLarge => "header_too_large",
            HttpError::BadContentLength => "bad_content_length",
            HttpError::LengthRequired => "length_required",
            HttpError::BodyTooLarge { .. } => "body_too_large",
            HttpError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadVersion => write!(f, "unsupported HTTP version"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::HeaderTooLarge => write!(f, "request head exceeds the header limit"),
            HttpError::BadContentLength => write!(f, "content-length is not a valid integer"),
            HttpError::LengthRequired => write!(f, "request body requires content-length"),
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "declared body of {declared} bytes exceeds the {max}-byte cap")
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding framing is not supported")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Method token, upper-cased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + query, as received).
    pub target: String,
    /// `true` for `HTTP/1.1` (keep-alive by default), `false` for 1.0.
    pub http11: bool,
    /// Headers in arrival order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (exactly `Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive, 1.0 to close, and a `Connection`
    /// header overrides either way.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Incremental request parser over one connection's byte stream.
///
/// Feed raw bytes with [`push`](RequestParser::push), then call
/// [`next_request`](RequestParser::next_request) until it returns
/// `Ok(None)` (need more bytes). Pipelined requests parse back-to-back
/// from the same buffer.
pub struct RequestParser {
    buf: Vec<u8>,
    limits: HttpLimits,
}

impl RequestParser {
    /// A parser with the given framing limits.
    #[must_use]
    pub fn new(limits: HttpLimits) -> Self {
        Self { buf: Vec::new(), limits }
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a request has *started* but not yet completed — the
    /// connection handler answers `408` (instead of silently closing an
    /// idle keep-alive connection) when a read timeout fires mid-request.
    #[must_use]
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty()
    }

    /// The next complete request, `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    /// A typed [`HttpError`] on any framing violation; the connection
    /// cannot be re-synchronised afterwards and must be closed once the
    /// error status has been written.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > self.limits.max_header_bytes {
                return Err(HttpError::HeaderTooLarge);
            }
            return Ok(None);
        };
        if head_end > self.limits.max_header_bytes {
            return Err(HttpError::HeaderTooLarge);
        }
        let head =
            std::str::from_utf8(&self.buf[..head_end]).map_err(|_| HttpError::BadHeader)?;
        let mut lines = head.split("\r\n").map(|l| l.strip_suffix('\r').unwrap_or(l));
        let request_line = lines.next().unwrap_or("");
        let (method, target, http11) = parse_request_line(request_line)?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
            let name = name.trim();
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadHeader);
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
        if headers.iter().any(|(k, _)| k == "transfer-encoding") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        let mut declared: Option<&str> = None;
        for (k, v) in &headers {
            if k == "content-length" {
                // Identical repeats collapse (RFC 9112 allows that);
                // conflicting values are a desync vector and fatal.
                if declared.is_some_and(|prev| prev != v) {
                    return Err(HttpError::BadContentLength);
                }
                declared = Some(v);
            }
        }
        let body_len = match declared {
            Some(v) => {
                let len: usize = v.parse().map_err(|_| HttpError::BadContentLength)?;
                if len > self.limits.max_body_bytes {
                    return Err(HttpError::BodyTooLarge {
                        declared: len,
                        max: self.limits.max_body_bytes,
                    });
                }
                len
            }
            None if method == "POST" || method == "PUT" => {
                return Err(HttpError::LengthRequired)
            }
            None => 0,
        };
        let body_start = head_end + 4;
        let total = body_start + body_len;
        if self.buf.len() < total {
            return Ok(None); // body still in flight
        }
        let body = self.buf[body_start..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request { method, target, http11, headers, body }))
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine);
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(HttpError::BadVersion),
        _ => return Err(HttpError::BadRequestLine),
    };
    Ok((method.to_owned(), target.to_owned(), http11))
}

/// The canonical reason phrase for the statuses this server emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Frames one response: status line, supplied headers, `Content-Length`,
/// and the body. `close` adds `Connection: close`.
#[must_use]
pub fn write_response(
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(
        format!("HTTP/1.1 {status} {}\r\n", status_reason(status)).as_bytes(),
    );
    out.extend_from_slice(b"content-type: application/json\r\n");
    out.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if close {
        out.extend_from_slice(b"connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new(HttpLimits::default());
        p.push(bytes);
        p.next_request()
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse_one(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .expect("complete request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body_split_across_pushes() {
        let mut p = RequestParser::new(HttpLimits::default());
        p.push(b"POST /v1/serve HTTP/1.1\r\ncontent-length: 5\r\n\r\nhe");
        assert!(p.next_request().unwrap().is_none(), "body incomplete");
        assert!(p.mid_request());
        p.push(b"llo");
        let req = p.next_request().unwrap().expect("complete");
        assert_eq!(req.body, b"hello");
        assert!(!p.mid_request());
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut p = RequestParser::new(HttpLimits::default());
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap().unwrap().target, "/a");
        assert_eq!(p.next_request().unwrap().unwrap().target, "/b");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn typed_errors_for_each_violation() {
        assert_eq!(parse_one(b"garbage\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(
            parse_one(b"GET / HTTP/9.9\r\n\r\n").unwrap_err(),
            HttpError::BadVersion
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nbad header line\r\n\r\n").unwrap_err(),
            HttpError::BadHeader
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\ncontent-length: nan\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\ncontent-length: -3\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(parse_one(b"POST / HTTP/1.1\r\n\r\n").unwrap_err(), HttpError::LengthRequired);
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 6\r\n\r\nhello?")
                .unwrap_err(),
            HttpError::BadContentLength,
            "conflicting duplicate content-lengths are a smuggling vector"
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn identical_duplicate_content_lengths_collapse() {
        let req = parse_one(b"POST / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 5\r\n\r\nhello")
            .unwrap()
            .expect("complete request");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn oversized_head_is_rejected_before_completion() {
        let limits = HttpLimits { max_header_bytes: 64, max_body_bytes: 1024 };
        let mut p = RequestParser::new(limits);
        p.push(b"GET / HTTP/1.1\r\nx-pad: ");
        p.push(&[b'a'; 128]);
        assert_eq!(p.next_request().unwrap_err(), HttpError::HeaderTooLarge);
    }

    #[test]
    fn oversized_body_is_rejected_at_the_declaration() {
        let limits = HttpLimits { max_header_bytes: 1024, max_body_bytes: 8 };
        let mut p = RequestParser::new(limits);
        p.push(b"POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n");
        assert_eq!(
            p.next_request().unwrap_err(),
            HttpError::BodyTooLarge { declared: 9, max: 8 }
        );
    }

    #[test]
    fn connection_close_overrides_keep_alive() {
        let req = parse_one(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn response_framing_includes_length_and_close() {
        let bytes = write_response(429, &[("retry-after", "1".to_owned())], b"{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
