//! JSON wire codec for [`NodeBatch`] requests and logits responses.
//!
//! Runs on the in-repo [`mcond_obs::Json`] value (hermeticity rule — no
//! serde). The decoder is *total*: any byte string either decodes to a
//! structurally well-formed batch or returns a typed [`CodecError`], never
//! a panic — the seeded fuzz suite (`codec_fuzz` test) drives random,
//! truncated, and bit-mutated payloads through it to prove that. The
//! decoder also refuses to let client-declared shapes drive allocations
//! (see the shape-bounds paragraph below); within those bounds it accepts
//! any self-consistent shape and lets [`NodeBatch::validate_against`]
//! produce its usual typed `ServeError`, so wire requests fail exactly
//! like library requests.
//!
//! # Request format (`POST /v1/serve`)
//!
//! ```json
//! {
//!   "feature_dim": 3,
//!   "features": [[0.1, 0.2, 0.3], [1.0, 2.0, 3.0]],
//!   "incremental": {"cols": 140, "entries": [[0, 7, 1.0], [1, 12, 0.5]]},
//!   "interconnect": {"entries": [[0, 1, 1.0], [1, 0, 1.0]]},
//!   "labels": [0, 1]
//! }
//! ```
//!
//! `features` is dense (row per node); sparse matrices are
//! `{rows?, cols?, entries: [[row, col, value], ...]}` with `rows`
//! defaulting to the node count and `interconnect.cols` to the node count
//! (`incremental.cols` — the base-graph width — is required).
//! `feature_dim` is required only when `features` is empty (the empty
//! batch still has a feature width to validate); `labels` and the whole
//! `interconnect` object are optional. Numbers must be finite: JSON has no
//! `NaN`/`Infinity`, a non-finite f32 on the encode side serialises as
//! `null`, and the decoder rejects both `null` and any finite f64 whose
//! f32 cast overflows to infinity — the wire cannot smuggle a non-finite
//! value past validation.
//!
//! Declared shapes are resource-bounded before anything is allocated
//! from them: a sparse `rows` must equal the batch's node count (a
//! mismatch could only fail `validate_against` later, but CSR conversion
//! allocates `rows + 1` slots *first*, so a lying declaration must die at
//! decode time, not after a multi-petabyte allocation attempt), and
//! `cols` is capped at [`MAX_WIRE_COLS`] — the CSR representation stores
//! column indices as `u32`, so wider matrices are unrepresentable
//! anyway. Within those bounds, *semantic* validation against the
//! serving base (incremental width, feature dimension, label count) is
//! still deliberately deferred to [`NodeBatch::validate_against`], so
//! wire requests fail exactly like library requests.
//!
//! Round-trip fidelity is **bitwise** for finite values: `f32 → f64`
//! widening is exact, the writer emits shortest-round-trip decimal (and
//! `-0.0` explicitly), so `decode(encode(b))` reproduces every payload bit
//! the serving layer can observe.

use mcond_graph::NodeBatch;
use mcond_linalg::DMat;
use mcond_obs::Json;
use mcond_sparse::{Coo, Csr};
use std::fmt;

/// Widest sparse matrix the wire accepts: CSR stores column indices as
/// `u32`, so any declared `cols` beyond this is unrepresentable and is
/// rejected with [`CodecError::ColsTooLarge`] before anything is built
/// from it.
pub const MAX_WIRE_COLS: usize = u32::MAX as usize;

/// Clamp on `Vec::with_capacity` sizing hints derived from
/// client/server-declared shapes (features `n × dim`, logits
/// `rows × cols`). Per-element validation still bounds the vectors'
/// *real* growth by the payload's actual contents; the clamp only stops
/// a lying declaration from forcing a huge up-front allocation (Rust
/// aborts the process when an allocation fails, so an unclamped hint is
/// a single-request denial of service).
const PREALLOC_CLAMP: usize = 1 << 20;

/// Why a wire payload failed to decode. Every variant maps to HTTP `400`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The body is not syntactically valid JSON (offset in the message).
    Parse(String),
    /// The body is not UTF-8.
    Utf8,
    /// A required field is absent.
    Missing(&'static str),
    /// A field has the wrong JSON type (or a non-finite / `null` number
    /// where a finite one is required).
    Type {
        /// Dotted path of the offending field.
        field: &'static str,
        /// What the decoder needed there.
        expected: &'static str,
    },
    /// A dense row has a different width than the first row.
    Ragged {
        /// Row index.
        row: usize,
        /// Its width.
        got: usize,
        /// Width of row 0.
        expected: usize,
    },
    /// A sparse entry is not a `[row, col, value]` triple.
    EntryShape {
        /// Which sparse field.
        field: &'static str,
        /// Entry index.
        index: usize,
    },
    /// A sparse entry's indices fall outside the declared shape.
    EntryOutOfRange {
        /// Which sparse field.
        field: &'static str,
        /// The entry's row.
        row: usize,
        /// The entry's column.
        col: usize,
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
    /// An index field is not a non-negative integer.
    BadIndex {
        /// Dotted path of the offending field.
        field: &'static str,
    },
    /// A sparse matrix declares a row count different from the batch's
    /// node count. Rejected at decode time because CSR conversion
    /// allocates `rows + 1` slots before semantic validation would run.
    RowCountMismatch {
        /// Which sparse field.
        field: &'static str,
        /// Declared row count.
        got: usize,
        /// The batch's node count.
        expected: usize,
    },
    /// A sparse matrix declares a column count beyond [`MAX_WIRE_COLS`].
    ColsTooLarge {
        /// Which sparse field.
        field: &'static str,
        /// Declared column count.
        got: usize,
        /// The [`MAX_WIRE_COLS`] cap.
        max: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Parse(msg) => write!(f, "body is not valid JSON: {msg}"),
            CodecError::Utf8 => write!(f, "body is not UTF-8"),
            CodecError::Missing(field) => write!(f, "missing required field {field:?}"),
            CodecError::Type { field, expected } => {
                write!(f, "field {field:?} must be {expected}")
            }
            CodecError::Ragged { row, got, expected } => write!(
                f,
                "features row {row} has {got} values but row 0 has {expected}"
            ),
            CodecError::EntryShape { field, index } => {
                write!(f, "{field} entry {index} is not a [row, col, value] triple")
            }
            CodecError::EntryOutOfRange { field, row, col, rows, cols } => write!(
                f,
                "{field} entry ({row}, {col}) is outside the declared {rows}x{cols} shape"
            ),
            CodecError::BadIndex { field } => {
                write!(f, "field {field:?} must be a non-negative integer")
            }
            CodecError::RowCountMismatch { field, got, expected } => write!(
                f,
                "{field} declares {got} rows but the batch has {expected} nodes"
            ),
            CodecError::ColsTooLarge { field, got, max } => {
                write!(f, "{field} declares {got} columns, above the {max} cap")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialises a batch to the wire object.
#[must_use]
pub fn batch_to_json(batch: &NodeBatch) -> Json {
    Json::obj()
        .with("feature_dim", batch.features.cols())
        .with(
            "features",
            Json::Arr(
                (0..batch.features.rows())
                    .map(|i| {
                        Json::Arr(
                            batch.features.row(i).iter().map(|&v| Json::from(v)).collect(),
                        )
                    })
                    .collect(),
            ),
        )
        .with("incremental", csr_to_json(&batch.incremental))
        .with("interconnect", csr_to_json(&batch.interconnect))
        .with("labels", Json::Arr(batch.labels.iter().map(|&l| Json::from(l)).collect()))
}

/// Serialises a batch to a compact JSON string.
#[must_use]
pub fn encode_batch(batch: &NodeBatch) -> String {
    batch_to_json(batch).dump()
}

/// Decodes the wire object back into a batch.
///
/// # Errors
/// A typed [`CodecError`] for any structural defect; see the module docs
/// for the division of labour with `NodeBatch::validate_against`.
pub fn batch_from_json(json: &Json) -> Result<NodeBatch, CodecError> {
    let Json::Obj(_) = json else {
        return Err(CodecError::Type { field: "<root>", expected: "an object" });
    };
    let rows = json
        .get("features")
        .ok_or(CodecError::Missing("features"))?
        .as_arr()
        .ok_or(CodecError::Type { field: "features", expected: "an array of rows" })?;
    let n = rows.len();
    let dim = match json.get("feature_dim") {
        Some(v) => Some(parse_index(v, "feature_dim")?),
        None => None,
    };
    let first_width = match rows.first() {
        Some(row) => row
            .as_arr()
            .ok_or(CodecError::Type { field: "features", expected: "an array of rows" })?
            .len(),
        None => dim.ok_or(CodecError::Missing("feature_dim"))?,
    };
    if let Some(d) = dim {
        if n > 0 && d != first_width {
            return Err(CodecError::Ragged { row: 0, got: first_width, expected: d });
        }
    }
    let mut data = Vec::with_capacity(n.saturating_mul(first_width).min(PREALLOC_CLAMP));
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or(CodecError::Type { field: "features", expected: "an array of rows" })?;
        if row.len() != first_width {
            return Err(CodecError::Ragged { row: i, got: row.len(), expected: first_width });
        }
        for v in row {
            data.push(parse_f32(v, "features")?);
        }
    }
    let features = DMat::from_vec(n, first_width, data);

    let inc_json =
        json.get("incremental").ok_or(CodecError::Missing("incremental"))?;
    let incremental = csr_from_json(inc_json, "incremental", n, None)?;
    let interconnect = match json.get("interconnect") {
        Some(j) => csr_from_json(j, "interconnect", n, Some(n))?,
        None => Csr::empty(n, n),
    };
    let labels = match json.get("labels") {
        Some(Json::Arr(items)) => {
            let mut labels = Vec::with_capacity(items.len());
            for item in items {
                labels.push(parse_index(item, "labels")?);
            }
            labels
        }
        Some(_) => {
            return Err(CodecError::Type { field: "labels", expected: "an array of integers" })
        }
        None => vec![0; n],
    };
    Ok(NodeBatch { features, incremental, interconnect, labels })
}

/// Parses and decodes a JSON text body.
///
/// # Errors
/// [`CodecError::Parse`] on syntax errors, otherwise as
/// [`batch_from_json`].
pub fn decode_batch(text: &str) -> Result<NodeBatch, CodecError> {
    let json = Json::parse(text).map_err(CodecError::Parse)?;
    batch_from_json(&json)
}

/// Serialises a logits response: the request's trace id and the `n x C`
/// logit matrix, row per node.
#[must_use]
pub fn encode_logits(trace: u64, logits: &DMat) -> String {
    Json::obj()
        .with("trace", trace)
        .with("rows", logits.rows())
        .with("cols", logits.cols())
        .with(
            "logits",
            Json::Arr(
                (0..logits.rows())
                    .map(|i| Json::Arr(logits.row(i).iter().map(|&v| Json::from(v)).collect()))
                    .collect(),
            ),
        )
        .dump()
}

/// Decodes a logits response back into `(trace, logits)`.
///
/// # Errors
/// A typed [`CodecError`] on any structural defect.
pub fn decode_logits(text: &str) -> Result<(u64, DMat), CodecError> {
    let json = Json::parse(text).map_err(CodecError::Parse)?;
    let trace = parse_index(json.get("trace").ok_or(CodecError::Missing("trace"))?, "trace")?;
    let rows = parse_index(json.get("rows").ok_or(CodecError::Missing("rows"))?, "rows")?;
    let cols = parse_index(json.get("cols").ok_or(CodecError::Missing("cols"))?, "cols")?;
    let body = json
        .get("logits")
        .ok_or(CodecError::Missing("logits"))?
        .as_arr()
        .ok_or(CodecError::Type { field: "logits", expected: "an array of rows" })?;
    if body.len() != rows {
        return Err(CodecError::Type { field: "logits", expected: "exactly `rows` rows" });
    }
    let mut data = Vec::with_capacity(rows.saturating_mul(cols).min(PREALLOC_CLAMP));
    for row in body {
        let row = row
            .as_arr()
            .ok_or(CodecError::Type { field: "logits", expected: "an array of rows" })?;
        if row.len() != cols {
            return Err(CodecError::Type { field: "logits", expected: "exactly `cols` columns" });
        }
        for v in row {
            data.push(parse_f32(v, "logits")?);
        }
    }
    Ok((trace as u64, DMat::from_vec(rows, cols, data)))
}

fn csr_to_json(m: &Csr) -> Json {
    Json::obj().with("rows", m.rows()).with("cols", m.cols()).with(
        "entries",
        Json::Arr(
            m.iter()
                .map(|(i, j, v)| Json::Arr(vec![Json::from(i), Json::from(j), Json::from(v)]))
                .collect(),
        ),
    )
}

/// Decodes a sparse object. `default_rows` is the batch's node count —
/// an explicit `rows` must *equal* it (module docs: CSR conversion
/// allocates `rows + 1` slots, so a lying declaration is rejected before
/// anything is sized from it); `default_cols` is `Some(n)` for the
/// interconnect (square by default) and `None` for the incremental
/// matrix, whose `cols` — the base-graph width — the client must
/// declare, bounded by [`MAX_WIRE_COLS`].
fn csr_from_json(
    json: &Json,
    field: &'static str,
    default_rows: usize,
    default_cols: Option<usize>,
) -> Result<Csr, CodecError> {
    let Json::Obj(_) = json else {
        return Err(CodecError::Type { field, expected: "an object with an entries array" });
    };
    let rows = match json.get("rows") {
        Some(v) => parse_index(v, field)?,
        None => default_rows,
    };
    if rows != default_rows {
        return Err(CodecError::RowCountMismatch { field, got: rows, expected: default_rows });
    }
    let cols = match (json.get("cols"), default_cols) {
        (Some(v), _) => parse_index(v, field)?,
        (None, Some(d)) => d,
        (None, None) => return Err(CodecError::Missing("incremental.cols")),
    };
    if cols > MAX_WIRE_COLS {
        return Err(CodecError::ColsTooLarge { field, got: cols, max: MAX_WIRE_COLS });
    }
    let entries = match json.get("entries") {
        Some(j) => j
            .as_arr()
            .ok_or(CodecError::Type { field, expected: "an entries array" })?,
        None => &[],
    };
    let mut coo = Coo::with_capacity(rows, cols, entries.len());
    for (index, entry) in entries.iter().enumerate() {
        let triple = entry.as_arr().ok_or(CodecError::EntryShape { field, index })?;
        let [i, j, v] = triple else {
            return Err(CodecError::EntryShape { field, index });
        };
        let i = parse_index(i, field)?;
        let j = parse_index(j, field)?;
        let v = parse_f32(v, field)?;
        if i >= rows || j >= cols {
            return Err(CodecError::EntryOutOfRange { field, row: i, col: j, rows, cols });
        }
        coo.push(i, j, v);
    }
    Ok(coo.to_csr())
}

/// A finite f32, rejecting `null` (the writer's spelling of NaN/Inf),
/// anything non-numeric, and finite f64s whose f32 cast overflows to
/// infinity (e.g. `1e39`) — the *narrowed* value is what must be finite.
fn parse_f32(json: &Json, field: &'static str) -> Result<f32, CodecError> {
    match json {
        Json::Num(v) if v.is_finite() => {
            #[allow(clippy::cast_possible_truncation)]
            let f = *v as f32;
            if f.is_finite() {
                Ok(f)
            } else {
                Err(CodecError::Type { field, expected: "a finite number" })
            }
        }
        _ => Err(CodecError::Type { field, expected: "a finite number" }),
    }
}

/// A non-negative integer index that fits `usize` exactly.
fn parse_index(json: &Json, field: &'static str) -> Result<usize, CodecError> {
    match json {
        Json::Num(v)
            if v.is_finite() && *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) =>
        {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(*v as usize)
        }
        _ => Err(CodecError::BadIndex { field }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeBatch {
        let mut inc = Coo::new(2, 5);
        inc.push(0, 1, 1.0);
        inc.push(1, 4, -0.25);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 1.0);
        NodeBatch {
            features: DMat::from_rows(&[&[0.5, -0.0, 3.25], &[1e-7, 2.0, -1.5]]),
            incremental: inc.to_csr(),
            interconnect: inter.to_csr(),
            labels: vec![1, 0],
        }
    }

    #[test]
    fn round_trip_is_bitwise() {
        let batch = sample();
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        assert!(back.features.bit_eq(&batch.features), "features drifted");
        assert!(back.incremental.bit_eq(&batch.incremental));
        assert!(back.interconnect.bit_eq(&batch.interconnect));
        assert_eq!(back.labels, batch.labels);
    }

    #[test]
    fn empty_batch_round_trips_with_explicit_dim() {
        let batch = NodeBatch {
            features: DMat::zeros(0, 3),
            incremental: Csr::empty(0, 7),
            interconnect: Csr::empty(0, 0),
            labels: vec![],
        };
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(back.features.shape(), (0, 3));
        assert_eq!(back.incremental.cols(), 7);
    }

    #[test]
    fn non_finite_payloads_yield_typed_errors() {
        let mut batch = sample();
        batch.features.set(0, 0, f32::NAN);
        // NaN serialises as null; decode rejects it with a typed error.
        assert_eq!(
            decode_batch(&encode_batch(&batch)).unwrap_err(),
            CodecError::Type { field: "features", expected: "a finite number" }
        );
        let mut batch = sample();
        batch.incremental = batch.incremental.map_values(|_| f32::INFINITY);
        assert!(matches!(
            decode_batch(&encode_batch(&batch)),
            Err(CodecError::Type { field: "incremental", .. })
        ));
    }

    #[test]
    fn missing_and_malformed_fields_are_typed() {
        assert!(matches!(decode_batch("not json"), Err(CodecError::Parse(_))));
        assert_eq!(
            decode_batch("[]").unwrap_err(),
            CodecError::Type { field: "<root>", expected: "an object" }
        );
        assert_eq!(decode_batch("{}").unwrap_err(), CodecError::Missing("features"));
        assert_eq!(
            decode_batch(r#"{"features": []}"#).unwrap_err(),
            CodecError::Missing("feature_dim")
        );
        assert_eq!(
            decode_batch(r#"{"features": [[1.0]], "incremental": {"entries": []}}"#)
                .unwrap_err(),
            CodecError::Missing("incremental.cols")
        );
        assert_eq!(
            decode_batch(r#"{"features": [[1.0], [2.0, 3.0]], "incremental": {"cols": 2}}"#)
                .unwrap_err(),
            CodecError::Ragged { row: 1, got: 2, expected: 1 }
        );
        assert_eq!(
            decode_batch(
                r#"{"features": [[1.0]], "incremental": {"cols": 2, "entries": [[0, 5, 1.0]]}}"#
            )
            .unwrap_err(),
            CodecError::EntryOutOfRange { field: "incremental", row: 0, col: 5, rows: 1, cols: 2 }
        );
        assert_eq!(
            decode_batch(
                r#"{"features": [[1.0]], "incremental": {"cols": 2, "entries": [[0, 1]]}}"#
            )
            .unwrap_err(),
            CodecError::EntryShape { field: "incremental", index: 0 }
        );
        assert_eq!(
            decode_batch(r#"{"features": [[1.0]], "incremental": {"cols": -2}}"#).unwrap_err(),
            CodecError::BadIndex { field: "incremental" }
        );
    }

    #[test]
    fn wrong_declared_cols_decode_and_fail_batch_validation_later() {
        // Within the resource bounds the codec still accepts semantically
        // wrong widths (interconnect 1x3 for a 1-node batch, incremental
        // cols 4 against a 5-wide base) — validate_against owns those
        // rejections, so HTTP requests fail exactly like library calls.
        let batch = decode_batch(
            r#"{"features": [[1.0]],
                "incremental": {"cols": 4, "entries": []},
                "interconnect": {"cols": 3, "entries": []}}"#,
        )
        .unwrap();
        assert!(batch.validate_against(5, 1).is_err());
    }

    #[test]
    fn lying_row_declarations_die_at_decode_without_allocating() {
        // The remote-DoS shape: a tiny request declaring 9e15 rows
        // would force a ~72 PB indptr allocation in to_csr if it got that
        // far. It must be a typed error instead — for absurd counts and
        // for any mismatch at all.
        assert_eq!(
            decode_batch(
                r#"{"features": [[1.0]],
                    "incremental": {"rows": 9000000000000000, "cols": 2, "entries": []}}"#,
            )
            .unwrap_err(),
            CodecError::RowCountMismatch {
                field: "incremental",
                got: 9_000_000_000_000_000,
                expected: 1
            }
        );
        assert_eq!(
            decode_batch(
                r#"{"features": [[1.0]],
                    "incremental": {"cols": 2, "entries": []},
                    "interconnect": {"rows": 3, "cols": 3, "entries": []}}"#,
            )
            .unwrap_err(),
            CodecError::RowCountMismatch { field: "interconnect", got: 3, expected: 1 }
        );
    }

    #[test]
    fn cols_beyond_the_u32_representation_are_rejected() {
        assert_eq!(
            decode_batch(
                r#"{"features": [[1.0]],
                    "incremental": {"cols": 9000000000000000, "entries": []}}"#,
            )
            .unwrap_err(),
            CodecError::ColsTooLarge {
                field: "incremental",
                got: 9_000_000_000_000_000,
                max: MAX_WIRE_COLS
            }
        );
        // The cap itself is fine.
        let batch = decode_batch(&format!(
            r#"{{"features": [[1.0]], "incremental": {{"cols": {MAX_WIRE_COLS}, "entries": []}}}}"#
        ))
        .unwrap();
        assert_eq!(batch.incremental.cols(), MAX_WIRE_COLS);
    }

    #[test]
    fn f64_values_overflowing_f32_are_rejected_as_non_finite() {
        // 1e39 is a finite f64 but saturates to +inf as an f32; the
        // decoder's invariant is about the narrowed value.
        assert_eq!(
            decode_batch(
                r#"{"features": [[1e39]], "incremental": {"cols": 2, "entries": []}}"#
            )
            .unwrap_err(),
            CodecError::Type { field: "features", expected: "a finite number" }
        );
        assert_eq!(
            decode_batch(
                r#"{"features": [[1.0]],
                    "incremental": {"cols": 2, "entries": [[0, 0, -1e309]]}}"#
            )
            .unwrap_err(),
            CodecError::Type { field: "incremental", expected: "a finite number" }
        );
    }

    #[test]
    fn lying_logits_shape_cannot_force_a_huge_preallocation() {
        // Server responses are trusted less than they should be: a
        // declared cols of 9e15 must fail on the first row's width check,
        // not abort the client in Vec::with_capacity.
        assert_eq!(
            decode_logits(
                r#"{"trace": 1, "rows": 1, "cols": 9000000000000000, "logits": [[1.0]]}"#
            )
            .unwrap_err(),
            CodecError::Type { field: "logits", expected: "exactly `cols` columns" }
        );
    }

    #[test]
    fn logits_round_trip_is_bitwise() {
        let logits = DMat::from_rows(&[&[0.1, -0.0], &[f32::MIN_POSITIVE, 123456.75]]);
        let text = encode_logits(42, &logits);
        let (trace, back) = decode_logits(&text).unwrap();
        assert_eq!(trace, 42);
        assert!(back.bit_eq(&logits));
    }
}
