//! A minimal blocking HTTP/1.1 client, just enough to exercise the front
//! end from tests, benches, and the example — same hermeticity rule as
//! the server (std sockets only).

use crate::codec::{self, CodecError};
use mcond_graph::NodeBatch;
use mcond_linalg::DMat;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully read response: status line, lowercased headers, raw body.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — error envelopes are always ASCII JSON).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive client connection.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
}

impl Client {
    /// Connects with a read timeout covering every response wait.
    ///
    /// # Errors
    /// Socket-level failures connecting or configuring the stream.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, addr })
    }

    /// The server address this client talks to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request and reads one response on the keep-alive
    /// connection.
    ///
    /// # Errors
    /// Socket failures, or `InvalidData` when the response violates
    /// HTTP/1.1 framing.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        self.request_with(method, path, &[], body)
    }

    /// [`request`](Client::request) with extra request headers — how tests
    /// attach `x-mcond-deadline-ms` budgets.
    ///
    /// # Errors
    /// Same contract as [`request`](Client::request).
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: mcond\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if !body.is_empty() || method == "POST" || method == "PUT" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        read_response(&mut self.stream)
    }

    /// `POST /v1/serve` round trip: encode the batch, parse the reply
    /// into `(trace, logits)` on 200 or surface the error envelope.
    ///
    /// # Errors
    /// [`PostError::Io`] on transport failure, [`PostError::Http`] for a
    /// non-200 status (with the body text), [`PostError::Codec`] when a
    /// 200 body does not decode as logits.
    pub fn post_batch(&mut self, batch: &NodeBatch) -> Result<(u64, DMat), PostError> {
        self.post_batch_tagged(batch).map(|r| (r.trace, r.logits))
    }

    /// [`post_batch`](Client::post_batch), additionally surfacing the
    /// serving epoch from the `x-mcond-epoch` response header — what the
    /// hot-swap chaos suite uses to verify each answer against the exact
    /// checkpoint that produced it.
    ///
    /// # Errors
    /// Same contract as [`post_batch`](Client::post_batch).
    pub fn post_batch_tagged(&mut self, batch: &NodeBatch) -> Result<ServeReply, PostError> {
        let body = codec::encode_batch(batch);
        let resp = self.request("POST", "/v1/serve", body.as_bytes())?;
        if resp.status != 200 {
            return Err(PostError::Http { status: resp.status, body: resp.text() });
        }
        let epoch = resp.header("x-mcond-epoch").and_then(|v| v.parse().ok());
        let (trace, logits) = codec::decode_logits(&resp.text())?;
        Ok(ServeReply { trace, epoch, logits })
    }
}

/// A successful `POST /v1/serve` round trip, with its trace id and the
/// epoch that served it.
#[derive(Clone, Debug)]
pub struct ServeReply {
    /// The request's trace id (`x-mcond-trace`).
    pub trace: u64,
    /// The serving epoch (`x-mcond-epoch`); `None` only against servers
    /// predating the epoch header.
    pub epoch: Option<u64>,
    /// The decoded logits.
    pub logits: DMat,
}

/// What [`Client::post_batch`] can fail with.
#[derive(Debug)]
pub enum PostError {
    Io(io::Error),
    Http { status: u16, body: String },
    Codec(CodecError),
}

impl From<io::Error> for PostError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for PostError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

impl std::fmt::Display for PostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Http { status, body } => write!(f, "http {status}: {body}"),
            Self::Codec(e) => write!(f, "response codec: {e}"),
        }
    }
}

impl std::error::Error for PostError {}

/// Reads exactly one `Content-Length`-framed response from the stream.
fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_crlf2(&buf) {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    Ok(Response { status, headers, body })
}

fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}
