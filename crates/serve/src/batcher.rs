//! The micro-batching worker and its supervisor.
//!
//! The **batcher** coalesces queued jobs, expires overdue deadlines, and
//! runs one `try_serve_many_traced` fan-out per merged batch on the
//! current epoch. It beats a heartbeat every loop tick (and while paused);
//! the fan-out itself does not, which is exactly the property the
//! **watchdog** supervises: a heartbeat older than `watchdog_period`
//! means the batcher is wedged (or dead of a panic), so the watchdog
//! dumps the flight recorder, answers the in-flight orphans with typed
//! `503`s, bumps the batcher generation, and spawns a replacement. A
//! wedged predecessor that eventually wakes observes the stale generation
//! and retires without touching the queue — at most one live consumer,
//! always.

use crate::front::{ServeConfig, Shared};
use crate::queue::{Job, Pop};
use mcond_core::ServeError;
use mcond_graph::NodeBatch;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Spawns generation `gen` of the batcher. `None` only when the OS
/// refuses a thread.
pub(crate) fn spawn_batcher(
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
    gen: u64,
) -> Option<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let cfg = cfg.clone();
    thread::Builder::new()
        .name(format!("mcond-serve-batcher-{gen}"))
        .spawn(move || batcher_loop(&shared, &cfg, gen))
        .ok()
}

fn batcher_loop(shared: &Arc<Shared>, cfg: &ServeConfig, gen: u64) {
    loop {
        if shared.stop.load(Ordering::Acquire)
            || gen != shared.batcher_gen.load(Ordering::Acquire)
        {
            return;
        }
        shared.stamp_heartbeat();
        if shared.inject_panic.swap(false, Ordering::AcqRel) {
            panic!("injected batcher panic (chaos hook)");
        }
        // Drain exit: once draining, close the queue the moment it runs
        // dry. `close_if_empty` holds the push lock, so a handler either
        // enqueued before the close (we will serve it next loop) or sees
        // `Closed` and answers 503 — no stranded jobs.
        if shared.draining.load(Ordering::Acquire) && shared.queue.close_if_empty() {
            return;
        }
        shared.wait_unpaused();
        let first = match shared.queue.pop_timeout(Duration::from_millis(20)) {
            Pop::Job(job) => *job,
            Pop::Empty => {
                // Idle tick: decay the backpressure signal so a drained
                // server readmits traffic.
                shared.decay_wait();
                mcond_obs::gauge_set(
                    "serve.http.queue_wait_ewma_us",
                    shared.ewma_wait_us.load(Ordering::Relaxed) as f64,
                );
                continue;
            }
            Pop::Closed => return,
        };
        let mut jobs = vec![first];
        let merge_until = Instant::now() + cfg.coalesce_window;
        while jobs.len() < cfg.max_coalesce {
            let now = Instant::now();
            if now >= merge_until {
                break;
            }
            match shared.queue.pop_timeout(merge_until - now) {
                Pop::Job(job) => jobs.push(*job),
                Pop::Empty | Pop::Closed => break,
            }
        }
        for job in &jobs {
            let wait_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            shared.record_wait(wait_us);
        }
        #[allow(clippy::cast_precision_loss)]
        mcond_obs::gauge_set("serve.http.queue_depth", shared.queue.len() as f64);

        // The batch serves on ONE epoch, captured here: a reload that
        // lands mid-fan-out affects the *next* batch, never this one.
        let epoch = shared.slot.load();
        let epoch_seq = epoch.seq();

        // Deadline sweep: jobs whose budget expired while queued answer
        // a typed 503 now instead of occupying a fan-out slot.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job.deadline {
                Some(d) if now >= d => {
                    mcond_obs::counter_add("serve.http.deadline_expired", 1);
                    let waited_ms =
                        u64::try_from(job.enqueued.elapsed().as_millis()).unwrap_or(u64::MAX);
                    let budget_ms = u64::try_from(
                        job.budget.unwrap_or_default().as_millis(),
                    )
                    .unwrap_or(u64::MAX);
                    let _ = job.reply.try_send((
                        Err(ServeError::DeadlineExceeded { waited_ms, budget_ms }),
                        0,
                        epoch_seq,
                    ));
                }
                _ => live.push(job),
            }
        }
        if live.is_empty() {
            continue;
        }

        // Register the in-flight reply senders (tagged with our
        // generation) *before* computing, so a watchdog that declares us
        // dead mid-fan-out can answer these exact jobs.
        {
            let mut inflight = shared.lock_inflight();
            *inflight = (gen, live.iter().map(|j| j.reply.clone()).collect());
        }
        // Chaos hook: wedge *with* jobs in flight — the worst case the
        // watchdog exists for.
        let stall_ms = shared.inject_stall_ms.swap(0, Ordering::AcqRel);
        if stall_ms > 0 {
            thread::sleep(Duration::from_millis(stall_ms));
        }

        let (batches, replies): (Vec<NodeBatch>, Vec<_>) =
            live.into_iter().map(|j| (j.batch, j.reply)).unzip();
        let results = match cfg.thread_limit {
            Some(t) => mcond_par::with_thread_limit(t, || {
                epoch.server().try_serve_many_traced(&batches)
            }),
            None => epoch.server().try_serve_many_traced(&batches),
        };
        mcond_obs::counter_add("serve.http.batches", 1);
        mcond_obs::counter_add("serve.http.coalesced", batches.len() as u64);
        {
            // Deregister only our own registration — a successor batcher
            // may already have its own batch in flight.
            let mut inflight = shared.lock_inflight();
            if inflight.0 == gen {
                *inflight = (0, Vec::new());
            }
        }
        for (reply, slot) in replies.into_iter().zip(results) {
            // `try_send`, twice over: a handler that timed out dropped
            // its receiver, and a watchdog that declared us dead already
            // answered — the capacity-1 channel makes the duplicate send
            // fail silently either way.
            let (out, trace) = slot;
            let _ = reply.try_send((out, trace, epoch_seq));
        }
    }
}

/// The supervisor: watches the batcher heartbeat and restarts on stall.
pub(crate) fn watchdog_loop(shared: &Arc<Shared>, cfg: &ServeConfig) {
    let period_ms = u64::try_from(cfg.watchdog_period.as_millis()).unwrap_or(u64::MAX).max(1);
    let tick = Duration::from_millis((period_ms / 4).clamp(1, 50));
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        thread::sleep(tick);
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // A closed queue means the batcher exited *legitimately* (drain
        // complete) — a stale heartbeat there is not a stall.
        if shared.queue.is_closed() {
            continue;
        }
        if shared.heartbeat_age_ms() <= period_ms {
            continue;
        }

        // Stalled or dead. Restart sequence: flag (healthz → 503), dump
        // the flight recorder post-mortem, retire the generation, answer
        // the orphans, reap-or-abandon the corpse, spawn the replacement.
        shared.restarting.store(true, Ordering::Release);
        mcond_obs::counter_add("serve.watchdog.restarts", 1);
        if mcond_obs::flight::active() {
            let _ = mcond_obs::flight::dump("serve.watchdog.stall");
        }
        let next_gen = shared.batcher_gen.fetch_add(1, Ordering::AcqRel) + 1;
        let epoch_seq = shared.slot.current_seq();
        let orphans = {
            let mut inflight = shared.lock_inflight();
            std::mem::take(&mut inflight.1)
        };
        mcond_obs::counter_add("serve.watchdog.orphans", orphans.len() as u64);
        for reply in orphans {
            let _ = reply.try_send((
                Err(ServeError::Aborted {
                    reason: "batcher stalled; watchdog respawned it and abandoned this job",
                }),
                0,
                epoch_seq,
            ));
        }
        {
            let mut slot = shared.batcher.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(handle) = slot.take() {
                if handle.is_finished() {
                    let _ = handle.join(); // panicked batcher: reap it
                }
                // else: wedged — abandoned; the generation check retires
                // it whenever it wakes.
            }
            // Fresh grace window so the replacement is not instantly
            // declared stalled before its first tick.
            shared.stamp_heartbeat();
            *slot = spawn_batcher(shared, cfg, next_gen);
        }
        shared.restarting.store(false, Ordering::Release);
    }
}

/// Hard-fails `jobs` with a typed shutdown error — the path for queue
/// leftovers when the drain grace expires.
pub(crate) fn fail_jobs(jobs: Vec<Job>, epoch_seq: u64, reason: &'static str) {
    for job in jobs {
        let _ = job.reply.try_send((Err(ServeError::Aborted { reason }), 0, epoch_seq));
    }
}
