//! # mcond-serve — std-only HTTP serving front end
//!
//! Puts a socket in front of [`mcond_core::InductiveServer`]: the MCond
//! deployment story (PAPER.md) is that inductive inference over the
//! condensed mapping is cheap enough to serve interactively, and this
//! crate is where that claim meets a wire. Hermeticity rule as
//! everywhere in the workspace — `std::net::TcpListener` plus a small
//! incremental HTTP/1.1 parser, no external crates.
//!
//! ## Endpoints
//!
//! | route | body | reply |
//! |---|---|---|
//! | `POST /v1/serve` | JSON [`NodeBatch`](mcond_graph::NodeBatch) (see [`codec`]) | `{"trace", "rows", "cols", "logits"}` + `x-mcond-trace` / `x-mcond-epoch` headers |
//! | `POST /v1/admin/reload` | `{"path": "model.mckpt"}` | `{"epoch", "checkpoint"}` after validated-load + canary + swap |
//! | `GET /metrics` | — | JSONL: per-server `metrics_snapshot()` line + process-wide registry line |
//! | `GET /healthz` | — | `{"status", "epoch", "checkpoint", "queue_depth", "heartbeat_age_ms", ...}`; `503` mid-restart or draining |
//!
//! ## Behaviour under load
//!
//! Requests landing within [`ServeConfig::coalesce_window`] of each
//! other merge into one `try_serve_many` fan-out (adaptive
//! micro-batching over the `mcond-par` pool); panic isolation there
//! means a poisoned request answers `500` while its coalesced siblings
//! answer `200`. A bounded job queue plus a queue-wait EWMA shed excess
//! load with `429` + `Retry-After` and recover on their own once
//! pressure drops. Every [`mcond_core::ServeError`] maps to a stable
//! HTTP status ([`serve_error_status`]).
//!
//! ```no_run
//! use mcond_serve::{boot_slot, spawn, Client, ServeConfig};
//! use std::time::Duration;
//!
//! let slot = boot_slot("model.mckpt")?;
//! let handle = spawn(slot, ServeConfig::default())?;
//! println!("serving epoch {} on {}", handle.epoch(), handle.addr());
//! // Later, under traffic — validated load + canary + atomic swap:
//! // handle.reload("model-v2.mckpt")?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Supervision
//!
//! The batcher runs under a watchdog: a stalled or panicked worker is
//! detected within [`ServeConfig::watchdog_period`], its orphaned jobs
//! answer typed `503`s, and a replacement takes over the (intact) queue.
//! Per-request deadline budgets (`x-mcond-deadline-ms` header or
//! [`ServeConfig::default_deadline`]) expire queued work with `503`
//! instead of serving answers nobody is waiting for, and
//! [`ServeHandle::shutdown`] drains gracefully — every admitted request
//! gets exactly one response before the process exits.
//!
//! The [`chaos`] module exports the malformed-HTTP corpus the protocol
//! test suite drives, in the same catalogue style as
//! [`mcond_core::chaos`].

mod batcher;
pub mod boot;
pub mod chaos;
pub mod client;
pub mod codec;
pub mod front;
pub mod http;
mod queue;
pub mod reload;

pub use boot::boot_slot;
pub use client::{Client, PostError, Response, ServeReply};
pub use codec::{
    decode_batch, decode_logits, encode_batch, encode_logits, CodecError, MAX_WIRE_COLS,
};
pub use front::{serve_error_status, spawn, ServeConfig, ServeHandle};
pub use http::{HttpError, HttpLimits};
pub use reload::{ReloadError, ReloadOutcome};
