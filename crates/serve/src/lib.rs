//! # mcond-serve — std-only HTTP serving front end
//!
//! Puts a socket in front of [`mcond_core::InductiveServer`]: the MCond
//! deployment story (PAPER.md) is that inductive inference over the
//! condensed mapping is cheap enough to serve interactively, and this
//! crate is where that claim meets a wire. Hermeticity rule as
//! everywhere in the workspace — `std::net::TcpListener` plus a small
//! incremental HTTP/1.1 parser, no external crates.
//!
//! ## Endpoints
//!
//! | route | body | reply |
//! |---|---|---|
//! | `POST /v1/serve` | JSON [`NodeBatch`](mcond_graph::NodeBatch) (see [`codec`]) | `{"trace", "rows", "cols", "logits"}` + `x-mcond-trace` header |
//! | `GET /metrics` | — | JSONL: per-server `metrics_snapshot()` line + process-wide registry line |
//! | `GET /healthz` | — | `{"status": "ok", ...}` |
//!
//! ## Behaviour under load
//!
//! Requests landing within [`ServeConfig::coalesce_window`] of each
//! other merge into one `try_serve_many` fan-out (adaptive
//! micro-batching over the `mcond-par` pool); panic isolation there
//! means a poisoned request answers `500` while its coalesced siblings
//! answer `200`. A bounded job queue plus a queue-wait EWMA shed excess
//! load with `429` + `Retry-After` and recover on their own once
//! pressure drops. Every [`mcond_core::ServeError`] maps to a stable
//! HTTP status ([`serve_error_status`]).
//!
//! ```no_run
//! use mcond_serve::{boot_checkpoint, spawn, Client, ServeConfig};
//! use std::time::Duration;
//!
//! let server = boot_checkpoint("model.mckpt")?;
//! let handle = spawn(server, ServeConfig::default())?;
//! println!("serving on {}", handle.addr());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The [`chaos`] module exports the malformed-HTTP corpus the protocol
//! test suite drives, in the same catalogue style as
//! [`mcond_core::chaos`].

pub mod boot;
pub mod chaos;
pub mod client;
pub mod codec;
pub mod front;
pub mod http;

pub use boot::boot_checkpoint;
pub use client::{Client, PostError, Response};
pub use codec::{
    decode_batch, decode_logits, encode_batch, encode_logits, CodecError, MAX_WIRE_COLS,
};
pub use front::{serve_error_status, spawn, ServeConfig, ServeHandle};
pub use http::{HttpError, HttpLimits};
