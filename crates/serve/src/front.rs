//! The HTTP front end: accept loop, connection handlers, and the adaptive
//! micro-batching worker.
//!
//! # Architecture
//!
//! ```text
//!  accept thread ──► conn handler threads (one per connection, bounded)
//!                        │  parse HTTP ► decode batch ► admission control
//!                        ▼
//!                  bounded job queue (sync_channel, capacity = queue_capacity)
//!                        │
//!                  batcher thread: coalesce ≤ max_coalesce jobs within
//!                  coalesce_window, then one `try_serve_many_traced`
//!                  fan-out across the mcond-par pool
//!                        │
//!                  per-job reply channel ──► handler writes the response
//! ```
//!
//! # Coalescing / shedding state machine (DESIGN.md §4j)
//!
//! A `POST /v1/serve` request is **admitted** when the queue has room and
//! the smoothed queue-wait EWMA is under `shed_wait_us`; admitted jobs are
//! enqueued and the handler blocks on the job's reply channel. The batcher
//! takes the first queued job, then keeps draining the queue until either
//! `coalesce_window` elapses or `max_coalesce` jobs are merged — the
//! merged set is served as **one** [`try_serve_many`] fan-out, so
//! concurrent wire requests get the same panic isolation and bitwise
//! determinism as library callers. When the queue is full or the EWMA
//! crosses the threshold the request is **shed** with `429` and a
//! `Retry-After` header (counter `serve.http.shed`); the EWMA halves on
//! every idle batcher tick, so a drained server automatically readmits.
//!
//! [`try_serve_many`]: mcond_core::InductiveServer::try_serve_many

use crate::codec::{self, CodecError};
use crate::http::{write_response, HttpLimits, Request, RequestParser};
use mcond_core::{InductiveServer, ServeError};
use mcond_graph::NodeBatch;
use mcond_linalg::DMat;
use mcond_obs::Json;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for one front end. `Default` is sized for tests and small
/// deployments; every field is plain data, override what you need.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`ServeHandle::addr`]).
    pub addr: String,
    /// How long the batcher waits for more requests to merge after the
    /// first one arrives. Larger windows raise per-request latency but
    /// amortise fan-out overhead under load.
    pub coalesce_window: Duration,
    /// Most requests merged into one fan-out.
    pub max_coalesce: usize,
    /// Bounded depth of the job queue; requests beyond it are shed with
    /// `429`.
    pub queue_capacity: usize,
    /// Most simultaneously open connections; further accepts are answered
    /// `503` and closed.
    pub max_connections: usize,
    /// Per-connection socket read timeout: a request that stalls
    /// mid-frame (slowloris) is answered `408` and the connection closed;
    /// an *idle* keep-alive connection is closed silently.
    pub read_timeout: Duration,
    /// How long a handler waits for its job's result before answering
    /// `504`.
    pub reply_timeout: Duration,
    /// Queue-wait EWMA (µs) above which new requests are shed even while
    /// the queue has room — early backpressure when `serve.stage.*` work
    /// is the bottleneck rather than arrival bursts.
    pub shed_wait_us: u64,
    /// `Retry-After` seconds advertised on `429` responses.
    pub retry_after_secs: u32,
    /// HTTP framing limits (header/body byte caps).
    pub limits: HttpLimits,
    /// When set, the batcher pins its fan-outs to this thread count via
    /// [`mcond_par::with_thread_limit`] — results are bitwise identical
    /// either way (the pool's contract); tests use it to compare 1- and
    /// 4-thread servers in one process.
    pub thread_limit: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            coalesce_window: Duration::from_micros(500),
            max_coalesce: 64,
            queue_capacity: 256,
            max_connections: 128,
            read_timeout: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(30),
            shed_wait_us: 500_000,
            retry_after_secs: 1,
            limits: HttpLimits::default(),
            thread_limit: None,
        }
    }
}

/// One admitted request travelling to the batcher.
struct Job {
    batch: NodeBatch,
    enqueued: Instant,
    reply: SyncSender<(Result<DMat, ServeError>, u64)>,
}

/// State shared between the accept loop, handlers, and the batcher.
struct Shared {
    stop: AtomicBool,
    /// Jobs admitted but not yet dequeued by the batcher.
    depth: AtomicUsize,
    /// Smoothed queue wait in µs (α = 1/8), halved on idle ticks.
    ewma_wait_us: AtomicU64,
    live_conns: AtomicUsize,
    /// Chaos/testing gate: while `true` the batcher stops dequeuing, so
    /// the queue fills deterministically (the load-shed suite drives it).
    paused: Mutex<bool>,
    unpause: Condvar,
}

impl Shared {
    fn overloaded(&self, cfg: &ServeConfig) -> bool {
        self.depth.load(Ordering::Acquire) >= cfg.queue_capacity
            || self.ewma_wait_us.load(Ordering::Relaxed) > cfg.shed_wait_us
    }

    fn record_wait(&self, wait_us: u64) {
        let old = self.ewma_wait_us.load(Ordering::Relaxed);
        self.ewma_wait_us.store(old - old / 8 + wait_us / 8, Ordering::Relaxed);
    }

    fn decay_wait(&self) {
        let old = self.ewma_wait_us.load(Ordering::Relaxed);
        if old > 0 {
            self.ewma_wait_us.store(old / 2, Ordering::Relaxed);
        }
    }

    /// Blocks while the pause gate is closed (and the server is running).
    fn wait_unpaused(&self) {
        let mut paused = self.paused.lock().unwrap();
        while *paused && !self.stop.load(Ordering::Acquire) {
            let (guard, _) =
                self.unpause.wait_timeout(paused, Duration::from_millis(20)).unwrap();
            paused = guard;
        }
    }
}

/// A running front end. Dropping the handle shuts the server down.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port `0` to the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Closes the batcher's dequeue gate: admitted jobs stay queued (so
    /// the bounded queue fills and sheds deterministically) until
    /// [`resume`](ServeHandle::resume). A chaos/testing facility, in the
    /// spirit of `mcond_core::chaos` — metrics and health endpoints keep
    /// answering while paused.
    pub fn pause(&self) {
        *self.shared.paused.lock().unwrap() = true;
    }

    /// Reopens the dequeue gate; queued jobs drain in arrival order.
    pub fn resume(&self) {
        *self.shared.paused.lock().unwrap() = false;
        self.shared.unpause.notify_all();
    }

    /// Stops accepting, drains the worker, and joins the service threads.
    /// Connection handler threads exit on their next read timeout.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.resume();
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Binds the listener and spawns the accept loop and the batching worker.
/// Also turns on metric aggregation ([`mcond_obs::enable_metrics`]) so
/// `GET /metrics` always has counters to report.
///
/// The server is shared behind an `Arc` — the same instance library
/// callers use ([`InductiveServer`] is `Sync`), so wire responses are
/// produced by exactly the code path the test suite verifies bitwise.
///
/// # Errors
/// Any socket-level `io::Error` from binding the address.
pub fn spawn(
    server: Arc<InductiveServer<'static>>,
    config: ServeConfig,
) -> std::io::Result<ServeHandle> {
    mcond_obs::enable_metrics();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        depth: AtomicUsize::new(0),
        ewma_wait_us: AtomicU64::new(0),
        live_conns: AtomicUsize::new(0),
        paused: Mutex::new(false),
        unpause: Condvar::new(),
    });
    let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));

    let batcher = {
        let server = Arc::clone(&server);
        let shared = Arc::clone(&shared);
        let cfg = config.clone();
        thread::Builder::new()
            .name("mcond-serve-batcher".to_owned())
            .spawn(move || batcher_loop(&server, &rx, &shared, &cfg))?
    };
    let accept = {
        let shared = Arc::clone(&shared);
        let cfg = config.clone();
        thread::Builder::new().name("mcond-serve-accept".to_owned()).spawn(move || {
            accept_loop(&listener, &server, &tx, &shared, &cfg);
        })?
    };
    Ok(ServeHandle { addr, shared, accept: Some(accept), batcher: Some(batcher) })
}

fn accept_loop(
    listener: &TcpListener,
    server: &Arc<InductiveServer<'static>>,
    tx: &SyncSender<Job>,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if shared.live_conns.load(Ordering::Acquire) >= cfg.max_connections {
            mcond_obs::counter_add("serve.http.conns_rejected", 1);
            let body = error_body("too_many_connections", "connection limit reached");
            let _ = (&stream).write_all(&write_response(503, &[], body.as_bytes(), true));
            continue;
        }
        shared.live_conns.fetch_add(1, Ordering::AcqRel);
        mcond_obs::counter_add("serve.http.conns", 1);
        let server = Arc::clone(server);
        let tx = tx.clone();
        let conn_shared = Arc::clone(shared);
        let cfg = cfg.clone();
        let spawned = thread::Builder::new().name("mcond-serve-conn".to_owned()).spawn(
            move || {
                handle_conn(stream, &server, &tx, &conn_shared, &cfg);
                conn_shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            },
        );
        if spawned.is_err() {
            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// The per-connection loop: parse requests (pipelining-aware), route
/// them, write responses. Returns when the peer closes, framing breaks,
/// a read times out, or the server stops.
fn handle_conn(
    mut stream: TcpStream,
    server: &Arc<InductiveServer<'static>>,
    tx: &SyncSender<Job>,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new(cfg.limits);
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Drain every complete request already buffered before reading
        // more — pipelined requests answer back-to-back.
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    mcond_obs::counter_add("serve.http.requests", 1);
                    let keep = req.keep_alive();
                    let response = route(&req, server, tx, shared, cfg, keep);
                    if stream.write_all(&response).is_err() {
                        return;
                    }
                    if !keep {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is unrecoverable: answer the typed status
                    // and close.
                    mcond_obs::counter_add("serve.http.protocol_errors", 1);
                    let body = error_body(e.kind(), &e.to_string());
                    let _ = stream
                        .write_all(&write_response(e.status(), &[], body.as_bytes(), true));
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => parser.push(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if parser.mid_request() {
                    // A started-but-stalled request (slowloris): typed
                    // timeout, then close.
                    mcond_obs::counter_add("serve.http.timeouts", 1);
                    let body = error_body("request_timeout", "request stalled mid-frame");
                    let _ = stream.write_all(&write_response(408, &[], body.as_bytes(), true));
                }
                return;
            }
            Err(_) => return,
        }
    }
}

/// Routes one parsed request to its endpoint and frames the response.
fn route(
    req: &Request,
    server: &Arc<InductiveServer<'static>>,
    tx: &SyncSender<Job>,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
    keep_alive: bool,
) -> Vec<u8> {
    let close = !keep_alive;
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/v1/serve") => serve_endpoint(req, tx, shared, cfg, close),
        ("GET", "/healthz") => {
            let body = Json::obj()
                .with("status", "ok")
                .with("base_nodes", server.base_nodes())
                .dump();
            write_response(200, &[], body.as_bytes(), close)
        }
        ("GET", "/metrics") => {
            // JSONL: one line for this server's request statistics, one
            // for the process-wide registry (http counters live there).
            let mut body = Json::obj()
                .with("scope", "server")
                .with("metrics", server.metrics_snapshot().to_json())
                .dump();
            body.push('\n');
            body.push_str(
                &Json::obj()
                    .with("scope", "process")
                    .with("metrics", mcond_obs::snapshot().to_json())
                    .dump(),
            );
            body.push('\n');
            write_response(200, &[], body.as_bytes(), close)
        }
        (_, "/v1/serve") => method_not_allowed("POST", close),
        (_, "/healthz" | "/metrics") => method_not_allowed("GET", close),
        _ => {
            let body = error_body("not_found", "unknown path");
            write_response(404, &[], body.as_bytes(), close)
        }
    }
}

/// `POST /v1/serve`: decode, admit (or shed), enqueue, await the fan-out
/// result, map it to a status.
fn serve_endpoint(
    req: &Request,
    tx: &SyncSender<Job>,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
    close: bool,
) -> Vec<u8> {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        mcond_obs::counter_add("serve.http.bad_requests", 1);
        let body = error_body("codec", &CodecError::Utf8.to_string());
        return write_response(400, &[], body.as_bytes(), close);
    };
    let batch = match codec::decode_batch(text) {
        Ok(b) => b,
        Err(e) => {
            mcond_obs::counter_add("serve.http.bad_requests", 1);
            let body = error_body("codec", &e.to_string());
            return write_response(400, &[], body.as_bytes(), close);
        }
    };

    // Admission control: shed *before* touching the queue when the server
    // is already over its bounds.
    if shared.overloaded(cfg) {
        return shed_response(cfg, close);
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    shared.depth.fetch_add(1, Ordering::AcqRel);
    let job = Job { batch, enqueued: Instant::now(), reply: reply_tx };
    match tx.try_send(job) {
        Ok(()) => mcond_obs::counter_add("serve.http.admitted", 1),
        Err(TrySendError::Full(_)) => {
            shared.depth.fetch_sub(1, Ordering::AcqRel);
            return shed_response(cfg, close);
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.depth.fetch_sub(1, Ordering::AcqRel);
            let body = error_body("shutting_down", "serving worker is gone");
            return write_response(503, &[], body.as_bytes(), close);
        }
    }
    match reply_rx.recv_timeout(cfg.reply_timeout) {
        Ok((Ok(logits), trace)) => {
            let body = codec::encode_logits(trace, &logits);
            write_response(
                200,
                &[("x-mcond-trace", trace.to_string())],
                body.as_bytes(),
                close,
            )
        }
        Ok((Err(e), trace)) => {
            let (status, kind) = serve_error_status(&e);
            let body = error_body(kind, &e.to_string());
            write_response(
                status,
                &[("x-mcond-trace", trace.to_string())],
                body.as_bytes(),
                close,
            )
        }
        Err(RecvTimeoutError::Timeout) => {
            mcond_obs::counter_add("serve.http.timeouts", 1);
            let body = error_body("reply_timeout", "request timed out in the serving queue");
            write_response(504, &[], body.as_bytes(), close)
        }
        Err(RecvTimeoutError::Disconnected) => {
            let body = error_body("shutting_down", "serving worker dropped the request");
            write_response(503, &[], body.as_bytes(), close)
        }
    }
}

fn shed_response(cfg: &ServeConfig, close: bool) -> Vec<u8> {
    mcond_obs::counter_add("serve.http.shed", 1);
    let body = error_body("shed", "server is over capacity; retry after the advertised delay");
    write_response(
        429,
        &[("retry-after", cfg.retry_after_secs.to_string())],
        body.as_bytes(),
        close,
    )
}

fn method_not_allowed(allow: &str, close: bool) -> Vec<u8> {
    let body = error_body("method_not_allowed", &format!("use {allow}"));
    write_response(405, &[("allow", allow.to_owned())], body.as_bytes(), close)
}

/// The micro-batching worker: coalesce queued jobs, run one fan-out,
/// deliver per-job replies.
fn batcher_loop(
    server: &Arc<InductiveServer<'static>>,
    rx: &mpsc::Receiver<Job>,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            // Dropping `rx` disconnects every waiting handler, which
            // answers 503 — no request is left hanging.
            return;
        }
        shared.wait_unpaused();
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                // Idle tick: decay the backpressure signal so a drained
                // server readmits traffic.
                shared.decay_wait();
                mcond_obs::gauge_set(
                    "serve.http.queue_wait_ewma_us",
                    shared.ewma_wait_us.load(Ordering::Relaxed) as f64,
                );
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut jobs = vec![first];
        let deadline = Instant::now() + cfg.coalesce_window;
        while jobs.len() < cfg.max_coalesce {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        shared.depth.fetch_sub(jobs.len(), Ordering::AcqRel);
        for job in &jobs {
            let wait_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            shared.record_wait(wait_us);
        }
        #[allow(clippy::cast_precision_loss)]
        mcond_obs::gauge_set(
            "serve.http.queue_depth",
            shared.depth.load(Ordering::Acquire) as f64,
        );

        let (batches, replies): (Vec<NodeBatch>, Vec<_>) =
            jobs.into_iter().map(|j| (j.batch, j.reply)).unzip();
        let results = match cfg.thread_limit {
            Some(t) => {
                mcond_par::with_thread_limit(t, || server.try_serve_many_traced(&batches))
            }
            None => server.try_serve_many_traced(&batches),
        };
        mcond_obs::counter_add("serve.http.batches", 1);
        mcond_obs::counter_add("serve.http.coalesced", batches.len() as u64);
        for (reply, slot) in replies.into_iter().zip(results) {
            // A handler that already timed out dropped its receiver —
            // nothing to do, the result is discarded.
            let _ = reply.send(slot);
        }
    }
}

/// Maps a [`ServeError`] to its HTTP status and stable error kind.
///
/// | variant | status |
/// |---|---|
/// | `InvalidBatch` | 400 |
/// | `BatchTooLarge` | 413 |
/// | `NoAttachment` | 422 |
/// | `FallbackUnavailable` | 503 |
/// | `NonFiniteLogits` | 500 |
/// | `Panicked` | 500 |
#[must_use]
pub fn serve_error_status(e: &ServeError) -> (u16, &'static str) {
    match e {
        ServeError::InvalidBatch(_) => (400, "invalid_batch"),
        ServeError::BatchTooLarge { .. } => (413, "batch_too_large"),
        ServeError::NoAttachment { .. } => (422, "no_attachment"),
        ServeError::FallbackUnavailable { .. } => (503, "fallback_unavailable"),
        ServeError::NonFiniteLogits => (500, "non_finite_logits"),
        ServeError::Panicked { .. } => (500, "panicked"),
    }
}

/// The JSON error envelope every non-200 response carries.
fn error_body(kind: &str, message: &str) -> String {
    Json::obj()
        .with("error", Json::obj().with("kind", kind).with("message", message))
        .dump()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_error_mapping_is_total_and_stable() {
        use mcond_graph::BatchError;
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (
                ServeError::InvalidBatch(BatchError::NonFinite { component: "features" }),
                400,
                "invalid_batch",
            ),
            (ServeError::BatchTooLarge { len: 9, max: 1 }, 413, "batch_too_large"),
            (ServeError::NoAttachment { node: 0, coverage: 0.0 }, 422, "no_attachment"),
            (ServeError::FallbackUnavailable { node: 0 }, 503, "fallback_unavailable"),
            (ServeError::NonFiniteLogits, 500, "non_finite_logits"),
            (ServeError::Panicked { context: "boom".into() }, 500, "panicked"),
        ];
        for (e, status, kind) in cases {
            assert_eq!(serve_error_status(&e), (status, kind), "{e}");
            assert!(!crate::http::status_reason(status).is_empty());
        }
    }

    #[test]
    fn ewma_decays_to_readmission() {
        let shared = Shared {
            stop: AtomicBool::new(false),
            depth: AtomicUsize::new(0),
            ewma_wait_us: AtomicU64::new(1_000_000),
            live_conns: AtomicUsize::new(0),
            paused: Mutex::new(false),
            unpause: Condvar::new(),
        };
        let cfg = ServeConfig { shed_wait_us: 1_000, ..ServeConfig::default() };
        assert!(shared.overloaded(&cfg), "hot EWMA sheds");
        for _ in 0..20 {
            shared.decay_wait();
        }
        assert!(!shared.overloaded(&cfg), "idle decay readmits");
    }
}
