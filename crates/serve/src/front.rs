//! The HTTP front end: accept loop, connection handlers, the adaptive
//! micro-batching worker, and its supervisor.
//!
//! # Architecture
//!
//! ```text
//!  accept thread ──► conn handler threads (one per connection, bounded)
//!                        │  parse HTTP ► decode batch ► admission control
//!                        ▼
//!                  bounded JobQueue (Mutex<VecDeque> + Condvar)
//!                        │
//!                  batcher thread: coalesce ≤ max_coalesce jobs within
//!                  coalesce_window, expire overdue deadlines, then one
//!                  `try_serve_many_traced` fan-out on the current epoch
//!                        │                          ▲ heartbeat
//!                  per-job reply channel      watchdog thread: respawns a
//!                        │                    stalled batcher, answers its
//!                        ▼                    orphans with typed errors
//!                  handler writes the response (+ `x-mcond-epoch`)
//! ```
//!
//! # Epochs (DESIGN.md §4k)
//!
//! The model lives in an [`EpochSlot`]: the batcher clones the current
//! [`EpochServer`] `Arc` once per coalesced batch, so a concurrent
//! [`ServeHandle::reload`] never disturbs an in-flight fan-out — it
//! finishes on the epoch it started on, and the retired epoch frees when
//! its last request completes. Every `/v1/serve` response carries the
//! serving epoch in `x-mcond-epoch`.
//!
//! # Coalescing / shedding state machine (DESIGN.md §4j)
//!
//! A `POST /v1/serve` request is **admitted** when the queue has room and
//! the smoothed queue-wait EWMA is under `shed_wait_us`; admitted jobs are
//! enqueued and the handler blocks on the job's reply channel. When the
//! queue is full or the EWMA crosses the threshold the request is **shed**
//! with `429` and a `Retry-After` derived from the EWMA (counter
//! `serve.http.shed`); the EWMA halves on every idle batcher tick, so a
//! drained server automatically readmits.
//!
//! # Shutdown
//!
//! [`ServeHandle::shutdown`] drains: stop accepting, let the batcher serve
//! everything already queued, wait until every admitted response has been
//! written, then stop the threads. Requests arriving mid-drain answer
//! `503`; requests queued before the drain each get exactly one real
//! response.

use crate::codec::{self, CodecError};
use crate::http::{write_response, HttpLimits, Request, RequestParser};
use crate::queue::{Job, JobQueue, PushRejected, Reply};
use crate::reload::{self, ReloadControl, ReloadError, ReloadOutcome};
use mcond_core::{EpochSlot, ServeError};
use mcond_obs::Json;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for one front end. `Default` is sized for tests and small
/// deployments; every field is plain data, override what you need.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`ServeHandle::addr`]).
    pub addr: String,
    /// How long the batcher waits for more requests to merge after the
    /// first one arrives. Larger windows raise per-request latency but
    /// amortise fan-out overhead under load.
    pub coalesce_window: Duration,
    /// Most requests merged into one fan-out.
    pub max_coalesce: usize,
    /// Bounded depth of the job queue; requests beyond it are shed with
    /// `429`.
    pub queue_capacity: usize,
    /// Most simultaneously open connections; further accepts are answered
    /// `503` and closed.
    pub max_connections: usize,
    /// Per-connection socket read timeout: a request that stalls
    /// mid-frame (slowloris) is answered `408` and the connection closed;
    /// an *idle* keep-alive connection is closed silently.
    pub read_timeout: Duration,
    /// How long a handler waits for its job's result before answering
    /// `504`.
    pub reply_timeout: Duration,
    /// Queue-wait EWMA (µs) above which new requests are shed even while
    /// the queue has room — early backpressure when `serve.stage.*` work
    /// is the bottleneck rather than arrival bursts.
    pub shed_wait_us: u64,
    /// Upper bound (seconds) on the `Retry-After` advertised on `429`
    /// responses; the value itself is derived from the queue-wait EWMA,
    /// rounded up, never below 1.
    pub retry_after_cap_secs: u32,
    /// Deadline budget granted to requests that do not send an
    /// `x-mcond-deadline-ms` header; `None` = no default deadline. An
    /// expired job is answered `503` (`deadline_exceeded`) by the batcher
    /// instead of occupying a fan-out slot.
    pub default_deadline: Option<Duration>,
    /// Batcher heartbeat staleness beyond which the watchdog declares the
    /// batcher stalled, answers its in-flight orphans with typed errors,
    /// and respawns it. Must comfortably exceed the worst-case single
    /// fan-out, which does not beat the heart while computing.
    pub watchdog_period: Duration,
    /// Base backoff applied after a failed reload; doubles per consecutive
    /// failure (capped by `reload_backoff_cap`) and resets on success.
    pub reload_backoff: Duration,
    /// Ceiling for the reload backoff.
    pub reload_backoff_cap: Duration,
    /// Longest [`ServeHandle::shutdown`] waits for queued jobs to drain
    /// and their responses to be written before hard-failing leftovers.
    pub drain_grace: Duration,
    /// HTTP framing limits (header/body byte caps).
    pub limits: HttpLimits,
    /// When set, the batcher pins its fan-outs to this thread count via
    /// [`mcond_par::with_thread_limit`] — results are bitwise identical
    /// either way (the pool's contract); tests use it to compare 1- and
    /// 4-thread servers in one process.
    pub thread_limit: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            coalesce_window: Duration::from_micros(500),
            max_coalesce: 64,
            queue_capacity: 256,
            max_connections: 128,
            read_timeout: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(30),
            shed_wait_us: 500_000,
            retry_after_cap_secs: 30,
            default_deadline: None,
            watchdog_period: Duration::from_secs(2),
            reload_backoff: Duration::from_millis(250),
            reload_backoff_cap: Duration::from_secs(30),
            drain_grace: Duration::from_secs(5),
            limits: HttpLimits::default(),
            thread_limit: None,
        }
    }
}

/// State shared between the accept loop, handlers, the batcher, and the
/// watchdog.
pub(crate) struct Shared {
    pub(crate) stop: AtomicBool,
    /// Drain mode: stop admitting, finish what's queued.
    pub(crate) draining: AtomicBool,
    /// The watchdog is mid-restart of the batcher (healthz answers 503).
    pub(crate) restarting: AtomicBool,
    /// Smoothed queue wait in µs (α = 1/8), halved on idle ticks.
    pub(crate) ewma_wait_us: AtomicU64,
    pub(crate) live_conns: AtomicUsize,
    /// Admitted jobs whose HTTP response has not been written yet — the
    /// graceful drain waits for this to reach zero.
    pub(crate) open_replies: AtomicUsize,
    /// Chaos/testing gate: while `true` the batcher stops dequeuing, so
    /// the queue fills deterministically (the load-shed suite drives it).
    pub(crate) paused: Mutex<bool>,
    pub(crate) unpause: Condvar,
    pub(crate) queue: JobQueue,
    pub(crate) slot: Arc<EpochSlot>,
    pub(crate) reload: ReloadControl,
    /// Time origin for the heartbeat clock.
    pub(crate) t0: Instant,
    /// Batcher liveness stamp, ms since `t0`; refreshed every loop tick
    /// and while waiting out a pause.
    pub(crate) heartbeat_ms: AtomicU64,
    /// Batcher generation: bumped by the watchdog on respawn; a stalled
    /// predecessor that wakes up self-retires when its generation is
    /// stale, so at most one batcher ever consumes the queue.
    pub(crate) batcher_gen: AtomicU64,
    pub(crate) batcher: Mutex<Option<JoinHandle<()>>>,
    /// Reply senders of the batch currently inside a fan-out, tagged with
    /// the generation that registered them — what the watchdog answers
    /// with typed errors when that generation is declared dead.
    pub(crate) inflight: Mutex<(u64, Vec<mpsc::SyncSender<Reply>>)>,
    /// Chaos hooks (see [`ServeHandle::inject_batcher_panic`]).
    pub(crate) inject_panic: AtomicBool,
    pub(crate) inject_stall_ms: AtomicU64,
}

impl Shared {
    pub(crate) fn overloaded(&self, cfg: &ServeConfig) -> bool {
        self.queue.len() >= cfg.queue_capacity
            || self.ewma_wait_us.load(Ordering::Relaxed) > cfg.shed_wait_us
    }

    pub(crate) fn record_wait(&self, wait_us: u64) {
        let old = self.ewma_wait_us.load(Ordering::Relaxed);
        self.ewma_wait_us.store(old - old / 8 + wait_us / 8, Ordering::Relaxed);
    }

    pub(crate) fn decay_wait(&self) {
        let old = self.ewma_wait_us.load(Ordering::Relaxed);
        if old > 0 {
            self.ewma_wait_us.store(old / 2, Ordering::Relaxed);
        }
    }

    /// Milliseconds since the front end started — the heartbeat clock.
    pub(crate) fn now_ms(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    pub(crate) fn stamp_heartbeat(&self) {
        self.heartbeat_ms.store(self.now_ms(), Ordering::Relaxed);
    }

    pub(crate) fn heartbeat_age_ms(&self) -> u64 {
        self.now_ms().saturating_sub(self.heartbeat_ms.load(Ordering::Relaxed))
    }

    /// Blocks while the pause gate is closed (and the server is running).
    /// Stamps the heartbeat each wait tick: a paused batcher is idle by
    /// request, not stalled, and must not trip the watchdog.
    pub(crate) fn wait_unpaused(&self) {
        let mut paused = self.paused.lock().unwrap_or_else(PoisonError::into_inner);
        while *paused && !self.stop.load(Ordering::Acquire) {
            self.stamp_heartbeat();
            let (guard, _) = self
                .unpause
                .wait_timeout(paused, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            paused = guard;
        }
    }

    pub(crate) fn lock_inflight(&self) -> MutexGuard<'_, (u64, Vec<mpsc::SyncSender<Reply>>)> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running front end. Dropping the handle shuts the server down
/// (gracefully — see [`ServeHandle::shutdown`]).
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    cfg: ServeConfig,
    accept: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port `0` to the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current epoch sequence number — the value stamped on responses
    /// as `x-mcond-epoch`.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shared.slot.current_seq()
    }

    /// Loads, validates, canaries, and — only if all of that passes —
    /// swaps in the checkpoint at `path` as the new serving epoch. The
    /// same code path `POST /v1/admin/reload` runs; see [`reload`] for
    /// the failure taxonomy and backoff behaviour. In-flight requests are
    /// never disturbed: they finish on the epoch they started on.
    ///
    /// # Errors
    /// [`ReloadError`] — the old epoch keeps serving untouched on every
    /// error path.
    pub fn reload(&self, path: impl AsRef<Path>) -> Result<ReloadOutcome, ReloadError> {
        reload::attempt(&self.shared.slot, &self.shared.reload, &self.cfg, path.as_ref())
    }

    /// Closes the batcher's dequeue gate: admitted jobs stay queued (so
    /// the bounded queue fills and sheds deterministically) until
    /// [`resume`](ServeHandle::resume). A chaos/testing facility, in the
    /// spirit of `mcond_core::chaos` — metrics and health endpoints keep
    /// answering while paused, and the pause does not trip the watchdog.
    pub fn pause(&self) {
        *self.shared.paused.lock().unwrap_or_else(PoisonError::into_inner) = true;
    }

    /// Reopens the dequeue gate; queued jobs drain in arrival order.
    pub fn resume(&self) {
        *self.shared.paused.lock().unwrap_or_else(PoisonError::into_inner) = false;
        self.shared.unpause.notify_all();
    }

    /// Chaos hook: the batcher panics at its next loop tick. The watchdog
    /// must detect the dead heartbeat and respawn it; queued jobs survive
    /// (the queue outlives the worker) and are served by the replacement.
    pub fn inject_batcher_panic(&self) {
        self.shared.inject_panic.store(true, Ordering::Release);
    }

    /// Chaos hook: the batcher wedges for `stall` *after* taking its next
    /// batch in flight — the worst case, jobs dequeued but unanswered.
    /// The watchdog answers those orphans with typed `503`s and respawns;
    /// the stalled thread self-retires when it wakes.
    pub fn inject_batcher_stall(&self, stall: Duration) {
        let ms = u64::try_from(stall.as_millis()).unwrap_or(u64::MAX);
        self.shared.inject_stall_ms.store(ms.max(1), Ordering::Release);
    }

    /// Graceful drain: stop accepting, let the batcher answer everything
    /// already queued, wait (bounded by `drain_grace`) until every
    /// admitted response has been written, then stop the service threads.
    /// Requests that arrive mid-drain answer `503`; requests queued
    /// before the drain each receive exactly one real response, never a
    /// mid-reply reset.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.shared.stop.load(Ordering::Acquire) {
            return; // explicit shutdown already ran; Drop is a no-op
        }
        self.shared.draining.store(true, Ordering::Release);
        self.resume();
        // Unblock the accept loop with one throwaway connection; it sees
        // `draining` and retires, so no new connections join the drain.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The batcher closes the queue once it runs dry; every admitted
        // job decrements `open_replies` when its response hits the wire.
        let deadline = Instant::now() + self.cfg.drain_grace;
        while Instant::now() < deadline
            && !(self.shared.queue.is_closed()
                && self.shared.open_replies.load(Ordering::Acquire) == 0)
        {
            thread::sleep(Duration::from_millis(2));
        }
        self.shared.stop.store(true, Ordering::Release);
        self.resume();
        // Past the grace window: hard-close and answer leftovers typed
        // instead of letting their handlers wait out `reply_timeout`.
        crate::batcher::fail_jobs(
            self.shared.queue.close(),
            self.shared.slot.current_seq(),
            "server shut down before the request was served",
        );
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        let batcher = self.shared.batcher.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(h) = batcher {
            // A healthy batcher exits within one poll tick of the closed
            // queue; a wedged one (stall injection) is abandoned — its
            // generation check retires it when it wakes.
            let waited = Instant::now();
            while !h.is_finished() && waited.elapsed() < Duration::from_millis(500) {
                thread::sleep(Duration::from_millis(2));
            }
            if h.is_finished() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Binds the listener and spawns the accept loop, the batching worker,
/// and its watchdog. Also turns on metric aggregation
/// ([`mcond_obs::enable_metrics`]) so `GET /metrics` always has counters
/// to report.
///
/// The model arrives as an [`EpochSlot`] — the owning, swappable form
/// [`crate::boot_slot`] builds from a checkpoint file — so the same slot
/// can be reloaded under traffic via [`ServeHandle::reload`] or
/// `POST /v1/admin/reload`.
///
/// # Errors
/// Any socket-level `io::Error` from binding the address.
pub fn spawn(slot: Arc<EpochSlot>, config: ServeConfig) -> std::io::Result<ServeHandle> {
    mcond_obs::enable_metrics();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        restarting: AtomicBool::new(false),
        ewma_wait_us: AtomicU64::new(0),
        live_conns: AtomicUsize::new(0),
        open_replies: AtomicUsize::new(0),
        paused: Mutex::new(false),
        unpause: Condvar::new(),
        queue: JobQueue::new(config.queue_capacity),
        slot,
        reload: ReloadControl::new(),
        t0: Instant::now(),
        heartbeat_ms: AtomicU64::new(0),
        batcher_gen: AtomicU64::new(1),
        batcher: Mutex::new(None),
        inflight: Mutex::new((0, Vec::new())),
        inject_panic: AtomicBool::new(false),
        inject_stall_ms: AtomicU64::new(0),
    });
    shared.stamp_heartbeat();

    let first = crate::batcher::spawn_batcher(&shared, &config, 1)
        .ok_or_else(|| std::io::Error::other("cannot spawn batcher thread"))?;
    *shared.batcher.lock().unwrap_or_else(PoisonError::into_inner) = Some(first);
    let watchdog = {
        let shared = Arc::clone(&shared);
        let cfg = config.clone();
        thread::Builder::new()
            .name("mcond-serve-watchdog".to_owned())
            .spawn(move || crate::batcher::watchdog_loop(&shared, &cfg))?
    };
    let accept = {
        let shared = Arc::clone(&shared);
        let cfg = config.clone();
        thread::Builder::new().name("mcond-serve-accept".to_owned()).spawn(move || {
            accept_loop(&listener, &shared, &cfg);
        })?
    };
    Ok(ServeHandle { addr, shared, cfg: config, accept: Some(accept), watchdog: Some(watchdog) })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, cfg: &ServeConfig) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if shared.live_conns.load(Ordering::Acquire) >= cfg.max_connections {
            mcond_obs::counter_add("serve.http.conns_rejected", 1);
            let body = error_body("too_many_connections", "connection limit reached");
            let _ = (&stream).write_all(&write_response(503, &[], body.as_bytes(), true));
            continue;
        }
        shared.live_conns.fetch_add(1, Ordering::AcqRel);
        mcond_obs::counter_add("serve.http.conns", 1);
        let conn_shared = Arc::clone(shared);
        let cfg = cfg.clone();
        let spawned = thread::Builder::new().name("mcond-serve-conn".to_owned()).spawn(
            move || {
                handle_conn(stream, &conn_shared, &cfg);
                conn_shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            },
        );
        if spawned.is_err() {
            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// One framed response plus whether it answers an *admitted* job — the
/// graceful drain counts admitted responses onto the wire.
struct Routed {
    bytes: Vec<u8>,
    admitted: bool,
}

impl Routed {
    fn plain(bytes: Vec<u8>) -> Self {
        Self { bytes, admitted: false }
    }
}

/// The per-connection loop: parse requests (pipelining-aware), route
/// them, write responses. Returns when the peer closes, framing breaks,
/// a read times out, the server stops, or a drain begins (responses
/// written mid-drain carry `Connection: close`).
fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>, cfg: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new(cfg.limits);
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Drain every complete request already buffered before reading
        // more — pipelined requests answer back-to-back.
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    mcond_obs::counter_add("serve.http.requests", 1);
                    let keep = req.keep_alive();
                    let routed = route(&req, shared, cfg, keep);
                    let wrote = stream.write_all(&routed.bytes).is_ok();
                    if routed.admitted {
                        // Decrement only after the bytes hit the socket:
                        // this is what lets the drain guarantee "no
                        // connection reset mid-reply".
                        shared.open_replies.fetch_sub(1, Ordering::AcqRel);
                    }
                    if !wrote || !keep || shared.draining.load(Ordering::Acquire) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is unrecoverable: answer the typed status
                    // and close.
                    mcond_obs::counter_add("serve.http.protocol_errors", 1);
                    let body = error_body(e.kind(), &e.to_string());
                    let _ = stream
                        .write_all(&write_response(e.status(), &[], body.as_bytes(), true));
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => parser.push(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if parser.mid_request() {
                    // A started-but-stalled request (slowloris): typed
                    // timeout, then close.
                    mcond_obs::counter_add("serve.http.timeouts", 1);
                    let body = error_body("request_timeout", "request stalled mid-frame");
                    let _ = stream.write_all(&write_response(408, &[], body.as_bytes(), true));
                }
                return;
            }
            Err(_) => return,
        }
    }
}

/// Routes one parsed request to its endpoint and frames the response.
fn route(req: &Request, shared: &Arc<Shared>, cfg: &ServeConfig, keep_alive: bool) -> Routed {
    // Mid-drain responses close the connection so keep-alive clients
    // re-resolve to a healthy server instead of queueing on a dying one.
    let close = !keep_alive || shared.draining.load(Ordering::Acquire);
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/v1/serve") => serve_endpoint(req, shared, cfg, close),
        ("POST", "/v1/admin/reload") => Routed::plain(reload_endpoint(req, shared, cfg, close)),
        ("GET", "/healthz") => Routed::plain(healthz_endpoint(shared, close)),
        ("GET", "/metrics") => {
            // JSONL: one line for this server's request statistics, one
            // for the process-wide registry (http counters live there).
            let epoch = shared.slot.load();
            let mut body = Json::obj()
                .with("scope", "server")
                .with("metrics", epoch.server().metrics_snapshot().to_json())
                .dump();
            body.push('\n');
            body.push_str(
                &Json::obj()
                    .with("scope", "process")
                    .with("metrics", mcond_obs::snapshot().to_json())
                    .dump(),
            );
            body.push('\n');
            Routed::plain(write_response(200, &[], body.as_bytes(), close))
        }
        (_, "/v1/serve" | "/v1/admin/reload") => Routed::plain(method_not_allowed("POST", close)),
        (_, "/healthz" | "/metrics") => Routed::plain(method_not_allowed("GET", close)),
        _ => {
            let body = error_body("not_found", "unknown path");
            Routed::plain(write_response(404, &[], body.as_bytes(), close))
        }
    }
}

/// `GET /healthz`: liveness plus the supervision vitals — the current
/// epoch and checkpoint id, queue depth, and batcher heartbeat age.
/// Answers `503` while the watchdog is mid-restart or the server is
/// draining, so load balancers rotate traffic away.
fn healthz_endpoint(shared: &Arc<Shared>, close: bool) -> Vec<u8> {
    let epoch = shared.slot.load();
    let restarting = shared.restarting.load(Ordering::Acquire);
    let draining = shared.draining.load(Ordering::Acquire);
    let status = if restarting {
        "restarting"
    } else if draining {
        "draining"
    } else {
        "ok"
    };
    let body = Json::obj()
        .with("status", status)
        .with("epoch", epoch.seq())
        .with("checkpoint", epoch.checkpoint_id())
        .with("base_nodes", epoch.server().base_nodes())
        .with("queue_depth", shared.queue.len())
        .with("heartbeat_age_ms", shared.heartbeat_age_ms())
        .dump();
    let code = if restarting || draining { 503 } else { 200 };
    write_response(code, &[], body.as_bytes(), close)
}

/// `POST /v1/admin/reload`: body `{"path": "..."}`. Runs the full
/// validated-load + canary + swap pipeline **on this handler thread** —
/// never on the batcher — and maps the typed outcome onto HTTP.
fn reload_endpoint(req: &Request, shared: &Arc<Shared>, cfg: &ServeConfig, close: bool) -> Vec<u8> {
    let path = std::str::from_utf8(&req.body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .and_then(|j| j.get("path").and_then(Json::as_str).map(str::to_owned));
    let Some(path) = path else {
        let body = error_body("bad_reload_request", "body must be {\"path\": \"...\"}");
        return write_response(400, &[], body.as_bytes(), close);
    };
    match reload::attempt(&shared.slot, &shared.reload, cfg, Path::new(&path)) {
        Ok(outcome) => {
            let body = Json::obj()
                .with("epoch", outcome.epoch)
                .with("checkpoint", outcome.checkpoint_id)
                .dump();
            write_response(200, &[], body.as_bytes(), close)
        }
        Err(ReloadError::InProgress) => {
            let body = error_body("reload_in_progress", "another reload is running");
            write_response(409, &[], body.as_bytes(), close)
        }
        Err(ReloadError::Backoff { retry_after }) => {
            let secs = retry_after.as_secs().max(1);
            let body = error_body(
                "reload_backoff",
                "recent reloads failed; wait out the advertised backoff",
            );
            write_response(429, &[("retry-after", secs.to_string())], body.as_bytes(), close)
        }
        Err(ReloadError::Store(e)) => {
            let body = error_body("bad_checkpoint", &e.to_string());
            write_response(422, &[], body.as_bytes(), close)
        }
        Err(ReloadError::Canary(e)) => {
            let body = error_body("canary_failed", &e.to_string());
            write_response(422, &[], body.as_bytes(), close)
        }
    }
}

/// Upper bound on a client-supplied deadline budget: 24 hours. A budget
/// above this is hostile or nonsensical — `Instant + huge Duration` can
/// overflow the platform clock's representable range and panic inside the
/// connection thread — so the request is rejected at parse time instead.
const MAX_DEADLINE_MS: u64 = 86_400_000;

/// Parses the request's deadline budget: the `x-mcond-deadline-ms` header
/// when present (must be a positive integer no larger than
/// [`MAX_DEADLINE_MS`]), else the configured default. `Err` means the
/// header was malformed or out of range.
fn request_budget(req: &Request, cfg: &ServeConfig) -> Result<Option<Duration>, ()> {
    match req.header("x-mcond-deadline-ms") {
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 && ms <= MAX_DEADLINE_MS => Ok(Some(Duration::from_millis(ms))),
            _ => Err(()),
        },
        None => Ok(cfg.default_deadline),
    }
}

/// `POST /v1/serve`: decode, admit (or shed), enqueue, await the fan-out
/// result, map it to a status. Every response — success or failure —
/// carries `x-mcond-epoch`.
fn serve_endpoint(req: &Request, shared: &Arc<Shared>, cfg: &ServeConfig, close: bool) -> Routed {
    let epoch_hdr = |seq: u64| ("x-mcond-epoch", seq.to_string());
    let current = shared.slot.current_seq();
    let Ok(text) = std::str::from_utf8(&req.body) else {
        mcond_obs::counter_add("serve.http.bad_requests", 1);
        let body = error_body("codec", &CodecError::Utf8.to_string());
        return Routed::plain(write_response(400, &[epoch_hdr(current)], body.as_bytes(), close));
    };
    let batch = match codec::decode_batch(text) {
        Ok(b) => b,
        Err(e) => {
            mcond_obs::counter_add("serve.http.bad_requests", 1);
            let body = error_body("codec", &e.to_string());
            return Routed::plain(write_response(
                400,
                &[epoch_hdr(current)],
                body.as_bytes(),
                close,
            ));
        }
    };
    let Ok(budget) = request_budget(req, cfg) else {
        mcond_obs::counter_add("serve.http.bad_requests", 1);
        let body = error_body(
            "bad_deadline",
            "x-mcond-deadline-ms must be a positive integer no larger than 86400000 (24h)",
        );
        return Routed::plain(write_response(400, &[epoch_hdr(current)], body.as_bytes(), close));
    };

    if shared.draining.load(Ordering::Acquire) {
        let body = error_body("shutting_down", "server is draining");
        return Routed::plain(write_response(503, &[epoch_hdr(current)], body.as_bytes(), close));
    }
    // Admission control: shed *before* touching the queue when the server
    // is already over its bounds.
    if shared.overloaded(cfg) {
        return Routed::plain(shed_response(shared, cfg, close));
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let enqueued = Instant::now();
    let job = Job {
        batch,
        enqueued,
        // checked_add: a configured default_deadline is not range-checked
        // like the header is, and Instant arithmetic panics on overflow.
        // An unrepresentable deadline degrades to "no deadline".
        deadline: budget.and_then(|b| enqueued.checked_add(b)),
        budget,
        reply: reply_tx,
    };
    match shared.queue.push(job) {
        Ok(()) => {
            mcond_obs::counter_add("serve.http.admitted", 1);
            shared.open_replies.fetch_add(1, Ordering::AcqRel);
        }
        Err(PushRejected::Full) => {
            return Routed::plain(shed_response(shared, cfg, close));
        }
        Err(PushRejected::Closed) => {
            let body = error_body("shutting_down", "serving worker is gone");
            return Routed::plain(write_response(
                503,
                &[epoch_hdr(current)],
                body.as_bytes(),
                close,
            ));
        }
    }
    let bytes = match reply_rx.recv_timeout(cfg.reply_timeout) {
        Ok((Ok(logits), trace, epoch)) => {
            let body = codec::encode_logits(trace, &logits);
            write_response(
                200,
                &[("x-mcond-trace", trace.to_string()), epoch_hdr(epoch)],
                body.as_bytes(),
                close,
            )
        }
        Ok((Err(e), trace, epoch)) => {
            let (status, kind) = serve_error_status(&e);
            let body = error_body(kind, &e.to_string());
            write_response(
                status,
                &[("x-mcond-trace", trace.to_string()), epoch_hdr(epoch)],
                body.as_bytes(),
                close,
            )
        }
        Err(RecvTimeoutError::Timeout) => {
            mcond_obs::counter_add("serve.http.timeouts", 1);
            let body = error_body("reply_timeout", "request timed out in the serving queue");
            write_response(504, &[epoch_hdr(current)], body.as_bytes(), close)
        }
        Err(RecvTimeoutError::Disconnected) => {
            let body = error_body("shutting_down", "serving worker dropped the request");
            write_response(503, &[epoch_hdr(current)], body.as_bytes(), close)
        }
    };
    Routed { bytes, admitted: true }
}

/// The `Retry-After` seconds a shed response advertises: the queue-wait
/// EWMA rounded **up** to whole seconds — an honest "how long until the
/// backlog you would join clears" — floored at 1 and capped by
/// configuration so a pathological EWMA cannot park clients forever.
pub(crate) fn derived_retry_after_secs(ewma_wait_us: u64, cap_secs: u32) -> u32 {
    let secs = ewma_wait_us.div_ceil(1_000_000).max(1);
    let cap = cap_secs.max(1);
    u32::try_from(secs).map_or(cap, |s| s.min(cap))
}

fn shed_response(shared: &Shared, cfg: &ServeConfig, close: bool) -> Vec<u8> {
    mcond_obs::counter_add("serve.http.shed", 1);
    let retry = derived_retry_after_secs(
        shared.ewma_wait_us.load(Ordering::Relaxed),
        cfg.retry_after_cap_secs,
    );
    let body = error_body("shed", "server is over capacity; retry after the advertised delay");
    write_response(
        429,
        &[
            ("retry-after", retry.to_string()),
            ("x-mcond-epoch", shared.slot.current_seq().to_string()),
        ],
        body.as_bytes(),
        close,
    )
}

fn method_not_allowed(allow: &str, close: bool) -> Vec<u8> {
    let body = error_body("method_not_allowed", &format!("use {allow}"));
    write_response(405, &[("allow", allow.to_owned())], body.as_bytes(), close)
}

/// Maps a [`ServeError`] to its HTTP status and stable error kind.
///
/// | variant | status |
/// |---|---|
/// | `InvalidBatch` | 400 |
/// | `BatchTooLarge` | 413 |
/// | `NoAttachment` | 422 |
/// | `FallbackUnavailable` | 503 |
/// | `NonFiniteLogits` | 500 |
/// | `Panicked` | 500 |
/// | `DeadlineExceeded` | 503 |
/// | `Aborted` | 503 |
/// | `StaleCache` | 503 |
#[must_use]
pub fn serve_error_status(e: &ServeError) -> (u16, &'static str) {
    match e {
        ServeError::InvalidBatch(_) => (400, "invalid_batch"),
        ServeError::BatchTooLarge { .. } => (413, "batch_too_large"),
        ServeError::NoAttachment { .. } => (422, "no_attachment"),
        ServeError::FallbackUnavailable { .. } => (503, "fallback_unavailable"),
        ServeError::NonFiniteLogits => (500, "non_finite_logits"),
        ServeError::Panicked { .. } => (500, "panicked"),
        ServeError::DeadlineExceeded { .. } => (503, "deadline_exceeded"),
        ServeError::Aborted { .. } => (503, "aborted"),
        // Retryable: the operator is expected to patch/rebuild the cache
        // (or hot-swap a refreshed checkpoint) shortly.
        ServeError::StaleCache { .. } => (503, "stale_cache"),
    }
}

/// The JSON error envelope every non-200 response carries.
pub(crate) fn error_body(kind: &str, message: &str) -> String {
    Json::obj()
        .with("error", Json::obj().with("kind", kind).with("message", message))
        .dump()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_error_mapping_is_total_and_stable() {
        use mcond_graph::BatchError;
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (
                ServeError::InvalidBatch(BatchError::NonFinite { component: "features" }),
                400,
                "invalid_batch",
            ),
            (ServeError::BatchTooLarge { len: 9, max: 1 }, 413, "batch_too_large"),
            (ServeError::NoAttachment { node: 0, coverage: 0.0 }, 422, "no_attachment"),
            (ServeError::FallbackUnavailable { node: 0 }, 503, "fallback_unavailable"),
            (ServeError::NonFiniteLogits, 500, "non_finite_logits"),
            (ServeError::Panicked { context: "boom".into() }, 500, "panicked"),
            (
                ServeError::DeadlineExceeded { waited_ms: 7, budget_ms: 5 },
                503,
                "deadline_exceeded",
            ),
            (ServeError::Aborted { reason: "watchdog" }, 503, "aborted"),
            (
                ServeError::StaleCache { cache_version: 1, base_version: 2 },
                503,
                "stale_cache",
            ),
        ];
        for (e, status, kind) in cases {
            assert_eq!(serve_error_status(&e), (status, kind), "{e}");
            assert!(!crate::http::status_reason(status).is_empty());
        }
    }

    #[test]
    fn retry_after_derives_from_the_ewma_rounded_up_and_capped() {
        // Idle queue: floor of 1 second, never 0.
        assert_eq!(derived_retry_after_secs(0, 30), 1);
        // Sub-second waits still round up to the floor.
        assert_eq!(derived_retry_after_secs(250_000, 30), 1);
        // Just over a second rounds *up*, not down.
        assert_eq!(derived_retry_after_secs(1_000_001, 30), 2);
        assert_eq!(derived_retry_after_secs(4_500_000, 30), 5);
        // A pathological EWMA is capped.
        assert_eq!(derived_retry_after_secs(90_000_000, 30), 30);
        assert_eq!(derived_retry_after_secs(u64::MAX, 30), 30);
        // A zero cap never advertises zero.
        assert_eq!(derived_retry_after_secs(0, 0), 1);
    }

    #[test]
    fn ewma_decay_lowers_the_advertised_retry_after() {
        let shared = test_shared();
        shared.ewma_wait_us.store(3_000_000, Ordering::Relaxed);
        let cfg = ServeConfig { shed_wait_us: 1_000, ..ServeConfig::default() };
        assert!(shared.overloaded(&cfg), "hot EWMA sheds");
        assert_eq!(
            derived_retry_after_secs(shared.ewma_wait_us.load(Ordering::Relaxed), 30),
            3
        );
        for _ in 0..20 {
            shared.decay_wait();
        }
        assert!(!shared.overloaded(&cfg), "idle decay readmits");
        assert_eq!(
            derived_retry_after_secs(shared.ewma_wait_us.load(Ordering::Relaxed), 30),
            1,
            "drained queue advertises the 1-second floor"
        );
    }

    #[test]
    fn healthz_answers_503_while_draining_or_restarting() {
        let shared = Arc::new(test_shared());
        let status_of = |bytes: Vec<u8>| -> (u16, String) {
            let text = String::from_utf8(bytes).expect("ASCII response");
            let status = text
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status code");
            (status, text)
        };

        let (status, text) = status_of(healthz_endpoint(&shared, false));
        assert_eq!(status, 200);
        assert!(text.contains("\"ok\""), "healthy body names its status: {text}");
        assert!(text.contains("\"epoch\""), "healthz carries the epoch: {text}");
        assert!(text.contains("\"checkpoint\""), "healthz carries the checkpoint id: {text}");
        assert!(text.contains("\"queue_depth\""), "healthz carries queue depth: {text}");
        assert!(text.contains("\"heartbeat_age_ms\""), "healthz carries heartbeat age: {text}");

        shared.draining.store(true, Ordering::Release);
        let (status, text) = status_of(healthz_endpoint(&shared, false));
        assert_eq!(status, 503, "draining answers 503 so balancers rotate away");
        assert!(text.contains("\"draining\""), "{text}");
        shared.draining.store(false, Ordering::Release);

        shared.restarting.store(true, Ordering::Release);
        let (status, text) = status_of(healthz_endpoint(&shared, false));
        assert_eq!(status, 503, "mid-restart answers 503");
        assert!(text.contains("\"restarting\""), "{text}");
    }

    fn test_shared() -> Shared {
        Shared {
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            restarting: AtomicBool::new(false),
            ewma_wait_us: AtomicU64::new(0),
            live_conns: AtomicUsize::new(0),
            open_replies: AtomicUsize::new(0),
            paused: Mutex::new(false),
            unpause: Condvar::new(),
            queue: JobQueue::new(4),
            slot: Arc::new(EpochSlot::new(test_epoch())),
            reload: ReloadControl::new(),
            t0: Instant::now(),
            heartbeat_ms: AtomicU64::new(0),
            batcher_gen: AtomicU64::new(1),
            batcher: Mutex::new(None),
            inflight: Mutex::new((0, Vec::new())),
            inject_panic: AtomicBool::new(false),
            inject_stall_ms: AtomicU64::new(0),
        }
    }

    fn test_epoch() -> mcond_core::EpochServer {
        use mcond_core::{Checkpoint, EpochServer};
        use mcond_gnn::{GnnKind, GnnModel};
        use mcond_graph::Graph;
        use mcond_linalg::DMat;
        use mcond_sparse::Coo;
        let mut coo = Coo::new(2, 2);
        coo.push_sym(0, 1, 1.0);
        let graph = Graph::new(
            coo.to_csr(),
            DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            vec![0, 1],
            2,
        );
        let mut map = Coo::new(3, 2);
        map.push(0, 0, 1.0);
        map.push(1, 1, 1.0);
        map.push(2, 1, 1.0);
        let model = GnnModel::new(GnnKind::Gcn, 2, 4, 2, 1);
        let ckpt = Checkpoint::new(graph, map.to_csr(), model).unwrap();
        EpochServer::from_checkpoint_arc(Arc::new(ckpt), "test")
    }
}
