//! Checkpoint hot-reload: validated load → canary → atomic swap.
//!
//! The reload pipeline runs entirely **off the serving path** — on the
//! admin handler thread or the library caller's thread, never the
//! batcher. Its stages, in order, each of which leaves the old epoch
//! serving untouched on failure:
//!
//! 1. **Validated load** — [`Checkpoint::load_for_serving`] CRC-checks
//!    every section of the MCST bundle up front, then decodes and
//!    re-validates the cross-section shape invariants. Any [`StoreError`]
//!    aborts here.
//! 2. **Canary** — the staged epoch serves one synthetic probe batch
//!    through the full forward pass ([`EpochServer::canary`]); a model
//!    that panics on real shapes or emits non-finite logits is rejected
//!    before it can answer traffic.
//! 3. **Swap** — [`EpochSlot::install`]: one pointer exchange. In-flight
//!    batches finish on their epoch; the retired epoch frees when its
//!    last request completes.
//!
//! Failures count (`serve.reload.failed`) and arm an exponential backoff
//! (`reload_backoff · 2^(n-1)`, capped): a crash-looping deployment that
//! hammers reload with the same corrupt bundle gets `429`s instead of
//! burning CPU re-parsing it. One success resets the backoff. Concurrent
//! reload attempts are serialized — the loser observes
//! [`ReloadError::InProgress`] immediately rather than queueing.

use crate::front::ServeConfig;
use mcond_core::{Checkpoint, EpochServer, EpochSlot, ServeError};
use mcond_store::StoreError;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex, TryLockError};
use std::time::{Duration, Instant};

/// Why a reload did not swap. Every variant leaves the previous epoch
/// serving, bitwise untouched.
#[derive(Debug)]
pub enum ReloadError {
    /// Another reload is mid-pipeline; retry after it settles.
    InProgress,
    /// Recent reloads failed and the exponential backoff has not elapsed.
    Backoff {
        /// How long until the next attempt will be admitted.
        retry_after: Duration,
    },
    /// The bundle failed CRC verification, decoding, or shape validation.
    Store(StoreError),
    /// The bundle loaded but its canary self-check batch failed.
    Canary(ServeError),
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::InProgress => write!(f, "another reload is in progress"),
            ReloadError::Backoff { retry_after } => write!(
                f,
                "reloads are backing off after repeated failures; retry in {:.1}s",
                retry_after.as_secs_f64()
            ),
            ReloadError::Store(e) => write!(f, "checkpoint rejected: {e}"),
            ReloadError::Canary(e) => write!(f, "canary self-check failed: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Store(e) => Some(e),
            ReloadError::Canary(e) => Some(e),
            _ => None,
        }
    }
}

/// What a successful reload installed.
#[derive(Debug, Clone)]
pub struct ReloadOutcome {
    /// The new epoch's sequence number (now stamped on responses).
    pub epoch: u64,
    /// The installed checkpoint's content id.
    pub checkpoint_id: String,
}

struct Gate {
    consecutive_failures: u32,
    not_before: Option<Instant>,
}

/// Serializes reload attempts and carries the failure-backoff state.
pub(crate) struct ReloadControl {
    gate: Mutex<Gate>,
}

impl ReloadControl {
    pub(crate) fn new() -> Self {
        Self { gate: Mutex::new(Gate { consecutive_failures: 0, not_before: None }) }
    }
}

/// Computes the backoff armed after the `failures`-th consecutive
/// failure: `base · 2^(failures-1)`, capped.
fn backoff_after(failures: u32, cfg: &ServeConfig) -> Duration {
    let exp = failures.saturating_sub(1).min(16);
    cfg.reload_backoff.saturating_mul(1u32 << exp).min(cfg.reload_backoff_cap)
}

/// The full reload pipeline. See the module docs for the stage contract.
pub(crate) fn attempt(
    slot: &Arc<EpochSlot>,
    control: &ReloadControl,
    cfg: &ServeConfig,
    path: &Path,
) -> Result<ReloadOutcome, ReloadError> {
    let mut gate = match control.gate.try_lock() {
        Ok(g) => g,
        Err(TryLockError::WouldBlock) => {
            mcond_obs::counter_add("serve.reload.rejected_busy", 1);
            return Err(ReloadError::InProgress);
        }
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
    };
    if let Some(not_before) = gate.not_before {
        let now = Instant::now();
        if now < not_before {
            mcond_obs::counter_add("serve.reload.rejected_backoff", 1);
            return Err(ReloadError::Backoff { retry_after: not_before - now });
        }
    }

    let start = Instant::now();
    let staged = match Checkpoint::load_for_serving(path) {
        Ok((ckpt, id)) => EpochServer::from_checkpoint_arc(Arc::new(ckpt), id),
        Err(e) => {
            record_failure(&mut gate, cfg);
            return Err(ReloadError::Store(e));
        }
    };
    if let Err(e) = staged.canary() {
        record_failure(&mut gate, cfg);
        return Err(ReloadError::Canary(e));
    }

    let installed = slot.install(staged);
    gate.consecutive_failures = 0;
    gate.not_before = None;
    mcond_obs::counter_add("serve.reload.ok", 1);
    #[allow(clippy::cast_precision_loss)]
    mcond_obs::gauge_set("serve.reload.epoch", installed.seq() as f64);
    mcond_obs::histogram_record("serve.reload.ms", start.elapsed().as_secs_f64() * 1e3);
    Ok(ReloadOutcome {
        epoch: installed.seq(),
        checkpoint_id: installed.checkpoint_id().to_owned(),
    })
}

fn record_failure(gate: &mut Gate, cfg: &ServeConfig) {
    gate.consecutive_failures = gate.consecutive_failures.saturating_add(1);
    let backoff = backoff_after(gate.consecutive_failures, cfg);
    gate.not_before = Some(Instant::now() + backoff);
    mcond_obs::counter_add("serve.reload.failed", 1);
}

/// Poison-tolerant gate read, for tests.
#[cfg(test)]
fn gate_state(control: &ReloadControl) -> (u32, Option<Instant>) {
    let g = control.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    (g.consecutive_failures, g.not_before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_failure_and_caps() {
        let cfg = ServeConfig {
            reload_backoff: Duration::from_millis(100),
            reload_backoff_cap: Duration::from_secs(1),
            ..ServeConfig::default()
        };
        assert_eq!(backoff_after(1, &cfg), Duration::from_millis(100));
        assert_eq!(backoff_after(2, &cfg), Duration::from_millis(200));
        assert_eq!(backoff_after(3, &cfg), Duration::from_millis(400));
        assert_eq!(backoff_after(4, &cfg), Duration::from_millis(800));
        assert_eq!(backoff_after(5, &cfg), Duration::from_secs(1), "capped");
        assert_eq!(backoff_after(60, &cfg), Duration::from_secs(1), "shift never overflows");
    }

    #[test]
    fn failed_attempt_arms_backoff_and_success_resets_it() {
        use mcond_core::{Checkpoint, EpochServer, EpochSlot};
        use mcond_gnn::{GnnKind, GnnModel};
        use mcond_graph::Graph;
        use mcond_linalg::DMat;
        use mcond_sparse::Coo;

        let make_ckpt = || {
            let mut coo = Coo::new(2, 2);
            coo.push_sym(0, 1, 1.0);
            let graph = Graph::new(
                coo.to_csr(),
                DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
                vec![0, 1],
                2,
            );
            let mut map = Coo::new(3, 2);
            map.push(0, 0, 1.0);
            map.push(1, 1, 1.0);
            map.push(2, 1, 1.0);
            Checkpoint::new(graph, map.to_csr(), GnnModel::new(GnnKind::Gcn, 2, 4, 2, 9))
                .unwrap()
        };
        let slot = Arc::new(EpochSlot::new(EpochServer::from_checkpoint_arc(
            Arc::new(make_ckpt()),
            "boot",
        )));
        let control = ReloadControl::new();
        let cfg = ServeConfig {
            reload_backoff: Duration::from_secs(60),
            ..ServeConfig::default()
        };

        // Missing file: typed Store error, backoff armed.
        let missing = std::env::temp_dir().join("mcond_reload_gate_missing.mcst");
        let _ = std::fs::remove_file(&missing);
        match attempt(&slot, &control, &cfg, &missing) {
            Err(ReloadError::Store(_)) => {}
            other => panic!("expected Store error, got {:?}", other.map(|o| o.epoch)),
        }
        let (fails, armed) = gate_state(&control);
        assert_eq!(fails, 1);
        assert!(armed.is_some());
        assert_eq!(slot.current_seq(), 1, "old epoch untouched");

        // While armed, attempts answer Backoff without touching the disk.
        match attempt(&slot, &control, &cfg, &missing) {
            Err(ReloadError::Backoff { retry_after }) => {
                assert!(retry_after <= Duration::from_secs(60));
            }
            other => panic!("expected Backoff, got {:?}", other.map(|o| o.epoch)),
        }

        // A valid bundle after the backoff expires resets the gate.
        let good = std::env::temp_dir().join("mcond_reload_gate_good.mcst");
        make_ckpt().save(&good).unwrap();
        {
            let mut g = control.gate.lock().unwrap();
            g.not_before = Some(Instant::now() - Duration::from_millis(1));
        }
        let outcome = attempt(&slot, &control, &cfg, &good).expect("valid reload swaps");
        std::fs::remove_file(&good).ok();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(slot.current_seq(), 2);
        let (fails, armed) = gate_state(&control);
        assert_eq!(fails, 0, "success resets the failure count");
        assert!(armed.is_none(), "success disarms the backoff");
    }
}
