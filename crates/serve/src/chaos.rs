//! Table-driven malformed-HTTP corpus, mirroring the
//! [`mcond_core::chaos`] catalogue style: each case is a named sequence
//! of raw socket writes plus the outcome a robust server must produce —
//! a clean 4xx/5xx status, a silent close, or either. The invariant
//! under test is *graceful degradation*: no case may panic the server,
//! hang the connection past its timeout, or poison later requests.

use crate::http::HttpLimits;
use std::time::Duration;

/// One scripted step of a hostile client.
#[derive(Clone, Debug)]
pub enum ChaosWrite {
    /// Send these bytes.
    Bytes(Vec<u8>),
    /// Go quiet for this long (slowloris building block).
    Pause(Duration),
    /// Half-close the write side, keep reading.
    CloseWrite,
}

/// What the server must do in response.
#[derive(Clone, Copy, Debug)]
pub enum Expect {
    /// Exactly these statuses, in order, then connection close.
    Statuses(&'static [u16]),
    /// Connection closes with no response bytes.
    Closed,
    /// Either of the above — acceptable when the race between our close
    /// and the server's response is inherently timing-dependent.
    StatusOrClosed(u16),
}

/// A named protocol-abuse scenario.
pub struct ProtocolCase {
    pub name: &'static str,
    pub writes: Vec<ChaosWrite>,
    pub expect: Expect,
}

fn req(s: &str) -> ChaosWrite {
    ChaosWrite::Bytes(s.as_bytes().to_vec())
}

/// The corpus, parameterized by the server's configured limits, read
/// timeout, and expected batch shape — oversized/slowloris cases always
/// cross the line by a margin instead of assuming defaults, and the one
/// well-formed (split-body) case targets a batch the server actually
/// accepts (`inc_cols` incremental columns — training nodes for Eq. 3
/// serving, mapping rows for Eq. 11 — and `feature_dim` features).
#[must_use]
pub fn protocol_corpus(
    limits: &HttpLimits,
    read_timeout: Duration,
    inc_cols: usize,
    feature_dim: usize,
) -> Vec<ProtocolCase> {
    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nx-filler: {}\r\n\r\n",
        "a".repeat(limits.max_header_bytes + 64)
    );
    let huge_body_head = format!(
        "POST /v1/serve HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        limits.max_body_bytes + 1
    );
    let stall = read_timeout + Duration::from_millis(300);
    // Allocation-bomb shape: a tiny, syntactically valid
    // request declaring 9e15 sparse rows. The codec must answer 400
    // without sizing anything from the declaration (an attempted
    // allocation would abort the process, which the suite would see as a
    // dead server on the next case).
    let alloc_bomb_body = format!(
        "{{\"feature_dim\": {feature_dim}, \"features\": [], \"incremental\": \
         {{\"rows\": 9000000000000000, \"cols\": {inc_cols}, \"entries\": []}}}}"
    );
    let alloc_bomb = format!(
        "POST /v1/serve HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        alloc_bomb_body.len(),
        alloc_bomb_body
    );
    // A valid empty batch, dribbled across four writes: headers split
    // mid-name, body split mid-object. Robust framing must reassemble it
    // and answer 200.
    let split_body = format!(
        "{{\"feature_dim\": {feature_dim}, \"features\": [], \
         \"incremental\": {{\"cols\": {inc_cols}, \"entries\": []}}}}"
    );
    // The same valid batch, but with a deadline budget near u64::MAX
    // milliseconds. Naive `Instant + Duration` arithmetic on such a budget
    // can overflow the platform clock's representable range and panic the
    // connection thread; the server must refuse the budget with a clean
    // 400 instead.
    let huge_deadline = format!(
        "POST /v1/serve HTTP/1.1\r\nx-mcond-deadline-ms: 18000000000000000000\r\n\
         content-length: {}\r\n\r\n{}",
        split_body.len(),
        split_body
    );
    let half = split_body.len() / 2;
    let split_writes = vec![
        req("POST /v1/serve HTTP"),
        req("/1.1\r\ncontent-le"),
        ChaosWrite::Bytes(
            format!("ngth: {}\r\n\r\n{}", split_body.len(), &split_body[..half]).into_bytes(),
        ),
        ChaosWrite::Bytes(split_body.as_bytes()[half..].to_vec()),
    ];
    vec![
        ProtocolCase {
            name: "truncated_request_line",
            writes: vec![req("GET /healthz"), ChaosWrite::Pause(stall)],
            expect: Expect::Statuses(&[408]),
        },
        ProtocolCase {
            name: "garbage_request_line",
            writes: vec![req("ONE TWO THREE FOUR\r\n\r\n")],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "lowercase_method",
            writes: vec![req("get /healthz HTTP/1.1\r\n\r\n")],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "http_0_9_version",
            writes: vec![req("GET /healthz HTTP/0.9\r\n\r\n")],
            expect: Expect::Statuses(&[505]),
        },
        ProtocolCase {
            name: "not_http_at_all",
            writes: vec![req("\x16\x03\x01\x02\x00 TLS client hello\r\n\r\n")],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "oversized_headers",
            writes: vec![ChaosWrite::Bytes(huge_header.into_bytes())],
            expect: Expect::Statuses(&[431]),
        },
        ProtocolCase {
            name: "bad_content_length",
            writes: vec![req("POST /v1/serve HTTP/1.1\r\ncontent-length: banana\r\n\r\n")],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "negative_content_length",
            writes: vec![req("POST /v1/serve HTTP/1.1\r\ncontent-length: -5\r\n\r\n")],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "conflicting_content_lengths",
            writes: vec![req(
                "POST /v1/serve HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 8\r\n\r\n{}",
            )],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "huge_declared_sparse_rows",
            writes: vec![ChaosWrite::Bytes(alloc_bomb.into_bytes())],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "missing_content_length_on_post",
            writes: vec![req("POST /v1/serve HTTP/1.1\r\n\r\n")],
            expect: Expect::Statuses(&[411]),
        },
        ProtocolCase {
            name: "declared_body_over_cap",
            writes: vec![ChaosWrite::Bytes(huge_body_head.into_bytes())],
            expect: Expect::Statuses(&[413]),
        },
        ProtocolCase {
            name: "chunked_transfer_encoding",
            writes: vec![req(
                "POST /v1/serve HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n",
            )],
            expect: Expect::Statuses(&[501]),
        },
        ProtocolCase {
            name: "slowloris_headers",
            // Drip one header byte, then stall past the read timeout.
            writes: vec![
                req("GET /metrics HTTP/1.1\r\nx-slow: a"),
                ChaosWrite::Pause(stall),
            ],
            expect: Expect::Statuses(&[408]),
        },
        ProtocolCase {
            name: "slowloris_body",
            writes: vec![
                req("POST /v1/serve HTTP/1.1\r\ncontent-length: 1000\r\n\r\n{\"fea"),
                ChaosWrite::Pause(stall),
            ],
            expect: Expect::Statuses(&[408]),
        },
        ProtocolCase {
            name: "half_close_mid_body",
            writes: vec![
                req("POST /v1/serve HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"trunc"),
                ChaosWrite::CloseWrite,
            ],
            // The server sees EOF mid-frame; silent close and 408 are
            // both clean outcomes depending on whether the timeout or
            // the EOF lands first.
            expect: Expect::StatusOrClosed(408),
        },
        ProtocolCase {
            name: "non_json_body",
            writes: vec![req("POST /v1/serve HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot json!")],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "json_wrong_shape",
            writes: vec![req(
                "POST /v1/serve HTTP/1.1\r\ncontent-length: 17\r\n\r\n{\"features\": 42}\n",
            )],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "unknown_path",
            writes: vec![req("GET /v2/serve HTTP/1.1\r\n\r\n")],
            expect: Expect::Statuses(&[404]),
        },
        ProtocolCase {
            name: "get_on_serve_endpoint",
            writes: vec![req("GET /v1/serve HTTP/1.1\r\n\r\n")],
            expect: Expect::Statuses(&[405]),
        },
        ProtocolCase {
            name: "huge_deadline_header",
            writes: vec![ChaosWrite::Bytes(huge_deadline.into_bytes())],
            expect: Expect::Statuses(&[400]),
        },
        ProtocolCase {
            name: "split_body_across_writes",
            writes: split_writes,
            expect: Expect::Statuses(&[200]),
        },
        ProtocolCase {
            name: "pipelined_pair",
            writes: vec![req(
                "GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
            )],
            expect: Expect::Statuses(&[200, 200]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_uniquely_named() {
        let corpus = protocol_corpus(&HttpLimits::default(), Duration::from_millis(100), 3, 3);
        assert!(corpus.len() >= 15, "corpus should cover the catalogue");
        let mut names: Vec<_> = corpus.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "duplicate case names");
    }

    #[test]
    fn split_body_case_is_length_consistent() {
        // The split-body case computes its content-length from the
        // payload; keep the corpus honest if someone edits it.
        let corpus = protocol_corpus(&HttpLimits::default(), Duration::from_millis(100), 5, 2);
        let case = corpus.iter().find(|c| c.name == "split_body_across_writes").unwrap();
        let mut all = Vec::new();
        for w in &case.writes {
            if let ChaosWrite::Bytes(b) = w {
                all.extend_from_slice(b);
            }
        }
        let text = String::from_utf8(all).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len(), "content-length must match the dribbled body");
    }
}
