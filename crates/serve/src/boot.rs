//! Checkpoint boot: turn an on-disk [`Checkpoint`](mcond_core::Checkpoint)
//! bundle (written by `mcond-store`) into the [`EpochSlot`] the front end
//! serves from — the deployment path where the serving process never sees
//! the original graph, only the condensed artifact. The slot *owns* its
//! checkpoint: unlike the leaked-`'static` boot of earlier revisions,
//! every reload frees the retired epoch once its last in-flight request
//! completes.

use mcond_core::{Checkpoint, EpochServer, EpochSlot};
use mcond_store::StoreError;
use std::path::Path;
use std::sync::Arc;

/// Loads and fully verifies the checkpoint at `path` (every section CRC,
/// then the cross-section shape invariants) and installs it as epoch 1 of
/// a fresh [`EpochSlot`]. Hand the slot to [`crate::spawn`]; swap new
/// checkpoints in later with [`crate::ServeHandle::reload`] or
/// `POST /v1/admin/reload`.
///
/// # Errors
/// Any [`StoreError`] from reading or validating the bundle.
pub fn boot_slot(path: impl AsRef<Path>) -> Result<Arc<EpochSlot>, StoreError> {
    let (ckpt, id) = Checkpoint::load_for_serving(path)?;
    Ok(Arc::new(EpochSlot::new(EpochServer::from_checkpoint_arc(Arc::new(ckpt), id))))
}
