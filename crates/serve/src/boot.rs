//! Checkpoint boot: turn an on-disk [`Checkpoint`] bundle (written by
//! `mcond-store`) into the `Arc<InductiveServer<'static>>` the front end
//! needs — the deployment path where the serving process never sees the
//! original graph, only the condensed artifact.

use mcond_core::{Checkpoint, InductiveServer};
use mcond_store::StoreError;
use std::path::Path;
use std::sync::Arc;

/// Loads the checkpoint at `path` and builds a `'static` server over it.
///
/// The checkpoint is intentionally leaked: a serving process keeps its
/// model resident for its whole lifetime, and the `'static` borrow is
/// what lets connection handler threads share the server without
/// self-referential ownership tricks. Call once at process start.
///
/// # Errors
/// Any [`StoreError`] from reading or validating the bundle.
pub fn boot_checkpoint(path: impl AsRef<Path>) -> Result<Arc<InductiveServer<'static>>, StoreError> {
    let ckpt: &'static Checkpoint = Box::leak(Box::new(Checkpoint::load(path)?));
    Ok(Arc::new(InductiveServer::from_checkpoint(ckpt)))
}
