//! The bounded job queue between connection handlers and the batcher.
//!
//! `mpsc::sync_channel` served PR 8, but a supervised runtime needs two
//! things a channel cannot give: a *respawnable* consumer (a `Receiver` is
//! single-owner and moves into the batcher thread — a watchdog could never
//! hand the queue to a replacement) and a close/push race-free **drain**
//! (the `closed` flag and `push` serialize under one mutex, so "stop
//! accepting, then answer everything already queued" has no window where a
//! handler enqueues into a queue nobody will ever drain). So: a
//! `Mutex<VecDeque>` + `Condvar`, std-only like everything else here.

use mcond_core::ServeError;
use mcond_graph::NodeBatch;
use mcond_linalg::DMat;
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// What the batcher sends back per job: the result, the trace id, and the
/// epoch sequence number that produced it (`x-mcond-epoch`).
pub(crate) type Reply = (Result<DMat, ServeError>, u64, u64);

/// One admitted request travelling to the batcher.
pub(crate) struct Job {
    pub batch: NodeBatch,
    pub enqueued: Instant,
    /// Absolute expiry (`enqueued + budget`); `None` = no deadline.
    pub deadline: Option<Instant>,
    /// The budget that produced `deadline`, for the typed error.
    pub budget: Option<Duration>,
    pub reply: SyncSender<Reply>,
}

struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Why a push was refused. The job is dropped with the rejection — the
/// caller answers the client directly (it never started waiting on the
/// reply channel).
pub(crate) enum PushRejected {
    /// At capacity — shed with `429`.
    Full,
    /// Draining or stopped — answer `503` and let the client retry
    /// elsewhere.
    Closed,
}

/// What a timed pop observed.
pub(crate) enum Pop {
    Job(Box<Job>),
    Empty,
    Closed,
}

pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits `job` unless the queue is full or closed.
    pub fn push(&self, job: Job) -> Result<(), PushRejected> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushRejected::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushRejected::Full);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for a job. `Closed` is terminal: the queue is
    /// empty and no job will ever arrive again.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Pop::Job(Box::new(job));
            }
            if inner.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::Empty;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// The drain-exit handshake: atomically closes the queue **iff** it is
    /// empty. The batcher calls this once draining starts; because the
    /// check and the flag share the push mutex, a handler either got its
    /// job in before the close (the batcher will serve it) or observes
    /// `Closed` and answers 503 — never a silently stranded job.
    pub fn close_if_empty(&self) -> bool {
        let mut inner = self.lock();
        if inner.jobs.is_empty() {
            inner.closed = true;
            drop(inner);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    /// Hard close: refuses future pushes and returns whatever was queued,
    /// so the caller can fail each job with a typed error instead of
    /// leaving its handler to time out.
    pub fn close(&self) -> Vec<Job> {
        let mut inner = self.lock();
        inner.closed = true;
        let leftovers = inner.jobs.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        leftovers
    }
}
