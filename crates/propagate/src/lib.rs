//! Non-parametric calibration of inductive predictions (paper §IV-D, Q3).
//!
//! Once inductive nodes are wired into a graph — original (Eq. 3) or
//! synthetic-through-mapping (Eq. 11) — two classical propagation schemes
//! can refine predictions at negligible cost:
//!
//! * [`label_propagation`] diffuses the base nodes' (synthetic) labels
//!   `Y'` over the combined structure (Wang & Leskovec 2021),
//! * [`error_propagation`] diffuses the GNN's *residual error* on the base
//!   nodes and corrects inductive predictions (the "Correct" step of
//!   Correct & Smooth, Huang et al. 2021).
//!
//! Both run the damped fixed-point iteration
//! `F ← α Â F + (1 - α) F₀` for a fixed number of steps.

mod propagation;

pub use propagation::{
    correct_and_smooth, error_propagation, label_propagation, propagate, PropagationConfig,
};
