//! The damped propagation kernel and its two calibration uses.

use mcond_linalg::DMat;
use mcond_sparse::{sym_normalize, Csr};

/// Parameters of the damped fixed-point propagation.
#[derive(Clone, Copy, Debug)]
pub struct PropagationConfig {
    /// Damping `α ∈ (0, 1)`: weight of the propagated term.
    pub alpha: f32,
    /// Number of iterations (the paper's propagation variants converge
    /// within ~10 on these graph sizes).
    pub iterations: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        Self { alpha: 0.8, iterations: 10 }
    }
}

/// Runs `F ← α Â F + (1 - α) F₀` for `iterations` steps starting from
/// `F = F₀`, where `Â` is the symmetric-normalised `adj` (self-loops
/// added).
///
/// # Panics
/// Panics when `adj` is not square or `f0` has the wrong row count.
#[must_use]
pub fn propagate(adj: &Csr, f0: &DMat, cfg: &PropagationConfig) -> DMat {
    assert_eq!(adj.rows(), adj.cols(), "propagate: adjacency must be square");
    assert_eq!(adj.rows(), f0.rows(), "propagate: F0 row mismatch");
    let ahat = sym_normalize(adj);
    let residual = f0.scale(1.0 - cfg.alpha);
    let mut f = f0.clone();
    for _ in 0..cfg.iterations {
        f = ahat.spmm(&f).scale(cfg.alpha).add(&residual);
    }
    f
}

/// Label propagation over an extended graph whose first `num_base` nodes
/// carry `base_labels`; returns class scores for **all** nodes (take rows
/// `num_base..` for the inductive predictions).
///
/// # Panics
/// Panics when `base_labels.len() != num_base` or a label exceeds
/// `num_classes`.
#[must_use]
pub fn label_propagation(
    adj: &Csr,
    base_labels: &[usize],
    num_base: usize,
    num_classes: usize,
    cfg: &PropagationConfig,
) -> DMat {
    assert_eq!(base_labels.len(), num_base, "label_propagation: label count");
    let n = adj.rows();
    let mut f0 = DMat::zeros(n, num_classes);
    for (i, &y) in base_labels.iter().enumerate() {
        assert!(y < num_classes, "label_propagation: label {y} out of range");
        f0.set(i, y, 1.0);
    }
    propagate(adj, &f0, cfg)
}

/// Error propagation (the "Correct" step of Correct & Smooth): computes the
/// residual `E₀ = onehot(Y_base) - softmax(logits_base)` on the first
/// `num_base` rows, diffuses it over the graph, and returns the corrected
/// scores `softmax(logits) + γ·E` for all nodes.
///
/// # Panics
/// Panics on row/label mismatches.
#[must_use]
pub fn error_propagation(
    adj: &Csr,
    logits: &DMat,
    base_labels: &[usize],
    num_base: usize,
    gamma: f32,
    cfg: &PropagationConfig,
) -> DMat {
    assert_eq!(adj.rows(), logits.rows(), "error_propagation: logits row mismatch");
    assert_eq!(base_labels.len(), num_base, "error_propagation: label count");
    let probs = logits.softmax_rows();
    let mut e0 = DMat::zeros(adj.rows(), logits.cols());
    for (i, &y) in base_labels.iter().enumerate() {
        for (slot, p) in e0.row_mut(i).iter_mut().zip(probs.row(i)) {
            *slot = -p;
        }
        let v = e0.get(i, y) + 1.0;
        e0.set(i, y, v);
    }
    let e = propagate(adj, &e0, cfg);
    probs.add(&e.scale(gamma))
}

/// Full Correct & Smooth (Huang et al. 2021): the "Correct" step of
/// [`error_propagation`] followed by a "Smooth" step that label-propagates
/// the corrected scores with the base nodes clamped to their ground truth.
///
/// The paper's Table III uses the correct step alone (EP); this is the
/// natural completion, exposed as an extension.
///
/// # Panics
/// Panics on row/label mismatches.
#[must_use]
pub fn correct_and_smooth(
    adj: &Csr,
    logits: &DMat,
    base_labels: &[usize],
    num_base: usize,
    gamma: f32,
    cfg: &PropagationConfig,
) -> DMat {
    let corrected = error_propagation(adj, logits, base_labels, num_base, gamma, cfg);
    // Smooth: clamp base rows to one-hot truth, then propagate.
    let mut seed = corrected;
    for (i, &y) in base_labels.iter().enumerate() {
        let row = seed.row_mut(i);
        row.fill(0.0);
        row[y] = 1.0;
    }
    propagate(adj, &seed, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_sparse::Coo;

    /// Two 4-cliques joined by one edge; nodes 0–3 class 0, 4–7 class 1.
    fn two_cliques() -> Csr {
        let mut coo = Coo::new(8, 8);
        for block in [0usize, 4] {
            for i in block..block + 4 {
                for j in (i + 1)..block + 4 {
                    coo.push_sym(i, j, 1.0);
                }
            }
        }
        coo.push_sym(3, 4, 1.0);
        coo.to_csr()
    }

    #[test]
    fn label_propagation_spreads_to_unlabeled_clique_members() {
        let adj = two_cliques();
        // Base nodes: 0 (class 0) and 4 (class 1); treat 1..=3 and 5..=7 as
        // "inductive" by rebuilding so seeds sit first.
        // Here we simply seed rows 0 and 4 via a 2-base trick: build
        // a permuted seed matrix manually with propagate().
        let mut f0 = DMat::zeros(8, 2);
        f0.set(0, 0, 1.0);
        f0.set(4, 1, 1.0);
        let scores = propagate(&adj, &f0, &PropagationConfig::default());
        for i in 1..4 {
            assert!(scores.get(i, 0) > scores.get(i, 1), "node {i} misclassified");
        }
        for i in 5..8 {
            assert!(scores.get(i, 1) > scores.get(i, 0), "node {i} misclassified");
        }
    }

    #[test]
    fn label_propagation_api_seeds_first_rows() {
        let adj = two_cliques();
        let scores =
            label_propagation(&adj, &[0, 0, 0, 0], 4, 2, &PropagationConfig::default());
        assert_eq!(scores.shape(), (8, 2));
        // Nodes 5..8 are far from the seeds: their class-0 score is small
        // but the bridge node 4 leans class 0.
        assert!(scores.get(4, 0) > scores.get(7, 0));
    }

    #[test]
    fn error_propagation_corrects_systematic_bias() {
        let adj = two_cliques();
        // GNN logits biased towards class 0 everywhere.
        let logits = DMat::from_vec(8, 2, [1.0, 0.0].repeat(8));
        let labels_base = vec![0usize, 0, 0, 0, 1, 1]; // nodes 0..6 are base
        let corrected =
            error_propagation(&adj, &logits, &labels_base, 6, 1.0, &PropagationConfig::default());
        // Inductive nodes 6, 7 live in the class-1 clique: the residual from
        // nodes 4, 5 must push them towards class 1.
        for i in 6..8 {
            assert!(
                corrected.get(i, 1) > logits.softmax_rows().get(i, 1),
                "node {i} not corrected"
            );
        }
    }

    #[test]
    fn zero_iterations_returns_seed() {
        let adj = two_cliques();
        let f0 = DMat::filled(8, 3, 0.25);
        let out = propagate(&adj, &f0, &PropagationConfig { alpha: 0.5, iterations: 0 });
        assert_eq!(out, f0);
    }

    #[test]
    fn propagation_is_bounded() {
        // With F0 rows in [0,1] and Â's spectral radius ≤ 1, scores stay
        // bounded by a small constant.
        let adj = two_cliques();
        let scores =
            label_propagation(&adj, &[0, 1, 0, 1], 4, 2, &PropagationConfig::default());
        assert!(scores.as_slice().iter().all(|v| v.is_finite() && v.abs() <= 2.0));
    }

    #[test]
    fn correct_and_smooth_improves_on_biased_logits() {
        let adj = two_cliques();
        let logits = DMat::from_vec(8, 2, [1.0, 0.0].repeat(8));
        let labels_base = vec![0usize, 0, 0, 0, 1, 1];
        let cfg = PropagationConfig::default();
        let cs = correct_and_smooth(&adj, &logits, &labels_base, 6, 1.0, &cfg);
        // The class-1 clique's inductive members must now prefer class 1.
        for i in 6..8 {
            assert!(cs.get(i, 1) > cs.get(i, 0), "node {i} not smoothed to class 1");
        }
    }

    #[test]
    fn smooth_step_respects_clamped_seeds() {
        // With alpha = 0 the smooth step returns the clamped seed exactly.
        let adj = two_cliques();
        let logits = DMat::zeros(8, 2);
        let labels_base = vec![1usize, 0];
        let cfg = PropagationConfig { alpha: 0.0, iterations: 3 };
        let cs = correct_and_smooth(&adj, &logits, &labels_base, 2, 0.0, &cfg);
        assert_eq!(cs.get(0, 1), 1.0);
        assert_eq!(cs.get(1, 0), 1.0);
    }

    #[test]
    fn alpha_zero_freezes_seeds() {
        let adj = two_cliques();
        let f0 = DMat::from_vec(8, 1, (0..8).map(|i| i as f32).collect());
        let out = propagate(&adj, &f0, &PropagationConfig { alpha: 0.0, iterations: 5 });
        assert_eq!(out, f0);
    }
}
