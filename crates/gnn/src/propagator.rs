//! Sparse propagation operators.
//!
//! GNN layers only ever *multiply* by the (normalised) adjacency, so the
//! operator does not need to be materialised. [`Propagator`] is either a
//! materialised CSR matrix or a **lazily extended block operator**
//!
//! ```text
//! [[ base, incᵀ ],
//!  [ inc,  inter ]]
//! ```
//!
//! with normalisation applied on the fly. The lazy form makes per-batch
//! inductive inference O(nnz(inc) + nnz(inter) + n·d) instead of copying
//! the entire base graph into a new CSR per batch (Eq. 3/11 deployments
//! re-attach a fresh batch to the same base graph every call).
//!
//! # Split-operator serving
//!
//! The extended operator additionally exposes the product in **split form**
//! ([`Propagator::spmm_split`], [`Propagator::spmm_bottom`]): the caller
//! passes base-side and new-side activations as two separate matrices and
//! never vstacks them. Because every dense step of a GNN layer is
//! row-independent and the extension's raw product is already computed
//! block-wise, the split form is **bitwise identical** to slicing the
//! vstacked product — at any thread count (the kernels' determinism
//! contract). [`spmm_bottom`](Propagator::spmm_bottom) computes only the
//! `n` inductive output rows, which lets the final layer of a served
//! forward pass cost `n×C` instead of `(N'+n)×C`.
//!
//! The base graph's degree sums never change between requests;
//! [`BaseDegrees`] captures them once so per-request normalisation only
//! folds in the incremental/interconnect mass.
//!
//! # SIMD levels
//!
//! Propagation is built entirely on the SpMM kernels, which are **bitwise
//! identical at every `MCOND_SIMD` level** (lane-widened multiply-then-add,
//! same order — see `mcond_sparse`'s module docs). Served logits therefore
//! only depend on the SIMD level through the *dense* head matmuls, whose
//! FMA tiers regroup additions; a deployment that must reproduce archived
//! logits exactly pins `MCOND_SIMD` rather than the propagation path.

use mcond_linalg::DMat;
use mcond_sparse::Csr;
use std::sync::Arc;

/// Per-node weighted degree sums of a fixed base graph, computed once and
/// shared across every request served against that graph.
///
/// `sym` includes the GCN self-loop (`1 + Σ_j w_ij`), `mean` does not
/// (`Σ_j w_ij`). The accumulation order matches what
/// [`Propagator::extended_sym`] / [`Propagator::extended_mean`] would
/// compute from scratch, so operators built via the `_with` constructors
/// are bitwise identical to the direct ones.
pub struct BaseDegrees {
    /// `1 + row mass` per base node (symmetric kernel, self-loop included).
    pub sym: Vec<f32>,
    /// `row mass` per base node (mean kernel, no self-loop).
    pub mean: Vec<f32>,
}

impl BaseDegrees {
    /// Accumulates both degree vectors in one pass over `base`.
    #[must_use]
    pub fn of(base: &Csr) -> Self {
        let n = base.rows();
        let mut sym = vec![1.0f32; n];
        let mut mean = vec![0.0f32; n];
        for (i, _, v) in base.iter() {
            sym[i] += v;
            mean[i] += v;
        }
        Self { sym, mean }
    }

    /// Folds a promotion's edge mass into the degree sums **in place**,
    /// in `O(nnz(attach) + nnz(inter))` instead of re-summing the whole
    /// base: `attach` is the `n x N` bottom-left block being appended to
    /// the base (its mirror extends the old rows) and `inter` the `n x n`
    /// block among the appended nodes.
    ///
    /// Because `Csr::block_extend` appends the mirrored columns *after*
    /// each old row's existing entries and the new rows' entries in
    /// `attach`-then-`inter` slice order, this accumulation visits values
    /// in exactly the order [`BaseDegrees::of`] would on the extended
    /// matrix — the update is **bitwise identical** to a from-scratch
    /// recompute.
    ///
    /// # Panics
    /// Panics when the block shapes disagree with the current base size.
    pub fn extend_for_promotion(&mut self, attach: &Csr, inter: &Csr) {
        let n_old = self.sym.len();
        assert_eq!(attach.cols(), n_old, "extend_for_promotion: attach columns");
        assert_eq!(inter.rows(), attach.rows(), "extend_for_promotion: inter rows");
        assert_eq!(inter.cols(), attach.rows(), "extend_for_promotion: inter must be square");
        // Old rows: the mirrored top-right entries, visited in the same
        // (ascending new-row) order block_extend appends their columns.
        for (_, j, v) in attach.iter() {
            self.sym[j] += v;
            self.mean[j] += v;
        }
        // New rows: attach mass first, then interconnect mass.
        for i in 0..attach.rows() {
            let mut s = 1.0f32;
            let mut m = 0.0f32;
            for &v in attach.row_vals(i) {
                s += v;
                m += v;
            }
            for &v in inter.row_vals(i) {
                s += v;
                m += v;
            }
            self.sym.push(s);
            self.mean.push(m);
        }
    }
}

/// The lazy extension payload: borrowed base graph + incremental blocks +
/// precomputed normalisation vectors, split base-side / new-side.
///
/// Borrowing (instead of owning `Arc`s) is what makes the serving fast
/// path zero-copy: a request's `inc`/`inter` blocks are used in place and
/// the base graph is shared by reference for the lifetime of the forward
/// pass.
pub struct Extension<'a> {
    base: &'a Csr,
    inc: &'a Csr,
    inter: &'a Csr,
    /// Per-node scale for base rows: `1/sqrt(d̃)` (symmetric kernel,
    /// applied before and after the raw product) or `1/d` (mean kernel,
    /// applied after). Length `base.rows()`.
    scale_base: Vec<f32>,
    /// Same, for the new (inductive) rows. Length `inc.rows()`.
    scale_new: Vec<f32>,
    /// Whether a self-loop term (`+ x_i`) is part of the raw product
    /// (symmetric GCN kernel) or not (mean kernel).
    self_loop: bool,
}

impl Extension<'_> {
    /// Raw block product `Ã_ext · [x_base; x_new]` (plus self-loops when
    /// configured), returned without vstacking the two halves.
    fn raw_split(&self, x_base: &DMat, x_new: &DMat) -> (DMat, DMat) {
        // Top block: base·x_base + incᵀ·x_new (+ x_base).
        let mut top = self.base.spmm(x_base);
        top.add_assign(&self.inc.spmm_t(x_new));
        // Bottom block: inc·x_base + inter·x_new (+ x_new).
        let bottom = self.raw_bottom(x_base, x_new);
        if self.self_loop {
            top.add_assign(x_base);
        }
        (top, bottom)
    }

    /// Bottom block only: `inc·x_base + inter·x_new (+ x_new)`.
    fn raw_bottom(&self, x_base: &DMat, x_new: &DMat) -> DMat {
        let mut bottom = self.inc.spmm(x_base);
        bottom.add_assign(&self.inter.spmm(x_new));
        if self.self_loop {
            bottom.add_assign(x_new);
        }
        bottom
    }
}

/// A multiply-only view of a (normalised) adjacency.
pub enum Propagator<'a> {
    /// Materialised sparse matrix.
    Matrix(Arc<Csr>),
    /// Lazily extended block operator (symmetric kernel:
    /// `D̃^{-1/2} Ã_ext D̃^{-1/2}`; mean kernel: `D^{-1} A_ext`).
    Extended(Box<Extension<'a>>),
}

impl<'a> Propagator<'a> {
    /// Number of rows (= columns) of the square operator.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            Propagator::Matrix(m) => m.rows(),
            Propagator::Extended(e) => e.base.rows() + e.inc.rows(),
        }
    }

    /// `self · x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn spmm(&self, x: &DMat) -> DMat {
        match self {
            Propagator::Matrix(m) => m.spmm(x),
            Propagator::Extended(e) => {
                assert_eq!(x.rows(), self.rows(), "Propagator::spmm: row mismatch");
                let n_base = e.base.rows();
                let x_base = x.slice_rows(0, n_base);
                let x_new = x.slice_rows(n_base, x.rows());
                let (top, bottom) = self.spmm_split(&x_base, &x_new);
                top.vstack(&bottom)
            }
        }
    }

    /// Split product `self · [x_base; x_new]`, returned as the
    /// `(top, bottom)` halves without ever vstacking the input.
    ///
    /// Bitwise identical to `self.spmm(&x_base.vstack(x_new))` split back
    /// into its two row blocks, at any thread count.
    ///
    /// # Panics
    /// Panics on dimension mismatch (for the extended form, `x_base` must
    /// carry exactly the base rows and `x_new` the new rows).
    #[must_use]
    pub fn spmm_split(&self, x_base: &DMat, x_new: &DMat) -> (DMat, DMat) {
        match self {
            Propagator::Matrix(m) => {
                let x = x_base.vstack(x_new);
                let top = m.spmm_row_range(0..x_base.rows(), &x);
                let bottom = m.spmm_row_range(x_base.rows()..x.rows(), &x);
                (top, bottom)
            }
            Propagator::Extended(e) => {
                check_split_input(e, x_base, x_new);
                if e.self_loop {
                    // Symmetric kernel: scale, raw product, scale.
                    let xbs = x_base.scale_rows(&e.scale_base);
                    let xns = x_new.scale_rows(&e.scale_new);
                    let (mut top, mut bottom) = e.raw_split(&xbs, &xns);
                    top.scale_rows_assign(&e.scale_base);
                    bottom.scale_rows_assign(&e.scale_new);
                    (top, bottom)
                } else {
                    // Mean kernel: raw product, then reciprocal-degree scale.
                    let (mut top, mut bottom) = e.raw_split(x_base, x_new);
                    top.scale_rows_assign(&e.scale_base);
                    bottom.scale_rows_assign(&e.scale_new);
                    (top, bottom)
                }
            }
        }
    }

    /// Bottom rows only of the split product: the `n` inductive output
    /// rows of `self · [x_base; x_new]`, skipping the `N'` base output
    /// rows entirely.
    ///
    /// Bitwise identical to `self.spmm_split(x_base, x_new).1`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn spmm_bottom(&self, x_base: &DMat, x_new: &DMat) -> DMat {
        match self {
            Propagator::Matrix(m) => {
                let x = x_base.vstack(x_new);
                m.spmm_row_range(x_base.rows()..x.rows(), &x)
            }
            Propagator::Extended(e) => {
                check_split_input(e, x_base, x_new);
                let mut bottom = if e.self_loop {
                    let xbs = x_base.scale_rows(&e.scale_base);
                    let xns = x_new.scale_rows(&e.scale_new);
                    e.raw_bottom(&xbs, &xns)
                } else {
                    e.raw_bottom(x_base, x_new)
                };
                bottom.scale_rows_assign(&e.scale_new);
                bottom
            }
        }
    }

    /// The materialised CSR handle, for recording `Tape::spmm` ops during
    /// training.
    ///
    /// # Panics
    /// Panics for extended operators — materialise the extension first
    /// (training always runs on a fixed graph; the lazy form is an
    /// inference-serving optimisation).
    #[must_use]
    pub fn csr(&self) -> Arc<Csr> {
        match self {
            Propagator::Matrix(m) => Arc::clone(m),
            Propagator::Extended(_) => panic!(
                "Propagator::csr: extended operators cannot be recorded on a tape; \
                 materialise the extended graph for training"
            ),
        }
    }

    /// Builds the **symmetric GCN kernel** of the extended graph without
    /// materialising it: `D̃^{-1/2}(Ã_ext)D̃^{-1/2}` with self-loops, where
    /// the extension is `[[base, incᵀ], [inc, inter]]`.
    ///
    /// # Panics
    /// Panics on inconsistent block shapes.
    #[must_use]
    pub fn extended_sym(base: &'a Csr, inc: &'a Csr, inter: &'a Csr) -> Self {
        Self::extended_sym_with(base, inc, inter, &BaseDegrees::of(base))
    }

    /// [`extended_sym`](Self::extended_sym) with the base-graph degree
    /// sums supplied by the caller ([`BaseDegrees::of`], computed once per
    /// server instead of once per request). Bitwise identical to the
    /// direct constructor.
    ///
    /// # Panics
    /// Panics on inconsistent block shapes or a `deg` of the wrong length.
    #[must_use]
    pub fn extended_sym_with(
        base: &'a Csr,
        inc: &'a Csr,
        inter: &'a Csr,
        deg: &BaseDegrees,
    ) -> Self {
        let (n_base, n_new) = check_blocks(base, inc, inter);
        assert_eq!(deg.sym.len(), n_base, "extended_sym_with: degree length mismatch");
        // Degrees of Ã_ext (self-loop included): base sums are shared, the
        // request only folds in its incremental/interconnect mass — in the
        // same order the from-scratch accumulation would.
        let mut deg_base = deg.sym.clone();
        let mut deg_new = vec![1.0f32; n_new];
        for (bi, bj, v) in inc.iter() {
            deg_new[bi] += v; // row of the bottom-left block
            deg_base[bj] += v; // mirrored into the top-right block
        }
        for (bi, _, v) in inter.iter() {
            deg_new[bi] += v;
        }
        let inv_sqrt = |d: &f32| if *d > 0.0 { 1.0 / d.sqrt() } else { 0.0 };
        Propagator::Extended(Box::new(Extension {
            base,
            inc,
            inter,
            scale_base: deg_base.iter().map(inv_sqrt).collect(),
            scale_new: deg_new.iter().map(inv_sqrt).collect(),
            self_loop: true,
        }))
    }

    /// Builds the **mean (row-stochastic) kernel** of the extended graph:
    /// `D^{-1} A_ext`, no self-loops.
    ///
    /// # Panics
    /// Panics on inconsistent block shapes.
    #[must_use]
    pub fn extended_mean(base: &'a Csr, inc: &'a Csr, inter: &'a Csr) -> Self {
        Self::extended_mean_with(base, inc, inter, &BaseDegrees::of(base))
    }

    /// [`extended_mean`](Self::extended_mean) with shared base-graph
    /// degree sums; bitwise identical to the direct constructor.
    ///
    /// # Panics
    /// Panics on inconsistent block shapes or a `deg` of the wrong length.
    #[must_use]
    pub fn extended_mean_with(
        base: &'a Csr,
        inc: &'a Csr,
        inter: &'a Csr,
        deg: &BaseDegrees,
    ) -> Self {
        let (n_base, n_new) = check_blocks(base, inc, inter);
        assert_eq!(deg.mean.len(), n_base, "extended_mean_with: degree length mismatch");
        let mut deg_base = deg.mean.clone();
        let mut deg_new = vec![0.0f32; n_new];
        for (bi, bj, v) in inc.iter() {
            deg_new[bi] += v;
            deg_base[bj] += v;
        }
        for (bi, _, v) in inter.iter() {
            deg_new[bi] += v;
        }
        let inv = |d: &f32| if *d > 0.0 { 1.0 / d } else { 0.0 };
        Propagator::Extended(Box::new(Extension {
            base,
            inc,
            inter,
            scale_base: deg_base.iter().map(inv).collect(),
            scale_new: deg_new.iter().map(inv).collect(),
            self_loop: false,
        }))
    }
}

fn check_blocks(base: &Csr, inc: &Csr, inter: &Csr) -> (usize, usize) {
    assert_eq!(base.rows(), base.cols(), "extended: base must be square");
    assert_eq!(inc.cols(), base.rows(), "extended: inc columns must index the base");
    assert_eq!(inter.rows(), inc.rows(), "extended: inter rows");
    assert_eq!(inter.cols(), inc.rows(), "extended: inter must be square");
    (base.rows(), inc.rows())
}

fn check_split_input(e: &Extension<'_>, x_base: &DMat, x_new: &DMat) {
    assert_eq!(x_base.rows(), e.base.rows(), "spmm_split: base row mismatch");
    assert_eq!(x_new.rows(), e.inc.rows(), "spmm_split: new row mismatch");
    assert_eq!(x_base.cols(), x_new.cols(), "spmm_split: column mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::{approx_eq, MatRng};
    use mcond_sparse::{row_normalize_dense, sym_normalize, Coo};

    /// base: ring of 4; two new nodes, node 0' -> base 1 (w 2.0),
    /// node 1' -> base 3 (w 1.0); new nodes connected to each other.
    fn blocks() -> (Csr, Csr, Csr) {
        let mut base = Coo::new(4, 4);
        for i in 0..4 {
            base.push_sym(i, (i + 1) % 4, 1.0);
        }
        let mut inc = Coo::new(2, 4);
        inc.push(0, 1, 2.0);
        inc.push(1, 3, 1.0);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 1.0);
        (base.to_csr(), inc.to_csr(), inter.to_csr())
    }

    fn materialised(base: &Csr, inc: &Csr, inter: &Csr) -> Csr {
        base.block_extend(inc, inter)
    }

    #[test]
    fn extended_sym_matches_materialised_normalisation() {
        let (base, inc, inter) = blocks();
        let lazy = Propagator::extended_sym(&base, &inc, &inter);
        let dense = sym_normalize(&materialised(&base, &inc, &inter));
        let x = MatRng::seed_from(1).normal(6, 3, 0.0, 1.0);
        let a = lazy.spmm(&x);
        let b = dense.spmm(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*u, *v, 1e-4), "{u} vs {v}");
        }
    }

    #[test]
    fn extended_mean_matches_materialised_normalisation() {
        let (base, inc, inter) = blocks();
        let lazy = Propagator::extended_mean(&base, &inc, &inter);
        let dense_raw = materialised(&base, &inc, &inter).to_dense();
        let dense = row_normalize_dense(&dense_raw);
        let x = MatRng::seed_from(2).normal(6, 3, 0.0, 1.0);
        let a = lazy.spmm(&x);
        let b = dense.matmul(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*u, *v, 1e-4), "{u} vs {v}");
        }
    }

    #[test]
    fn shared_base_degrees_are_bitwise_identical_to_direct_build() {
        let (base, inc, inter) = blocks();
        let deg = BaseDegrees::of(&base);
        let x = MatRng::seed_from(7).normal(6, 5, 0.0, 1.0);
        for (direct, shared) in [
            (
                Propagator::extended_sym(&base, &inc, &inter),
                Propagator::extended_sym_with(&base, &inc, &inter, &deg),
            ),
            (
                Propagator::extended_mean(&base, &inc, &inter),
                Propagator::extended_mean_with(&base, &inc, &inter, &deg),
            ),
        ] {
            assert_eq!(direct.spmm(&x).as_slice(), shared.spmm(&x).as_slice());
        }
    }

    /// The split/bottom forms must reproduce the vstacked product bitwise,
    /// for the extended and the materialised variants, at 1 and 4 threads.
    #[test]
    fn split_and_bottom_match_full_product_bitwise() {
        let (base, inc, inter) = blocks();
        let x = MatRng::seed_from(9).normal(6, 5, 0.0, 1.0);
        let xb = x.slice_rows(0, 4);
        let xn = x.slice_rows(4, 6);
        let mat = Arc::new(sym_normalize(&materialised(&base, &inc, &inter)));
        for threads in [1usize, 4] {
            mcond_par::with_thread_limit(threads, || {
                for p in [
                    Propagator::extended_sym(&base, &inc, &inter),
                    Propagator::extended_mean(&base, &inc, &inter),
                    Propagator::Matrix(Arc::clone(&mat)),
                ] {
                    let full = p.spmm(&x);
                    let (top, bottom) = p.spmm_split(&xb, &xn);
                    assert_eq!(top.as_slice(), full.slice_rows(0, 4).as_slice());
                    assert_eq!(bottom.as_slice(), full.slice_rows(4, 6).as_slice());
                    assert_eq!(p.spmm_bottom(&xb, &xn).as_slice(), bottom.as_slice());
                }
            });
        }
    }

    /// Two stacked promotions folded in incrementally must agree
    /// **bitwise** with a from-scratch accumulation over the final
    /// extended matrix.
    #[test]
    fn incremental_degrees_match_from_scratch_bitwise() {
        let (base, inc, inter) = blocks();
        let mut deg = BaseDegrees::of(&base);
        deg.extend_for_promotion(&inc, &inter);
        let grown = base.block_extend(&inc, &inter);
        // Second wave: one node attached to old row 1 and promoted row 4.
        let mut inc2 = Coo::new(1, 6);
        inc2.push(0, 1, 0.5);
        inc2.push(0, 4, 1.5);
        let inc2 = inc2.to_csr();
        let inter2 = Csr::empty(1, 1);
        deg.extend_for_promotion(&inc2, &inter2);
        let full = BaseDegrees::of(&grown.block_extend(&inc2, &inter2));
        assert_eq!(deg.sym, full.sym);
        assert_eq!(deg.mean, full.mean);
    }

    #[test]
    fn empty_extension_reduces_to_base_kernel() {
        let (base, _, _) = blocks();
        let inc = Csr::empty(0, 4);
        let inter = Csr::empty(0, 0);
        let lazy = Propagator::extended_sym(&base, &inc, &inter);
        let direct = sym_normalize(&base);
        let x = MatRng::seed_from(3).normal(4, 2, 0.0, 1.0);
        let a = lazy.spmm(&x);
        let b = direct.spmm(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*u, *v, 1e-4));
        }
    }

    #[test]
    fn matrix_variant_delegates() {
        let (base, _, _) = blocks();
        let norm = Arc::new(sym_normalize(&base));
        let p = Propagator::Matrix(Arc::clone(&norm));
        let x = MatRng::seed_from(4).normal(4, 2, 0.0, 1.0);
        assert_eq!(p.spmm(&x), norm.spmm(&x));
        assert_eq!(p.rows(), 4);
        assert!(Arc::ptr_eq(&p.csr(), &norm));
    }

    #[test]
    #[should_panic(expected = "cannot be recorded on a tape")]
    fn extended_csr_handle_panics() {
        let (base, inc, inter) = blocks();
        let lazy = Propagator::extended_sym(&base, &inc, &inter);
        let _ = lazy.csr();
    }
}
