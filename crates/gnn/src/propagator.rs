//! Sparse propagation operators.
//!
//! GNN layers only ever *multiply* by the (normalised) adjacency, so the
//! operator does not need to be materialised. [`Propagator`] is either a
//! materialised CSR matrix or a **lazily extended block operator**
//!
//! ```text
//! [[ base, incᵀ ],
//!  [ inc,  inter ]]
//! ```
//!
//! with normalisation applied on the fly. The lazy form makes per-batch
//! inductive inference O(nnz(inc) + nnz(inter) + n·d) instead of copying
//! the entire base graph into a new CSR per batch (Eq. 3/11 deployments
//! re-attach a fresh batch to the same base graph every call).

use mcond_linalg::DMat;
use mcond_sparse::Csr;
use std::sync::Arc;

/// The lazy extension payload: base graph + incremental blocks +
/// precomputed normalisation vectors.
pub struct Extension {
    base: Arc<Csr>,
    inc: Arc<Csr>,
    inter: Arc<Csr>,
    /// Per-node scale applied before and after the raw product for the
    /// symmetric kernel (`1/sqrt(d̃)`), or the reciprocal degree applied
    /// after for the mean kernel. Length `base.rows() + inc.rows()`.
    scale: Vec<f32>,
    /// Whether a self-loop term (`+ x_i`) is part of the raw product
    /// (symmetric GCN kernel) or not (mean kernel).
    self_loop: bool,
}

impl Extension {
    /// Raw block product `Ã_ext · x` (plus self-loops when configured).
    fn raw_product(&self, x: &DMat) -> DMat {
        let n_base = self.base.rows();
        let x_base = x.slice_rows(0, n_base);
        let x_new = x.slice_rows(n_base, x.rows());
        // Top block: base·x_base + incᵀ·x_new (+ x_base).
        let mut top = self.base.spmm(&x_base);
        top.add_assign(&self.inc.spmm_t(&x_new));
        // Bottom block: inc·x_base + inter·x_new (+ x_new).
        let mut bottom = self.inc.spmm(&x_base);
        bottom.add_assign(&self.inter.spmm(&x_new));
        if self.self_loop {
            top.add_assign(&x_base);
            bottom.add_assign(&x_new);
        }
        top.vstack(&bottom)
    }
}

/// A multiply-only view of a (normalised) adjacency.
pub enum Propagator {
    /// Materialised sparse matrix.
    Matrix(Arc<Csr>),
    /// Lazily extended block operator (symmetric kernel:
    /// `D̃^{-1/2} Ã_ext D̃^{-1/2}`; mean kernel: `D^{-1} A_ext`).
    Extended(Box<Extension>),
}

impl Propagator {
    /// Number of rows (= columns) of the square operator.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            Propagator::Matrix(m) => m.rows(),
            Propagator::Extended(e) => e.base.rows() + e.inc.rows(),
        }
    }

    /// `self · x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn spmm(&self, x: &DMat) -> DMat {
        match self {
            Propagator::Matrix(m) => m.spmm(x),
            Propagator::Extended(e) => {
                assert_eq!(x.rows(), self.rows(), "Propagator::spmm: row mismatch");
                if e.self_loop {
                    // Symmetric kernel: scale, raw product, scale.
                    let scaled = x.scale_rows(&e.scale);
                    e.raw_product(&scaled).scale_rows(&e.scale)
                } else {
                    // Mean kernel: raw product, then reciprocal-degree scale.
                    e.raw_product(x).scale_rows(&e.scale)
                }
            }
        }
    }

    /// The materialised CSR handle, for recording `Tape::spmm` ops during
    /// training.
    ///
    /// # Panics
    /// Panics for extended operators — materialise the extension first
    /// (training always runs on a fixed graph; the lazy form is an
    /// inference-serving optimisation).
    #[must_use]
    pub fn csr(&self) -> Arc<Csr> {
        match self {
            Propagator::Matrix(m) => Arc::clone(m),
            Propagator::Extended(_) => panic!(
                "Propagator::csr: extended operators cannot be recorded on a tape; \
                 materialise the extended graph for training"
            ),
        }
    }

    /// Builds the **symmetric GCN kernel** of the extended graph without
    /// materialising it: `D̃^{-1/2}(Ã_ext)D̃^{-1/2}` with self-loops, where
    /// the extension is `[[base, incᵀ], [inc, inter]]`.
    ///
    /// # Panics
    /// Panics on inconsistent block shapes.
    #[must_use]
    pub fn extended_sym(base: Arc<Csr>, inc: Arc<Csr>, inter: Arc<Csr>) -> Self {
        let (n_base, n_new) = check_blocks(&base, &inc, &inter);
        // Degrees of Ã_ext (self-loop included).
        let mut deg = vec![1.0f32; n_base + n_new];
        for (i, _, v) in base.iter() {
            deg[i] += v;
        }
        for (bi, bj, v) in inc.iter() {
            deg[n_base + bi] += v; // row of the bottom-left block
            deg[bj] += v; // mirrored into the top-right block
        }
        for (bi, _, v) in inter.iter() {
            deg[n_base + bi] += v;
        }
        let scale: Vec<f32> =
            deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
        Propagator::Extended(Box::new(Extension { base, inc, inter, scale, self_loop: true }))
    }

    /// Builds the **mean (row-stochastic) kernel** of the extended graph:
    /// `D^{-1} A_ext`, no self-loops.
    ///
    /// # Panics
    /// Panics on inconsistent block shapes.
    #[must_use]
    pub fn extended_mean(base: Arc<Csr>, inc: Arc<Csr>, inter: Arc<Csr>) -> Self {
        let (n_base, n_new) = check_blocks(&base, &inc, &inter);
        let mut deg = vec![0.0f32; n_base + n_new];
        for (i, _, v) in base.iter() {
            deg[i] += v;
        }
        for (bi, bj, v) in inc.iter() {
            deg[n_base + bi] += v;
            deg[bj] += v;
        }
        for (bi, _, v) in inter.iter() {
            deg[n_base + bi] += v;
        }
        let scale: Vec<f32> =
            deg.iter().map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 }).collect();
        Propagator::Extended(Box::new(Extension { base, inc, inter, scale, self_loop: false }))
    }
}

fn check_blocks(base: &Csr, inc: &Csr, inter: &Csr) -> (usize, usize) {
    assert_eq!(base.rows(), base.cols(), "extended: base must be square");
    assert_eq!(inc.cols(), base.rows(), "extended: inc columns must index the base");
    assert_eq!(inter.rows(), inc.rows(), "extended: inter rows");
    assert_eq!(inter.cols(), inc.rows(), "extended: inter must be square");
    (base.rows(), inc.rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::{approx_eq, MatRng};
    use mcond_sparse::{row_normalize_dense, sym_normalize, Coo};

    /// base: ring of 4; two new nodes, node 0' -> base 1 (w 2.0),
    /// node 1' -> base 3 (w 1.0); new nodes connected to each other.
    fn blocks() -> (Arc<Csr>, Arc<Csr>, Arc<Csr>) {
        let mut base = Coo::new(4, 4);
        for i in 0..4 {
            base.push_sym(i, (i + 1) % 4, 1.0);
        }
        let mut inc = Coo::new(2, 4);
        inc.push(0, 1, 2.0);
        inc.push(1, 3, 1.0);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 1.0);
        (Arc::new(base.to_csr()), Arc::new(inc.to_csr()), Arc::new(inter.to_csr()))
    }

    fn materialised(base: &Csr, inc: &Csr, inter: &Csr) -> Csr {
        base.block_extend(inc, inter)
    }

    #[test]
    fn extended_sym_matches_materialised_normalisation() {
        let (base, inc, inter) = blocks();
        let lazy = Propagator::extended_sym(Arc::clone(&base), Arc::clone(&inc), Arc::clone(&inter));
        let dense = sym_normalize(&materialised(&base, &inc, &inter));
        let x = MatRng::seed_from(1).normal(6, 3, 0.0, 1.0);
        let a = lazy.spmm(&x);
        let b = dense.spmm(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*u, *v, 1e-4), "{u} vs {v}");
        }
    }

    #[test]
    fn extended_mean_matches_materialised_normalisation() {
        let (base, inc, inter) = blocks();
        let lazy =
            Propagator::extended_mean(Arc::clone(&base), Arc::clone(&inc), Arc::clone(&inter));
        let dense_raw = materialised(&base, &inc, &inter).to_dense();
        let dense = row_normalize_dense(&dense_raw);
        let x = MatRng::seed_from(2).normal(6, 3, 0.0, 1.0);
        let a = lazy.spmm(&x);
        let b = dense.matmul(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*u, *v, 1e-4), "{u} vs {v}");
        }
    }

    #[test]
    fn empty_extension_reduces_to_base_kernel() {
        let (base, _, _) = blocks();
        let inc = Arc::new(Csr::empty(0, 4));
        let inter = Arc::new(Csr::empty(0, 0));
        let lazy = Propagator::extended_sym(Arc::clone(&base), inc, inter);
        let direct = sym_normalize(&base);
        let x = MatRng::seed_from(3).normal(4, 2, 0.0, 1.0);
        let a = lazy.spmm(&x);
        let b = direct.spmm(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*u, *v, 1e-4));
        }
    }

    #[test]
    fn matrix_variant_delegates() {
        let (base, _, _) = blocks();
        let norm = Arc::new(sym_normalize(&base));
        let p = Propagator::Matrix(Arc::clone(&norm));
        let x = MatRng::seed_from(4).normal(4, 2, 0.0, 1.0);
        assert_eq!(p.spmm(&x), norm.spmm(&x));
        assert_eq!(p.rows(), 4);
        assert!(Arc::ptr_eq(&p.csr(), &norm));
    }

    #[test]
    #[should_panic(expected = "cannot be recorded on a tape")]
    fn extended_csr_handle_panics() {
        let (base, inc, inter) = blocks();
        let lazy = Propagator::extended_sym(base, inc, inter);
        let _ = lazy.csr();
    }
}
