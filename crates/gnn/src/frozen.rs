//! Frozen-base serving cache: the `ServeMode::FrozenBase` approximation.
//!
//! The exact extended-operator forward pass must re-propagate over all
//! `N' + n` rows because attaching a batch perturbs base-side degrees and
//! base activations feed the new rows at every layer. [`FrozenBase`]
//! trades that exactness for speed: it runs the forward pass **once over
//! the base graph alone** (base-only normalisation, no batch attached) and
//! caches, for every propagation site of the architecture, the base-side
//! operand that site would multiply by the bottom-left `inc` block —
//! pre-scaled by the frozen base normalisation for symmetric sites.
//!
//! A request is then served in `O(L·(nnz(inc) + nnz(inter) + n·d))`:
//! each site computes only its `n` new rows as
//!
//! ```text
//! sym:  s_n ∘ ( inc·(s_b ∘ H_b)  +  inter·(s_n ∘ H_n)  +  s_n ∘ H_n )
//! mean: r_n ∘ ( inc·H_b          +  inter·H_n )
//! ```
//!
//! where `s_b ∘ H_b` / `H_b` is the cached operand and `s_n`/`r_n` are the
//! request's own degree scales (computed exactly from `inc`/`inter` row
//! mass). The **approximation** is entirely base-side: cached `H_b` ignores
//! the batch's back-edges into the base graph, and `s_b` is the base-only
//! scale `1/sqrt(1 + base mass)` rather than the batch-perturbed one. For
//! a batch with *no* incremental edges the two coincide and the frozen
//! path reproduces the exact logits; deviation grows with the batch's
//! relative edge mass (quantified by the calibration test in
//! `mcond-core`). The exact split path stays the default — this cache is
//! opt-in.

use crate::model::{GnnKind, GnnModel, GraphOps};
use crate::propagator::BaseDegrees;
use mcond_linalg::DMat;
use mcond_sparse::{Coo, Csr};

/// Per-layer base activations frozen under base-only normalisation.
///
/// Built once per `(model, base graph)` pair via [`FrozenBase::new`];
/// served via [`GnnModel::predict_frozen`]. Immutable and `Sync` — one
/// cache can serve concurrent requests.
///
/// The cache is stamped with the **base version** it was built from
/// ([`FrozenBase::base_version`], [`FrozenBase::with_version`]): a live
/// base graph that admits delta promotions bumps its version on every
/// mutation, and the serving layer refuses to answer from a cache whose
/// stamp trails the base (`ServeError::StaleCache` in `mcond-core`)
/// instead of emitting silently wrong logits. When a promotion's
/// receptive field is small, [`FrozenBase::try_patch`] recomputes only
/// the affected rows — bitwise identical to a full rebuild — and
/// re-stamps the cache.
#[derive(Clone)]
pub struct FrozenBase {
    kind: GnnKind,
    hops: usize,
    n_base: usize,
    in_dim: usize,
    /// Cached base-side operands, one per propagation site in forward
    /// order. Symmetric sites are pre-scaled by the frozen base scale.
    sites: Vec<DMat>,
    /// Unscaled intermediates the patch path replays the propagation
    /// chain from: `raws[k]` is the pre-scale operand behind `sites[k]`
    /// for the chain architectures (SGC/APPNP hop intermediates, GCN's
    /// `XW`). Empty for SAGE/Cheby, whose sites are recomputable from the
    /// base features alone.
    raws: Vec<DMat>,
    /// Version of the base graph the cache reflects (0 for a static base).
    base_version: u64,
}

impl FrozenBase {
    /// Runs the base-only forward pass of `model` over `(base_adj,
    /// base_x)` and caches every propagation site's base operand.
    ///
    /// # Panics
    /// Panics on inconsistent shapes (`base_adj` not square or feature
    /// rows not matching it).
    #[must_use]
    pub fn new(model: &GnnModel, base_adj: &Csr, base_x: &DMat) -> Self {
        let mut span = mcond_obs::span_timed("frozen_base.build", "serve.cache.build_us");
        span.record("base_nodes", base_adj.rows());
        assert_eq!(base_adj.rows(), base_adj.cols(), "FrozenBase: base must be square");
        assert_eq!(base_x.rows(), base_adj.rows(), "FrozenBase: feature rows mismatch");
        let ops = GraphOps::from_adj(base_adj);
        // Frozen symmetric scale: 1/sqrt(1 + base row mass) — identical to
        // what sym_normalize bakes into the base-only kernel.
        let sb: Vec<f32> = BaseDegrees::of(base_adj)
            .sym
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let p = model.params();
        let mut sites = Vec::new();
        let mut raws = Vec::new();
        match model.kind() {
            GnnKind::Sgc => {
                let mut h = base_x.clone();
                for _ in 0..model.hops {
                    sites.push(h.scale_rows(&sb));
                    raws.push(h.clone());
                    h = ops.sym.spmm(&h);
                }
            }
            GnnKind::Gcn => {
                let xw = base_x.matmul(&p[0]);
                sites.push(xw.scale_rows(&sb));
                let h = ops.sym.spmm(&xw).add_row_broadcast(p[1].row(0)).relu();
                sites.push(h.matmul(&p[2]).scale_rows(&sb));
                raws.push(xw);
            }
            GnnKind::Sage => {
                sites.push(base_x.clone());
                let h = base_x
                    .matmul(&p[0])
                    .add(&ops.mean.spmm(base_x).matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                sites.push(h);
            }
            GnnKind::Appnp => {
                let h0 = base_x
                    .matmul(&p[0])
                    .add_row_broadcast(p[1].row(0))
                    .relu()
                    .matmul(&p[2])
                    .add_row_broadcast(p[3].row(0));
                let teleport = h0.scale(model.alpha);
                let mut z = h0;
                for _ in 0..model.hops {
                    sites.push(z.scale_rows(&sb));
                    raws.push(z.clone());
                    z = ops.sym.spmm(&z).scale(1.0 - model.alpha).add(&teleport);
                }
            }
            GnnKind::Cheby => {
                sites.push(base_x.scale_rows(&sb));
                let t1x = ops.sym.spmm(base_x).scale(-1.0);
                let h = base_x
                    .matmul(&p[0])
                    .add(&t1x.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                sites.push(h.scale_rows(&sb));
            }
        }
        Self {
            kind: model.kind(),
            hops: model.hops,
            n_base: base_adj.rows(),
            in_dim: base_x.cols(),
            sites,
            raws,
            base_version: 0,
        }
    }

    /// Stamps the cache with the base version it reflects; the serving
    /// layer compares this against the live base's version before
    /// answering from the cache.
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.base_version = version;
        self
    }

    /// The base version this cache was built (or last patched) against.
    #[must_use]
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Architecture the cache was frozen for.
    #[must_use]
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Number of cached propagation sites (layers touching the graph).
    #[must_use]
    pub fn sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of base nodes the cache covers.
    #[must_use]
    pub fn n_base(&self) -> usize {
        self.n_base
    }

    /// Payload size of the cached activations (sites and unscaled patch
    /// intermediates), in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.sites
            .iter()
            .chain(self.raws.iter())
            .map(|s| s.rows() * s.cols() * core::mem::size_of::<f32>())
            .sum()
    }

    /// Number of propagation (SpMM) applications feeding the deepest
    /// cached site — the BFS depth a promotion's receptive field must be
    /// closed to before patching.
    fn chain_depth(&self) -> usize {
        match self.kind {
            GnnKind::Sgc | GnnKind::Appnp => self.hops.saturating_sub(1),
            GnnKind::Gcn | GnnKind::Sage | GnnKind::Cheby => 1,
        }
    }

    /// Incrementally re-freezes the cache after the base graph grew:
    /// `new_adj`/`new_x` are the mutated base (old nodes keep their ids;
    /// appended nodes take the highest ids), `deg` its degree sums, and
    /// `touched` the **old** rows that gained edges in the mutation
    /// (appended rows are included automatically). Only rows inside the
    /// hop-closure of the mutation are recomputed; every recomputed value
    /// is **bitwise identical** to a from-scratch
    /// [`FrozenBase::new`] over the mutated base (the kernels' row
    /// independence contract). The returned cache is stamped with
    /// `new_version`.
    ///
    /// Returns `None` when the closure exceeds `max_rows` — the signal
    /// that a full rebuild is cheaper than the patch.
    ///
    /// # Panics
    /// Panics when `model` does not match the architecture/depth this
    /// cache was frozen for, when the new base shrank or its shapes are
    /// inconsistent, or when `touched`/`deg` disagree with `new_adj`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn try_patch(
        &self,
        model: &GnnModel,
        new_adj: &Csr,
        new_x: &DMat,
        deg: &BaseDegrees,
        touched: &[usize],
        max_rows: usize,
        new_version: u64,
    ) -> Option<FrozenBase> {
        assert_eq!(self.kind, model.kind(), "try_patch: architecture mismatch");
        assert_eq!(self.hops, model.hops, "try_patch: propagation depth mismatch");
        assert_eq!(new_adj.rows(), new_adj.cols(), "try_patch: base must be square");
        assert_eq!(new_x.rows(), new_adj.rows(), "try_patch: feature rows mismatch");
        assert_eq!(new_x.cols(), self.in_dim, "try_patch: feature width mismatch");
        assert_eq!(deg.sym.len(), new_adj.rows(), "try_patch: degree length mismatch");
        let n_old = self.n_base;
        let n_new = new_adj.rows();
        assert!(n_new >= n_old, "try_patch: base shrank ({n_old} -> {n_new})");

        // Hop-closure of the mutation: seeds are the appended rows plus
        // every old row whose degree (and therefore sym scale) changed;
        // each SpMM in the chain widens the affected set by one hop.
        let mut in_set = vec![false; n_new];
        let mut rows: Vec<usize> = Vec::new();
        for s in touched.iter().copied().chain(n_old..n_new) {
            assert!(s < n_new, "try_patch: touched row {s} out of bounds");
            if !in_set[s] {
                in_set[s] = true;
                rows.push(s);
            }
        }
        let mut frontier = rows.clone();
        for _ in 0..self.chain_depth() {
            if rows.len() > max_rows {
                return None;
            }
            let mut next = Vec::new();
            for &r in &frontier {
                for &c in new_adj.row_cols(r) {
                    let c = c as usize;
                    if !in_set[c] {
                        in_set[c] = true;
                        next.push(c);
                        rows.push(c);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        if rows.len() > max_rows {
            return None;
        }
        rows.sort_unstable();

        // Frozen symmetric scale of the mutated base, full vector plus the
        // closure-row gather — same expression as the from-scratch build.
        let sb_full: Vec<f32> =
            deg.sym.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
        let sb_r: Vec<f32> = rows.iter().map(|&r| sb_full[r]).collect();
        let p = model.params();
        let mut sites = Vec::with_capacity(self.sites.len());
        let mut raws = Vec::with_capacity(self.raws.len());
        match self.kind {
            GnnKind::Sgc => {
                let lsym = local_sym_rows(new_adj, &sb_full, &rows);
                for k in 0..self.hops {
                    let hk_rows = if k == 0 {
                        new_x.select_rows(&rows)
                    } else {
                        lsym.spmm(&raws[k - 1])
                    };
                    sites.push(widen_scatter(
                        &self.sites[k],
                        n_new,
                        &rows,
                        &hk_rows.scale_rows(&sb_r),
                    ));
                    raws.push(widen_scatter(&self.raws[k], n_new, &rows, &hk_rows));
                }
            }
            GnnKind::Gcn => {
                let lsym = local_sym_rows(new_adj, &sb_full, &rows);
                let xw_rows = new_x.select_rows(&rows).matmul(&p[0]);
                let raw_xw = widen_scatter(&self.raws[0], n_new, &rows, &xw_rows);
                sites.push(widen_scatter(
                    &self.sites[0],
                    n_new,
                    &rows,
                    &xw_rows.scale_rows(&sb_r),
                ));
                let h_rows = lsym.spmm(&raw_xw).add_row_broadcast(p[1].row(0)).relu();
                sites.push(widen_scatter(
                    &self.sites[1],
                    n_new,
                    &rows,
                    &h_rows.matmul(&p[2]).scale_rows(&sb_r),
                ));
                raws.push(raw_xw);
            }
            GnnKind::Sage => {
                let lmean = local_mean_rows(new_adj, &rows);
                sites.push(new_x.clone());
                let h_rows = new_x
                    .select_rows(&rows)
                    .matmul(&p[0])
                    .add(&lmean.spmm(new_x).matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                sites.push(widen_scatter(&self.sites[1], n_new, &rows, &h_rows));
            }
            GnnKind::Appnp => {
                let lsym = local_sym_rows(new_adj, &sb_full, &rows);
                let mut tele_rows = DMat::zeros(0, 0);
                for k in 0..self.hops {
                    let zk_rows = if k == 0 {
                        let z0 = new_x
                            .select_rows(&rows)
                            .matmul(&p[0])
                            .add_row_broadcast(p[1].row(0))
                            .relu()
                            .matmul(&p[2])
                            .add_row_broadcast(p[3].row(0));
                        tele_rows = z0.scale(model.alpha);
                        z0
                    } else {
                        lsym.spmm(&raws[k - 1]).scale(1.0 - model.alpha).add(&tele_rows)
                    };
                    sites.push(widen_scatter(
                        &self.sites[k],
                        n_new,
                        &rows,
                        &zk_rows.scale_rows(&sb_r),
                    ));
                    raws.push(widen_scatter(&self.raws[k], n_new, &rows, &zk_rows));
                }
            }
            GnnKind::Cheby => {
                let lsym = local_sym_rows(new_adj, &sb_full, &rows);
                let x_rows = new_x.select_rows(&rows);
                sites.push(widen_scatter(
                    &self.sites[0],
                    n_new,
                    &rows,
                    &x_rows.scale_rows(&sb_r),
                ));
                let t1_rows = lsym.spmm(new_x).scale(-1.0);
                let h_rows = x_rows
                    .matmul(&p[0])
                    .add(&t1_rows.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                sites.push(widen_scatter(
                    &self.sites[1],
                    n_new,
                    &rows,
                    &h_rows.scale_rows(&sb_r),
                ));
            }
        }
        Some(FrozenBase {
            kind: self.kind,
            hops: self.hops,
            n_base: n_new,
            in_dim: self.in_dim,
            sites,
            raws,
            base_version: new_version,
        })
    }
}

/// The closure rows of the symmetrically normalised base operator
/// `D̃^{-1/2}(A + I)D̃^{-1/2}`, as a `|rows| x N` CSR. Entry construction
/// mirrors `sym_normalize` exactly (adjacency entries first, diagonal
/// last, same multiply association) so each local row is bitwise
/// identical to the corresponding row of the full operator.
fn local_sym_rows(adj: &Csr, isr: &[f32], rows: &[usize]) -> Csr {
    let nnz: usize = rows.iter().map(|&r| adj.row_cols(r).len()).sum();
    let mut coo = Coo::with_capacity(rows.len(), adj.cols(), nnz + rows.len());
    for (li, &r) in rows.iter().enumerate() {
        for (&j, &v) in adj.row_cols(r).iter().zip(adj.row_vals(r)) {
            coo.push(li, j as usize, v * isr[r] * isr[j as usize]);
        }
    }
    for (li, &r) in rows.iter().enumerate() {
        coo.push(li, r, isr[r] * isr[r]);
    }
    coo.to_csr()
}

/// The closure rows of the mean (row-stochastic) base operator `D^{-1}A`,
/// mirroring `GraphOps::from_adj` (rows with non-positive mass stay
/// empty, same divide per entry).
fn local_mean_rows(adj: &Csr, rows: &[usize]) -> Csr {
    let nnz: usize = rows.iter().map(|&r| adj.row_cols(r).len()).sum();
    let mut coo = Coo::with_capacity(rows.len(), adj.cols(), nnz);
    for (li, &r) in rows.iter().enumerate() {
        let d: f32 = adj.row_vals(r).iter().sum();
        if d > 0.0 {
            for (&j, &v) in adj.row_cols(r).iter().zip(adj.row_vals(r)) {
                coo.push(li, j as usize, v / d);
            }
        }
    }
    coo.to_csr()
}

/// Widens `old` to `n_rows` rows (appended rows zero-filled) and
/// overwrites row `rows[k]` with `patch` row `k`.
fn widen_scatter(old: &DMat, n_rows: usize, rows: &[usize], patch: &DMat) -> DMat {
    debug_assert_eq!(patch.rows(), rows.len());
    let mut out = DMat::zeros(n_rows, old.cols());
    for i in 0..old.rows() {
        out.row_mut(i).copy_from_slice(old.row(i));
    }
    for (k, &r) in rows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(patch.row(k));
    }
    out
}

/// New-row output of one frozen **symmetric** site:
/// `s_n ∘ (inc·cached + inter·(s_n ∘ v) + s_n ∘ v)`.
fn site_sym(cached: &DMat, inc: &Csr, inter: &Csr, v: &DMat, sn: &[f32]) -> DMat {
    let vs = v.scale_rows(sn);
    let mut out = inc.spmm(cached);
    out.add_assign(&inter.spmm(&vs));
    out.add_assign(&vs);
    out.scale_rows_assign(sn);
    out
}

/// New-row output of one frozen **mean** site:
/// `r_n ∘ (inc·cached + inter·v)`.
fn site_mean(cached: &DMat, inc: &Csr, inter: &Csr, v: &DMat, rn: &[f32]) -> DMat {
    let mut out = inc.spmm(cached);
    out.add_assign(&inter.spmm(v));
    out.scale_rows_assign(rn);
    out
}

/// The request's own degree scales: symmetric `1/sqrt(1 + inc mass +
/// inter mass)` and mean `1/(inc mass + inter mass)` per new row —
/// identical to what the exact extended operator computes for its new
/// rows.
fn request_scales(inc: &Csr, inter: &Csr) -> (Vec<f32>, Vec<f32>) {
    let n = inc.rows();
    let mut sym = vec![1.0f32; n];
    let mut mean = vec![0.0f32; n];
    for (bi, _, v) in inc.iter() {
        sym[bi] += v;
        mean[bi] += v;
    }
    for (bi, _, v) in inter.iter() {
        sym[bi] += v;
        mean[bi] += v;
    }
    let sn = sym.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    let rn = mean.iter().map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 }).collect();
    (sn, rn)
}

impl GnnModel {
    /// Serves a batch's logits from a [`FrozenBase`] cache — the
    /// approximate `O(L·(nnz + n·d))` path. See the module docs for the
    /// approximation contract.
    ///
    /// # Panics
    /// Panics when `frozen` was built for a different architecture /
    /// propagation depth, or on block-shape mismatch.
    #[must_use]
    pub fn predict_frozen(
        &self,
        frozen: &FrozenBase,
        inc: &Csr,
        inter: &Csr,
        x_new: &DMat,
    ) -> DMat {
        assert_eq!(frozen.kind, self.kind(), "predict_frozen: architecture mismatch");
        assert_eq!(
            frozen.hops, self.hops,
            "predict_frozen: cache frozen at a different propagation depth"
        );
        assert_eq!(inc.cols(), frozen.n_base, "predict_frozen: inc columns must index the base");
        assert_eq!(inc.rows(), x_new.rows(), "predict_frozen: inc rows");
        assert_eq!(inter.rows(), x_new.rows(), "predict_frozen: inter rows");
        assert_eq!(inter.cols(), x_new.rows(), "predict_frozen: inter must be square");
        assert_eq!(x_new.cols(), frozen.in_dim, "predict_frozen: feature width mismatch");
        let (sn, rn) = request_scales(inc, inter);
        let p = self.params();
        let s = &frozen.sites;
        match self.kind() {
            GnnKind::Sgc => {
                let mut h = x_new.clone();
                for site in s {
                    h = site_sym(site, inc, inter, &h, &sn);
                }
                h.matmul(&p[0]).add_row_broadcast(p[1].row(0))
            }
            GnnKind::Gcn => {
                let hn = site_sym(&s[0], inc, inter, &x_new.matmul(&p[0]), &sn)
                    .add_row_broadcast(p[1].row(0))
                    .relu();
                site_sym(&s[1], inc, inter, &hn.matmul(&p[2]), &sn)
                    .add_row_broadcast(p[3].row(0))
            }
            GnnKind::Sage => {
                let an = site_mean(&s[0], inc, inter, x_new, &rn);
                let hn = x_new
                    .matmul(&p[0])
                    .add(&an.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                hn.matmul(&p[3])
                    .add(&site_mean(&s[1], inc, inter, &hn, &rn).matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
            GnnKind::Appnp => {
                let hn0 = x_new
                    .matmul(&p[0])
                    .add_row_broadcast(p[1].row(0))
                    .relu()
                    .matmul(&p[2])
                    .add_row_broadcast(p[3].row(0));
                let tn = hn0.scale(self.alpha);
                let mut zn = hn0;
                for site in s {
                    zn = site_sym(site, inc, inter, &zn, &sn).scale(1.0 - self.alpha).add(&tn);
                }
                zn
            }
            GnnKind::Cheby => {
                let t1n = site_sym(&s[0], inc, inter, x_new, &sn).scale(-1.0);
                let hn = x_new
                    .matmul(&p[0])
                    .add(&t1n.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                let t1hn = site_sym(&s[1], inc, inter, &hn, &sn).scale(-1.0);
                hn.matmul(&p[3])
                    .add(&t1hn.matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::MatRng;
    use mcond_sparse::Coo;

    fn fixture() -> (Csr, DMat) {
        let mut base = Coo::new(5, 5);
        for i in 0..5 {
            base.push_sym(i, (i + 1) % 5, 1.0);
        }
        (base.to_csr(), MatRng::seed_from(11).normal(5, 4, 0.0, 1.0))
    }

    fn exact_new_rows(
        model: &GnnModel,
        base: &Csr,
        base_x: &DMat,
        inc: &Csr,
        inter: &Csr,
        x_new: &DMat,
    ) -> DMat {
        let ops = GraphOps::extended(base, inc, inter);
        model.predict_split(&ops, base_x, x_new)
    }

    /// With zero incremental edges the batch does not perturb base
    /// degrees or activations, so the frozen path must agree with the
    /// exact one (the only remaining difference is exact-zero `inc`
    /// contributions).
    #[test]
    fn disconnected_batch_is_served_exactly() {
        let (base, base_x) = fixture();
        let inc = Csr::empty(2, 5);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 1.0);
        let inter = inter.to_csr();
        let x_new = MatRng::seed_from(12).normal(2, 4, 0.0, 1.0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 4, 6, 3, 21);
            let frozen = FrozenBase::new(&model, &base, &base_x);
            let approx = model.predict_frozen(&frozen, &inc, &inter, &x_new);
            let exact = exact_new_rows(&model, &base, &base_x, &inc, &inter, &x_new);
            assert_eq!(approx.shape(), (2, 3), "{}", kind.name());
            for (a, b) in approx.as_slice().iter().zip(exact.as_slice()) {
                assert!(
                    mcond_linalg::approx_eq(*a, *b, 1e-5),
                    "{}: {a} vs {b}",
                    kind.name()
                );
            }
        }
    }

    /// Connected batches deviate but stay finite, shape-correct, and in
    /// the same ballpark as the exact logits.
    #[test]
    fn connected_batch_stays_finite_and_bounded() {
        let (base, base_x) = fixture();
        let mut inc = Coo::new(2, 5);
        inc.push(0, 1, 2.0);
        inc.push(1, 3, 1.0);
        let inc = inc.to_csr();
        let inter = Csr::empty(2, 2);
        let x_new = MatRng::seed_from(13).normal(2, 4, 0.0, 1.0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 4, 6, 3, 22);
            let frozen = FrozenBase::new(&model, &base, &base_x);
            assert!(frozen.bytes() > 0);
            let approx = model.predict_frozen(&frozen, &inc, &inter, &x_new);
            let exact = exact_new_rows(&model, &base, &base_x, &inc, &inter, &x_new);
            assert_eq!(approx.shape(), exact.shape());
            assert!(approx.all_finite(), "{}", kind.name());
            let dev: f32 = approx
                .as_slice()
                .iter()
                .zip(exact.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(dev < 5.0, "{}: max deviation {dev}", kind.name());
        }
    }

    /// Growing the base (two appended nodes attached to rows 1 and 3)
    /// and patching must reproduce a from-scratch rebuild **bitwise** at
    /// every site and raw level, for every architecture.
    #[test]
    fn patched_cache_is_bitwise_identical_to_rebuild() {
        let (base, base_x) = fixture();
        // Appended nodes 5 and 6: 5-1 (w 2.0), 6-3 (w 1.0), 5-6 (w 0.5).
        let mut b = Coo::new(2, 5);
        b.push(0, 1, 2.0);
        b.push(1, 3, 1.0);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 0.5);
        let new_adj = base.block_extend(&b.to_csr(), &inter.to_csr());
        let new_x = base_x.vstack(&MatRng::seed_from(17).normal(2, 4, 0.0, 1.0));
        let deg = BaseDegrees::of(&new_adj);
        let touched = [1usize, 3];
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 4, 6, 3, 23);
            let frozen = FrozenBase::new(&model, &base, &base_x);
            let patched = frozen
                .try_patch(&model, &new_adj, &new_x, &deg, &touched, usize::MAX, 7)
                .expect("closure fits");
            let rebuilt = FrozenBase::new(&model, &new_adj, &new_x);
            assert_eq!(patched.base_version(), 7, "{}", kind.name());
            assert_eq!(patched.n_base(), 7, "{}", kind.name());
            assert_eq!(patched.sites.len(), rebuilt.sites.len(), "{}", kind.name());
            for (k, (a, b)) in patched.sites.iter().zip(&rebuilt.sites).enumerate() {
                assert_eq!(a.shape(), b.shape(), "{} site {k}", kind.name());
                assert_eq!(a.as_slice(), b.as_slice(), "{} site {k} not bitwise", kind.name());
            }
            assert_eq!(patched.raws.len(), rebuilt.raws.len(), "{}", kind.name());
            for (k, (a, b)) in patched.raws.iter().zip(&rebuilt.raws).enumerate() {
                assert_eq!(a.as_slice(), b.as_slice(), "{} raw {k} not bitwise", kind.name());
            }
        }
    }

    /// A closure larger than the row budget refuses to patch (the caller
    /// falls back to a full rebuild).
    #[test]
    fn oversized_closure_declines_to_patch() {
        let (base, base_x) = fixture();
        let mut b = Coo::new(1, 5);
        b.push(0, 0, 1.0);
        let new_adj = base.block_extend(&b.to_csr(), &Csr::empty(1, 1));
        let new_x = base_x.vstack(&MatRng::seed_from(18).normal(1, 4, 0.0, 1.0));
        let deg = BaseDegrees::of(&new_adj);
        let model = GnnModel::new(GnnKind::Gcn, 4, 6, 3, 24);
        let frozen = FrozenBase::new(&model, &base, &base_x);
        assert!(frozen.try_patch(&model, &new_adj, &new_x, &deg, &[0], 1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn cross_architecture_cache_is_rejected() {
        let (base, base_x) = fixture();
        let sgc = GnnModel::new(GnnKind::Sgc, 4, 0, 3, 1);
        let gcn = GnnModel::new(GnnKind::Gcn, 4, 6, 3, 1);
        let frozen = FrozenBase::new(&sgc, &base, &base_x);
        let _ = gcn.predict_frozen(&frozen, &Csr::empty(1, 5), &Csr::empty(1, 1), &DMat::zeros(1, 4));
    }
}
