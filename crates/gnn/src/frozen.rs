//! Frozen-base serving cache: the `ServeMode::FrozenBase` approximation.
//!
//! The exact extended-operator forward pass must re-propagate over all
//! `N' + n` rows because attaching a batch perturbs base-side degrees and
//! base activations feed the new rows at every layer. [`FrozenBase`]
//! trades that exactness for speed: it runs the forward pass **once over
//! the base graph alone** (base-only normalisation, no batch attached) and
//! caches, for every propagation site of the architecture, the base-side
//! operand that site would multiply by the bottom-left `inc` block —
//! pre-scaled by the frozen base normalisation for symmetric sites.
//!
//! A request is then served in `O(L·(nnz(inc) + nnz(inter) + n·d))`:
//! each site computes only its `n` new rows as
//!
//! ```text
//! sym:  s_n ∘ ( inc·(s_b ∘ H_b)  +  inter·(s_n ∘ H_n)  +  s_n ∘ H_n )
//! mean: r_n ∘ ( inc·H_b          +  inter·H_n )
//! ```
//!
//! where `s_b ∘ H_b` / `H_b` is the cached operand and `s_n`/`r_n` are the
//! request's own degree scales (computed exactly from `inc`/`inter` row
//! mass). The **approximation** is entirely base-side: cached `H_b` ignores
//! the batch's back-edges into the base graph, and `s_b` is the base-only
//! scale `1/sqrt(1 + base mass)` rather than the batch-perturbed one. For
//! a batch with *no* incremental edges the two coincide and the frozen
//! path reproduces the exact logits; deviation grows with the batch's
//! relative edge mass (quantified by the calibration test in
//! `mcond-core`). The exact split path stays the default — this cache is
//! opt-in.

use crate::model::{GnnKind, GnnModel, GraphOps};
use crate::propagator::BaseDegrees;
use mcond_linalg::DMat;
use mcond_sparse::Csr;

/// Per-layer base activations frozen under base-only normalisation.
///
/// Built once per `(model, base graph)` pair via [`FrozenBase::new`];
/// served via [`GnnModel::predict_frozen`]. Immutable and `Sync` — one
/// cache can serve concurrent requests.
pub struct FrozenBase {
    kind: GnnKind,
    hops: usize,
    n_base: usize,
    in_dim: usize,
    /// Cached base-side operands, one per propagation site in forward
    /// order. Symmetric sites are pre-scaled by the frozen base scale.
    sites: Vec<DMat>,
}

impl FrozenBase {
    /// Runs the base-only forward pass of `model` over `(base_adj,
    /// base_x)` and caches every propagation site's base operand.
    ///
    /// # Panics
    /// Panics on inconsistent shapes (`base_adj` not square or feature
    /// rows not matching it).
    #[must_use]
    pub fn new(model: &GnnModel, base_adj: &Csr, base_x: &DMat) -> Self {
        let mut span = mcond_obs::span_timed("frozen_base.build", "serve.cache.build_us");
        span.record("base_nodes", base_adj.rows());
        assert_eq!(base_adj.rows(), base_adj.cols(), "FrozenBase: base must be square");
        assert_eq!(base_x.rows(), base_adj.rows(), "FrozenBase: feature rows mismatch");
        let ops = GraphOps::from_adj(base_adj);
        // Frozen symmetric scale: 1/sqrt(1 + base row mass) — identical to
        // what sym_normalize bakes into the base-only kernel.
        let sb: Vec<f32> = BaseDegrees::of(base_adj)
            .sym
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let p = model.params();
        let mut sites = Vec::new();
        match model.kind() {
            GnnKind::Sgc => {
                let mut h = base_x.clone();
                for _ in 0..model.hops {
                    sites.push(h.scale_rows(&sb));
                    h = ops.sym.spmm(&h);
                }
            }
            GnnKind::Gcn => {
                let xw = base_x.matmul(&p[0]);
                sites.push(xw.scale_rows(&sb));
                let h = ops.sym.spmm(&xw).add_row_broadcast(p[1].row(0)).relu();
                sites.push(h.matmul(&p[2]).scale_rows(&sb));
            }
            GnnKind::Sage => {
                sites.push(base_x.clone());
                let h = base_x
                    .matmul(&p[0])
                    .add(&ops.mean.spmm(base_x).matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                sites.push(h);
            }
            GnnKind::Appnp => {
                let h0 = base_x
                    .matmul(&p[0])
                    .add_row_broadcast(p[1].row(0))
                    .relu()
                    .matmul(&p[2])
                    .add_row_broadcast(p[3].row(0));
                let teleport = h0.scale(model.alpha);
                let mut z = h0;
                for _ in 0..model.hops {
                    sites.push(z.scale_rows(&sb));
                    z = ops.sym.spmm(&z).scale(1.0 - model.alpha).add(&teleport);
                }
            }
            GnnKind::Cheby => {
                sites.push(base_x.scale_rows(&sb));
                let t1x = ops.sym.spmm(base_x).scale(-1.0);
                let h = base_x
                    .matmul(&p[0])
                    .add(&t1x.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                sites.push(h.scale_rows(&sb));
            }
        }
        Self {
            kind: model.kind(),
            hops: model.hops,
            n_base: base_adj.rows(),
            in_dim: base_x.cols(),
            sites,
        }
    }

    /// Architecture the cache was frozen for.
    #[must_use]
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Number of cached propagation sites (layers touching the graph).
    #[must_use]
    pub fn sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of base nodes the cache covers.
    #[must_use]
    pub fn n_base(&self) -> usize {
        self.n_base
    }

    /// Payload size of the cached activations, in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.sites.iter().map(|s| s.rows() * s.cols() * core::mem::size_of::<f32>()).sum()
    }
}

/// New-row output of one frozen **symmetric** site:
/// `s_n ∘ (inc·cached + inter·(s_n ∘ v) + s_n ∘ v)`.
fn site_sym(cached: &DMat, inc: &Csr, inter: &Csr, v: &DMat, sn: &[f32]) -> DMat {
    let vs = v.scale_rows(sn);
    let mut out = inc.spmm(cached);
    out.add_assign(&inter.spmm(&vs));
    out.add_assign(&vs);
    out.scale_rows_assign(sn);
    out
}

/// New-row output of one frozen **mean** site:
/// `r_n ∘ (inc·cached + inter·v)`.
fn site_mean(cached: &DMat, inc: &Csr, inter: &Csr, v: &DMat, rn: &[f32]) -> DMat {
    let mut out = inc.spmm(cached);
    out.add_assign(&inter.spmm(v));
    out.scale_rows_assign(rn);
    out
}

/// The request's own degree scales: symmetric `1/sqrt(1 + inc mass +
/// inter mass)` and mean `1/(inc mass + inter mass)` per new row —
/// identical to what the exact extended operator computes for its new
/// rows.
fn request_scales(inc: &Csr, inter: &Csr) -> (Vec<f32>, Vec<f32>) {
    let n = inc.rows();
    let mut sym = vec![1.0f32; n];
    let mut mean = vec![0.0f32; n];
    for (bi, _, v) in inc.iter() {
        sym[bi] += v;
        mean[bi] += v;
    }
    for (bi, _, v) in inter.iter() {
        sym[bi] += v;
        mean[bi] += v;
    }
    let sn = sym.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    let rn = mean.iter().map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 }).collect();
    (sn, rn)
}

impl GnnModel {
    /// Serves a batch's logits from a [`FrozenBase`] cache — the
    /// approximate `O(L·(nnz + n·d))` path. See the module docs for the
    /// approximation contract.
    ///
    /// # Panics
    /// Panics when `frozen` was built for a different architecture /
    /// propagation depth, or on block-shape mismatch.
    #[must_use]
    pub fn predict_frozen(
        &self,
        frozen: &FrozenBase,
        inc: &Csr,
        inter: &Csr,
        x_new: &DMat,
    ) -> DMat {
        assert_eq!(frozen.kind, self.kind(), "predict_frozen: architecture mismatch");
        assert_eq!(
            frozen.hops, self.hops,
            "predict_frozen: cache frozen at a different propagation depth"
        );
        assert_eq!(inc.cols(), frozen.n_base, "predict_frozen: inc columns must index the base");
        assert_eq!(inc.rows(), x_new.rows(), "predict_frozen: inc rows");
        assert_eq!(inter.rows(), x_new.rows(), "predict_frozen: inter rows");
        assert_eq!(inter.cols(), x_new.rows(), "predict_frozen: inter must be square");
        assert_eq!(x_new.cols(), frozen.in_dim, "predict_frozen: feature width mismatch");
        let (sn, rn) = request_scales(inc, inter);
        let p = self.params();
        let s = &frozen.sites;
        match self.kind() {
            GnnKind::Sgc => {
                let mut h = x_new.clone();
                for site in s {
                    h = site_sym(site, inc, inter, &h, &sn);
                }
                h.matmul(&p[0]).add_row_broadcast(p[1].row(0))
            }
            GnnKind::Gcn => {
                let hn = site_sym(&s[0], inc, inter, &x_new.matmul(&p[0]), &sn)
                    .add_row_broadcast(p[1].row(0))
                    .relu();
                site_sym(&s[1], inc, inter, &hn.matmul(&p[2]), &sn)
                    .add_row_broadcast(p[3].row(0))
            }
            GnnKind::Sage => {
                let an = site_mean(&s[0], inc, inter, x_new, &rn);
                let hn = x_new
                    .matmul(&p[0])
                    .add(&an.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                hn.matmul(&p[3])
                    .add(&site_mean(&s[1], inc, inter, &hn, &rn).matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
            GnnKind::Appnp => {
                let hn0 = x_new
                    .matmul(&p[0])
                    .add_row_broadcast(p[1].row(0))
                    .relu()
                    .matmul(&p[2])
                    .add_row_broadcast(p[3].row(0));
                let tn = hn0.scale(self.alpha);
                let mut zn = hn0;
                for site in s {
                    zn = site_sym(site, inc, inter, &zn, &sn).scale(1.0 - self.alpha).add(&tn);
                }
                zn
            }
            GnnKind::Cheby => {
                let t1n = site_sym(&s[0], inc, inter, x_new, &sn).scale(-1.0);
                let hn = x_new
                    .matmul(&p[0])
                    .add(&t1n.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                let t1hn = site_sym(&s[1], inc, inter, &hn, &sn).scale(-1.0);
                hn.matmul(&p[3])
                    .add(&t1hn.matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::MatRng;
    use mcond_sparse::Coo;

    fn fixture() -> (Csr, DMat) {
        let mut base = Coo::new(5, 5);
        for i in 0..5 {
            base.push_sym(i, (i + 1) % 5, 1.0);
        }
        (base.to_csr(), MatRng::seed_from(11).normal(5, 4, 0.0, 1.0))
    }

    fn exact_new_rows(
        model: &GnnModel,
        base: &Csr,
        base_x: &DMat,
        inc: &Csr,
        inter: &Csr,
        x_new: &DMat,
    ) -> DMat {
        let ops = GraphOps::extended(base, inc, inter);
        model.predict_split(&ops, base_x, x_new)
    }

    /// With zero incremental edges the batch does not perturb base
    /// degrees or activations, so the frozen path must agree with the
    /// exact one (the only remaining difference is exact-zero `inc`
    /// contributions).
    #[test]
    fn disconnected_batch_is_served_exactly() {
        let (base, base_x) = fixture();
        let inc = Csr::empty(2, 5);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 1.0);
        let inter = inter.to_csr();
        let x_new = MatRng::seed_from(12).normal(2, 4, 0.0, 1.0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 4, 6, 3, 21);
            let frozen = FrozenBase::new(&model, &base, &base_x);
            let approx = model.predict_frozen(&frozen, &inc, &inter, &x_new);
            let exact = exact_new_rows(&model, &base, &base_x, &inc, &inter, &x_new);
            assert_eq!(approx.shape(), (2, 3), "{}", kind.name());
            for (a, b) in approx.as_slice().iter().zip(exact.as_slice()) {
                assert!(
                    mcond_linalg::approx_eq(*a, *b, 1e-5),
                    "{}: {a} vs {b}",
                    kind.name()
                );
            }
        }
    }

    /// Connected batches deviate but stay finite, shape-correct, and in
    /// the same ballpark as the exact logits.
    #[test]
    fn connected_batch_stays_finite_and_bounded() {
        let (base, base_x) = fixture();
        let mut inc = Coo::new(2, 5);
        inc.push(0, 1, 2.0);
        inc.push(1, 3, 1.0);
        let inc = inc.to_csr();
        let inter = Csr::empty(2, 2);
        let x_new = MatRng::seed_from(13).normal(2, 4, 0.0, 1.0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 4, 6, 3, 22);
            let frozen = FrozenBase::new(&model, &base, &base_x);
            assert!(frozen.bytes() > 0);
            let approx = model.predict_frozen(&frozen, &inc, &inter, &x_new);
            let exact = exact_new_rows(&model, &base, &base_x, &inc, &inter, &x_new);
            assert_eq!(approx.shape(), exact.shape());
            assert!(approx.all_finite(), "{}", kind.name());
            let dev: f32 = approx
                .as_slice()
                .iter()
                .zip(exact.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(dev < 5.0, "{}: max deviation {dev}", kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn cross_architecture_cache_is_rejected() {
        let (base, base_x) = fixture();
        let sgc = GnnModel::new(GnnKind::Sgc, 4, 0, 3, 1);
        let gcn = GnnModel::new(GnnKind::Gcn, 4, 6, 3, 1);
        let frozen = FrozenBase::new(&sgc, &base, &base_x);
        let _ = gcn.predict_frozen(&frozen, &Csr::empty(1, 5), &Csr::empty(1, 1), &DMat::zeros(1, 4));
    }
}
