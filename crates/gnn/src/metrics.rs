//! Evaluation metrics and the inference cost meter.

use mcond_linalg::DMat;
use mcond_sparse::Csr;
use std::time::Instant;

/// Classification accuracy of row-argmax predictions against labels.
///
/// # Panics
/// Panics when lengths disagree.
#[must_use]
pub fn accuracy(logits: &DMat, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "accuracy: row/label mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
    correct as f64 / labels.len() as f64
}

/// Per-class (correct, total) counts — the raw material for confusion
/// analyses like Fig. 5's class-correlation study.
#[must_use]
pub fn confusion_counts(logits: &DMat, labels: &[usize], num_classes: usize) -> Vec<(usize, usize)> {
    let preds = logits.argmax_rows();
    let mut counts = vec![(0usize, 0usize); num_classes];
    for (p, &y) in preds.iter().zip(labels) {
        counts[y].1 += 1;
        if *p == y {
            counts[y].0 += 1;
        }
    }
    counts
}

/// Deployment cost of one inference configuration — the quantities plotted
/// in the paper's Fig. 3 / Fig. 4.
#[derive(Clone, Copy, Debug)]
pub struct InferenceCost {
    /// Wall-clock seconds for the measured closure.
    pub seconds: f64,
    /// Storage model of §II-B: CSR bytes of the (extended) adjacency plus
    /// `(N + n) · d` feature bytes.
    pub memory_bytes: usize,
}

impl InferenceCost {
    /// Speedup of `self` relative to `baseline` (>1 means `self` is faster).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &InferenceCost) -> f64 {
        baseline.seconds / self.seconds.max(1e-12)
    }

    /// Memory compression of `self` relative to `baseline` (>1 means `self`
    /// is smaller).
    #[must_use]
    pub fn compression_vs(&self, baseline: &InferenceCost) -> f64 {
        baseline.memory_bytes as f64 / self.memory_bytes.max(1) as f64
    }
}

/// Measures wall time and the paper's storage model for inference runs.
pub struct CostMeter {
    /// Number of timed repetitions (the median is reported).
    pub repeats: usize,
}

impl Default for CostMeter {
    fn default() -> Self {
        Self { repeats: 3 }
    }
}

impl CostMeter {
    /// Times `f` (median of `repeats` runs) and accounts the memory for an
    /// inference over adjacency `adj` and a feature matrix with `feat_rows`
    /// rows and `feat_dim` columns.
    pub fn measure<T>(
        &self,
        adj: &Csr,
        feat_rows: usize,
        feat_dim: usize,
        mut f: impl FnMut() -> T,
    ) -> (T, InferenceCost) {
        let mut times = Vec::with_capacity(self.repeats.max(1));
        let mut out = None;
        for _ in 0..self.repeats.max(1) {
            let start = Instant::now();
            out = Some(f());
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cost = InferenceCost {
            seconds: times[times.len() / 2],
            memory_bytes: adj.storage_bytes() + feat_rows * feat_dim * std::mem::size_of::<f32>(),
        };
        (out.expect("at least one repetition"), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_sparse::Coo;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = DMat::from_rows(&[&[2., 1.], &[0., 3.], &[5., 4.]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_is_zero() {
        assert_eq!(accuracy(&DMat::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn confusion_counts_partition_labels() {
        let logits = DMat::from_rows(&[&[2., 1.], &[0., 3.], &[5., 4.], &[1., 2.]]);
        let counts = confusion_counts(&logits, &[0, 0, 1, 1], 2);
        assert_eq!(counts[0], (1, 2));
        assert_eq!(counts[1], (1, 2));
    }

    #[test]
    fn cost_meter_reports_storage_model() {
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 1, 1.0);
        let adj = coo.to_csr();
        let meter = CostMeter { repeats: 1 };
        let (val, cost) = meter.measure(&adj, 3, 4, || 42);
        assert_eq!(val, 42);
        assert_eq!(cost.memory_bytes, adj.storage_bytes() + 3 * 4 * 4);
        assert!(cost.seconds >= 0.0);
    }

    #[test]
    fn speedup_and_compression_ratios() {
        let fast = InferenceCost { seconds: 0.1, memory_bytes: 100 };
        let slow = InferenceCost { seconds: 1.0, memory_bytes: 1000 };
        assert!((fast.speedup_vs(&slow) - 10.0).abs() < 1e-9);
        assert!((fast.compression_vs(&slow) - 10.0).abs() < 1e-9);
    }
}
