//! Full-batch GNN training with Adam.

use crate::{accuracy, GnnModel, GraphOps};
use mcond_autodiff::{Adam, Tape};
use mcond_linalg::DMat;
use std::sync::Arc;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 weight decay on all parameters.
    pub weight_decay: f32,
    /// Stop early when `patience` epochs pass without a validation-accuracy
    /// improvement (requires validation data; `None` disables).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 200, lr: 0.01, weight_decay: 5e-4, patience: None }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Cross-entropy per epoch.
    pub losses: Vec<f32>,
    /// Final training accuracy.
    pub train_accuracy: f64,
    /// Best validation accuracy (when validation data was supplied).
    pub val_accuracy: Option<f64>,
    /// Number of epochs actually run.
    pub epochs_run: usize,
}

/// Trains `model` on a fully labelled graph (the paper trains on either the
/// original training subgraph or the synthetic graph, both fully labelled).
///
/// `val` optionally supplies `(ops, features, labels)` of a held-out graph
/// configuration for early stopping / model selection; the parameters with
/// the best validation accuracy are restored at the end.
///
/// # Panics
/// Panics when label count and feature rows disagree.
pub fn train(
    model: &mut GnnModel,
    ops: &GraphOps,
    features: &DMat,
    labels: &[usize],
    cfg: &TrainConfig,
    val: Option<(&GraphOps, &DMat, &[usize])>,
) -> TrainReport {
    assert_eq!(features.rows(), labels.len(), "train: features/labels mismatch");
    let mut train_span = mcond_obs::span_with(
        "gnn.train",
        vec![
            ("nodes", features.rows().into()),
            ("epochs_budget", cfg.epochs.into()),
            ("has_val", val.is_some().into()),
        ],
    );
    let labels_rc = Arc::new(labels.to_vec());
    let mut opts: Vec<Adam> = model
        .params()
        .iter()
        .map(|p| Adam::new(cfg.lr, p.rows(), p.cols()).with_weight_decay(cfg.weight_decay))
        .collect();

    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_params: Option<Vec<DMat>> = None;
    let mut stale = 0usize;
    let mut epochs_run = 0usize;

    for epoch in 0..cfg.epochs {
        epochs_run += 1;
        let mut tape = Tape::new();
        let ps = model.tape_params(&mut tape);
        let x = tape.constant(features.clone());
        let logits = model.forward(&mut tape, &ps, ops, x);
        let loss = tape.softmax_cross_entropy(logits, Arc::clone(&labels_rc));
        losses.push(tape.scalar(loss));
        let mut grads = tape.backward(loss);
        for ((param, var), opt) in model.params_mut().iter_mut().zip(&ps).zip(&mut opts) {
            if let Some(g) = grads.take(*var) {
                opt.step(param, &g);
            }
        }

        let mut val_acc = None;
        if let Some((vops, vx, vy)) = val {
            let acc = accuracy(&model.predict(vops, vx), vy);
            val_acc = Some(acc);
            if acc > best_val {
                best_val = acc;
                best_params = Some(model.params().to_vec());
                stale = 0;
            } else {
                stale += 1;
                if cfg.patience.is_some_and(|p| stale >= p) {
                    if mcond_obs::enabled() {
                        mcond_obs::point(
                            "gnn.train.early_stop",
                            &[
                                ("epoch", epoch.into()),
                                ("stale", stale.into()),
                                ("best_val", best_val.into()),
                            ],
                        );
                    }
                    break;
                }
            }
        }
        if mcond_obs::enabled() {
            let mut fields =
                vec![("epoch", epoch.into()), ("loss", losses[epochs_run - 1].into())];
            if let Some(acc) = val_acc {
                fields.push(("val_acc", acc.into()));
            }
            mcond_obs::point("gnn.train.epoch", &fields);
        }
    }

    if let Some(best) = best_params {
        for (dst, src) in model.params_mut().iter_mut().zip(best) {
            *dst = src;
        }
    }
    let train_accuracy = accuracy(&model.predict(ops, features), labels);
    train_span.record("epochs_run", epochs_run);
    train_span.record("train_acc", train_accuracy);
    TrainReport {
        losses,
        train_accuracy,
        val_accuracy: (best_val > f64::NEG_INFINITY).then_some(best_val),
        epochs_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GnnKind;
    use mcond_graph::{generate_sbm, SbmConfig};

    fn dataset() -> (GraphOps<'static>, DMat, Vec<usize>) {
        let g = generate_sbm(&SbmConfig {
            nodes: 120,
            edges: 360,
            feature_dim: 16,
            num_classes: 3,
            homophily: 0.85,
            center_scale: 1.2,
            ..SbmConfig::default()
        });
        (GraphOps::from_adj(&g.adj), g.features.clone(), g.labels.clone())
    }

    #[test]
    fn training_reduces_loss_for_every_architecture() {
        let (ops, x, y) = dataset();
        for kind in GnnKind::ALL {
            let mut model = GnnModel::new(kind, 16, 16, 3, 1);
            let cfg = TrainConfig { epochs: 60, lr: 0.05, ..TrainConfig::default() };
            let report = train(&mut model, &ops, &x, &y, &cfg, None);
            let first = report.losses[0];
            let last = *report.losses.last().unwrap();
            assert!(last < first * 0.8, "{}: {first} -> {last}", kind.name());
        }
    }

    #[test]
    fn trained_model_beats_chance_comfortably() {
        let (ops, x, y) = dataset();
        let mut model = GnnModel::new(GnnKind::Gcn, 16, 16, 3, 2);
        let cfg = TrainConfig { epochs: 120, lr: 0.05, ..TrainConfig::default() };
        let report = train(&mut model, &ops, &x, &y, &cfg, None);
        assert!(report.train_accuracy > 0.7, "accuracy {}", report.train_accuracy);
    }

    #[test]
    fn early_stopping_halts_before_epoch_budget() {
        let (ops, x, y) = dataset();
        let mut model = GnnModel::new(GnnKind::Sgc, 16, 0, 3, 3);
        let cfg = TrainConfig {
            epochs: 500,
            lr: 0.1,
            patience: Some(5),
            ..TrainConfig::default()
        };
        let report = train(&mut model, &ops, &x, &y, &cfg, Some((&ops, &x, &y[..])));
        assert!(report.epochs_run < 500, "ran all {} epochs", report.epochs_run);
        assert!(report.val_accuracy.is_some());
    }

    #[test]
    fn validation_restores_best_parameters() {
        let (ops, x, y) = dataset();
        let mut model = GnnModel::new(GnnKind::Gcn, 16, 8, 3, 4);
        let cfg = TrainConfig { epochs: 40, lr: 0.05, ..TrainConfig::default() };
        let report = train(&mut model, &ops, &x, &y, &cfg, Some((&ops, &x, &y[..])));
        let final_acc = accuracy(&model.predict(&ops, &x), &y);
        // The restored parameters must realise the reported best accuracy.
        assert!((final_acc - report.val_accuracy.unwrap()).abs() < 1e-9);
    }
}
