//! GNN model zoo for the MCond reproduction.
//!
//! All five architectures of the paper's Table IV are implemented on the
//! `mcond-autodiff` tape: SGC (the condensation/deployment model), GCN,
//! GraphSAGE (mean aggregator), APPNP and ChebNet. A shared [`GnnModel`]
//! value owns the parameters; [`train`] fits it on any `(adjacency,
//! features, labels)` triple — original or synthetic graph alike — and
//! [`GnnModel::predict`] runs tape-free inference.
//!
//! [`CostMeter`] implements the paper's evaluation metrics: wall-clock
//! inference time and the storage model `O(‖A‖₀ + (N + n)d)` of §II-B.

mod frozen;
mod metrics;
mod model;
mod propagator;
mod trainer;

pub use frozen::FrozenBase;
pub use metrics::{accuracy, confusion_counts, CostMeter, InferenceCost};
pub use model::{GnnKind, GnnModel, GraphOps};
pub use propagator::{BaseDegrees, Propagator};
pub use trainer::{train, TrainConfig, TrainReport};
