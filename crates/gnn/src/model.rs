//! The five GNN architectures of the paper.

use crate::propagator::{BaseDegrees, Propagator};
use mcond_autodiff::{Tape, Var};
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{row_normalize_dense, sym_normalize, Csr};
use std::sync::Arc;

/// Architecture selector (paper §IV-A and Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GnnKind {
    /// Simplified GCN (Wu et al. 2019): `Â^K X W` — the model used for
    /// condensation and the default deployment model.
    Sgc,
    /// 2-layer GCN (Kipf & Welling 2017).
    Gcn,
    /// GraphSAGE with mean aggregation (Hamilton et al. 2017).
    Sage,
    /// APPNP (Klicpera et al. 2019): MLP followed by personalised-PageRank
    /// propagation.
    Appnp,
    /// ChebNet with K = 2 polynomials and the λ_max ≈ 2 approximation
    /// (Defferrard et al. 2016).
    Cheby,
}

impl GnnKind {
    /// All architectures, in Table IV order (with SGC first).
    pub const ALL: [GnnKind; 5] =
        [GnnKind::Sgc, GnnKind::Gcn, GnnKind::Sage, GnnKind::Appnp, GnnKind::Cheby];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GnnKind::Sgc => "SGC",
            GnnKind::Gcn => "GCN",
            GnnKind::Sage => "GraphSAGE",
            GnnKind::Appnp => "APPNP",
            GnnKind::Cheby => "Cheby",
        }
    }

    /// Stable one-byte architecture tag used by the on-disk checkpoint
    /// format (`mcond-store`). Never renumber existing variants.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            GnnKind::Sgc => 0,
            GnnKind::Gcn => 1,
            GnnKind::Sage => 2,
            GnnKind::Appnp => 3,
            GnnKind::Cheby => 4,
        }
    }

    /// Inverse of [`GnnKind::code`]; `None` for unknown tags (e.g. a
    /// checkpoint written by a newer build).
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        GnnKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Number of parameter matrices this architecture owns (weights and
    /// biases, layer-major — the layout produced by [`GnnModel::new`]).
    #[must_use]
    pub fn param_count(self) -> usize {
        match self {
            GnnKind::Sgc => 2,
            GnnKind::Gcn | GnnKind::Appnp => 4,
            GnnKind::Sage | GnnKind::Cheby => 6,
        }
    }
}

/// Precomputed propagation operators for one graph.
///
/// `sym` is the GCN kernel `D̃^{-1/2}(A + I)D̃^{-1/2}`; `mean` the row-
/// stochastic `D^{-1}A` used by the SAGE mean aggregator. Either operator
/// may be a materialised matrix or a lazily extended block operator (see
/// [`Propagator`]); [`GnnModel::predict`] works with both, while training
/// requires materialised operators.
pub struct GraphOps<'a> {
    /// Symmetric-normalised adjacency with self-loops.
    pub sym: Propagator<'a>,
    /// Row-normalised adjacency (no self-loops).
    pub mean: Propagator<'a>,
}

impl GraphOps<'static> {
    /// Builds both operators from a raw adjacency (materialised form).
    #[must_use]
    pub fn from_adj(adj: &Csr) -> Self {
        let sym = Arc::new(sym_normalize(adj));
        // Row normalisation on sparse: scale each row by 1/degree.
        let degrees = adj.row_weighted_degrees();
        let dense_free = {
            // Scale values row-wise without densifying.
            let mut coo = mcond_sparse::Coo::with_capacity(adj.rows(), adj.cols(), adj.nnz());
            for (i, j, v) in adj.iter() {
                let d = degrees[i];
                if d > 0.0 {
                    coo.push(i, j, v / d);
                }
            }
            coo.to_csr()
        };
        let _ = row_normalize_dense; // dense variant lives in mcond-sparse for adjacency blocks
        Self { sym: Propagator::Matrix(sym), mean: Propagator::Matrix(Arc::new(dense_free)) }
    }
}

impl<'a> GraphOps<'a> {
    /// Builds both operators for the extended graph `[[base, incᵀ], [inc,
    /// inter]]` **without materialising it** — per-batch inductive serving
    /// then costs O(nnz(inc) + nnz(inter) + n) instead of copying the base
    /// graph (see `mcond-core`'s `InductiveServer`). The blocks are
    /// borrowed, not cloned: a request's `inc`/`inter` are used in place.
    #[must_use]
    pub fn extended(base: &'a Csr, inc: &'a Csr, inter: &'a Csr) -> Self {
        Self {
            sym: Propagator::extended_sym(base, inc, inter),
            mean: Propagator::extended_mean(base, inc, inter),
        }
    }

    /// [`extended`](Self::extended) with the base graph's degree sums
    /// supplied by the caller ([`BaseDegrees::of`], computed once per
    /// server). Bitwise identical to [`extended`](Self::extended).
    #[must_use]
    pub fn extended_with(
        base: &'a Csr,
        inc: &'a Csr,
        inter: &'a Csr,
        deg: &BaseDegrees,
    ) -> Self {
        Self {
            sym: Propagator::extended_sym_with(base, inc, inter, deg),
            mean: Propagator::extended_mean_with(base, inc, inter, deg),
        }
    }
}

/// A GNN with owned parameters.
///
/// The parameter list layout per architecture (weights then biases,
/// layer-major) is an internal detail; use [`GnnModel::tape_params`] /
/// [`GnnModel::params_mut`] to iterate.
#[derive(Clone)]
pub struct GnnModel {
    kind: GnnKind,
    params: Vec<DMat>,
    /// Propagation depth: SGC/APPNP power steps, otherwise layer count (2).
    pub hops: usize,
    /// APPNP teleport probability.
    pub alpha: f32,
}

impl GnnModel {
    /// Initialises a model with Glorot weights and zero biases.
    #[must_use]
    pub fn new(kind: GnnKind, in_dim: usize, hidden: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = MatRng::seed_from(seed);
        let params = match kind {
            GnnKind::Sgc => vec![rng.glorot(in_dim, out_dim), DMat::zeros(1, out_dim)],
            GnnKind::Gcn | GnnKind::Appnp => vec![
                rng.glorot(in_dim, hidden),
                DMat::zeros(1, hidden),
                rng.glorot(hidden, out_dim),
                DMat::zeros(1, out_dim),
            ],
            GnnKind::Sage => vec![
                rng.glorot(in_dim, hidden),   // self
                rng.glorot(in_dim, hidden),   // neighbour
                DMat::zeros(1, hidden),
                rng.glorot(hidden, out_dim),  // self
                rng.glorot(hidden, out_dim),  // neighbour
                DMat::zeros(1, out_dim),
            ],
            GnnKind::Cheby => vec![
                rng.glorot(in_dim, hidden),   // T0
                rng.glorot(in_dim, hidden),   // T1
                DMat::zeros(1, hidden),
                rng.glorot(hidden, out_dim),  // T0
                rng.glorot(hidden, out_dim),  // T1
                DMat::zeros(1, out_dim),
            ],
        };
        Self { kind, params, hops: 2, alpha: 0.1 }
    }

    /// Rebuilds a model from an architecture tag and an explicit parameter
    /// list — the checkpoint-restore path (`mcond-store`). `params` must
    /// follow the layer-major weights-then-biases layout that
    /// [`GnnModel::new`] produces and [`GnnModel::params`] exposes.
    ///
    /// # Panics
    /// Panics when the parameter count does not match the architecture;
    /// callers restoring untrusted bytes must validate first (the store
    /// decoder does, returning a typed error instead).
    #[must_use]
    pub fn from_parts(kind: GnnKind, params: Vec<DMat>, hops: usize, alpha: f32) -> Self {
        assert_eq!(
            params.len(),
            kind.param_count(),
            "GnnModel::from_parts: {} expects {} parameter matrices",
            kind.name(),
            kind.param_count()
        );
        Self { kind, params, hops, alpha }
    }

    /// Architecture of this model.
    #[must_use]
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Number of output classes `C` (the logit width).
    ///
    /// Every architecture's parameter list ends with the output bias
    /// (`1 x C`), so this is layout-independent. Serving layers use it to
    /// shape `0 x C` responses for empty batches without a forward pass.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.params.last().map_or(0, DMat::cols)
    }

    /// Mutable access to the parameters (for the optimizer), in the same
    /// order as [`GnnModel::tape_params`].
    pub fn params_mut(&mut self) -> &mut [DMat] {
        &mut self.params
    }

    /// Read access to the parameters.
    #[must_use]
    pub fn params(&self) -> &[DMat] {
        &self.params
    }

    /// Registers all parameters on a tape.
    pub fn tape_params(&self, tape: &mut Tape) -> Vec<Var> {
        self.params.iter().map(|p| tape.param(p.clone())).collect()
    }

    /// Builds the logits graph on `tape` using parameter vars `ps` (from
    /// [`GnnModel::tape_params`]) and feature var `x`.
    ///
    /// # Panics
    /// Panics if `ps` does not match the architecture's parameter count.
    pub fn forward(&self, tape: &mut Tape, ps: &[Var], ops: &GraphOps, x: Var) -> Var {
        assert_eq!(ps.len(), self.params.len(), "forward: wrong parameter count");
        match self.kind {
            GnnKind::Sgc => {
                let mut h = x;
                for _ in 0..self.hops {
                    h = tape.spmm(ops.sym.csr(), h);
                }
                let hw = tape.matmul(h, ps[0]);
                tape.add_row_broadcast(hw, ps[1])
            }
            GnnKind::Gcn => {
                let xw = tape.matmul(x, ps[0]);
                let h = tape.spmm(ops.sym.csr(), xw);
                let h = tape.add_row_broadcast(h, ps[1]);
                let h = tape.relu(h);
                let hw = tape.matmul(h, ps[2]);
                let out = tape.spmm(ops.sym.csr(), hw);
                tape.add_row_broadcast(out, ps[3])
            }
            GnnKind::Sage => {
                let self1 = tape.matmul(x, ps[0]);
                let agg = tape.spmm(ops.mean.csr(), x);
                let nbr1 = tape.matmul(agg, ps[1]);
                let h = tape.add(self1, nbr1);
                let h = tape.add_row_broadcast(h, ps[2]);
                let h = tape.relu(h);
                let self2 = tape.matmul(h, ps[3]);
                let agg2 = tape.spmm(ops.mean.csr(), h);
                let nbr2 = tape.matmul(agg2, ps[4]);
                let out = tape.add(self2, nbr2);
                tape.add_row_broadcast(out, ps[5])
            }
            GnnKind::Appnp => {
                let xw = tape.matmul(x, ps[0]);
                let h = tape.add_row_broadcast(xw, ps[1]);
                let h = tape.relu(h);
                let hw = tape.matmul(h, ps[2]);
                let h0 = tape.add_row_broadcast(hw, ps[3]);
                // Personalised PageRank: Z_{k+1} = (1-α) Â Z_k + α H₀.
                let teleport = tape.scale(h0, self.alpha);
                let mut z = h0;
                for _ in 0..self.hops {
                    let prop = tape.spmm(ops.sym.csr(), z);
                    let damped = tape.scale(prop, 1.0 - self.alpha);
                    z = tape.add(damped, teleport);
                }
                z
            }
            GnnKind::Cheby => {
                // λ_max ≈ 2 gives T0 = X, T1 = L̃X = -ÂX.
                let t1x = tape.spmm(ops.sym.csr(), x);
                let t1x = tape.scale(t1x, -1.0);
                let h0 = tape.matmul(x, ps[0]);
                let h1 = tape.matmul(t1x, ps[1]);
                let h = tape.add(h0, h1);
                let h = tape.add_row_broadcast(h, ps[2]);
                let h = tape.relu(h);
                let t1h = tape.spmm(ops.sym.csr(), h);
                let t1h = tape.scale(t1h, -1.0);
                let o0 = tape.matmul(h, ps[3]);
                let o1 = tape.matmul(t1h, ps[4]);
                let out = tape.add(o0, o1);
                tape.add_row_broadcast(out, ps[5])
            }
        }
    }

    /// Tape-free inference: logits for every node of `(adj, x)`.
    ///
    /// This is the deployment path measured by the paper's time/memory
    /// experiments; it allocates no autodiff bookkeeping.
    #[must_use]
    pub fn predict(&self, ops: &GraphOps, x: &DMat) -> DMat {
        let p = &self.params;
        match self.kind {
            GnnKind::Sgc => {
                let mut h = x.clone();
                for _ in 0..self.hops {
                    h = ops.sym.spmm(&h);
                }
                h.matmul(&p[0]).add_row_broadcast(p[1].row(0))
            }
            GnnKind::Gcn => {
                let h = ops.sym.spmm(&x.matmul(&p[0])).add_row_broadcast(p[1].row(0)).relu();
                ops.sym.spmm(&h.matmul(&p[2])).add_row_broadcast(p[3].row(0))
            }
            GnnKind::Sage => {
                let h = x
                    .matmul(&p[0])
                    .add(&ops.mean.spmm(x).matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                h.matmul(&p[3])
                    .add(&ops.mean.spmm(&h).matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
            GnnKind::Appnp => {
                let h = x.matmul(&p[0]).add_row_broadcast(p[1].row(0)).relu();
                let h0 = h.matmul(&p[2]).add_row_broadcast(p[3].row(0));
                let teleport = h0.scale(self.alpha);
                let mut z = h0;
                for _ in 0..self.hops {
                    z = ops.sym.spmm(&z).scale(1.0 - self.alpha).add(&teleport);
                }
                z
            }
            GnnKind::Cheby => {
                let t1x = ops.sym.spmm(x).scale(-1.0);
                let h = x
                    .matmul(&p[0])
                    .add(&t1x.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                let t1h = ops.sym.spmm(&h).scale(-1.0);
                h.matmul(&p[3])
                    .add(&t1h.matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
        }
    }

    /// Split-operator inference: logits for the **new rows only** of the
    /// graph behind `ops`, fed as a `(x_base, x_new)` pair that is never
    /// vstacked.
    ///
    /// This is the serving fast path: every dense layer step is
    /// row-independent and the propagation steps use
    /// [`Propagator::spmm_split`] / [`Propagator::spmm_bottom`], so the
    /// returned `n×C` block is **bitwise identical** to
    /// `predict(ops, x_base.vstack(x_new))` sliced to its last `n` rows —
    /// at any thread count — while the final propagation computes only the
    /// `n` inductive output rows and no base-side state is copied.
    ///
    /// # Panics
    /// Panics on dimension mismatch between the split inputs and `ops`.
    #[must_use]
    pub fn predict_split(&self, ops: &GraphOps<'_>, x_base: &DMat, x_new: &DMat) -> DMat {
        let p = &self.params;
        match self.kind {
            GnnKind::Sgc => {
                if self.hops == 0 {
                    return x_new.matmul(&p[0]).add_row_broadcast(p[1].row(0));
                }
                if self.hops == 1 {
                    return ops
                        .sym
                        .spmm_bottom(x_base, x_new)
                        .matmul(&p[0])
                        .add_row_broadcast(p[1].row(0));
                }
                let (mut hb, mut hn) = ops.sym.spmm_split(x_base, x_new);
                for _ in 1..self.hops - 1 {
                    let (tb, tn) = ops.sym.spmm_split(&hb, &hn);
                    hb = tb;
                    hn = tn;
                }
                ops.sym
                    .spmm_bottom(&hb, &hn)
                    .matmul(&p[0])
                    .add_row_broadcast(p[1].row(0))
            }
            GnnKind::Gcn => {
                let (hb, hn) = ops.sym.spmm_split(&x_base.matmul(&p[0]), &x_new.matmul(&p[0]));
                let hb = hb.add_row_broadcast(p[1].row(0)).relu();
                let hn = hn.add_row_broadcast(p[1].row(0)).relu();
                ops.sym
                    .spmm_bottom(&hb.matmul(&p[2]), &hn.matmul(&p[2]))
                    .add_row_broadcast(p[3].row(0))
            }
            GnnKind::Sage => {
                let (ab, an) = ops.mean.spmm_split(x_base, x_new);
                let hb = x_base
                    .matmul(&p[0])
                    .add(&ab.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                let hn = x_new
                    .matmul(&p[0])
                    .add(&an.matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                hn.matmul(&p[3])
                    .add(&ops.mean.spmm_bottom(&hb, &hn).matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
            GnnKind::Appnp => {
                let mlp = |x: &DMat| {
                    x.matmul(&p[0])
                        .add_row_broadcast(p[1].row(0))
                        .relu()
                        .matmul(&p[2])
                        .add_row_broadcast(p[3].row(0))
                };
                let hb0 = mlp(x_base);
                let hn0 = mlp(x_new);
                if self.hops == 0 {
                    return hn0;
                }
                let tb = hb0.scale(self.alpha);
                let tn = hn0.scale(self.alpha);
                let (mut zb, mut zn) = (hb0, hn0);
                for _ in 0..self.hops - 1 {
                    let (pb, pn) = ops.sym.spmm_split(&zb, &zn);
                    zb = pb.scale(1.0 - self.alpha).add(&tb);
                    zn = pn.scale(1.0 - self.alpha).add(&tn);
                }
                ops.sym.spmm_bottom(&zb, &zn).scale(1.0 - self.alpha).add(&tn)
            }
            GnnKind::Cheby => {
                let (t1b, t1n) = ops.sym.spmm_split(x_base, x_new);
                let hb = x_base
                    .matmul(&p[0])
                    .add(&t1b.scale(-1.0).matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                let hn = x_new
                    .matmul(&p[0])
                    .add(&t1n.scale(-1.0).matmul(&p[1]))
                    .add_row_broadcast(p[2].row(0))
                    .relu();
                let t1h_n = ops.sym.spmm_bottom(&hb, &hn).scale(-1.0);
                hn.matmul(&p[3])
                    .add(&t1h_n.matmul(&p[4]))
                    .add_row_broadcast(p[5].row(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_sparse::Coo;
    use std::sync::Arc as StdArc;

    fn ring(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push_sym(i, (i + 1) % n, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn every_architecture_produces_logits_of_right_shape() {
        let adj = ring(6);
        let ops = GraphOps::from_adj(&adj);
        let x = MatRng::seed_from(1).normal(6, 4, 0.0, 1.0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 4, 8, 3, 7);
            let out = model.predict(&ops, &x);
            assert_eq!(out.shape(), (6, 3), "{}", kind.name());
            assert!(out.as_slice().iter().all(|v| v.is_finite()), "{}", kind.name());
        }
    }

    #[test]
    fn out_dim_reports_class_count_for_every_architecture() {
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 4, 8, 3, 7);
            assert_eq!(model.out_dim(), 3, "{}", kind.name());
        }
    }

    #[test]
    fn tape_forward_matches_predict() {
        let adj = ring(5);
        let ops = GraphOps::from_adj(&adj);
        let x = MatRng::seed_from(2).normal(5, 3, 0.0, 1.0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 3, 6, 2, 11);
            let mut tape = Tape::new();
            let ps = model.tape_params(&mut tape);
            let xv = tape.constant(x.clone());
            let out_var = model.forward(&mut tape, &ps, &ops, xv);
            let tape_out = tape.value(out_var).clone();
            let direct = model.predict(&ops, &x);
            for (a, b) in tape_out.as_slice().iter().zip(direct.as_slice()) {
                assert!(
                    mcond_linalg::approx_eq(*a, *b, 1e-4),
                    "{}: {a} vs {b}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn graph_ops_mean_rows_are_stochastic() {
        let adj = ring(4);
        let ops = GraphOps::from_adj(&adj);
        let mean = ops.mean.csr();
        for i in 0..4 {
            let s: f32 = mean.row_vals(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let _ = StdArc::strong_count(&mean);
    }

    #[test]
    fn sgc_is_linear_in_features() {
        // predict(x1 + x2) == predict(x1) + predict(x2) - bias (affine map).
        let adj = ring(4);
        let ops = GraphOps::from_adj(&adj);
        let model = GnnModel::new(GnnKind::Sgc, 3, 0, 2, 3);
        let mut rng = MatRng::seed_from(4);
        let x1 = rng.normal(4, 3, 0.0, 1.0);
        let x2 = rng.normal(4, 3, 0.0, 1.0);
        let lhs = model.predict(&ops, &x1.add(&x2));
        let bias_mat = {
            let zero = DMat::zeros(4, 3);
            model.predict(&ops, &zero)
        };
        let rhs = model.predict(&ops, &x1).add(&model.predict(&ops, &x2)).sub(&bias_mat);
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!(mcond_linalg::approx_eq(*a, *b, 1e-3), "{a} vs {b}");
        }
    }

    #[test]
    fn appnp_teleport_keeps_h0_influence() {
        // With alpha = 1 propagation is the identity on H0.
        let adj = ring(4);
        let ops = GraphOps::from_adj(&adj);
        let mut model = GnnModel::new(GnnKind::Appnp, 3, 5, 2, 5);
        model.alpha = 1.0;
        let x = MatRng::seed_from(6).normal(4, 3, 0.0, 1.0);
        let out = model.predict(&ops, &x);
        // alpha=1 => z = teleport + 0: equals H0 regardless of hops.
        model.hops = 7;
        let out2 = model.predict(&ops, &x);
        for (a, b) in out.as_slice().iter().zip(out2.as_slice()) {
            assert!(mcond_linalg::approx_eq(*a, *b, 1e-4));
        }
    }
}
