//! Integration tests of the GNN zoo: optimisation behaviour, determinism,
//! and homophily exploitation across architectures.

use mcond_gnn::{accuracy, train, GnnKind, GnnModel, GraphOps, TrainConfig};
use mcond_graph::{generate_sbm, SbmConfig};

fn hard_dataset(seed: u64) -> (GraphOps<'static>, mcond_linalg::DMat, Vec<usize>) {
    // Features weak, structure strong: a GNN must use the graph to win.
    let g = generate_sbm(&SbmConfig {
        nodes: 200,
        edges: 1200,
        feature_dim: 12,
        num_classes: 4,
        homophily: 0.9,
        center_scale: 0.25,
        feature_noise: 1.0,
        seed,
        ..SbmConfig::default()
    });
    (GraphOps::from_adj(&g.adj), g.features.clone(), g.labels.clone())
}

#[test]
fn propagation_beats_features_alone_when_structure_dominates() {
    let (ops, x, y) = hard_dataset(0);
    let cfg = TrainConfig { epochs: 120, lr: 0.05, ..TrainConfig::default() };

    let mut feature_only = GnnModel::new(GnnKind::Sgc, 12, 0, 4, 0);
    feature_only.hops = 0;
    let r0 = train(&mut feature_only, &ops, &x, &y, &cfg, None);

    let mut propagated = GnnModel::new(GnnKind::Sgc, 12, 0, 4, 0);
    propagated.hops = 2;
    let r2 = train(&mut propagated, &ops, &x, &y, &cfg, None);

    assert!(
        r2.train_accuracy > r0.train_accuracy + 0.05,
        "propagation should help: {} vs {}",
        r2.train_accuracy,
        r0.train_accuracy
    );
}

#[test]
fn training_is_deterministic_given_seed() {
    let (ops, x, y) = hard_dataset(1);
    let cfg = TrainConfig { epochs: 30, lr: 0.05, ..TrainConfig::default() };
    let run = || {
        let mut model = GnnModel::new(GnnKind::Gcn, 12, 8, 4, 42);
        train(&mut model, &ops, &x, &y, &cfg, None);
        model.predict(&ops, &x)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_models() {
    let (ops, x, y) = hard_dataset(2);
    let cfg = TrainConfig { epochs: 10, lr: 0.05, ..TrainConfig::default() };
    let predict_with_seed = |seed| {
        let mut model = GnnModel::new(GnnKind::Gcn, 12, 8, 4, seed);
        train(&mut model, &ops, &x, &y, &cfg, None);
        model.predict(&ops, &x)
    };
    assert_ne!(predict_with_seed(1), predict_with_seed(2));
}

#[test]
fn weight_decay_limits_parameter_growth() {
    let (ops, x, y) = hard_dataset(3);
    let norm_after = |wd: f32| {
        let mut model = GnnModel::new(GnnKind::Sgc, 12, 0, 4, 5);
        let cfg = TrainConfig { epochs: 150, lr: 0.05, weight_decay: wd, patience: None };
        train(&mut model, &ops, &x, &y, &cfg, None);
        model.params()[0].frobenius_norm()
    };
    assert!(norm_after(0.05) < norm_after(0.0), "weight decay should shrink weights");
}

#[test]
fn all_architectures_fit_an_easy_dataset() {
    let g = generate_sbm(&SbmConfig {
        nodes: 120,
        edges: 400,
        feature_dim: 10,
        num_classes: 3,
        center_scale: 1.5,
        feature_noise: 0.5,
        ..SbmConfig::default()
    });
    let ops = GraphOps::from_adj(&g.adj);
    for kind in GnnKind::ALL {
        let mut model = GnnModel::new(kind, 10, 16, 3, 1);
        let cfg = TrainConfig { epochs: 150, lr: 0.05, ..TrainConfig::default() };
        let report = train(&mut model, &ops, &g.features, &g.labels, &cfg, None);
        assert!(
            report.train_accuracy > 0.85,
            "{} underfits: {}",
            kind.name(),
            report.train_accuracy
        );
    }
}

#[test]
fn accuracy_is_invariant_to_logit_scaling() {
    let (ops, x, y) = hard_dataset(4);
    let mut model = GnnModel::new(GnnKind::Sgc, 12, 0, 4, 6);
    let cfg = TrainConfig { epochs: 40, lr: 0.05, ..TrainConfig::default() };
    train(&mut model, &ops, &x, &y, &cfg, None);
    let logits = model.predict(&ops, &x);
    assert_eq!(accuracy(&logits, &y), accuracy(&logits.scale(7.3), &y));
}

#[test]
fn losses_are_monotone_on_average() {
    // Smoothed early losses must exceed smoothed late losses.
    let (ops, x, y) = hard_dataset(5);
    let mut model = GnnModel::new(GnnKind::Sage, 12, 16, 4, 7);
    let cfg = TrainConfig { epochs: 100, lr: 0.03, ..TrainConfig::default() };
    let report = train(&mut model, &ops, &x, &y, &cfg, None);
    let early: f32 = report.losses[..10].iter().sum::<f32>() / 10.0;
    let late: f32 = report.losses[report.losses.len() - 10..].iter().sum::<f32>() / 10.0;
    assert!(late < early, "{early} -> {late}");
}
