//! The persistent worker pool and the chunked-execution primitives.
//!
//! One process-global pool, created on the first parallel submission.
//! Workers are spawned on demand up to `requested_threads - 1` (the
//! submitting thread always participates, so `MCOND_THREADS=4` means three
//! workers plus the caller) and then parked on a condvar between batches.
//!
//! A *batch* is one submission: a shared `Fn(Range<usize>)` body plus a
//! list of disjoint ranges. Tasks are claimed with a relaxed atomic
//! fetch-add (cheap work stealing); completion is a counter plus condvar.
//! The submitting thread pushes the batch, helps drain it, then blocks
//! until the last straggler finishes — which is also what makes the
//! lifetime erasure below sound: the closure cannot be dropped while any
//! worker can still reach it.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on pool participants; `MCOND_THREADS` and
/// [`with_thread_limit`] both clamp to it.
const MAX_THREADS: usize = 256;

/// Scheduling granularity: aim for this many chunks per participant so the
/// fetch-add work stealing can rebalance uneven chunks.
const CHUNKS_PER_THREAD: usize = 4;

/// The type-erased task body shared by every task of a batch.
type Body = dyn Fn(Range<usize>) + Sync;

/// One submission: a shared body plus the ranges to run it over.
struct Batch {
    /// Lifetime-erased pointer to the caller's closure.
    ///
    /// SAFETY contract: [`run_batch`] does not return until `completed`
    /// reaches `ranges.len()`, and every dereference happens before the
    /// completion increment that accounts for it, so the pointee outlives
    /// all uses.
    body: *const Body,
    ranges: Vec<Range<usize>>,
    /// Submitter's trace id + span path, entered by workers while they
    /// drain this batch so their spans attribute to the owning request.
    ctx: mcond_obs::TraceContext,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Finished task count; the task that completes the batch flips `done`.
    completed: AtomicUsize,
    /// First panic payload observed while running tasks.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `body` is only dereferenced while the submitting thread blocks in
// `run_batch`, which keeps the pointee alive and shared (`Sync`) for the
// whole window. All other fields are Send + Sync.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// `true` once every task index has been claimed.
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.ranges.len()
    }

    /// Claims and runs tasks until none remain.
    fn drain(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.ranges.len() {
                return;
            }
            let range = self.ranges[idx].clone();
            // SAFETY: see the `body` field contract — the submitter is
            // blocked until we bump `completed` below, so the closure is
            // alive here.
            let body = unsafe { &*self.body };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(range))) {
                let mut slot = lock(&self.panic_payload);
                slot.get_or_insert(payload);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.ranges.len() {
                *lock(&self.done) = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct Pool {
    /// Batches with unclaimed tasks. Usually empty or one entry; concurrent
    /// submitters (e.g. parallel test binaries) may stack several.
    queue: Mutex<Vec<Arc<Batch>>>,
    work_cv: Condvar,
    /// Workers spawned so far (grows on demand, never shrinks).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// `MCOND_THREADS` parsed once per process (0/unset → available
/// parallelism).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Set for pool workers (permanently) and for any thread while it
    /// drains a batch: parallel primitives called under it run serially.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
    /// [`with_thread_limit`] override.
    static THREAD_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        let configured = std::env::var("MCOND_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        let n = if configured == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            configured
        };
        n.clamp(1, MAX_THREADS)
    })
}

/// The number of participants (including the calling thread) a parallel
/// region entered *right now, on this thread* would use.
///
/// Inside a pool task this is always 1: nested regions run serially.
#[must_use]
pub fn max_threads() -> usize {
    if IN_PARALLEL_REGION.with(Cell::get) {
        return 1;
    }
    THREAD_LIMIT
        .with(Cell::get)
        .map_or_else(env_threads, |n| n.clamp(1, MAX_THREADS))
}

/// Runs `f` with the calling thread's parallelism capped at `threads`
/// (1 forces the serial path). Restores the previous limit afterwards,
/// also on panic.
///
/// This exists so determinism tests and benches can compare thread counts
/// within one process without racing on the `MCOND_THREADS` environment
/// variable.
pub fn with_thread_limit<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_LIMIT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_LIMIT.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// Marks the current thread as inside a parallel region for the duration
/// of the returned guard.
fn enter_region() -> impl Drop {
    struct Leave(bool);
    impl Drop for Leave {
        fn drop(&mut self) {
            IN_PARALLEL_REGION.with(|c| c.set(self.0));
        }
    }
    Leave(IN_PARALLEL_REGION.with(|c| c.replace(true)))
}

fn worker_loop() {
    // Workers never start nested parallel regions.
    IN_PARALLEL_REGION.with(|c| c.set(true));
    let pool = POOL.get().expect("worker spawned before pool init");
    loop {
        let batch = {
            let mut queue = lock(&pool.queue);
            loop {
                queue.retain(|b| !b.exhausted());
                if let Some(b) = queue.first() {
                    break Arc::clone(b);
                }
                queue = pool
                    .work_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Attribute everything this batch does to the submitting request
        // (no-op context when tracing was off at submission).
        let _ctx = batch.ctx.enter();
        batch.drain();
    }
}

/// Returns the pool, spawning workers until `participants - 1` exist.
fn pool_for(participants: usize) -> &'static Pool {
    let pool = POOL.get_or_init(|| Pool {
        queue: Mutex::new(Vec::new()),
        work_cv: Condvar::new(),
        spawned: Mutex::new(0),
    });
    let wanted = participants.saturating_sub(1);
    let mut spawned = lock(&pool.spawned);
    while *spawned < wanted {
        let name = format!("mcond-par-{}", *spawned);
        match std::thread::Builder::new().name(name).spawn(worker_loop) {
            Ok(_) => {
                *spawned += 1;
                mcond_obs::counter_add("par.pool.threads", 1);
            }
            // Out of threads: run with what we have (possibly serial).
            Err(_) => break,
        }
    }
    pool
}

/// Submits `ranges` over `body` and blocks until every task has finished.
/// The caller participates in draining its own batch, so completion never
/// depends on worker availability.
fn run_batch(ranges: Vec<Range<usize>>, participants: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    debug_assert!(!ranges.is_empty());
    mcond_obs::counter_add("par.pool.tasks", ranges.len() as u64);
    // SAFETY: we erase the closure's lifetime but do not return before
    // `done` is signalled, i.e. before the last dereference has completed.
    let body_erased: *const Body = unsafe { std::mem::transmute(body) };
    let batch = Arc::new(Batch {
        body: body_erased,
        ranges,
        // The submitting thread keeps its own stack; only workers enter.
        ctx: mcond_obs::capture_context(),
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panic_payload: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    let pool = pool_for(participants);
    {
        let mut queue = lock(&pool.queue);
        queue.push(Arc::clone(&batch));
        pool.work_cv.notify_all();
    }
    {
        let _region = enter_region();
        batch.drain();
    }
    let mut done = lock(&batch.done);
    while !*done {
        done = batch
            .done_cv
            .wait(done)
            .unwrap_or_else(PoisonError::into_inner);
    }
    drop(done);
    // Drop our queue entry eagerly (workers also prune exhausted batches).
    lock(&pool.queue).retain(|b| !Arc::ptr_eq(b, &batch));
    let payload = lock(&batch.panic_payload).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Splits `0..len` into contiguous chunks of at least `min_chunk` items,
/// aiming for a few chunks per participant. Always returns at least one
/// range for `len > 0`, in ascending order, tiling `0..len` exactly.
#[must_use]
pub fn chunk_ranges(len: usize, min_chunk: usize, participants: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let target = participants.max(1) * CHUNKS_PER_THREAD;
    let chunk = len.div_ceil(target).max(min_chunk.max(1));
    (0..len)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(len))
        .collect()
}

/// Runs `f` over contiguous chunks of `0..len` (each at least `min_chunk`
/// long), in parallel when profitable.
///
/// The serial path (`MCOND_THREADS=1`, nested regions, or a single chunk)
/// calls `f(0..len)` once; chunk boundaries never influence what `f`
/// computes, only how the iteration space is scheduled.
///
/// # Panics
/// Re-raises the first panic observed in any chunk after all chunks have
/// settled.
pub fn parallel_for_chunks<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = max_threads();
    if threads <= 1 || len <= min_chunk.max(1) {
        f(0..len);
        return;
    }
    let ranges = chunk_ranges(len, min_chunk, threads);
    if ranges.len() <= 1 {
        f(0..len);
        return;
    }
    run_batch(ranges, threads, &f);
}

/// Runs `f` over the given ranges (parallel when profitable), e.g.
/// nnz-balanced CSR row ranges. The serial path executes them in order.
///
/// # Panics
/// Re-raises the first panic observed in any range after all have settled.
pub fn parallel_for_ranges<F>(ranges: &[Range<usize>], f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = max_threads();
    if threads <= 1 || ranges.len() <= 1 {
        for r in ranges {
            f(r.clone());
        }
        return;
    }
    run_batch(ranges.to_vec(), threads, &f);
}

/// Splits the row-major buffer `data` (rows of `row_len` values) into
/// contiguous row chunks of at least `min_rows` rows and calls
/// `f(row_range, chunk)` for each — every invocation owns a **disjoint
/// `&mut` window** of the buffer, which is what makes the parallel kernels
/// race-free without atomics.
///
/// # Panics
/// Panics when `data.len()` is not a multiple of `row_len`; re-raises task
/// panics like [`parallel_for_chunks`].
pub fn parallel_row_chunks<F>(data: &mut [f32], row_len: usize, min_rows: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "parallel_row_chunks: buffer of {} is not rows of {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let ranges = chunk_ranges(rows, min_rows, max_threads());
    parallel_row_ranges(data, row_len, &ranges, f);
}

/// [`parallel_row_chunks`] with caller-chosen row ranges; the ranges must
/// tile `0..rows` in ascending order.
///
/// # Panics
/// Panics when the ranges do not tile the buffer exactly; re-raises task
/// panics like [`parallel_for_chunks`].
pub fn parallel_row_ranges<F>(data: &mut [f32], row_len: usize, ranges: &[Range<usize>], f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    row_ranges_impl(data, row_len, ranges, None, f);
}

/// [`parallel_row_ranges`] with a caller-chosen **claim order**: `order[k]`
/// is the index (into `ranges`) of the k-th window handed out. The sparse
/// kernels use this to start the heaviest nnz ranges first so a straggler
/// chunk never runs alone at the tail of the batch.
///
/// The order is purely a scheduling hint — every window is still a disjoint
/// `&mut` stripe and each output element is produced by exactly one `f`
/// invocation, so results are identical for every permutation (and on the
/// serial path, which ignores the order and runs ascending).
///
/// # Panics
/// Panics when `order` is not a permutation of `0..ranges.len()`, when the
/// ranges do not tile the buffer exactly; re-raises task panics like
/// [`parallel_for_chunks`].
pub fn parallel_row_ranges_ordered<F>(
    data: &mut [f32],
    row_len: usize,
    ranges: &[Range<usize>],
    order: &[usize],
    f: F,
) where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    assert_eq!(order.len(), ranges.len(), "parallel_row_ranges_ordered: order length");
    let mut seen = vec![false; ranges.len()];
    for &idx in order {
        assert!(
            idx < ranges.len() && !std::mem::replace(&mut seen[idx], true),
            "parallel_row_ranges_ordered: order is not a permutation (index {idx})"
        );
    }
    row_ranges_impl(data, row_len, ranges, Some(order), f);
}

fn row_ranges_impl<F>(
    data: &mut [f32],
    row_len: usize,
    ranges: &[Range<usize>],
    order: Option<&[usize]>,
    f: F,
) where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    if ranges.is_empty() {
        assert!(data.is_empty(), "parallel_row_ranges: ranges do not tile the buffer");
        return;
    }
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "parallel_row_ranges: buffer of {} is not rows of {row_len}",
        data.len()
    );
    let threads = max_threads();
    if threads <= 1 || ranges.len() <= 1 {
        let mut remaining = data;
        let mut expected = 0;
        for r in ranges {
            assert_eq!(r.start, expected, "parallel_row_ranges: ranges must tile in order");
            expected = r.end;
            let (head, tail) = std::mem::take(&mut remaining).split_at_mut((r.end - r.start) * row_len);
            f(r.clone(), head);
            remaining = tail;
        }
        assert!(remaining.is_empty(), "parallel_row_ranges: ranges do not tile the buffer");
        return;
    }
    // Pre-split the buffer into per-range windows; tasks claim them by
    // index. The Mutex costs one uncontended lock per chunk — noise next
    // to the kernel work a chunk represents.
    let mut windows: Vec<Option<(Range<usize>, &mut [f32])>> = Vec::with_capacity(ranges.len());
    {
        let mut remaining = data;
        let mut expected = 0;
        for r in ranges {
            assert_eq!(r.start, expected, "parallel_row_ranges: ranges must tile in order");
            expected = r.end;
            let (head, tail) = std::mem::take(&mut remaining).split_at_mut((r.end - r.start) * row_len);
            windows.push(Some((r.clone(), head)));
            remaining = tail;
        }
        assert!(remaining.is_empty(), "parallel_row_ranges: ranges do not tile the buffer");
    }
    let windows = Mutex::new(windows);
    let body = |idx_range: Range<usize>| {
        for idx in idx_range {
            let (rows, chunk) = lock(&windows)[idx].take().expect("window claimed twice");
            f(rows, chunk);
        }
    };
    let idx_ranges: Vec<Range<usize>> = match order {
        Some(order) => order.iter().map(|&i| i..i + 1).collect(),
        None => (0..ranges.len()).map(|i| i..i + 1).collect(),
    };
    run_batch(idx_ranges, threads, &body);
}

/// Runs two independent closures, the second potentially on a pool worker,
/// and returns both results. Falls back to sequential execution when the
/// pool is serial.
pub fn join<RA, RB>(fa: impl FnOnce() -> RA + Send, fb: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if max_threads() <= 1 {
        return (fa(), fb());
    }
    let fa = Mutex::new(Some(fa));
    let fb = Mutex::new(Some(fb));
    let ra = Mutex::new(None);
    let rb = Mutex::new(None);
    let body = |idx_range: Range<usize>| {
        for idx in idx_range {
            if idx == 0 {
                let g = lock(&fa).take().expect("join: first closure claimed twice");
                *lock(&ra) = Some(g());
            } else {
                let g = lock(&fb).take().expect("join: second closure claimed twice");
                *lock(&rb) = Some(g());
            }
        }
    };
    run_batch(vec![0..1, 1..2], 2, &body);
    let ra = lock(&ra).take().expect("join: first result missing");
    let rb = lock(&rb).take().expect("join: second result missing");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ordered_row_ranges_match_unordered_at_every_thread_count() {
        let ranges = vec![0..3, 3..4, 4..9, 9..16];
        let order = vec![2, 3, 0, 1]; // heaviest-first style permutation
        let fill = |rows: Range<usize>, chunk: &mut [f32]| {
            for (ii, i) in rows.enumerate() {
                for (j, v) in chunk[ii * 4..(ii + 1) * 4].iter_mut().enumerate() {
                    *v = (i * 4 + j) as f32;
                }
            }
        };
        let mut expect = vec![0.0f32; 16 * 4];
        parallel_row_ranges(&mut expect, 4, &ranges, fill);
        for threads in [1, 4] {
            let mut got = vec![0.0f32; 16 * 4];
            with_thread_limit(threads, || {
                parallel_row_ranges_ordered(&mut got, 4, &ranges, &order, fill);
            });
            assert_eq!(got, expect, "claim order changed results at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn ordered_row_ranges_reject_duplicate_indices() {
        let mut data = vec![0.0f32; 4];
        parallel_row_ranges_ordered(&mut data, 1, &[0..2, 2..4], &[0, 0], |_, _| {});
    }

    #[test]
    #[should_panic(expected = "order length")]
    fn ordered_row_ranges_reject_short_order() {
        let mut data = vec![0.0f32; 4];
        parallel_row_ranges_ordered(&mut data, 1, &[0..2, 2..4], &[0], |_, _| {});
    }

    #[test]
    fn chunk_ranges_tile_the_space() {
        for &(len, min_chunk, threads) in
            &[(0usize, 1usize, 4usize), (1, 1, 4), (7, 3, 2), (1000, 1, 8), (5, 100, 4)]
        {
            let ranges = chunk_ranges(len, min_chunk, threads);
            let mut expected = 0;
            for r in &ranges {
                assert_eq!(r.start, expected);
                assert!(r.end > r.start);
                if r.end != len {
                    assert!(r.end - r.start >= min_chunk.max(1));
                }
                expected = r.end;
            }
            assert_eq!(expected, len);
        }
    }

    #[test]
    fn parallel_for_chunks_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        with_thread_limit(4, || {
            parallel_for_chunks(hits.len(), 1, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_ranges_runs_each_range() {
        let sum = AtomicU64::new(0);
        let ranges = vec![0..3, 3..7, 7..20];
        with_thread_limit(3, || {
            parallel_for_ranges(&ranges, |r| {
                sum.fetch_add((r.end - r.start) as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn row_chunks_hand_out_disjoint_windows() {
        let mut data = vec![0.0f32; 97 * 5];
        with_thread_limit(4, || {
            parallel_row_chunks(&mut data, 5, 1, |rows, chunk| {
                assert_eq!(chunk.len(), (rows.end - rows.start) * 5);
                for (offset, value) in chunk.iter_mut().enumerate() {
                    *value += (rows.start * 5 + offset) as f32;
                }
            });
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32, "row element {i} written exactly once");
        }
    }

    #[test]
    fn serial_limit_forces_inline_execution() {
        let on_caller = std::thread::current().id();
        with_thread_limit(1, || {
            assert_eq!(max_threads(), 1);
            parallel_for_chunks(100, 1, |_| {
                assert_eq!(std::thread::current().id(), on_caller);
            });
        });
    }

    #[test]
    fn nested_regions_run_serially() {
        with_thread_limit(4, || {
            parallel_for_chunks(8, 1, |_| {
                // Inside a task the effective parallelism is 1 …
                assert_eq!(max_threads(), 1);
                // … so a nested region runs inline without deadlocking.
                let inner = AtomicUsize::new(0);
                parallel_for_chunks(50, 1, |r| {
                    inner.fetch_add(r.end - r.start, Ordering::Relaxed);
                });
                assert_eq!(inner.load(Ordering::Relaxed), 50);
            });
        });
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = with_thread_limit(4, || join(|| 2 + 2, || "ok".to_owned()));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        let (a, b) = with_thread_limit(1, || join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn task_panics_propagate_to_the_submitter() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_limit(4, || {
                parallel_for_chunks(64, 1, |range| {
                    assert!(!range.contains(&13), "boom at 13");
                });
            });
        });
        assert!(caught.is_err(), "panic must cross the pool boundary");
        // The pool stays usable afterwards.
        let count = AtomicUsize::new(0);
        with_thread_limit(4, || {
            parallel_for_chunks(64, 1, |r| {
                count.fetch_add(r.end - r.start, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    /// The panic-isolation contract (see the crate docs): when one chunk
    /// panics, every sibling chunk still runs and its writes land before
    /// the payload is re-raised on the submitter — and a task that catches
    /// its own panic hides it from the pool entirely.
    #[test]
    fn sibling_chunks_complete_their_writes_when_one_panics() {
        let done: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        let caught = std::panic::catch_unwind(|| {
            with_thread_limit(4, || {
                parallel_for_chunks(32, 1, |range| {
                    assert!(!range.contains(&20), "boom at 20");
                    for i in range {
                        done[i].store(1, Ordering::Relaxed);
                    }
                });
            });
        });
        assert!(caught.is_err());
        // Exactly the panicked chunk's writes are missing.
        let boom = chunk_ranges(32, 1, 4)
            .into_iter()
            .find(|r| r.contains(&20))
            .expect("some chunk covers index 20");
        for (i, d) in done.iter().enumerate() {
            let expect = usize::from(!boom.contains(&i));
            assert_eq!(d.load(Ordering::Relaxed), expect, "index {i}");
        }

        // A task-level catch_unwind keeps the panic away from the pool:
        // the submission returns normally with every slot filled.
        let outcomes: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        with_thread_limit(4, || {
            parallel_for_chunks(32, 1, |range| {
                for i in range.clone() {
                    let r = std::panic::catch_unwind(|| assert!(i != 20, "boom at 20"));
                    outcomes[i].store(if r.is_ok() { 1 } else { 2 }, Ordering::Relaxed);
                }
            });
        });
        for (i, o) in outcomes.iter().enumerate() {
            let expect = if i == 20 { 2 } else { 1 };
            assert_eq!(o.load(Ordering::Relaxed), expect, "slot {i}");
        }
    }

    #[test]
    fn with_thread_limit_restores_on_exit() {
        let before = max_threads();
        with_thread_limit(2, || assert_eq!(max_threads(), 2));
        assert_eq!(max_threads(), before);
        let _ = std::panic::catch_unwind(|| {
            with_thread_limit(3, || panic!("escape"));
        });
        assert_eq!(max_threads(), before, "limit restored after panic");
    }
}
