//! Deterministic data-parallel execution for the `mcond` workspace.
//!
//! A lazily-initialised, persistent worker pool (std only — no external
//! crates, keeping the workspace hermetic) behind a handful of structured
//! primitives:
//!
//! * [`parallel_for_chunks`] — split `0..len` into contiguous chunks and
//!   run a shared closure over them on the pool;
//! * [`parallel_for_ranges`] — the same with caller-chosen ranges (e.g.
//!   nnz-balanced CSR row ranges);
//! * [`parallel_row_chunks`] / [`parallel_row_ranges`] — hand each task a
//!   **disjoint `&mut` window** of a row-major output buffer, the pattern
//!   every kernel in `mcond-linalg`/`mcond-sparse` uses;
//! * [`join`] — run two independent closures, potentially in parallel.
//!
//! # Determinism contract
//!
//! Callers partition the *output*: every output element is produced by
//! exactly one task, with the same floating-point operations in the same
//! order as the serial path. There are no float atomics and no
//! reduction-order drift, so results are **bit-for-bit identical** for any
//! thread count — `MCOND_THREADS=1` and `MCOND_THREADS=64` agree exactly.
//! Chunk boundaries affect scheduling only, never values.
//!
//! # Configuration
//!
//! * `MCOND_THREADS` — total participants (the submitting thread counts as
//!   one). Unset or `0` means [`std::thread::available_parallelism`]; `1`
//!   forces the serial path (no workers are ever spawned, useful for
//!   debugging). Read once per process.
//! * [`with_thread_limit`] — a thread-local override for tests and benches
//!   that must compare thread counts inside one process.
//!
//! Nested parallelism degrades gracefully: a parallel region entered from
//! inside a pool task runs serially inline on the calling thread (no
//! deadlock, no queue churn), which is exactly what a fan-out like
//! `InductiveServer::serve_many` wants — outer requests parallel, inner
//! kernels serial per worker.
//!
//! # Panic isolation
//!
//! A panic inside one task does not tear down the pool and does not stop
//! its siblings: every task runs behind `catch_unwind`, the remaining
//! tasks of the submission run to completion (their writes land), the
//! workers survive, and the *first* captured payload is re-raised on the
//! submitting thread only after the whole submission has settled. Callers
//! that want per-task error values instead of a re-raised panic wrap their
//! task body in `catch_unwind` themselves — since nested regions run
//! serially inline, such a wrapper catches everything the task does and
//! the pool never observes the panic at all. That is how
//! `InductiveServer::try_serve_many` turns a panicking request into
//! `Err(ServeError::Panicked)` while sibling requests complete normally.
//!
//! # Observability
//!
//! Each parallel submission bumps the `par.pool.tasks` counter by its task
//! count and each spawned worker bumps `par.pool.threads` once; both go
//! through `mcond_obs::counter_add`, which is a single relaxed atomic load
//! when observability is disabled.

mod pool;

pub use pool::{
    chunk_ranges, join, max_threads, parallel_for_chunks, parallel_for_ranges,
    parallel_row_chunks, parallel_row_ranges, parallel_row_ranges_ordered, with_thread_limit,
};
