//! Split-operator serving fast path: equivalence, probes, and calibration
//! (DESIGN.md §4g).
//!
//! The sweep asserts the tentpole contract: [`ServeMode::Exact`] logits
//! are **bitwise identical** to the legacy [`ServeMode::Extended`] path
//! for every architecture, at 1 and 4 threads, under every fallback
//! policy — while copying zero base-feature bytes per request (the
//! `serve.bytes_saved` probe). The chaos catalogue passes through the
//! fast path with the same typed-error taxonomy, and the opt-in
//! [`ServeMode::FrozenBase`] cache is calibrated against the exact path.

use mcond_core::chaos::corrupted_batches;
use mcond_core::{FallbackPolicy, InductiveServer, ServeError, ServeMode};
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{Graph, InductiveDataset};
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};

/// 6-node toy split: train {0,1,2} triangle, val {3}, test {4,5}; 3-dim
/// features; plus a 2-node synthetic graph whose mapping covers train
/// nodes {0,1} with half mass and train node 2 fully (so batch coverage
/// varies node to node).
fn fixture() -> (InductiveDataset, Graph, Csr) {
    let mut coo = Coo::new(6, 6);
    for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
        coo.push_sym(i, j, 1.0);
    }
    let features = MatRng::seed_from(7).normal(6, 3, 0.0, 1.0);
    let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
    let data = InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5]);

    let syn = Graph::new(
        Csr::eye(2),
        DMat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]),
        vec![0, 1],
        2,
    );
    let mut map = Coo::new(3, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    map.push(2, 1, 1.0);
    (data, syn, map.to_csr())
}

/// A mapping with train node 2 fully pruned: batch node 5 (attached only
/// to train 2) gets an empty `aM` row, exercising the fallback branches.
fn pruned_mapping() -> Csr {
    let mut map = Coo::new(3, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    map.to_csr()
}

fn counter(server: &InductiveServer<'_>, name: &str) -> u64 {
    server.metrics_snapshot().counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
}

fn bytes_saved(server: &InductiveServer<'_>) -> f64 {
    server
        .metrics_snapshot()
        .gauges
        .iter()
        .find(|(k, _)| k == "serve.bytes_saved")
        .map_or(0.0, |(_, v)| *v)
}

/// The tentpole sweep: every architecture × thread count × fallback
/// policy, on both serving modes, with a coverage threshold that forces
/// some nodes through the fallback — Exact and Extended must agree
/// bitwise on every Ok result and on every typed error.
#[test]
fn exact_path_is_bitwise_identical_to_extended_everywhere() {
    let (data, syn, _) = fixture();
    let mapping = pruned_mapping();
    let original = data.original_graph();
    let batches =
        [data.batch(&[4, 5], true), data.batch(&[4], false), data.batch(&[5], true)];
    let policies =
        [FallbackPolicy::Reject, FallbackPolicy::SelfLoopOnly, FallbackPolicy::OriginalGraph];

    for kind in GnnKind::ALL {
        let model = GnnModel::new(kind, 3, 4, 2, 1);
        for threads in [1usize, 4] {
            mcond_par::with_thread_limit(threads, || {
                for policy in policies {
                    // Synthetic (Eq. 11) serving, fallback armed with the
                    // original graph so `OriginalGraph` can degrade.
                    let exact = InductiveServer::on_synthetic(&syn, &mapping, &model)
                        .with_fallback(policy)
                        .with_original_graph(&original);
                    let legacy = InductiveServer::on_synthetic(&syn, &mapping, &model)
                        .with_fallback(policy)
                        .with_original_graph(&original)
                        .with_serve_mode(ServeMode::Extended);
                    for (bi, batch) in batches.iter().enumerate() {
                        let a = exact.try_serve(batch);
                        let b = legacy.try_serve(batch);
                        match (&a, &b) {
                            (Ok(x), Ok(y)) => assert_eq!(
                                x.as_slice(),
                                y.as_slice(),
                                "{} t{threads} {policy:?} batch {bi}: logits drifted",
                                kind.name()
                            ),
                            (Err(x), Err(y)) => assert_eq!(x, y),
                            _ => panic!(
                                "{} t{threads} {policy:?} batch {bi}: Ok/Err disagreement",
                                kind.name()
                            ),
                        }
                    }

                    // Original-graph (Eq. 3) serving.
                    let exact = InductiveServer::on_original(&original, &model)
                        .with_fallback(policy);
                    let legacy = InductiveServer::on_original(&original, &model)
                        .with_fallback(policy)
                        .with_serve_mode(ServeMode::Extended);
                    for (bi, batch) in batches.iter().enumerate() {
                        let a = exact.try_serve(batch);
                        let b = legacy.try_serve(batch);
                        match (&a, &b) {
                            (Ok(x), Ok(y)) => assert_eq!(
                                x.as_slice(),
                                y.as_slice(),
                                "{} t{threads} {policy:?} original batch {bi}",
                                kind.name()
                            ),
                            (Err(x), Err(y)) => assert_eq!(x, y),
                            _ => panic!("{} t{threads} {policy:?}: disagreement", kind.name()),
                        }
                    }
                }
            });
        }
    }
}

/// The zero-copy probe: every fast-path request books exactly the
/// `N'×d×4` base-feature bytes the legacy vstack would have copied; the
/// legacy path books none.
#[test]
fn bytes_saved_probe_counts_the_avoided_base_copies() {
    let (data, syn, mapping) = fixture();
    let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
    let batch = data.batch(&[4, 5], false);
    let per_request = (syn.features.rows() * syn.features.cols() * 4) as f64;

    let fast = InductiveServer::on_synthetic(&syn, &mapping, &model);
    for _ in 0..3 {
        let _ = fast.serve(&batch);
    }
    assert_eq!(bytes_saved(&fast), 3.0 * per_request);

    // Empty batches never reach the forward pass — nothing to save.
    let _ = fast.serve(&data.batch(&[], false));
    assert_eq!(bytes_saved(&fast), 3.0 * per_request);
    assert_eq!(counter(&fast, "serve.requests"), 4);

    let legacy = InductiveServer::on_synthetic(&syn, &mapping, &model)
        .with_serve_mode(ServeMode::Extended);
    let _ = legacy.serve(&batch);
    assert_eq!(bytes_saved(&legacy), 0.0);
}

/// The chaos catalogue passes through the fast path (and the frozen-base
/// cache) with the same typed-error taxonomy — no panic escapes, and the
/// donor keeps serving bitwise-stable finite logits afterwards.
#[test]
fn chaos_catalogue_passes_through_the_fast_path() {
    let (data, syn, mapping) = fixture();
    let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
    let donor = data.batch(&[4, 5], true);
    let cases = corrupted_batches(&donor);
    assert!(cases.len() >= 10);

    let servers = [
        ("exact", InductiveServer::on_synthetic(&syn, &mapping, &model)),
        (
            "frozen",
            InductiveServer::on_synthetic(&syn, &mapping, &model)
                .with_serve_mode(ServeMode::FrozenBase),
        ),
    ];
    for (mode, server) in &servers {
        let good = server.try_serve(&donor).expect("donor batch is valid");
        assert!(good.all_finite(), "{mode}: donor logits must be finite");
        for case in corrupted_batches(&donor) {
            match server.try_serve(&case.batch) {
                Err(ServeError::InvalidBatch(_)) => {}
                Err(other) => panic!("{mode}/{}: unexpected error {other:?}", case.name),
                Ok(_) => panic!("{mode}/{}: corrupted batch was served", case.name),
            }
        }
        let again = server.try_serve(&donor).expect("server survives the sweep");
        assert_eq!(again.as_slice(), good.as_slice());
        assert_eq!(counter(server, "serve.panic"), 0, "{mode}");
        assert_eq!(counter(server, "serve.rejected"), cases.len() as u64, "{mode}");
    }
}

/// Calibration of the opt-in frozen-base cache: a batch with no
/// incremental edges is served exactly; connected batches deviate by a
/// bounded, finite amount for every architecture, and the cache probes
/// record the hits.
#[test]
fn frozen_base_calibration_against_the_exact_path() {
    let (data, syn, mapping) = fixture();
    let connected = data.batch(&[4, 5], false);
    let disconnected = {
        let mut b = connected.clone();
        b.incremental = Csr::empty(2, 3);
        b
    };

    for kind in GnnKind::ALL {
        let model = GnnModel::new(kind, 3, 4, 2, 1);
        let exact = InductiveServer::on_synthetic(&syn, &mapping, &model);
        let frozen = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_serve_mode(ServeMode::FrozenBase);

        // Exact on disconnected batches (no base perturbation to ignore).
        let e = exact.serve(&disconnected);
        let f = frozen.serve(&disconnected);
        for (a, b) in e.as_slice().iter().zip(f.as_slice()) {
            assert!(
                mcond_linalg::approx_eq(*a, *b, 1e-5),
                "{}: disconnected batch must serve exactly ({a} vs {b})",
                kind.name()
            );
        }

        // Bounded deviation on connected batches.
        let e = exact.serve(&connected);
        let f = frozen.serve(&connected);
        assert_eq!(e.shape(), f.shape());
        assert!(f.all_finite(), "{}", kind.name());
        let dev = e
            .as_slice()
            .iter()
            .zip(f.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(dev < 1.0, "{}: frozen-base deviation {dev} out of bounds", kind.name());

        assert_eq!(counter(&frozen, "serve.cache.hits"), 2, "{}", kind.name());
        assert_eq!(counter(&exact, "serve.cache.hits"), 0, "{}", kind.name());
    }
}

/// Regression for the coverage-accounting bugfix: negative edge weights
/// must not zero out coverage (spurious rejection), and coverage must
/// never exceed 1 even when signed sums would inflate it.
#[test]
fn coverage_uses_absolute_mass_and_clamps_to_one() {
    let (data, syn, mapping) = fixture();
    let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
    let donor = data.batch(&[4], false);

    // Node with weights {+0.5 → train 0, -1.0 → train 1}: both map onto
    // synthetic node 0 with mass 0.5, so the aM entry is 0.25 - 0.5 =
    // -0.25 and the old *signed* sum (-0.5 raw) forced coverage to 0.0 —
    // a spurious rejection under any positive threshold. Absolute mass
    // gives |−0.25| / 1.5 = 1/6.
    let negative = {
        let mut b = donor.clone();
        let mut inc = Coo::new(1, 3);
        inc.push(0, 0, 0.5);
        inc.push(0, 1, -1.0);
        b.incremental = inc.to_csr();
        b
    };
    let strict = InductiveServer::on_synthetic(&syn, &mapping, &model)
        .with_fallback(FallbackPolicy::Reject)
        .with_coverage_threshold(0.1);
    let served = strict.try_serve(&negative);
    assert!(
        served.is_ok(),
        "negative weights must not be spuriously rejected: {served:?}"
    );
    let cov = strict
        .metrics_snapshot()
        .histograms
        .iter()
        .find(|(k, _)| k == "serve.coverage")
        .expect("coverage histogram")
        .1;
    assert!((cov.max - 1.0 / 6.0).abs() < 1e-5, "coverage {0} != 1/6", cov.max);

    // A super-stochastic mapping row (mass 2.0) would report coverage 2.0
    // without the clamp — the histogram must stay inside [0, 1].
    let heavy = {
        let mut m = Coo::new(3, 2);
        m.push(0, 0, 2.0);
        m.push(1, 0, 0.5);
        m.push(2, 1, 1.0);
        m.to_csr()
    };
    let inflated = {
        let mut b = donor.clone();
        let mut inc = Coo::new(1, 3);
        inc.push(0, 0, 1.0);
        b.incremental = inc.to_csr();
        b
    };
    let server = InductiveServer::on_synthetic(&syn, &heavy, &model);
    let _ = server.serve(&inflated);
    let cov = server
        .metrics_snapshot()
        .histograms
        .iter()
        .find(|(k, _)| k == "serve.coverage")
        .expect("coverage histogram")
        .1;
    assert!((cov.max - 1.0).abs() < 1e-6, "coverage must clamp to 1, got {}", cov.max);
    assert!(cov.min > 0.0, "abs-mass coverage of a non-empty row is positive");
}
