//! Golden-file test of the observability pipeline: one small condense →
//! train → serve run must emit JSONL in which *every* line parses back,
//! and the expected event families (spans with durations, per-step losses,
//! kernel counters, serve requests) are all present.

use mcond_core::{condense, InductiveServer, McondConfig};
use mcond_gnn::{train, GnnKind, GnnModel, GraphOps, TrainConfig};
use mcond_graph::{load_dataset, Scale};
use mcond_obs::{testing, Json};

fn get<'a>(line: &'a Json, key: &str) -> Option<&'a Json> {
    line.get(key)
}

#[test]
fn condense_train_serve_emits_well_formed_jsonl() {
    let cap = testing::capture();

    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    let cfg = McondConfig {
        ratio: 0.02,
        outer_loops: 1,
        relay_steps: 2,
        mapping_steps: 2,
        support_cap: 32,
        ..McondConfig::default()
    };
    let condensed = condense(&data, &cfg);

    let mut model = GnnModel::new(
        GnnKind::Gcn,
        data.full.feature_dim(),
        8,
        data.full.num_classes,
        7,
    );
    let ops = GraphOps::from_adj(&condensed.synthetic.adj);
    let train_cfg = TrainConfig { epochs: 3, lr: 0.05, ..TrainConfig::default() };
    let _report = train(
        &mut model,
        &ops,
        &condensed.synthetic.features,
        &condensed.synthetic.labels,
        &train_cfg,
        None,
    );

    let server =
        InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model);
    let batch = data.test_batches(40, false).remove(0);
    let _ = server.serve(&batch);

    // --- Every emitted line must parse back as a JSON object with the
    // --- envelope keys. --------------------------------------------------
    let text = cap.text();
    assert!(!text.is_empty(), "no events captured");
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let parsed = Json::parse(raw)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e}): {raw}"));
        for key in ["ev", "name", "t_us", "seq", "tid"] {
            assert!(parsed.get(key).is_some(), "line {i} missing {key}: {raw}");
        }
        lines.push(parsed);
    }

    let find = |ev: &str, name: &str| -> Vec<&Json> {
        lines
            .iter()
            .filter(|l| {
                get(l, "ev").and_then(Json::as_str) == Some(ev)
                    && get(l, "name").and_then(Json::as_str) == Some(name)
            })
            .collect()
    };

    // Root condense span closes with a measured duration and its config.
    let condense_spans = find("span", "condense");
    assert_eq!(condense_spans.len(), 1);
    assert!(get(condense_spans[0], "us").and_then(Json::as_f64).unwrap() > 0.0);
    let n_syn = get(find("span_start", "condense")[0], "fields")
        .and_then(|f| f.get("n_syn"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(n_syn >= 1.0);

    // Per-step losses: K x T relay steps with finite l_gra, and mapping
    // steps with l_tra/l_map.
    let relay_points = find("point", "condense.relay_step");
    assert_eq!(relay_points.len(), cfg.outer_loops * cfg.relay_steps);
    for pt in &relay_points {
        let l_gra =
            get(pt, "fields").and_then(|f| f.get("l_gra")).and_then(Json::as_f64).unwrap();
        assert!(l_gra.is_finite(), "non-finite l_gra");
    }
    let mapping_points = find("point", "condense.mapping_step");
    assert_eq!(mapping_points.len(), cfg.outer_loops * cfg.mapping_steps);
    for pt in &mapping_points {
        let fields = get(pt, "fields").unwrap();
        assert!(fields.get("l_tra").and_then(Json::as_f64).unwrap().is_finite());
        assert!(fields.get("l_map").and_then(Json::as_f64).unwrap().is_finite());
    }

    // Eq. (14) sparsification reports nnz before/after for A' and M.
    let sparsify = find("point", "condense.sparsify");
    assert_eq!(sparsify.len(), 1);
    let sf = get(sparsify[0], "fields").unwrap();
    let before = sf.get("adj_nnz_before").and_then(Json::as_f64).unwrap();
    let after = sf.get("adj_nnz_after").and_then(Json::as_f64).unwrap();
    assert!(after <= before);

    // Kernel counters made it into the condense-end metrics record.
    let metrics = find("metrics", "condense");
    assert_eq!(metrics.len(), 1);
    let counters = get(metrics[0], "metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(
        counters.get("linalg.matmul.flops").and_then(Json::as_f64).unwrap() > 0.0,
        "no matmul FLOPs counted during condense"
    );
    assert!(
        counters.get("sparse.spmm.nnz").and_then(Json::as_f64).unwrap() > 0.0,
        "no SpMM nnz counted during condense"
    );

    // Training emitted per-epoch losses inside its span.
    assert_eq!(find("point", "gnn.train.epoch").len(), train_cfg.epochs);
    assert_eq!(find("span", "gnn.train").len(), 1);

    // Serving emitted a span and a request point with latency + fanout.
    assert_eq!(find("span", "serve").len(), 1);
    let request = find("point", "serve.request");
    assert_eq!(request.len(), 1);
    let rf = get(request[0], "fields").unwrap();
    assert_eq!(rf.get("batch").and_then(Json::as_f64), Some(40.0));
    assert!(rf.get("fanout").and_then(Json::as_f64).is_some());
    assert!(rf.get("latency_us").and_then(Json::as_f64).is_some());

    // And the server's own snapshot agrees with the one request served.
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("serve.requests"), 1);
    assert_eq!(snap.histogram("serve.latency_us").unwrap().count, 1);
}

/// Request-scoped tracing golden test: every request in a fan-out gets its
/// own trace id, constant across all of that request's records; the serve
/// span decomposes into stage spans nested under it whose durations sum to
/// within the parent's duration; and turning tracing on does not perturb
/// the math — logits stay bitwise identical at 1 and 4 threads.
#[test]
fn traces_and_stage_spans_decompose_serving() {
    let cap = testing::capture();

    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    let model = GnnModel::new(GnnKind::Gcn, data.full.feature_dim(), 8, data.full.num_classes, 3);
    let original = data.original_graph();
    let server = InductiveServer::on_original(&original, &model);
    let mut batches = data.test_batches(10, true);
    batches.truncate(3);
    assert!(batches.len() >= 2, "need a real fan-out");

    let at_one = mcond_par::with_thread_limit(1, || server.try_serve_many(&batches));
    cap.clear();
    let at_four = mcond_par::with_thread_limit(4, || server.try_serve_many(&batches));
    for (i, (a, b)) in at_one.iter().zip(&at_four).enumerate() {
        let (a, b) = (a.as_ref().expect("serves at 1 thread"), b.as_ref().expect("at 4"));
        assert_eq!(a.as_slice(), b.as_slice(), "slot {i}: logits drift with tracing on");
    }

    // --- Inspect the traced 4-thread run. ---------------------------------
    let lines = cap.parsed_lines();
    let kind = |l: &Json| get(l, "ev").and_then(Json::as_str).unwrap_or("").to_owned();
    let name = |l: &Json| get(l, "name").and_then(Json::as_str).unwrap_or("").to_owned();
    let trace_of = |l: &Json| get(l, "trace").and_then(Json::as_f64).unwrap_or(0.0);
    let dur_of = |l: &Json| get(l, "us").and_then(Json::as_f64).unwrap_or(0.0);

    let serves: Vec<&Json> =
        lines.iter().filter(|l| kind(l) == "span" && name(l) == "serve").collect();
    assert_eq!(serves.len(), batches.len(), "one serve span per request");

    let mut seen = std::collections::BTreeSet::new();
    for serve in &serves {
        let trace = trace_of(serve);
        assert!(trace > 0.0, "serve span missing its trace id: {serve:?}");
        assert!(seen.insert(trace as u64), "trace id reused across requests");

        let serve_path = get(serve, "path").and_then(Json::as_str).unwrap();
        let in_request: Vec<&Json> =
            lines.iter().filter(|l| (trace_of(l) - trace).abs() < 0.5).collect();

        // Stage spans: exactly one of each, nested under this serve span,
        // sharing the request's trace id.
        let mut stage_sum = 0.0;
        for stage in ["validate", "attach", "propagate", "head"] {
            let spans: Vec<&&Json> = in_request
                .iter()
                .filter(|l| kind(l) == "span" && name(l) == stage)
                .collect();
            assert_eq!(spans.len(), 1, "stage {stage} for trace {trace}");
            let path = get(spans[0], "path").and_then(Json::as_str).unwrap();
            assert_eq!(
                path,
                format!("{serve_path}/{stage}"),
                "stage {stage} not nested under its serve span"
            );
            stage_sum += dur_of(spans[0]);
        }
        // Stages are sequential inside the serve span; allow 1us per stage
        // of truncation slop (durations round down independently).
        assert!(
            stage_sum <= dur_of(serve) + 4.0,
            "stage durations {stage_sum}us exceed serve span {}us",
            dur_of(serve)
        );

        // The request point carries the same id, so the JSONL log slices
        // into per-request timelines on the trace key alone.
        let points = in_request
            .iter()
            .filter(|l| kind(l) == "point" && name(l) == "serve.request")
            .count();
        assert_eq!(points, 1, "trace {trace}: serve.request point missing or duplicated");
    }
}

/// A request that panics past validation leaves a post-mortem: with the
/// flight recorder on, `try_serve_many` dumps the worker's event ring as a
/// `flight` record stamped with the panicking request's trace id.
#[test]
fn panicking_request_dumps_a_trace_stamped_flight_record() {
    let cap = testing::capture();

    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    // in_dim disagrees with the features: validation cannot see it, the
    // matmul inside the forward pass panics (same shape as chaos_sweep).
    let bad_model =
        GnnModel::new(GnnKind::Gcn, data.full.feature_dim() + 1, 8, data.full.num_classes, 3);
    let original = data.original_graph();
    let server = InductiveServer::on_original(&original, &bad_model);
    let batches = data.test_batches(10, true);

    mcond_obs::flight::enable(true);
    let results =
        mcond_par::with_thread_limit(1, || server.try_serve_many(&batches[..1]));
    mcond_obs::flight::enable(false);
    assert!(matches!(results[0], Err(mcond_core::ServeError::Panicked { .. })));

    let lines = cap.parsed_lines();
    let dumps: Vec<&Json> = lines
        .iter()
        .filter(|l| {
            get(l, "ev").and_then(Json::as_str) == Some("flight")
                && get(l, "name").and_then(Json::as_str) == Some("serve.panic")
        })
        .collect();
    assert_eq!(dumps.len(), 1, "caught panic must dump the flight ring once");
    let trace = get(dumps[0], "trace").and_then(Json::as_f64).unwrap_or(0.0);
    assert!(trace > 0.0, "flight dump must name the request that died");

    // The ring holds the dying request's own events — spans opened on the
    // way into the forward pass, stamped with the same trace id.
    let events = get(dumps[0], "events").and_then(Json::as_arr).expect("event payload");
    assert!(!events.is_empty());
    assert!(
        events.iter().any(|e| {
            e.get("trace").and_then(Json::as_f64) == Some(trace)
                && e.get("name").and_then(Json::as_str) == Some("serve")
        }),
        "ring should show the panicking request entering its serve span"
    );
    mcond_obs::flight::clear();
}
