//! Property tests of the condensation building blocks.

use mcond_core::{coreset, vng, CoresetMethod, Mapping};
use mcond_graph::{generate_sbm, SbmConfig};
use mcond_linalg::{DMat, MatRng};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = mcond_graph::Graph> {
    (40usize..120, 2usize..5, 1u64..30).prop_map(|(nodes, classes, seed)| {
        generate_sbm(&SbmConfig {
            nodes,
            edges: nodes * 3,
            feature_dim: 6,
            num_classes: classes,
            seed,
            ..SbmConfig::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every coreset method returns exactly the requested node count, a
    /// one-hot mapping, and preserves all classes.
    #[test]
    fn coreset_invariants(g in arb_graph(), extra in 0usize..10, seed in 0u64..5) {
        let n_select = g.num_classes + extra;
        for method in CoresetMethod::ALL {
            let reduced = coreset(&g, &g.features, n_select, method, seed);
            prop_assert_eq!(reduced.graph.num_nodes(), n_select);
            prop_assert_eq!(reduced.mapping.nnz(), n_select);
            prop_assert!(reduced.graph.class_counts().iter().all(|&c| c >= 1));
            // Mapping columns are a permutation-free selection: each column
            // has exactly one entry.
            let mut col_counts = vec![0usize; n_select];
            for (_, j, v) in reduced.mapping.iter() {
                prop_assert_eq!(v, 1.0);
                col_counts[j] += 1;
            }
            prop_assert!(col_counts.iter().all(|&c| c == 1));
        }
    }

    /// VNG covers every original node exactly once and its virtual features
    /// lie inside the convex hull (coordinate-wise bounds) of the inputs.
    #[test]
    fn vng_invariants(g in arb_graph(), extra in 0usize..8, seed in 0u64..5) {
        let k = (g.num_classes + extra).min(g.num_nodes());
        let reduced = vng(&g, &g.features, k, seed);
        prop_assert_eq!(reduced.mapping.nnz(), g.num_nodes());
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for v in g.features.as_slice() {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        for v in reduced.graph.features.as_slice() {
            prop_assert!(*v >= lo - 1e-4 && *v <= hi + 1e-4, "feature {v} outside hull");
        }
    }

    /// Eq. (15) normalisation: rows are non-negative and sum to ≤ 1 for any
    /// raw mapping.
    #[test]
    fn mapping_normalisation_bounds(
        rows in 1usize..12, cols in 1usize..8, seed in 0u64..50, eps in 0.0f32..0.05
    ) {
        let mut rng = MatRng::seed_from(seed);
        let m = Mapping { raw: rng.normal(rows, cols, 0.0, 2.0), epsilon: eps };
        let norm = m.normalized_detached();
        for i in 0..rows {
            let row_sum: f32 = norm.row(i).iter().sum();
            prop_assert!(row_sum <= 1.0 + 1e-4, "row {i} sums to {row_sum}");
            prop_assert!(norm.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    /// Larger epsilon never increases any normalised entry.
    #[test]
    fn epsilon_is_monotone(rows in 1usize..8, cols in 1usize..6, seed in 0u64..20) {
        let mut rng = MatRng::seed_from(seed);
        let raw = rng.normal(rows, cols, 0.0, 1.5);
        let small = Mapping { raw: raw.clone(), epsilon: 1e-4 }.normalized_detached();
        let large = Mapping { raw, epsilon: 5e-2 }.normalized_detached();
        for (a, b) in large.as_slice().iter().zip(small.as_slice()) {
            prop_assert!(a <= b, "{a} > {b}");
        }
    }

    /// Class-aware init always produces a strictly diagonal-dominant
    /// class-correlation matrix.
    #[test]
    fn class_init_correlation_is_diagonal_dominant(g in arb_graph()) {
        let syn_labels: Vec<usize> = (0..g.num_classes).collect();
        let m = Mapping::class_init(&g.labels, &syn_labels, 1e-5);
        let corr = m.class_correlation(&g.labels, &syn_labels, g.num_classes);
        for a in 0..g.num_classes {
            for b in 0..g.num_classes {
                if a != b {
                    prop_assert!(
                        corr.get(a, a) > corr.get(a, b),
                        "class {a}: diagonal {} <= off {}",
                        corr.get(a, a),
                        corr.get(a, b)
                    );
                }
            }
        }
    }
}

/// Deterministic check outside proptest: herding on identical embeddings
/// still returns the requested count (degenerate distance field).
#[test]
fn herding_handles_degenerate_embeddings() {
    let g = generate_sbm(&SbmConfig {
        nodes: 60,
        edges: 150,
        feature_dim: 4,
        num_classes: 3,
        ..SbmConfig::default()
    });
    let constant = DMat::filled(g.num_nodes(), 4, 1.0);
    let reduced = coreset(&g, &constant, 9, CoresetMethod::Herding, 0);
    assert_eq!(reduced.graph.num_nodes(), 9);
}
