//! Property-style tests of the condensation building blocks, driven by
//! the workspace's seeded [`MatRng`] (no external fuzzing crate).

use mcond_core::{coreset, vng, CoresetMethod, Mapping};
use mcond_graph::{generate_sbm, SbmConfig};
use mcond_linalg::{DMat, MatRng};

const CASES: u64 = 16;

fn case_rng(salt: u64, case: u64) -> MatRng {
    MatRng::seed_from(0xC04E ^ (salt << 32) ^ case)
}

fn arb_graph(rng: &mut MatRng) -> mcond_graph::Graph {
    let nodes = 40 + rng.index(80);
    generate_sbm(&SbmConfig {
        nodes,
        edges: nodes * 3,
        feature_dim: 6,
        num_classes: 2 + rng.index(3),
        seed: 1 + rng.index(29) as u64,
        ..SbmConfig::default()
    })
}

/// Every coreset method returns exactly the requested node count, a
/// one-hot mapping, and preserves all classes.
#[test]
fn coreset_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let g = arb_graph(&mut rng);
        let n_select = g.num_classes + rng.index(10);
        let seed = rng.index(5) as u64;
        for method in CoresetMethod::ALL {
            let reduced = coreset(&g, &g.features, n_select, method, seed);
            assert_eq!(reduced.graph.num_nodes(), n_select, "case {case} {method:?}");
            assert_eq!(reduced.mapping.nnz(), n_select, "case {case} {method:?}");
            assert!(
                reduced.graph.class_counts().iter().all(|&c| c >= 1),
                "case {case} {method:?}"
            );
            // Mapping columns are a permutation-free selection: each column
            // has exactly one entry.
            let mut col_counts = vec![0usize; n_select];
            for (_, j, v) in reduced.mapping.iter() {
                assert_eq!(v, 1.0, "case {case} {method:?}");
                col_counts[j] += 1;
            }
            assert!(col_counts.iter().all(|&c| c == 1), "case {case} {method:?}");
        }
    }
}

/// VNG covers every original node exactly once and its virtual features
/// lie inside the convex hull (coordinate-wise bounds) of the inputs.
#[test]
fn vng_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let g = arb_graph(&mut rng);
        let k = (g.num_classes + rng.index(8)).min(g.num_nodes());
        let seed = rng.index(5) as u64;
        let reduced = vng(&g, &g.features, k, seed);
        assert_eq!(reduced.mapping.nnz(), g.num_nodes(), "case {case}");
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for v in g.features.as_slice() {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        for v in reduced.graph.features.as_slice() {
            assert!(
                *v >= lo - 1e-4 && *v <= hi + 1e-4,
                "case {case}: feature {v} outside hull"
            );
        }
    }
}

/// Eq. (15) normalisation: rows are non-negative and sum to ≤ 1 for any
/// raw mapping.
#[test]
fn mapping_normalisation_bounds() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let rows = 1 + rng.index(11);
        let cols = 1 + rng.index(7);
        let eps = 0.05 * rng.unit();
        let mut mat_rng = MatRng::seed_from(rng.index(50) as u64);
        let m = Mapping { raw: mat_rng.normal(rows, cols, 0.0, 2.0), epsilon: eps };
        let norm = m.normalized_detached();
        for i in 0..rows {
            let row_sum: f32 = norm.row(i).iter().sum();
            assert!(row_sum <= 1.0 + 1e-4, "case {case}: row {i} sums to {row_sum}");
            assert!(norm.row(i).iter().all(|&v| v >= 0.0), "case {case}: row {i}");
        }
    }
}

/// Larger epsilon never increases any normalised entry.
#[test]
fn epsilon_is_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let rows = 1 + rng.index(7);
        let cols = 1 + rng.index(5);
        let mut mat_rng = MatRng::seed_from(rng.index(20) as u64);
        let raw = mat_rng.normal(rows, cols, 0.0, 1.5);
        let small = Mapping { raw: raw.clone(), epsilon: 1e-4 }.normalized_detached();
        let large = Mapping { raw, epsilon: 5e-2 }.normalized_detached();
        for (a, b) in large.as_slice().iter().zip(small.as_slice()) {
            assert!(a <= b, "case {case}: {a} > {b}");
        }
    }
}

/// Class-aware init always produces a strictly diagonal-dominant
/// class-correlation matrix.
#[test]
fn class_init_correlation_is_diagonal_dominant() {
    for case in 0..CASES {
        let g = arb_graph(&mut case_rng(5, case));
        let syn_labels: Vec<usize> = (0..g.num_classes).collect();
        let m = Mapping::class_init(&g.labels, &syn_labels, 1e-5);
        let corr = m.class_correlation(&g.labels, &syn_labels, g.num_classes);
        for a in 0..g.num_classes {
            for b in 0..g.num_classes {
                if a != b {
                    assert!(
                        corr.get(a, a) > corr.get(a, b),
                        "case {case}: class {a}: diagonal {} <= off {}",
                        corr.get(a, a),
                        corr.get(a, b)
                    );
                }
            }
        }
    }
}

/// Deterministic check outside the randomized fan: herding on identical
/// embeddings still returns the requested count (degenerate distance field).
#[test]
fn herding_handles_degenerate_embeddings() {
    let g = generate_sbm(&SbmConfig {
        nodes: 60,
        edges: 150,
        feature_dim: 4,
        num_classes: 3,
        ..SbmConfig::default()
    });
    let constant = DMat::filled(g.num_nodes(), 4, 1.0);
    let reduced = coreset(&g, &constant, 9, CoresetMethod::Herding, 0);
    assert_eq!(reduced.graph.num_nodes(), 9);
}
