//! Delta-ingestion equivalence suite (DESIGN.md §4l).
//!
//! The live-base contract: promoting served nodes **one delta at a time**
//! leaves the base in exactly the state a single combined promotion (or a
//! from-scratch rebuild) produces — bitwise, for the adjacency, the grown
//! mapping `M`, the features, and the incrementally maintained
//! [`BaseDegrees`] — and the logits served off the grown base are bitwise
//! identical between the incremental path and the rebuilt path, in both
//! [`ServeMode::Exact`] and the patched [`ServeMode::FrozenBase`] cache,
//! at 1 and 4 threads.

use mcond_core::{GraphDelta, InductiveServer, LiveBase, ServeMode};
use mcond_gnn::{BaseDegrees, GnnKind, GnnModel};
use mcond_graph::{Graph, NodeBatch};
use mcond_linalg::{DMat, MatRng};
use mcond_par::with_thread_limit;
use mcond_sparse::{Coo, Csr};

/// Synthetic base: 2 nodes; mapping covers the 3 original training nodes
/// — {0,1} with half mass onto synthetic 0, {2} fully onto synthetic 1.
fn base() -> (Graph, Csr) {
    let syn = Graph::new(
        Csr::eye(2),
        DMat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]),
        vec![0, 1],
        2,
    );
    let mut map = Coo::new(3, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    map.push(2, 1, 1.0);
    (syn, map.to_csr())
}

/// A hand-built delta: `n` nodes with `dim`-dim features over `width`
/// base-index columns, with the given attachment entries and a small
/// interconnect chain.
fn delta_dim(
    n: usize,
    dim: usize,
    width: usize,
    edges: &[(usize, usize, f32)],
    seed: u64,
) -> GraphDelta {
    let mut inc = Coo::new(n, width);
    for &(i, j, v) in edges {
        inc.push(i, j, v);
    }
    let mut inter = Coo::new(n, n);
    for i in 1..n {
        inter.push_sym(i - 1, i, 1.0);
    }
    GraphDelta::new(NodeBatch {
        features: MatRng::seed_from(seed).normal(n, dim, 0.0, 1.0),
        incremental: inc.to_csr(),
        interconnect: inter.to_csr(),
        labels: (0..n).map(|i| i % 2).collect(),
    })
}

/// [`delta_dim`] at the 3-dim feature width of the hand-built base.
fn delta(n: usize, width: usize, edges: &[(usize, usize, f32)], seed: u64) -> GraphDelta {
    delta_dim(n, 3, width, edges, seed)
}

/// Three promotions: the first two attach to original training nodes
/// (widths 3), the third was assembled against the grown base and
/// attaches to a promoted node as well (width 7 = 3 original + 4
/// promoted).
fn deltas() -> Vec<GraphDelta> {
    vec![
        delta(2, 3, &[(0, 1, 1.0), (1, 2, 1.0), (1, 0, 0.5)], 11),
        delta(2, 3, &[(0, 0, 2.0), (1, 1, 1.0)], 12),
        delta(1, 7, &[(0, 2, 1.0), (0, 3, 0.5), (0, 5, 0.25)], 13),
    ]
}

/// A probe batch in the *original* (width-3) index space — a client that
/// never heard about the promotions.
fn probe() -> NodeBatch {
    let mut inc = Coo::new(2, 3);
    inc.push(0, 0, 1.0);
    inc.push(1, 2, 1.0);
    let mut inter = Coo::new(2, 2);
    inter.push_sym(0, 1, 1.0);
    NodeBatch {
        features: MatRng::seed_from(99).normal(2, 3, 0.0, 1.0),
        incremental: inc.to_csr(),
        interconnect: inter.to_csr(),
        labels: vec![0, 1],
    }
}

fn assert_degrees_bitwise(a: &BaseDegrees, b: &BaseDegrees, ctx: &str) {
    assert_eq!(a.sym.len(), b.sym.len(), "{ctx}: sym length");
    for (i, (x, y)) in a.sym.iter().zip(&b.sym).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: sym[{i}] {x} vs {y}");
    }
    for (i, (x, y)) in a.mean.iter().zip(&b.mean).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: mean[{i}] {x} vs {y}");
    }
}

/// One delta at a time vs. one combined promotion: identical base state.
fn check_state_equivalence() {
    let (syn, map) = base();
    let mut incremental = LiveBase::synthetic(syn.clone(), map.clone());
    let ds = deltas();
    // Stepwise: three promotions.
    for d in &ds {
        incremental.promote(d).unwrap();
    }

    // Combined: deltas 1+2 stacked into one promotion (they only touch
    // original training nodes), then delta 3 against the grown base.
    let combined_batch = {
        let (d1, d2) = (&ds[0].batch, &ds[1].batch);
        let mut inc = Coo::new(4, 3);
        for src in [d1, d2] {
            let off = if std::ptr::eq(src, d1) { 0 } else { 2 };
            for (i, j, v) in src.incremental.iter() {
                inc.push(i + off, j, v);
            }
        }
        let mut inter = Coo::new(4, 4);
        for (i, j, v) in d1.interconnect.iter() {
            inter.push(i, j, v);
        }
        for (i, j, v) in d2.interconnect.iter() {
            inter.push(i + 2, j + 2, v);
        }
        let mut labels = d1.labels.clone();
        labels.extend_from_slice(&d2.labels);
        NodeBatch {
            features: d1.features.vstack(&d2.features),
            incremental: inc.to_csr(),
            interconnect: inter.to_csr(),
            labels,
        }
    };
    let mut rebuilt = LiveBase::synthetic(syn, map);
    rebuilt.promote(&GraphDelta::new(combined_batch)).unwrap();
    rebuilt.promote(&ds[2]).unwrap();

    assert!(
        incremental.base().adj.bit_eq(&rebuilt.base().adj),
        "adjacency diverged from the combined rebuild"
    );
    assert!(
        incremental.base().features.bit_eq(&rebuilt.base().features),
        "features diverged"
    );
    assert_eq!(incremental.base().labels, rebuilt.base().labels, "labels diverged");
    assert!(
        incremental.mapping().unwrap().bit_eq(rebuilt.mapping().unwrap()),
        "mapping diverged from the combined rebuild"
    );
    assert_degrees_bitwise(incremental.degrees(), rebuilt.degrees(), "vs combined");

    // The incrementally maintained degrees also match a from-scratch
    // recompute over the final adjacency — the O(delta) update hides no
    // accumulated drift.
    let fresh = BaseDegrees::of(&incremental.base().adj);
    assert_degrees_bitwise(incremental.degrees(), &fresh, "vs from-scratch");
}

/// Serving off the grown base: incremental (patched-cache) path vs. a
/// from-scratch server, Exact and FrozenBase modes, every architecture.
fn check_serving_equivalence() {
    let ds = deltas();
    let batch = probe();
    for kind in GnnKind::ALL {
        let model = GnnModel::new(kind, 3, 4, 2, 2);
        let (syn, map) = base();
        // patch_fraction 1.0: promotions always take the patch path, so
        // the cache this base serves from was never rebuilt from scratch.
        let mut live =
            LiveBase::synthetic(syn, map).with_frozen_cache(&model).with_patch_fraction(1.0);
        for d in &ds {
            assert_eq!(
                live.promote(d).unwrap().cache,
                mcond_core::CacheOutcome::Patched,
                "{}: promotion must patch, not rebuild",
                kind.name()
            );
        }
        let grown = live.base().clone();
        let mapping = live.mapping().unwrap().clone();

        // Exact mode: live server vs. from-scratch server.
        let live_exact = live.server(&model).with_serve_mode(ServeMode::Exact);
        let fresh_exact = InductiveServer::on_synthetic(&grown, &mapping, &model)
            .with_serve_mode(ServeMode::Exact);
        let a = live_exact.try_serve(&batch).unwrap();
        let b = fresh_exact.try_serve(&batch).unwrap();
        assert!(a.bit_eq(&b), "{}: exact logits diverged", kind.name());

        // FrozenBase mode: the thrice-patched cache vs. a cache rebuilt
        // from scratch over the grown base.
        let live_frozen = live.server(&model);
        let fresh_frozen = InductiveServer::on_synthetic(&grown, &mapping, &model)
            .with_base_version(live.version())
            .with_serve_mode(ServeMode::FrozenBase);
        let a = live_frozen.try_serve(&batch).unwrap();
        let b = fresh_frozen.try_serve(&batch).unwrap();
        assert!(a.bit_eq(&b), "{}: frozen logits diverged", kind.name());
    }
}

#[test]
fn incremental_state_matches_rebuild_at_1_and_4_threads() {
    with_thread_limit(1, check_state_equivalence);
    with_thread_limit(4, check_state_equivalence);
}

#[test]
fn incremental_serving_matches_rebuild_at_1_and_4_threads() {
    with_thread_limit(1, check_serving_equivalence);
    with_thread_limit(4, check_serving_equivalence);
}

/// Refresh replays the promotion log onto a freshly resparsified base;
/// with unchanged thresholds the replay must land on the same state the
/// live base already holds — bitwise — and the emitted checkpoint must
/// carry the lineage.
#[test]
fn refresh_replay_reproduces_the_live_state() {
    // A real (tiny) condensation so `refresh` has dense matrices to
    // resparsify. Keep it minimal: the SBM toy from the chaos sweep.
    let g = mcond_graph::generate_sbm(&mcond_graph::SbmConfig {
        nodes: 24,
        edges: 60,
        feature_dim: 6,
        num_classes: 2,
        ..mcond_graph::SbmConfig::default()
    });
    let n = g.num_nodes();
    let train: Vec<usize> = (0..n - 6).collect();
    let val: Vec<usize> = (n - 6..n - 3).collect();
    let test: Vec<usize> = (n - 3..n).collect();
    let data = mcond_graph::InductiveDataset::new(g, train, val, test);
    let cfg = mcond_core::McondConfig {
        ratio: 0.3,
        outer_loops: 2,
        relay_steps: 1,
        mapping_steps: 1,
        ..mcond_core::McondConfig::default()
    };
    let condensed = mcond_core::condense(&data, &cfg);
    let model = GnnModel::new(GnnKind::Gcn, 6, 8, 2, 1);

    let synthetic = condensed.synthetic.clone();
    let mapping = condensed.mapping.clone();
    let mut live = LiveBase::synthetic(synthetic, mapping);
    let width = live.inc_width();
    live.promote(&delta_dim(2, 6, width, &[(0, 1, 1.0), (1, 3, 1.0)], 21)).unwrap();
    live.promote(&delta_dim(1, 6, width, &[(0, 0, 1.0), (0, 5, 0.5)], 22)).unwrap();

    // Refresh with the *default* thresholds the condensation used: the
    // resparsified base equals the one `live` started from, so the replay
    // must reproduce `live`'s grown state exactly.
    let (refreshed, ckpt) =
        live.refresh(&condensed, &model, cfg.mu, cfg.delta).expect("refresh");
    assert!(refreshed.base().adj.bit_eq(&live.base().adj), "replayed adjacency diverged");
    assert!(refreshed.mapping().unwrap().bit_eq(live.mapping().unwrap()));
    assert_degrees_bitwise(refreshed.degrees(), live.degrees(), "refresh replay");

    let lineage = ckpt.lineage.expect("refresh stamps lineage");
    assert_eq!(lineage.promotions, 2);
    assert_eq!(lineage.promoted_nodes, 3);
    assert_eq!(lineage.version, live.version());
    assert_eq!(lineage.base_nodes as usize, live.base().num_nodes());

    // The checkpoint round-trips through bytes and boots a version-stamped
    // server that answers original-width probes.
    let restored = mcond_core::Checkpoint::from_bytes(ckpt.to_writer().to_bytes()).unwrap();
    assert_eq!(restored.lineage, Some(lineage));
    let server = InductiveServer::from_checkpoint(&restored);
    assert_eq!(server.base_version(), live.version());
    let mut inc = Coo::new(1, 3);
    inc.push(0, 1, 1.0);
    let narrow = NodeBatch {
        features: MatRng::seed_from(5).normal(1, 6, 0.0, 1.0),
        incremental: inc.to_csr(),
        interconnect: Csr::empty(1, 1),
        labels: vec![0],
    };
    assert!(server.try_serve(&narrow).is_ok(), "narrow probe served after refresh");
}
