//! Chaos sweep over the serving boundary (DESIGN.md §4f).
//!
//! Sweeps every corrupted batch from `mcond_core::chaos` through **both**
//! serving modes (Eq. 3 original-graph and Eq. 11 synthetic) and asserts
//! the fault-tolerance contract: every corruption is answered with a typed
//! [`ServeError`] — never a panic, never a non-finite logit — and in a
//! mixed fan-out the corrupted siblings leave valid batches' results
//! bitwise identical at any thread count.

use mcond_core::chaos::corrupted_batches;
use mcond_core::{FallbackPolicy, InductiveServer, ServeError};
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::{Graph, InductiveDataset, NodeBatch};
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};

/// 6-node toy split: train {0,1,2} triangle, val {3}, test {4,5}; 3-dim
/// features; plus a 2-node synthetic graph whose mapping covers train
/// nodes {0,1} (node 2's row is empty, as after extreme Eq. 14 pruning).
fn fixture() -> (InductiveDataset, Graph, Csr) {
    let mut coo = Coo::new(6, 6);
    for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
        coo.push_sym(i, j, 1.0);
    }
    let features = MatRng::seed_from(7).normal(6, 3, 0.0, 1.0);
    let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
    let data = InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5]);

    let syn = Graph::new(
        Csr::eye(2),
        DMat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]),
        vec![0, 1],
        2,
    );
    let mut map = Coo::new(3, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    map.push(2, 1, 1.0);
    (data, syn, map.to_csr())
}

fn model() -> GnnModel {
    GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1)
}

/// Every chaos case gets a typed error on both serving modes; the valid
/// donor keeps serving finite logits before and after the sweep.
#[test]
fn every_corruption_yields_a_typed_error_on_both_modes() {
    let (data, syn, mapping) = fixture();
    let original = data.original_graph();
    let model = model();
    let donor = data.batch(&[4, 5], true);
    let cases = corrupted_batches(&donor);
    assert!(cases.len() >= 10, "catalogue unexpectedly small: {}", cases.len());

    let servers = [
        ("original", InductiveServer::on_original(&original, &model)),
        ("synthetic", InductiveServer::on_synthetic(&syn, &mapping, &model)),
    ];
    for (mode, server) in &servers {
        let good = server.try_serve(&donor).expect("donor batch is valid");
        assert!(good.all_finite(), "{mode}: donor logits must be finite");

        for case in corrupted_batches(&donor) {
            match server.try_serve(&case.batch) {
                Err(ServeError::InvalidBatch(_)) => {}
                Err(other) => panic!("{mode}/{}: unexpected error {other:?}", case.name),
                Ok(_) => panic!("{mode}/{}: corrupted batch was served", case.name),
            }
        }

        // The server survives the sweep unharmed.
        let again = server.try_serve(&donor).expect("server still serves after sweep");
        assert_eq!(again.as_slice(), good.as_slice());

        let snap = server.metrics_snapshot();
        let counter = |name: &str| {
            snap.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
        };
        assert_eq!(counter("serve.requests"), 2, "{mode}: only the donor serves");
        assert_eq!(counter("serve.rejected"), cases.len() as u64, "{mode}");
        assert_eq!(counter("serve.panic"), 0, "{mode}: no panics in the sweep");
    }
}

/// Mixed valid/corrupted fan-out: valid batches come back bitwise
/// identical to a sequential loop at 1 and 4 threads; corrupted slots hold
/// the same typed error at both thread counts.
#[test]
fn mixed_fanout_is_deterministic_across_thread_counts() {
    let (data, syn, mapping) = fixture();
    let model = model();

    let valid_a = data.batch(&[4, 5], true);
    let valid_b = data.batch(&[4], false);
    let valid_c = data.batch(&[5], true);
    let mut batches: Vec<NodeBatch> = vec![valid_a.clone()];
    for case in corrupted_batches(&valid_a) {
        batches.push(case.batch);
    }
    batches.push(valid_b.clone());
    batches.push(valid_c.clone());

    let serve_all = |threads: usize| {
        let server = InductiveServer::on_synthetic(&syn, &mapping, &model);
        mcond_par::with_thread_limit(threads, || server.try_serve_many(&batches))
    };
    let at_one = serve_all(1);
    let at_four = serve_all(4);
    assert_eq!(at_one.len(), batches.len());

    let sequential = InductiveServer::on_synthetic(&syn, &mapping, &model);
    for (i, (one, four)) in at_one.iter().zip(&at_four).enumerate() {
        match (one, four) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.as_slice(), b.as_slice(), "slot {i} drifted across threads");
                let reference =
                    sequential.try_serve(&batches[i]).expect("sequential serve");
                assert_eq!(a.as_slice(), reference.as_slice(), "slot {i} != sequential");
                assert!(a.all_finite(), "slot {i}: non-finite logits served");
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "slot {i}: error drifted across thread counts");
                assert!(
                    matches!(a, ServeError::InvalidBatch(_)),
                    "slot {i}: unexpected error {a:?}"
                );
            }
            (a, b) => panic!("slot {i}: Ok/Err disagreement across threads: {a:?} vs {b:?}"),
        }
    }
    // The three valid slots are exactly the Ok ones.
    let ok_slots: Vec<usize> =
        (0..at_one.len()).filter(|&i| at_one[i].is_ok()).collect();
    assert_eq!(ok_slots.len(), 3);
}

/// A genuine internal panic (a model misconfigured for the feature
/// dimension blows up inside the forward pass, past request validation) is
/// caught per request: its slot holds `Err(Panicked)`, siblings complete,
/// and the server — including its poisoned-then-recovered stats mutex —
/// stays usable.
#[test]
fn internal_panics_are_isolated_per_request() {
    let (data, syn, mapping) = fixture();
    // in_dim 5 disagrees with the 3-dim features: validation cannot see a
    // model misconfiguration, so the matmul inside predict() panics.
    let bad_model = GnnModel::new(GnnKind::Gcn, 5, 4, 2, 1);
    let server = InductiveServer::on_synthetic(&syn, &mapping, &bad_model);

    let empty = data.batch(&[], true);
    let batches = vec![data.batch(&[4], false), empty, data.batch(&[5], true)];
    let results = mcond_par::with_thread_limit(4, || server.try_serve_many(&batches));

    match &results[0] {
        Err(ServeError::Panicked { context }) => {
            assert!(!context.is_empty(), "panic context should carry the message");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The empty sibling takes the fast path (no forward pass) and
    // completes despite its neighbours panicking.
    let ok = results[1].as_ref().expect("empty batch serves");
    assert_eq!(ok.shape(), (0, bad_model.out_dim()));
    assert!(matches!(results[2], Err(ServeError::Panicked { .. })));

    let snap = server.metrics_snapshot();
    let counter = |name: &str| {
        snap.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    };
    assert_eq!(counter("serve.panic"), 2);
    assert_eq!(counter("serve.requests"), 1, "only the empty batch was answered");
    assert_eq!(counter("serve.rejected"), 0, "panics are not typed rejections");

    // Still usable afterwards: a fresh empty request is served.
    let again = server.try_serve(&data.batch(&[], false)).expect("server survives");
    assert_eq!(again.rows(), 0);
}

/// The fallback policy sweep also holds under fan-out: `Reject` turns an
/// uncovered node into a typed error, `SelfLoopOnly` serves it, and both
/// agree across thread counts.
#[test]
fn fallback_policies_hold_under_fanout() {
    let (data, syn, _) = fixture();
    // A mapping with train node 2 fully pruned: batch node 5 (attached
    // only to train 2) has an empty aM row.
    let mut map = Coo::new(3, 2);
    map.push(0, 0, 0.5);
    map.push(1, 0, 0.5);
    let pruned = map.to_csr();
    let model = model();
    let batches = vec![data.batch(&[5], false), data.batch(&[4], false)];

    let reject = InductiveServer::on_synthetic(&syn, &pruned, &model)
        .with_fallback(FallbackPolicy::Reject);
    let results = reject.try_serve_many(&batches);
    assert!(matches!(results[0], Err(ServeError::NoAttachment { node: 0, .. })));
    assert!(results[1].is_ok(), "covered sibling completes");

    let lenient = InductiveServer::on_synthetic(&syn, &pruned, &model);
    let served = mcond_par::with_thread_limit(4, || lenient.try_serve_many(&batches));
    for (i, r) in served.iter().enumerate() {
        let logits = r.as_ref().unwrap_or_else(|e| panic!("slot {i}: {e}"));
        assert!(logits.all_finite());
    }
}
