//! Live-graph delta ingestion: promoting served inductive nodes into the
//! base.
//!
//! The paper's serving story is static — condense once, then answer
//! inductive queries against a frozen `S = {A', X', Y'}` forever. Real
//! graphs keep growing: nodes that arrived as inductive queries become
//! part of the graph the *next* queries attach to. [`LiveBase`] closes
//! that loop:
//!
//! 1. **Promotion** ([`LiveBase::promote`]): a batch of served nodes
//!    (features + attachment edges, as a [`GraphDelta`]) is folded into
//!    the base. On a synthetic base the attachment is first mapped
//!    through `M` (Eq. 11, `aM`) and renormalised row-stochastic, then
//!    appended both as new rows of `M` and as a block extension of the
//!    base adjacency/features. [`BaseDegrees`] are updated incrementally
//!    (O(delta nnz), not O(base nnz)), and a frozen-base cache is either
//!    **patched** in place (when the delta's receptive field is small,
//!    see [`FrozenBase::try_patch`]) or rebuilt.
//! 2. **Refresh** ([`LiveBase::refresh`]): a cheap re-run of only the
//!    mapping/sparsification stage (Eq. 12–15, via
//!    [`Condensed::resparsify`]) against the stored dense matrices,
//!    replaying the promotion log on the fresh base and emitting a
//!    serve-ready [`Checkpoint`] stamped with a [`DeltaLineage`] — ready
//!    to hot-swap through `EpochServer` without dropping requests.
//!
//! Every mutation is versioned; a server answering from a cache that
//! trails the base refuses with `ServeError::StaleCache` instead of
//! serving silently wrong logits. See `DESIGN.md` §4l.

use crate::checkpoint::Checkpoint;
use crate::condense::Condensed;
use crate::inference::spmm_sparse;
use crate::server::InductiveServer;
use mcond_gnn::{BaseDegrees, FrozenBase, GnnModel};
use mcond_graph::{BatchError, Graph, NodeBatch};
use mcond_sparse::{renormalize_rows, Csr};
use mcond_store::StoreError;
use std::fmt;

/// A batch of served inductive nodes queued for promotion into the base:
/// exactly the payload of a [`NodeBatch`] — features, incremental
/// adjacency into the base's index space, interconnect among the batch,
/// labels — but with promotion (not one-shot inference) semantics.
#[derive(Clone, Debug)]
pub struct GraphDelta {
    /// The served batch being promoted. Its `incremental` block may be
    /// narrower than the current base (assembled before earlier
    /// promotions landed); promotion widens it, exactly like prefix
    /// serving does.
    pub batch: NodeBatch,
}

impl GraphDelta {
    /// Wraps a served batch for promotion.
    #[must_use]
    pub fn new(batch: NodeBatch) -> Self {
        Self { batch }
    }

    /// Clones a served batch into a delta (the serving path keeps the
    /// original for its own reply).
    #[must_use]
    pub fn from_batch(batch: &NodeBatch) -> Self {
        Self { batch: batch.clone() }
    }

    /// Nodes this delta promotes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.batch.labels.len()
    }
}

/// Why a promotion was refused. The base is never left half-mutated: a
/// rejected delta changes nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta failed the same structural validation a serve request
    /// undergoes ([`NodeBatch::validate_against_prefix`]).
    Invalid(BatchError),
    /// A promoted node's label does not fit the base's class space —
    /// the base cannot represent it.
    LabelOutOfRange {
        /// Batch-local index of the offending node.
        node: usize,
        /// Its label.
        label: usize,
        /// The base's class count.
        classes: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Invalid(e) => write!(f, "invalid delta: {e}"),
            DeltaError::LabelOutOfRange { node, label, classes } => write!(
                f,
                "delta node {node} carries label {label} but the base has only \
                 {classes} classes"
            ),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Invalid(e) => Some(e),
            DeltaError::LabelOutOfRange { .. } => None,
        }
    }
}

impl From<BatchError> for DeltaError {
    fn from(e: BatchError) -> Self {
        DeltaError::Invalid(e)
    }
}

/// What happened to the frozen-base cache during a promotion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache is attached to this base.
    None,
    /// The delta's hop-closure was small: the cache was patched in place
    /// (`serve.cache.patch.patched`).
    Patched,
    /// The closure exceeded the patch budget: the cache was rebuilt from
    /// scratch (`serve.cache.patch.rebuilt`).
    Rebuilt,
}

/// Receipt for one [`LiveBase::promote`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromotionReport {
    /// Nodes promoted.
    pub nodes: usize,
    /// Stored non-zeros added (attachment block + interconnect, before
    /// mirroring).
    pub edges: usize,
    /// The base version after this promotion.
    pub version: u64,
    /// How the frozen-base cache was kept in sync.
    pub cache: CacheOutcome,
}

/// Provenance of a live (promoted) base, persisted as the optional
/// `"delta"` checkpoint section so a reloaded server knows what version
/// it is serving and how the base got there.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DeltaLineage {
    /// Base version (promotion count since the last full rebuild of this
    /// lineage's history — monotone per [`LiveBase`]).
    pub version: u64,
    /// Promotions applied.
    pub promotions: u64,
    /// Total nodes promoted across those promotions.
    pub promoted_nodes: u64,
    /// Base node count after the last promotion.
    pub base_nodes: u64,
    /// Mapping row count after the last promotion (0 on an original
    /// base, which carries no mapping).
    pub mapping_rows: u64,
}

/// A serving base that grows: the condensed graph (or an original graph)
/// plus everything needed to fold served nodes in incrementally —
/// degrees, versioning, the promotion log for refresh replay, and an
/// optional frozen-base cache kept in sync by patch-or-rebuild.
pub struct LiveBase {
    base: Graph,
    mapping: Option<Csr>,
    degrees: BaseDegrees,
    version: u64,
    promotions: u64,
    promoted_nodes: u64,
    log: Vec<GraphDelta>,
    frozen: Option<(GnnModel, FrozenBase)>,
    patch_fraction: f32,
}

impl LiveBase {
    /// A live base over a condensed graph served through its mapping
    /// (Eq. 11 attachment).
    ///
    /// # Panics
    /// Panics when the mapping's columns do not index the graph's nodes.
    #[must_use]
    pub fn synthetic(base: Graph, mapping: Csr) -> Self {
        assert_eq!(
            mapping.cols(),
            base.num_nodes(),
            "LiveBase: mapping columns must index the base nodes"
        );
        let degrees = BaseDegrees::of(&base.adj);
        Self {
            base,
            mapping: Some(mapping),
            degrees,
            version: 0,
            promotions: 0,
            promoted_nodes: 0,
            log: Vec::new(),
            frozen: None,
            patch_fraction: 0.25,
        }
    }

    /// A live base over an original (uncondensed) graph: deltas attach
    /// directly (Eq. 3), no mapping is maintained.
    #[must_use]
    pub fn original(base: Graph) -> Self {
        let degrees = BaseDegrees::of(&base.adj);
        Self {
            base,
            mapping: None,
            degrees,
            version: 0,
            promotions: 0,
            promoted_nodes: 0,
            log: Vec::new(),
            frozen: None,
            patch_fraction: 0.25,
        }
    }

    /// Attaches (and builds) a frozen-base cache for `model`; every
    /// promotion afterwards keeps it in sync by patch-or-rebuild.
    #[must_use]
    pub fn with_frozen_cache(mut self, model: &GnnModel) -> Self {
        let frozen =
            FrozenBase::new(model, &self.base.adj, &self.base.features).with_version(self.version);
        mcond_obs::counter_add("serve.cache.builds", 1);
        self.frozen = Some((model.clone(), frozen));
        self
    }

    /// Sets the patch budget as a fraction of the base node count
    /// (default 0.25): a promotion whose hop-closure touches more rows
    /// than this triggers a full cache rebuild instead of a patch.
    #[must_use]
    pub fn with_patch_fraction(mut self, fraction: f32) -> Self {
        self.patch_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// The current (grown) base graph.
    #[must_use]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The current (grown) mapping, when this is a synthetic base.
    #[must_use]
    pub fn mapping(&self) -> Option<&Csr> {
        self.mapping.as_ref()
    }

    /// The incrementally maintained degree sums.
    #[must_use]
    pub fn degrees(&self) -> &BaseDegrees {
        &self.degrees
    }

    /// The current base version (one bump per promotion).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The in-sync frozen-base cache, when one is attached.
    #[must_use]
    pub fn frozen(&self) -> Option<&FrozenBase> {
        self.frozen.as_ref().map(|(_, f)| f)
    }

    /// Promotions applied so far.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// This base's provenance, for checkpoint stamping.
    #[must_use]
    pub fn lineage(&self) -> DeltaLineage {
        DeltaLineage {
            version: self.version,
            promotions: self.promotions,
            promoted_nodes: self.promoted_nodes,
            base_nodes: self.base.num_nodes() as u64,
            mapping_rows: self.mapping.as_ref().map_or(0, Csr::rows) as u64,
        }
    }

    /// Width a delta's incremental block is validated against: the
    /// mapping's row space (original training nodes + promoted nodes) on
    /// a synthetic base, the node count on an original base.
    #[must_use]
    pub fn inc_width(&self) -> usize {
        self.mapping.as_ref().map_or(self.base.num_nodes(), Csr::rows)
    }

    /// Folds a batch of served nodes into the base. On success the base
    /// adjacency/features/labels have grown by `delta.nodes()` rows, the
    /// mapping (when present) gained the renormalised attachment rows,
    /// the degree sums were extended incrementally (bitwise identical to
    /// a from-scratch [`BaseDegrees::of`]), the version was bumped, and
    /// an attached frozen cache was patched or rebuilt to the new
    /// version.
    ///
    /// # Errors
    /// [`DeltaError`] when the delta is structurally invalid or carries
    /// an out-of-range label; the base is unchanged.
    pub fn promote(&mut self, delta: &GraphDelta) -> Result<PromotionReport, DeltaError> {
        let width = self.inc_width();
        delta.batch.validate_against_prefix(width, self.base.feature_dim())?;
        if let Some((node, &label)) =
            delta.batch.labels.iter().enumerate().find(|&(_, &y)| y >= self.base.num_classes)
        {
            return Err(DeltaError::LabelOutOfRange {
                node,
                label,
                classes: self.base.num_classes,
            });
        }
        let n = delta.nodes();
        let n_old = self.base.num_nodes();

        // Attachment rows in the base's index space: raw edges on an
        // original base; aM (Eq. 11), renormalised row-stochastic like
        // every other row of M (Eq. 15), on a synthetic base.
        let inc = if delta.batch.incremental.cols() < width {
            delta.batch.incremental.widen_cols(width)
        } else {
            delta.batch.incremental.clone()
        };
        let attach = match &self.mapping {
            Some(m) => renormalize_rows(&spmm_sparse(&inc, m)),
            None => inc,
        };
        let inter = &delta.batch.interconnect;
        let edges = attach.nnz() + inter.nnz();

        // Old rows that gain mirror edges — the seed set for cache
        // patching, in ascending order.
        let mut hit = vec![false; n_old];
        for (_, j, _) in attach.iter() {
            hit[j] = true;
        }
        let touched: Vec<usize> = (0..n_old).filter(|&j| hit[j]).collect();

        self.degrees.extend_for_promotion(&attach, inter);
        let adj = self.base.adj.block_extend(&attach, inter);
        let features = self.base.features.vstack(&delta.batch.features);
        let mut labels = self.base.labels.clone();
        labels.extend_from_slice(&delta.batch.labels);
        self.base = Graph::new(adj, features, labels, self.base.num_classes);
        if let Some(m) = self.mapping.take() {
            let grown_width = m.cols() + n;
            self.mapping = Some(
                m.widen_cols(grown_width).append_rows(&attach.widen_cols(grown_width)),
            );
        }
        self.version += 1;
        self.promotions += 1;
        self.promoted_nodes += n as u64;
        self.log.push(delta.clone());

        let cache = if let Some((model, frozen)) = self.frozen.take() {
            #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
            let max_rows =
                (f64::from(self.patch_fraction) * self.base.num_nodes() as f64).ceil() as usize;
            let next = frozen.try_patch(
                &model,
                &self.base.adj,
                &self.base.features,
                &self.degrees,
                &touched,
                max_rows,
                self.version,
            );
            let outcome = match next {
                Some(patched) => {
                    mcond_obs::counter_add("serve.cache.patch.patched", 1);
                    self.frozen = Some((model, patched));
                    CacheOutcome::Patched
                }
                None => {
                    mcond_obs::counter_add("serve.cache.patch.rebuilt", 1);
                    let rebuilt = FrozenBase::new(&model, &self.base.adj, &self.base.features)
                        .with_version(self.version);
                    self.frozen = Some((model, rebuilt));
                    CacheOutcome::Rebuilt
                }
            };
            #[allow(clippy::cast_precision_loss)]
            if let Some((_, f)) = &self.frozen {
                mcond_obs::gauge_set("serve.cache.bytes", f.bytes() as f64);
            }
            outcome
        } else {
            CacheOutcome::None
        };

        mcond_obs::counter_add("delta.promotions", 1);
        mcond_obs::counter_add("delta.promoted_nodes", n as u64);
        mcond_obs::counter_add("delta.edges", edges as u64);
        Ok(PromotionReport { nodes: n, edges, version: self.version, cache })
    }

    /// Boots a serving endpoint on this base's *current* state: version
    /// stamped, frozen cache handed over as-is (no rebuild) when one is
    /// attached.
    #[must_use]
    pub fn server<'a>(&'a self, model: &'a GnnModel) -> InductiveServer<'a> {
        let mut server = match &self.mapping {
            Some(m) => InductiveServer::on_synthetic(&self.base, m, model),
            None => InductiveServer::on_original(&self.base, model),
        }
        .with_base_version(self.version);
        if let Some((_, frozen)) = &self.frozen {
            server = server.with_frozen_cache(frozen.clone());
        }
        server
    }

    /// Bundles the current (grown) base into a serve-ready
    /// [`Checkpoint`], lineage-stamped — the artifact a hot-swapping
    /// server reloads after promotions.
    ///
    /// # Errors
    /// [`StoreError::ShapeMismatch`] when this is an original (unmapped)
    /// base — only condensed bases are checkpointable — or when `model`
    /// does not fit the base.
    pub fn checkpoint(&self, model: &GnnModel) -> Result<Checkpoint, StoreError> {
        let Some(mapping) = &self.mapping else {
            return Err(StoreError::ShapeMismatch {
                reason: "an original (unmapped) live base cannot be checkpointed".to_owned(),
            });
        };
        Ok(Checkpoint::new(self.base.clone(), mapping.clone(), model.clone())?
            .with_lineage(self.lineage()))
    }

    /// Incremental refresh (Eq. 12–15 only): re-runs mapping/adjacency
    /// sparsification against the condensation's stored dense matrices
    /// with new thresholds, replays this base's promotion log onto the
    /// fresh synthetic base, and emits the lineage-stamped checkpoint —
    /// all without re-running condensation. The returned [`LiveBase`]
    /// carries the same log, cache policy, and (freshly rebuilt) cache.
    ///
    /// # Errors
    /// [`StoreError::ShapeMismatch`] when `model` does not fit the
    /// refreshed graph.
    ///
    /// # Panics
    /// Panics when the replayed log no longer validates — impossible
    /// unless `condensed` is a different condensation than this base was
    /// built from (resparsifying never changes shapes).
    pub fn refresh(
        &self,
        condensed: &Condensed,
        model: &GnnModel,
        mu: f32,
        delta: f32,
    ) -> Result<(LiveBase, Checkpoint), StoreError> {
        let start = std::time::Instant::now();
        let (adj, mapping) = condensed.resparsify(mu, delta);
        let synthetic = Graph::new(
            adj,
            condensed.synthetic.features.clone(),
            condensed.synthetic.labels.clone(),
            condensed.synthetic.num_classes,
        );
        let mut live =
            LiveBase::synthetic(synthetic, mapping).with_patch_fraction(self.patch_fraction);
        if let Some((m, _)) = &self.frozen {
            live = live.with_frozen_cache(m);
        }
        for d in &self.log {
            live.promote(d).expect("replayed delta was valid when first promoted");
        }
        let ckpt = live.checkpoint(model)?;
        mcond_obs::counter_add("delta.refreshes", 1);
        mcond_obs::histogram_record("delta.refresh.ms", start.elapsed().as_secs_f64() * 1e3);
        Ok((live, ckpt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_gnn::GnnKind;
    use mcond_graph::InductiveDataset;
    use mcond_linalg::{DMat, MatRng};
    use mcond_sparse::Coo;

    /// 6-node toy with train {0,1,2}, val {3}, test {4,5} — the same
    /// fixture the inference tests use.
    fn toy() -> InductiveDataset {
        let mut coo = Coo::new(6, 6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
            coo.push_sym(i, j, 1.0);
        }
        let features = MatRng::seed_from(0).normal(6, 3, 0.0, 1.0);
        let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
        InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5])
    }

    fn syn_base() -> (Graph, Csr) {
        let syn = Graph::new(
            Csr::eye(2),
            DMat::from_rows(&[&[1., 0., 0.], &[0., 1., 0.]]),
            vec![0, 1],
            2,
        );
        let mut map = Coo::new(3, 2);
        map.push(0, 0, 0.5);
        map.push(1, 0, 0.5);
        map.push(2, 1, 1.0);
        (syn, map.to_csr())
    }

    #[test]
    fn promotion_grows_base_mapping_and_degrees_consistently() {
        let data = toy();
        let (syn, map) = syn_base();
        let mut live = LiveBase::synthetic(syn, map);
        assert_eq!(live.inc_width(), 3);

        let delta = GraphDelta::from_batch(&data.batch(&[4, 5], false));
        let report = live.promote(&delta).unwrap();
        assert_eq!(report.nodes, 2);
        assert_eq!(report.version, 1);
        assert_eq!(report.cache, CacheOutcome::None);

        // Base grew by two nodes; the mapping gained two rows *and* two
        // columns (promoted nodes are addressable base nodes).
        assert_eq!(live.base().num_nodes(), 4);
        let m = live.mapping().unwrap();
        assert_eq!((m.rows(), m.cols()), (5, 4));
        assert_eq!(live.inc_width(), 5);
        // Appended mapping rows are row-stochastic (Eq. 15 semantics).
        for i in 3..5 {
            let s: f32 = m.row_vals(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
        // Incremental degrees match a from-scratch recompute bitwise.
        let fresh = BaseDegrees::of(&live.base().adj);
        assert_eq!(live.degrees().sym, fresh.sym);
        assert_eq!(live.degrees().mean, fresh.mean);
        // Lineage reflects the growth.
        assert_eq!(
            live.lineage(),
            DeltaLineage {
                version: 1,
                promotions: 1,
                promoted_nodes: 2,
                base_nodes: 4,
                mapping_rows: 5,
            }
        );
    }

    #[test]
    fn rejected_deltas_leave_the_base_untouched() {
        let data = toy();
        let (syn, map) = syn_base();
        let mut live = LiveBase::synthetic(syn, map);
        let before_nodes = live.base().num_nodes();

        // Too-wide incremental block: structurally invalid.
        let mut batch = data.batch(&[4], false);
        batch.incremental = Csr::empty(1, 9);
        match live.promote(&GraphDelta::new(batch)) {
            Err(DeltaError::Invalid(BatchError::IncrementalWidth { got: 9, expected: 3 })) => {}
            other => panic!("expected IncrementalWidth, got {other:?}"),
        }

        // Label outside the base's class space.
        let mut batch = data.batch(&[4], false);
        batch.labels[0] = 7;
        match live.promote(&GraphDelta::new(batch)) {
            Err(DeltaError::LabelOutOfRange { node: 0, label: 7, classes: 2 }) => {}
            other => panic!("expected LabelOutOfRange, got {other:?}"),
        }

        assert_eq!(live.base().num_nodes(), before_nodes);
        assert_eq!(live.version(), 0);
    }

    #[test]
    fn promotion_keeps_the_frozen_cache_in_sync() {
        let data = toy();
        let (syn, map) = syn_base();
        let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
        // patch_fraction 1.0: the closure can never exceed the budget.
        let mut live =
            LiveBase::synthetic(syn.clone(), map.clone()).with_frozen_cache(&model).with_patch_fraction(1.0);
        let report = live.promote(&GraphDelta::from_batch(&data.batch(&[4], false))).unwrap();
        assert_eq!(report.cache, CacheOutcome::Patched);
        let frozen = live.frozen().unwrap();
        assert_eq!(frozen.base_version(), 1);
        assert_eq!(frozen.n_base(), 3);

        // patch_fraction 0: every promotion exceeds the budget.
        let mut live =
            LiveBase::synthetic(syn, map).with_frozen_cache(&model).with_patch_fraction(0.0);
        let report = live.promote(&GraphDelta::from_batch(&data.batch(&[4], false))).unwrap();
        assert_eq!(report.cache, CacheOutcome::Rebuilt);
        assert_eq!(live.frozen().unwrap().base_version(), 1);
    }

    #[test]
    fn served_logits_after_promotion_match_a_fresh_server() {
        let data = toy();
        let (syn, map) = syn_base();
        let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
        let mut live = LiveBase::synthetic(syn, map);
        live.promote(&GraphDelta::from_batch(&data.batch(&[4], false))).unwrap();

        // A narrow (pre-promotion) batch is served by the live server...
        let batch = data.batch(&[5], false);
        let live_out = live.server(&model).try_serve(&batch).unwrap();
        // ...and matches a from-scratch server over the grown artifacts.
        let base = live.base().clone();
        let mapping = live.mapping().unwrap().clone();
        let fresh = InductiveServer::on_synthetic(&base, &mapping, &model);
        let fresh_out = fresh.try_serve(&batch).unwrap();
        assert!(live_out.bit_eq(&fresh_out));
    }

    #[test]
    fn original_base_promotes_raw_edges() {
        let data = toy();
        let orig = data.original_graph();
        let n0 = orig.num_nodes();
        let mut live = LiveBase::original(orig);
        let report = live.promote(&GraphDelta::from_batch(&data.batch(&[4, 5], true))).unwrap();
        assert_eq!(report.nodes, 2);
        assert!(live.mapping().is_none());
        assert_eq!(live.base().num_nodes(), n0 + 2);
        assert_eq!(live.inc_width(), n0 + 2);
        // Raw attachment: the promoted node keeps its unit edge weight.
        assert_eq!(live.base().adj.get(n0, 1), 1.0);
        let fresh = BaseDegrees::of(&live.base().adj);
        assert_eq!(live.degrees().sym, fresh.sym);
    }

    #[test]
    fn original_base_refuses_to_checkpoint() {
        let data = toy();
        let live = LiveBase::original(data.original_graph());
        let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
        assert!(matches!(
            live.checkpoint(&model),
            Err(StoreError::ShapeMismatch { .. })
        ));
    }
}
