//! Coreset baselines (§IV-A): Random, Degree, Herding, K-Center.
//!
//! All baselines select real training nodes per class (budgets matching the
//! synthetic-label distribution), take the induced subgraph as the reduced
//! graph, and expose the natural selection matrix as their mapping so the
//! shared Eq. (11)-style inference path applies: a test node keeps exactly
//! its edges to selected nodes.

use mcond_graph::Graph;
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};

/// A reduced graph plus the original→reduced node mapping, the common
/// output shape of all graph-reduction baselines (and of MCond itself).
pub struct ReducedGraph {
    /// The reduced (synthetic/coreset/virtual) graph.
    pub graph: Graph,
    /// `N x N'` mapping from original to reduced nodes.
    pub mapping: Csr,
}

/// Coreset selection strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoresetMethod {
    /// Uniform per-class sampling.
    Random,
    /// Highest-degree nodes per class.
    Degree,
    /// Herding: greedily track the class centroid in embedding space.
    Herding,
    /// Greedy k-center in embedding space.
    KCenter,
}

impl CoresetMethod {
    /// All methods in Table II column order.
    pub const ALL: [CoresetMethod; 4] = [
        CoresetMethod::Random,
        CoresetMethod::Degree,
        CoresetMethod::Herding,
        CoresetMethod::KCenter,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoresetMethod::Random => "Random",
            CoresetMethod::Degree => "Degree",
            CoresetMethod::Herding => "Herding",
            CoresetMethod::KCenter => "K-Center",
        }
    }
}

/// Per-class node budgets proportional to class frequency, each ≥ 1,
/// summing to exactly `total`.
///
/// # Panics
/// Panics when `total < class_counts.len()` (cannot give every class one
/// node) or when a class is empty.
#[must_use]
pub(crate) fn class_budgets(class_counts: &[usize], total: usize) -> Vec<usize> {
    let c = class_counts.len();
    assert!(total >= c, "class_budgets: {total} synthetic nodes for {c} classes");
    assert!(class_counts.iter().all(|&n| n > 0), "class_budgets: empty class");
    let n: usize = class_counts.iter().sum();
    let mut budgets: Vec<usize> = class_counts
        .iter()
        .map(|&cnt| ((cnt as f64 / n as f64) * total as f64).floor().max(1.0) as usize)
        .collect();
    let mut assigned: usize = budgets.iter().sum();
    // Trim from the largest budgets, then top up the largest classes.
    while assigned > total {
        let i = budgets
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 1)
            .max_by_key(|&(_, &b)| b)
            .map(|(i, _)| i)
            .expect("trimmable class");
        budgets[i] -= 1;
        assigned -= 1;
    }
    let mut order: Vec<usize> = (0..c).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(class_counts[i]));
    let mut k = 0;
    while assigned < total {
        let i = order[k % c];
        if budgets[i] < class_counts[i] {
            budgets[i] += 1;
            assigned += 1;
        }
        k += 1;
        assert!(k < 10 * c * total.max(1), "class_budgets: cannot place {total} nodes");
    }
    budgets
}

/// Runs a coreset baseline on the original graph.
///
/// * `embeddings` — per-node vectors used by Herding / K-Center (the paper
///   uses GNN latent embeddings; propagated features work too).
/// * `n_select` — reduced graph size `N' = rN`.
///
/// # Panics
/// Panics when `n_select` is smaller than the class count.
#[must_use]
pub fn coreset(
    graph: &Graph,
    embeddings: &DMat,
    n_select: usize,
    method: CoresetMethod,
    seed: u64,
) -> ReducedGraph {
    let budgets = class_budgets(&graph.class_counts(), n_select);
    let mut rng = MatRng::seed_from(seed);
    let mut selected: Vec<usize> = Vec::with_capacity(n_select);
    for (class, &budget) in budgets.iter().enumerate() {
        let members = graph.class_members(class);
        let budget = budget.min(members.len());
        let picks = match method {
            CoresetMethod::Random => {
                let idx = rng.sample_indices(members.len(), budget);
                idx.into_iter().map(|i| members[i]).collect()
            }
            CoresetMethod::Degree => {
                let mut by_degree = members.clone();
                by_degree.sort_by_key(|&i| std::cmp::Reverse(graph.adj.row_cols(i).len()));
                by_degree.truncate(budget);
                by_degree
            }
            CoresetMethod::Herding => herding(&members, embeddings, budget),
            CoresetMethod::KCenter => k_center(&members, embeddings, budget),
        };
        selected.extend(picks);
    }
    selected.sort_unstable();

    let graph_reduced = graph.induced_subgraph(&selected);
    let mut map = Coo::new(graph.num_nodes(), selected.len());
    for (new, &old) in selected.iter().enumerate() {
        map.push(old, new, 1.0);
    }
    ReducedGraph { graph: graph_reduced, mapping: map.to_csr() }
}

/// Herding (Welling 2009): greedily pick the sample that keeps the running
/// selected-mean closest to the true class mean.
fn herding(members: &[usize], embeddings: &DMat, budget: usize) -> Vec<usize> {
    let d = embeddings.cols();
    let mut mean = vec![0f32; d];
    for &m in members {
        for (acc, v) in mean.iter_mut().zip(embeddings.row(m)) {
            *acc += *v / members.len() as f32;
        }
    }
    let mut selected: Vec<usize> = Vec::with_capacity(budget);
    let mut sum = vec![0f32; d];
    let mut used = vec![false; members.len()];
    for k in 0..budget {
        let mut best = usize::MAX;
        let mut best_dist = f32::INFINITY;
        for (pos, &m) in members.iter().enumerate() {
            if used[pos] {
                continue;
            }
            // distance between mean and (sum + x)/(k+1)
            let mut dist = 0f32;
            for ((s, x), mu) in sum.iter().zip(embeddings.row(m)).zip(&mean) {
                let v = (s + x) / (k + 1) as f32 - mu;
                dist += v * v;
            }
            if dist < best_dist {
                best_dist = dist;
                best = pos;
            }
        }
        used[best] = true;
        selected.push(members[best]);
        for (s, x) in sum.iter_mut().zip(embeddings.row(members[best])) {
            *s += *x;
        }
    }
    selected
}

/// Greedy k-center: seed with the node nearest the class mean, then add the
/// node farthest from its nearest selected center.
fn k_center(members: &[usize], embeddings: &DMat, budget: usize) -> Vec<usize> {
    let d = embeddings.cols();
    let mut mean = vec![0f32; d];
    for &m in members {
        for (acc, v) in mean.iter_mut().zip(embeddings.row(m)) {
            *acc += *v / members.len() as f32;
        }
    }
    let sq_dist = |a: &[f32], b: &[f32]| -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    };
    let first = members
        .iter()
        .enumerate()
        .min_by(|&(_, &a), &(_, &b)| {
            sq_dist(embeddings.row(a), &mean)
                .partial_cmp(&sq_dist(embeddings.row(b), &mean))
                .unwrap()
        })
        .map(|(pos, _)| pos)
        .expect("non-empty class");
    let mut selected = vec![members[first]];
    let mut nearest: Vec<f32> = members
        .iter()
        .map(|&m| sq_dist(embeddings.row(m), embeddings.row(members[first])))
        .collect();
    while selected.len() < budget {
        let (far_pos, _) = nearest
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty class");
        let new = members[far_pos];
        selected.push(new);
        for (pos, &m) in members.iter().enumerate() {
            let dist = sq_dist(embeddings.row(m), embeddings.row(new));
            if dist < nearest[pos] {
                nearest[pos] = dist;
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_graph::{generate_sbm, SbmConfig};

    fn dataset() -> Graph {
        generate_sbm(&SbmConfig {
            nodes: 200,
            edges: 600,
            feature_dim: 8,
            num_classes: 4,
            ..SbmConfig::default()
        })
    }

    #[test]
    fn budgets_are_proportional_and_exact() {
        let budgets = class_budgets(&[50, 30, 20], 10);
        assert_eq!(budgets.iter().sum::<usize>(), 10);
        assert!(budgets.iter().all(|&b| b >= 1));
        assert!(budgets[0] >= budgets[2]);
    }

    #[test]
    fn budgets_guarantee_one_per_class() {
        let budgets = class_budgets(&[1000, 1, 1], 3);
        assert_eq!(budgets, vec![1, 1, 1]);
    }

    #[test]
    fn every_method_selects_the_requested_count() {
        let g = dataset();
        let emb = g.features.clone();
        for method in CoresetMethod::ALL {
            let reduced = coreset(&g, &emb, 20, method, 0);
            assert_eq!(reduced.graph.num_nodes(), 20, "{}", method.name());
            assert_eq!(reduced.mapping.rows(), 200);
            assert_eq!(reduced.mapping.cols(), 20);
            assert_eq!(reduced.mapping.nnz(), 20, "one-hot mapping expected");
        }
    }

    #[test]
    fn class_distribution_is_preserved() {
        let g = dataset();
        let reduced = coreset(&g, &g.features, 40, CoresetMethod::Random, 1);
        let orig_counts = g.class_counts();
        let red_counts = reduced.graph.class_counts();
        for c in 0..4 {
            let orig_frac = orig_counts[c] as f64 / 200.0;
            let red_frac = red_counts[c] as f64 / 40.0;
            assert!((orig_frac - red_frac).abs() < 0.15, "class {c} misallocated");
        }
    }

    #[test]
    fn degree_picks_high_degree_nodes() {
        let g = dataset();
        let reduced = coreset(&g, &g.features, 12, CoresetMethod::Degree, 0);
        // The reduced selection's mean degree (in the original graph) must
        // exceed the graph's mean degree.
        let mean_all =
            g.adj.nnz() as f64 / g.num_nodes() as f64;
        // Recover which original nodes were selected via the mapping.
        let mut selected_degrees = Vec::new();
        for (orig, _new, _v) in reduced.mapping.iter() {
            selected_degrees.push(g.adj.row_cols(orig).len() as f64);
        }
        let mean_sel = selected_degrees.iter().sum::<f64>() / selected_degrees.len() as f64;
        assert!(mean_sel > mean_all, "{mean_sel} <= {mean_all}");
    }

    #[test]
    fn herding_and_kcenter_are_deterministic() {
        let g = dataset();
        for method in [CoresetMethod::Herding, CoresetMethod::KCenter] {
            let a = coreset(&g, &g.features, 16, method, 0);
            let b = coreset(&g, &g.features, 16, method, 99);
            assert_eq!(a.mapping, b.mapping, "{} should ignore the seed", method.name());
        }
    }

    #[test]
    fn kcenter_spreads_selections() {
        // On a 1-D embedding line, k-center must cover both extremes.
        let mut g = dataset();
        let n = g.num_nodes();
        g.features = DMat::from_vec(n, 1, (0..n).map(|i| i as f32).collect());
        let reduced = coreset(&g, &g.features, 8, CoresetMethod::KCenter, 0);
        let mut positions = Vec::new();
        for (orig, _, _) in reduced.mapping.iter() {
            positions.push(orig as f32);
        }
        let spread = positions.iter().cloned().fold(f32::MIN, f32::max)
            - positions.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread > n as f32 * 0.5, "selections clumped: spread {spread}");
    }
}
