//! The synthetic adjacency generator MLP_Φ of Eq. (6):
//! `A'_ij = σ((MLP_Φ([x'_i; x'_j]) + MLP_Φ([x'_j; x'_i])) / 2)`, with the
//! diagonal zeroed (the normalisation re-adds the self-loop).

use mcond_autodiff::{Adam, Tape, Var};
use mcond_linalg::{DMat, MatRng};

/// A 2-layer MLP over concatenated synthetic-node feature pairs.
pub struct AdjacencyGenerator {
    /// First layer `2d x h`.
    pub w1: DMat,
    /// First-layer bias.
    pub b1: DMat,
    /// Second layer `h x 1`.
    pub w2: DMat,
    /// Second-layer bias.
    pub b2: DMat,
}

impl AdjacencyGenerator {
    /// Glorot-initialised generator for feature dimension `d` and hidden
    /// width `hidden`.
    #[must_use]
    pub fn init(feature_dim: usize, hidden: usize, rng: &mut MatRng) -> Self {
        Self {
            w1: rng.glorot(2 * feature_dim, hidden),
            b1: DMat::zeros(1, hidden),
            w2: rng.glorot(hidden, 1),
            b2: DMat::zeros(1, 1),
        }
    }

    /// Registers Φ's parameters on the tape (order: w1, b1, w2, b2).
    pub fn tape_params(&self, tape: &mut Tape) -> [Var; 4] {
        [
            tape.param(self.w1.clone()),
            tape.param(self.b1.clone()),
            tape.param(self.w2.clone()),
            tape.param(self.b2.clone()),
        ]
    }

    /// Builds the dense `N' x N'` synthetic adjacency from the feature var
    /// `xs` and parameter vars `ps` — the full Eq. (6) with zeroed diagonal.
    /// Values lie in `(0, 1)` off the diagonal.
    pub fn adjacency(&self, tape: &mut Tape, ps: &[Var; 4], xs: Var) -> Var {
        let pairs = tape.pair_concat(xs); // N'^2 x 2d
        let h = tape.matmul(pairs, ps[0]);
        let h = tape.add_row_broadcast(h, ps[1]);
        let h = tape.relu(h);
        let z = tape.matmul(h, ps[2]);
        let z = tape.add_row_broadcast(z, ps[3]); // N'^2 x 1
        let sym = tape.pair_mean_sym(z); // N' x N'
        let sig = tape.sigmoid(sym);
        tape.zero_diagonal(sig)
    }

    /// Tape-free evaluation of the adjacency for the current parameters —
    /// used after training and by the sparsification step.
    #[must_use]
    pub fn adjacency_detached(&self, xs: &DMat) -> DMat {
        let mut tape = Tape::new();
        let ps = self.tape_params(&mut tape);
        let x = tape.constant(xs.clone());
        let a = self.adjacency(&mut tape, &ps, x);
        tape.value(a).clone()
    }

    /// Creates Adam optimizers for the four parameters, matching
    /// [`AdjacencyGenerator::tape_params`] order.
    #[must_use]
    pub fn optimizers(&self, lr: f32) -> [Adam; 4] {
        [
            Adam::new(lr, self.w1.rows(), self.w1.cols()),
            Adam::new(lr, 1, self.b1.cols()),
            Adam::new(lr, self.w2.rows(), self.w2.cols()),
            Adam::new(lr, 1, 1),
        ]
    }

    /// Applies gradient steps to all four parameters.
    pub fn apply(
        &mut self,
        grads: &mut mcond_autodiff::Gradients,
        ps: &[Var; 4],
        opts: &mut [Adam; 4],
    ) {
        let params = [&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2];
        for ((param, var), opt) in params.into_iter().zip(ps).zip(opts.iter_mut()) {
            if let Some(g) = grads.take(*var) {
                opt.step(param, &g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_symmetric_bounded_and_hollow() {
        let mut rng = MatRng::seed_from(9);
        let generator = AdjacencyGenerator::init(5, 8, &mut rng);
        let xs = rng.normal(6, 5, 0.0, 1.0);
        let a = generator.adjacency_detached(&xs);
        assert_eq!(a.shape(), (6, 6));
        for i in 0..6 {
            assert_eq!(a.get(i, i), 0.0, "diagonal must be zeroed");
            for j in 0..6 {
                let v = a.get(i, j);
                assert!((0.0..1.0).contains(&v), "A'[{i}][{j}] = {v} out of (0,1)");
                assert!(
                    mcond_linalg::approx_eq(v, a.get(j, i), 1e-6),
                    "asymmetric at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn gradient_flows_to_all_parameters_and_features() {
        let mut rng = MatRng::seed_from(10);
        let generator = AdjacencyGenerator::init(4, 6, &mut rng);
        let xs0 = rng.normal(5, 4, 0.0, 1.0);
        let mut tape = Tape::new();
        let ps = generator.tape_params(&mut tape);
        let xs = tape.param(xs0);
        let a = generator.adjacency(&mut tape, &ps, xs);
        let loss = tape.l21(a);
        let grads = tape.backward(loss);
        for p in ps {
            assert!(grads.get(p).is_some(), "missing gradient for a Φ parameter");
        }
        let gx = grads.get(xs).expect("missing gradient for features");
        assert!(gx.frobenius_norm() > 0.0);
    }

    #[test]
    fn training_can_push_edge_values_down() {
        // Minimising Σ σ(...)² should shrink mean edge weight.
        let mut rng = MatRng::seed_from(11);
        let mut generator = AdjacencyGenerator::init(3, 6, &mut rng);
        let xs = rng.normal(5, 3, 0.0, 1.0);
        let before = generator.adjacency_detached(&xs).mean();
        let mut opts = generator.optimizers(0.05);
        for _ in 0..40 {
            let mut tape = Tape::new();
            let ps = generator.tape_params(&mut tape);
            let x = tape.constant(xs.clone());
            let a = generator.adjacency(&mut tape, &ps, x);
            let loss = tape.l21(a);
            let mut grads = tape.backward(loss);
            generator.apply(&mut grads, &ps, &mut opts);
        }
        let after = generator.adjacency_detached(&xs).mean();
        assert!(after < before, "{before} -> {after}");
    }
}
