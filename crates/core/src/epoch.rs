//! Epoch-versioned checkpoint ownership for zero-downtime serving.
//!
//! A long-lived serving process must survive a model swap without dropping
//! a request. The shape here is the classic RCU/arc-swap pattern, built
//! std-only: one [`EpochSlot`] holds the *current* [`EpochServer`] behind
//! an `Arc`; every request clones that `Arc` and finishes on the epoch it
//! started on, a swap is one pointer exchange under a short-held lock, and
//! the retired epoch frees itself when its last in-flight request drops —
//! no `Box::leak`, no per-reload growth.
//!
//! # Why an owning wrapper
//!
//! [`InductiveServer`] borrows its checkpoint (`&'a Checkpoint`) — the
//! right shape for library callers, but a hot-swap slot needs *ownership*
//! so epochs can die. `EpochServer` stores the `Arc<Checkpoint>` alongside
//! an `InductiveServer<'static>` whose borrows point into that `Arc`'s
//! heap allocation. The `'static` is a contained lie (see the `SAFETY`
//! note in [`EpochServer::from_checkpoint_arc`]): the allocation is pinned
//! by the `Arc`, never moved or mutated, and declared to drop *after* the
//! server that borrows it.

use crate::checkpoint::Checkpoint;
use crate::serve_error::ServeError;
use crate::server::InductiveServer;
use mcond_graph::NodeBatch;
use mcond_linalg::DMat;
use mcond_sparse::Csr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One immutable generation of the serving model: an owned checkpoint, the
/// server built over it, the slot-assigned sequence number, and the
/// checkpoint's content id.
pub struct EpochServer {
    // Field order is load-bearing: `server` borrows into `_ckpt`'s heap
    // allocation and must be dropped first; Rust drops fields in
    // declaration order.
    server: InductiveServer<'static>,
    _ckpt: Option<Arc<Checkpoint>>,
    seq: u64,
    id: String,
}

impl EpochServer {
    /// Builds an epoch that owns `ckpt` and serves from it. `id` is the
    /// checkpoint's content id (see `CheckpointReader::content_id`), or
    /// any operator-meaningful tag.
    #[must_use]
    pub fn from_checkpoint_arc(ckpt: Arc<Checkpoint>, id: impl Into<String>) -> Self {
        // SAFETY: `pinned` points into the Arc's heap allocation, which
        //   (1) lives as long as any clone of `ckpt` — and `_ckpt` below is
        //       dropped after `server` by declaration order, so the borrow
        //       can never outlive the pointee;
        //   (2) never moves — `Arc` pins its contents on the heap, and
        //       moving the `EpochServer` moves only the pointer;
        //   (3) is never mutated — nothing here calls `Arc::get_mut`, and
        //       `Checkpoint` has no interior mutability.
        // Under those three invariants the `'static` extension is sound.
        let pinned: &'static Checkpoint = unsafe { &*Arc::as_ptr(&ckpt) };
        let server = InductiveServer::from_checkpoint(pinned);
        Self { server, _ckpt: Some(ckpt), seq: 0, id: id.into() }
    }

    /// Wraps a server whose checkpoint genuinely lives for the process
    /// lifetime (leaked fixtures, borrowed statics). The epoch machinery —
    /// sequence numbers, canary, swap — works identically; only the
    /// free-on-retire property is moot. Test fixtures use this to build
    /// deliberately misconfigured servers [`Checkpoint::new`] would reject.
    #[must_use]
    pub fn from_static(server: InductiveServer<'static>, id: impl Into<String>) -> Self {
        Self { server, _ckpt: None, seq: 0, id: id.into() }
    }

    /// The server for this epoch. In-flight requests hold the epoch's
    /// `Arc`, so the borrow stays valid across a concurrent swap.
    #[must_use]
    pub fn server(&self) -> &InductiveServer<'static> {
        &self.server
    }

    /// Slot-assigned generation number: `1` for the boot epoch, `+1` per
    /// successful install. `0` means "never installed".
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The checkpoint content id this epoch serves from.
    #[must_use]
    pub fn checkpoint_id(&self) -> &str {
        &self.id
    }

    /// Canary self-check: serves one synthetic probe batch (a single
    /// zero-feature node with an empty attachment row) through the full
    /// forward pass, with the same panic isolation wire requests get. A
    /// checkpoint whose model panics on real input shapes, or whose
    /// weights produce non-finite logits, fails here — *before* a reload
    /// would swap it in.
    ///
    /// # Errors
    /// The [`ServeError`] the probe batch died with.
    pub fn canary(&self) -> Result<(), ServeError> {
        let probe = NodeBatch {
            features: DMat::zeros(1, self.server.feature_dim()),
            incremental: Csr::empty(1, self.server.expected_incremental_cols()),
            interconnect: Csr::empty(1, 1),
            labels: vec![0],
        };
        let mut out = self.server.try_serve_many(&[probe]);
        out.pop().expect("canary fan-out returns one slot").map(|_| ())
    }
}

/// The swap point: holds the current [`EpochServer`] and exchanges it
/// atomically. Readers pay one short mutex hold to clone an `Arc`; the
/// lock is never held across a request, a load, or a canary.
pub struct EpochSlot {
    current: Mutex<Arc<EpochServer>>,
    /// Mirror of the current epoch's `seq`, readable without the lock —
    /// cheap epoch tags on shed/error responses.
    seq: AtomicU64,
}

impl EpochSlot {
    /// Installs `first` as epoch 1 and returns the slot.
    #[must_use]
    pub fn new(mut first: EpochServer) -> Self {
        first.seq = 1;
        Self { current: Mutex::new(Arc::new(first)), seq: AtomicU64::new(1) }
    }

    /// The current epoch. Requests clone this once and serve from the
    /// clone, so a concurrent [`install`](EpochSlot::install) can never
    /// pull the model out from under them.
    #[must_use]
    pub fn load(&self) -> Arc<EpochServer> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// The current epoch's sequence number, lock-free.
    #[must_use]
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Swaps `staged` in as the new current epoch, assigning it the next
    /// sequence number. Returns the installed epoch; the retired one is
    /// dropped here unless in-flight requests still hold it, in which case
    /// it frees when the last of them completes.
    pub fn install(&self, mut staged: EpochServer) -> Arc<EpochServer> {
        let mut cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        staged.seq = cur.seq + 1;
        let fresh = Arc::new(staged);
        *cur = Arc::clone(&fresh);
        self.seq.store(fresh.seq, Ordering::Release);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_gnn::{GnnKind, GnnModel};
    use mcond_graph::Graph;
    use mcond_sparse::Coo;
    use std::sync::Weak;

    fn tiny_checkpoint(seed: u64) -> Checkpoint {
        let mut coo = Coo::new(2, 2);
        coo.push_sym(0, 1, 1.0);
        let graph = Graph::new(
            coo.to_csr(),
            DMat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]),
            vec![0, 1],
            2,
        );
        let mut map = Coo::new(3, 2);
        map.push(0, 0, 1.0);
        map.push(1, 1, 1.0);
        map.push(2, 1, 1.0);
        let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, seed);
        Checkpoint::new(graph, map.to_csr(), model).unwrap()
    }

    #[test]
    fn install_bumps_seq_and_inflight_requests_keep_their_epoch() {
        let slot = EpochSlot::new(EpochServer::from_checkpoint_arc(
            Arc::new(tiny_checkpoint(1)),
            "a",
        ));
        assert_eq!(slot.current_seq(), 1);
        let held = slot.load();
        assert_eq!(held.checkpoint_id(), "a");

        let installed = slot.install(EpochServer::from_checkpoint_arc(
            Arc::new(tiny_checkpoint(2)),
            "b",
        ));
        assert_eq!(installed.seq(), 2);
        assert_eq!(slot.current_seq(), 2);
        // The held epoch still answers — on its own weights.
        assert_eq!(held.seq(), 1);
        held.canary().unwrap();
        assert_eq!(slot.load().checkpoint_id(), "b");
    }

    #[test]
    fn retired_epoch_frees_when_last_holder_drops() {
        let slot = EpochSlot::new(EpochServer::from_checkpoint_arc(
            Arc::new(tiny_checkpoint(1)),
            "a",
        ));
        let held = slot.load();
        let weak: Weak<EpochServer> = Arc::downgrade(&held);
        slot.install(EpochServer::from_checkpoint_arc(Arc::new(tiny_checkpoint(2)), "b"));
        assert!(weak.upgrade().is_some(), "in-flight holder pins the retired epoch");
        drop(held);
        assert!(
            weak.upgrade().is_none(),
            "retired epoch must free once the last request completes — anything \
             else is the per-reload leak this module exists to kill"
        );
    }

    #[test]
    fn canary_catches_a_model_that_panics_on_real_shapes() {
        // in_dim 5 against 3-dim features: constructible, passes the
        // cheap validation, dies inside the forward pass.
        let graph = tiny_checkpoint(1).synthetic;
        let mapping = tiny_checkpoint(1).mapping;
        let model = GnnModel::new(GnnKind::Gcn, 5, 4, 2, 1);
        let server = InductiveServer::on_synthetic(
            Box::leak(Box::new(graph)),
            Box::leak(Box::new(mapping)),
            Box::leak(Box::new(model)),
        );
        let epoch = EpochServer::from_static(server, "bad");
        match epoch.canary() {
            Err(ServeError::Panicked { .. }) => {}
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
}
