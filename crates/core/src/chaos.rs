//! Request-level chaos harness for the serving layer.
//!
//! [`corrupted_batches`] takes one *valid* [`NodeBatch`] and derives a
//! catalogue of systematically corrupted variants — every structural and
//! numerical failure mode the serving boundary must absorb: an oversized
//! incremental width (a batch indexing base nodes that do not exist —
//! narrower widths are *valid* prefix requests against a live, growing
//! base),
//! `NaN`/`±Inf` in each sparse/dense component, out-of-range interconnect
//! columns, mismatched row counts, truncated label vectors.
//!
//! The contract, enforced by the `chaos_sweep` integration test and the
//! `robust_serving` example on **both** serving modes (Eq. 3 original and
//! Eq. 11 synthetic): every corrupted batch is answered with a typed
//! [`ServeError`](crate::ServeError) — never a panic, never a non-finite
//! logit — and in a mixed fan-out
//! ([`try_serve_many`](crate::InductiveServer::try_serve_many)) the
//! corrupted siblings leave the valid batches' results bitwise untouched.

use mcond_graph::NodeBatch;
use mcond_sparse::Coo;

/// One corrupted batch and the failure mode it encodes.
pub struct ChaosCase {
    /// Short stable identifier of the corruption (e.g.
    /// `"inc-width-plus-one"`), usable as a test-case label.
    pub name: &'static str,
    /// The corrupted batch; feeding it to
    /// [`try_serve`](crate::InductiveServer::try_serve) must yield a typed
    /// error.
    pub batch: NodeBatch,
}

/// Derives the corruption catalogue from one valid, non-empty batch.
///
/// Cases that need existing structure to corrupt (a non-zero to poison, a
/// column to drop) are skipped when the donor batch lacks it, so the
/// catalogue is usable with any fixture; a batch with at least one node,
/// one feature column, and one incremental edge produces every case.
///
/// # Panics
/// Panics when the donor batch is empty — corruptions are relative to real
/// structure.
#[must_use]
pub fn corrupted_batches(valid: &NodeBatch) -> Vec<ChaosCase> {
    assert!(!valid.is_empty(), "corrupted_batches: donor batch must be non-empty");
    let n = valid.len();
    let inc_cols = valid.incremental.cols();
    let mut cases = Vec::new();
    let mut case = |name: &'static str, batch: NodeBatch| cases.push(ChaosCase { name, batch });

    // -- wrong incremental width: the batch indexes a different base graph.
    {
        let mut coo = Coo::with_capacity(n, inc_cols + 1, valid.incremental.nnz());
        for (i, j, v) in valid.incremental.iter() {
            coo.push(i, j, v);
        }
        let mut b = valid.clone();
        b.incremental = coo.to_csr();
        case("inc-width-plus-one", b);
    }
    // A *narrower* incremental is deliberately absent: live bases grow by
    // promotion and existing node ids never change meaning, so a batch
    // assembled against an older, smaller base is a valid prefix-width
    // request (`validate_against_prefix`), not a corruption.

    // -- non-finite features.
    if valid.features.cols() > 0 {
        for (name, bad) in [
            ("nan-feature", f32::NAN),
            ("inf-feature", f32::INFINITY),
            ("neg-inf-feature", f32::NEG_INFINITY),
        ] {
            let mut b = valid.clone();
            b.features.set(0, 0, bad);
            case(name, b);
        }
    }

    // -- non-finite sparse values.
    if valid.incremental.nnz() > 0 {
        let mut b = valid.clone();
        b.incremental = b.incremental.map_values(|_| f32::NAN);
        case("nan-incremental", b);
    }
    if valid.interconnect.nnz() > 0 {
        let mut b = valid.clone();
        b.interconnect = b.interconnect.map_values(|_| f32::INFINITY);
        case("inf-interconnect", b);
    }

    // -- interconnect shape violations.
    {
        let mut coo = Coo::new(n, n + 3);
        coo.push(0, n + 2, 1.0); // column indexes no batch node
        let mut b = valid.clone();
        b.interconnect = coo.to_csr();
        case("interconnect-out-of-range-column", b);
    }
    {
        let mut b = valid.clone();
        b.interconnect = Coo::new(n + 1, n).to_csr();
        case("interconnect-row-mismatch", b);
    }

    // -- row-count inconsistencies.
    {
        let mut b = valid.clone();
        b.labels.pop();
        case("truncated-labels", b);
    }
    {
        let mut b = valid.clone();
        b.features = b.features.slice_rows(0, n - 1);
        case("missing-feature-row", b);
    }

    // -- feature dimension drift.
    {
        let mut b = valid.clone();
        b.features = b.features.hstack(&mcond_linalg::DMat::zeros(n, 1));
        case("feature-dim-plus-one", b);
    }

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_graph::BatchError;
    use mcond_linalg::DMat;
    use mcond_sparse::Csr;

    fn donor() -> NodeBatch {
        let mut inc = Coo::new(2, 4);
        inc.push(0, 1, 1.0);
        inc.push(1, 3, 1.0);
        let mut inter = Coo::new(2, 2);
        inter.push_sym(0, 1, 1.0);
        NodeBatch {
            features: DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
            incremental: inc.to_csr(),
            interconnect: inter.to_csr(),
            labels: vec![0, 1],
        }
    }

    #[test]
    fn full_donor_produces_the_whole_catalogue() {
        let cases = corrupted_batches(&donor());
        assert_eq!(cases.len(), 11);
        let mut names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len(), "case names must be unique");
    }

    #[test]
    fn every_case_fails_validation() {
        let donor = donor();
        assert_eq!(donor.validate_against(4, 2), Ok(()));
        for case in corrupted_batches(&donor) {
            assert!(
                case.batch.validate_against(4, 2).is_err(),
                "chaos case {} passed validation",
                case.name
            );
        }
    }

    #[test]
    fn structure_free_donor_skips_structure_dependent_cases() {
        let sparse_donor = NodeBatch {
            features: DMat::from_rows(&[&[0.5]]),
            incremental: Csr::empty(1, 4),
            interconnect: Csr::empty(1, 1),
            labels: vec![0],
        };
        let cases = corrupted_batches(&sparse_donor);
        let names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        assert!(!names.contains(&"nan-incremental"));
        assert!(!names.contains(&"inf-interconnect"));
        assert!(names.contains(&"inc-width-plus-one"));
    }

    #[test]
    fn wrong_width_case_names_the_base_mismatch() {
        let donor = donor();
        let case = corrupted_batches(&donor)
            .into_iter()
            .find(|c| c.name == "inc-width-plus-one")
            .unwrap();
        assert_eq!(
            case.batch.validate_against(4, 2),
            Err(BatchError::IncrementalWidth { got: 5, expected: 4 })
        );
    }
}
