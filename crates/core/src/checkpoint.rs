//! The serve-ready artifact bundle: condensed graph + mapping + weights.
//!
//! A [`Checkpoint`] is everything [`InductiveServer`](crate::InductiveServer)
//! needs to answer inductive queries — the synthetic triple `S = {A', X',
//! Y'}`, the sparsified mapping `M`, and the trained GNN — persisted as one
//! `MCST` container (see `mcond-store`). [`Checkpoint::load`] re-validates
//! the cross-section invariants (`M` columns index the synthetic nodes, the
//! model's input/output widths match `X'`/`Y'`), so a restored bundle is
//! exactly as safe to serve from as a freshly condensed one, and a server
//! booted from it never touches the original graph.

use crate::condense::Condensed;
use crate::delta::DeltaLineage;
use crate::server::InductiveServer;
use mcond_gnn::GnnModel;
use mcond_graph::Graph;
use mcond_sparse::Csr;
use mcond_store::codec::{self, ByteReader, ByteWriter};
use mcond_store::{CheckpointReader, CheckpointWriter, StoreError};
use std::path::Path;
use std::time::Instant;

/// Section names inside the container.
const SEC_SYNTHETIC: &str = "synthetic";
const SEC_MAPPING: &str = "mapping";
const SEC_MODEL: &str = "model";
/// Optional section: delta lineage of a live (promoted) base. Absent on
/// checkpoints from a plain condensation run; readers treat absence as
/// "no lineage", so old files stay loadable and old readers skip the
/// section they do not know.
const SEC_DELTA: &str = "delta";

/// A complete, serve-ready condensed artifact.
#[derive(Clone)]
pub struct Checkpoint {
    /// The condensed graph `S = {A', X', Y'}`.
    pub synthetic: Graph,
    /// Sparsified mapping `M : N x N'` from original to synthetic nodes.
    pub mapping: Csr,
    /// Trained GNN weights.
    pub model: GnnModel,
    /// Provenance of a live (promoted) base — `None` for a checkpoint
    /// straight out of condensation. Persisted as the optional `"delta"`
    /// section.
    pub lineage: Option<DeltaLineage>,
}

impl Checkpoint {
    /// Bundles the three artifacts, validating that they agree with each
    /// other (the same checks [`Checkpoint::load`] applies to untrusted
    /// bytes, so an in-memory bundle can never save an unserveable file).
    ///
    /// # Errors
    /// [`StoreError::ShapeMismatch`] when the mapping or model does not fit
    /// the synthetic graph.
    pub fn new(synthetic: Graph, mapping: Csr, model: GnnModel) -> Result<Self, StoreError> {
        if mapping.cols() != synthetic.num_nodes() {
            return Err(StoreError::ShapeMismatch {
                reason: format!(
                    "mapping has {} columns but the synthetic graph has {} nodes",
                    mapping.cols(),
                    synthetic.num_nodes()
                ),
            });
        }
        let in_dim = model.params()[0].rows();
        if in_dim != synthetic.feature_dim() {
            return Err(StoreError::ShapeMismatch {
                reason: format!(
                    "model expects {in_dim}-dim inputs but X' has {} features",
                    synthetic.feature_dim()
                ),
            });
        }
        let out_dim = model.params().last().map_or(0, mcond_linalg::DMat::cols);
        if out_dim != synthetic.num_classes {
            return Err(StoreError::ShapeMismatch {
                reason: format!(
                    "model emits {out_dim} logits but the graph has {} classes",
                    synthetic.num_classes
                ),
            });
        }
        Ok(Self { synthetic, mapping, model, lineage: None })
    }

    /// Stamps the bundle with a live base's [`DeltaLineage`] (see
    /// `LiveBase::checkpoint`).
    #[must_use]
    pub fn with_lineage(mut self, lineage: DeltaLineage) -> Self {
        self.lineage = Some(lineage);
        self
    }

    /// Serialises the bundle into an `MCST` image.
    #[must_use]
    pub fn to_writer(&self) -> CheckpointWriter {
        let mut graph_w = ByteWriter::new();
        codec::encode_graph(&mut graph_w, &self.synthetic);
        let mut map_w = ByteWriter::new();
        codec::encode_csr(&mut map_w, &self.mapping);
        let mut model_w = ByteWriter::new();
        codec::encode_model(&mut model_w, &self.model);
        let mut w = CheckpointWriter::new();
        w.add_section(SEC_SYNTHETIC, graph_w.into_bytes());
        w.add_section(SEC_MAPPING, map_w.into_bytes());
        w.add_section(SEC_MODEL, model_w.into_bytes());
        if let Some(l) = &self.lineage {
            let mut lw = ByteWriter::new();
            lw.put_u64(l.version);
            lw.put_u64(l.promotions);
            lw.put_u64(l.promoted_nodes);
            lw.put_u64(l.base_nodes);
            lw.put_u64(l.mapping_rows);
            w.add_section(SEC_DELTA, lw.into_bytes());
        }
        w
    }

    /// Writes the bundle to `path` atomically; returns the bytes written.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        self.to_writer().write_atomic(path.as_ref())
    }

    /// Reads and validates a bundle from `path`.
    ///
    /// # Errors
    /// Any [`StoreError`]: corrupt bytes surface as the typed error naming
    /// the damaged section (a corrupted `mapping` section yields
    /// `ChecksumMismatch { section: "mapping" }`, never a panic), and
    /// structurally valid but mutually inconsistent sections surface as
    /// [`StoreError::ShapeMismatch`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let start = Instant::now();
        let reader = CheckpointReader::open(path.as_ref())?;
        let ckpt = Self::from_reader(&reader)?;
        mcond_obs::histogram_record("store.load.ms", start.elapsed().as_secs_f64() * 1e3);
        mcond_obs::emit_snapshot("store.load");
        Ok(ckpt)
    }

    /// Reads a bundle for hot-swap serving: every section's CRC is checked
    /// up front ([`CheckpointReader::verify_sections`]) — not only the
    /// sections the decoder touches — before the usual decode and
    /// cross-section validation. Returns the checkpoint together with its
    /// [content id](CheckpointReader::content_id), the stable fingerprint a
    /// serving layer reports as the epoch's checkpoint id.
    ///
    /// # Errors
    /// Same contract as [`Checkpoint::load`], plus a typed
    /// [`StoreError::ChecksumMismatch`] for damage anywhere in the file.
    pub fn load_for_serving(path: impl AsRef<Path>) -> Result<(Self, String), StoreError> {
        let start = Instant::now();
        let reader = CheckpointReader::open(path.as_ref())?;
        reader.verify_sections()?;
        let id = reader.content_id();
        let ckpt = Self::from_reader(&reader)?;
        mcond_obs::histogram_record("store.load.ms", start.elapsed().as_secs_f64() * 1e3);
        Ok((ckpt, id))
    }

    /// Decodes a bundle from an in-memory image (the fault-injection sweep
    /// uses this to probe thousands of corrupted variants without touching
    /// the filesystem).
    ///
    /// # Errors
    /// Same contract as [`Checkpoint::load`].
    pub fn from_bytes(image: Vec<u8>) -> Result<Self, StoreError> {
        Self::from_reader(&CheckpointReader::from_bytes(image)?)
    }

    fn from_reader(reader: &CheckpointReader) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(reader.section(SEC_SYNTHETIC)?, SEC_SYNTHETIC);
        let synthetic = codec::decode_graph(&mut r)?;
        r.finish()?;
        let mut r = ByteReader::new(reader.section(SEC_MAPPING)?, SEC_MAPPING);
        let mapping = codec::decode_csr(&mut r)?;
        r.finish()?;
        let mut r = ByteReader::new(reader.section(SEC_MODEL)?, SEC_MODEL);
        let model = codec::decode_model(&mut r)?;
        r.finish()?;
        let lineage = match reader.section(SEC_DELTA) {
            Ok(bytes) => {
                let mut r = ByteReader::new(bytes, SEC_DELTA);
                let lineage = DeltaLineage {
                    version: r.get_u64()?,
                    promotions: r.get_u64()?,
                    promoted_nodes: r.get_u64()?,
                    base_nodes: r.get_u64()?,
                    mapping_rows: r.get_u64()?,
                };
                r.finish()?;
                Some(lineage)
            }
            Err(StoreError::MissingSection { .. }) => None,
            Err(e) => return Err(e),
        };
        let ckpt = Self::new(synthetic, mapping, model)?;
        Ok(match lineage {
            Some(l) => ckpt.with_lineage(l),
            None => ckpt,
        })
    }
}

impl Condensed {
    /// Bundles this condensation result with trained weights into a
    /// serve-ready [`Checkpoint`].
    ///
    /// # Panics
    /// Panics when `model` was not trained on this condensed graph (its
    /// dimensions disagree) — that is a programming error, unlike the
    /// typed errors untrusted *bytes* produce on load.
    #[must_use]
    pub fn checkpoint(&self, model: &GnnModel) -> Checkpoint {
        Checkpoint::new(self.synthetic.clone(), self.mapping.clone(), model.clone())
            .expect("condensed artifacts and model disagree")
    }
}

impl<'a> InductiveServer<'a> {
    /// Boots a serving endpoint from a restored checkpoint — the synthetic
    /// graph, mapping and weights only; the original graph is never needed.
    /// A lineage-stamped checkpoint (one emitted by a live, promoted base)
    /// also stamps the server's base version, so a frozen cache built
    /// afterwards is in sync.
    #[must_use]
    pub fn from_checkpoint(ckpt: &'a Checkpoint) -> Self {
        let server = Self::on_synthetic(&ckpt.synthetic, &ckpt.mapping, &ckpt.model);
        match &ckpt.lineage {
            Some(l) => server.with_base_version(l.version),
            None => server,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_gnn::GnnKind;
    use mcond_linalg::DMat;
    use mcond_sparse::Coo;

    fn tiny_bundle() -> Checkpoint {
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(1, 2, 0.5);
        let graph = Graph::new(
            coo.to_csr(),
            DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]]),
            vec![0, 1, 0],
            2,
        );
        let mut map = Coo::new(5, 3);
        for i in 0..5 {
            map.push(i, i % 3, 1.0);
        }
        let model = GnnModel::new(GnnKind::Sgc, 2, 4, 2, 7);
        Checkpoint::new(graph, map.to_csr(), model).unwrap()
    }

    #[test]
    fn bundle_round_trips_bitwise() {
        let ckpt = tiny_bundle();
        let restored = Checkpoint::from_bytes(ckpt.to_writer().to_bytes()).unwrap();
        assert!(restored.synthetic.adj.bit_eq(&ckpt.synthetic.adj));
        assert!(restored.synthetic.features.bit_eq(&ckpt.synthetic.features));
        assert_eq!(restored.synthetic.labels, ckpt.synthetic.labels);
        assert!(restored.mapping.bit_eq(&ckpt.mapping));
        assert_eq!(restored.model.kind(), ckpt.model.kind());
        for (a, b) in restored.model.params().iter().zip(ckpt.model.params()) {
            assert!(a.bit_eq(b));
        }
    }

    #[test]
    fn lineage_section_round_trips_and_is_optional() {
        let ckpt = tiny_bundle();
        // No lineage: the section is absent and restores as None.
        let restored = Checkpoint::from_bytes(ckpt.to_writer().to_bytes()).unwrap();
        assert_eq!(restored.lineage, None);

        let lineage = DeltaLineage {
            version: 4,
            promotions: 4,
            promoted_nodes: 9,
            base_nodes: 12,
            mapping_rows: 14,
        };
        let stamped = tiny_bundle().with_lineage(lineage);
        let restored = Checkpoint::from_bytes(stamped.to_writer().to_bytes()).unwrap();
        assert_eq!(restored.lineage, Some(lineage));
        // The restored server inherits the lineage's base version.
        assert_eq!(InductiveServer::from_checkpoint(&restored).base_version(), 4);
    }

    #[test]
    fn mismatched_mapping_is_rejected_at_bundle_time() {
        let ckpt = tiny_bundle();
        let bad_map = Csr::empty(5, 7); // wrong synthetic node count
        match Checkpoint::new(ckpt.synthetic, bad_map, ckpt.model) {
            Err(StoreError::ShapeMismatch { .. }) => {}
            other => panic!("expected ShapeMismatch, got {:?}", other.err()),
        }
    }

    #[test]
    fn save_load_survives_the_filesystem() {
        let ckpt = tiny_bundle();
        let path = std::env::temp_dir().join("mcond_core_checkpoint_roundtrip.mcst");
        ckpt.save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(restored.mapping.bit_eq(&ckpt.mapping));
    }
}
