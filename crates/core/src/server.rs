//! Batch inference serving.
//!
//! [`infer_inductive`](crate::infer_inductive) materialises the extended
//! graph per batch: it copies the entire base graph into a fresh CSR and
//! re-normalises it, which is `O(‖A‖₀)` per batch — fine for one-off
//! evaluation, wasteful for a serving loop. [`InductiveServer`] instead
//! pre-normalises nothing and uses the lazy extended
//! [`Propagator`](mcond_gnn::Propagator): per batch it computes only the
//! incremental degree updates and streams the propagation through the
//! shared base CSR, so the per-batch cost is
//! `O(nnz(a) + nnz(ã) + forward pass)`.
//!
//! Results are exactly equal to the materialised path (verified by test).
//!
//! # Serving fast path
//!
//! The default [`ServeMode::Exact`] runs the **split-operator** forward
//! pass ([`GnnModel::predict_split`]): base features and the batch's
//! features are fed as a `(x_base, x_new)` pair that is never vstacked,
//! the batch's `inc`/`inter` blocks are borrowed in place (no clones), the
//! base graph's degree sums are shared across requests
//! ([`mcond_gnn::BaseDegrees`], computed once at construction), and the
//! final propagation computes only the `n` inductive output rows. The
//! logits are **bitwise identical** to the legacy vstack-and-slice path
//! ([`ServeMode::Extended`], kept for equivalence testing) at any thread
//! count; the per-request `O(N'·d)` base-feature memcpy is gone entirely
//! (tracked by the `serve.bytes_saved` gauge).
//!
//! [`ServeMode::FrozenBase`] additionally caches per-layer base
//! activations under base-only normalisation
//! ([`mcond_gnn::FrozenBase`]) and serves a request in
//! `O(L·(nnz(aM̂) + n·d))` — an opt-in, *documented approximation* (see
//! `mcond_gnn::frozen`); the default stays exact.
//!
//! # Fault tolerance
//!
//! Requests are untrusted. [`try_serve`](InductiveServer::try_serve)
//! validates every batch against the serving base (dimensions, shapes,
//! finiteness — see `NodeBatch::validate_against`) and returns a typed
//! [`ServeError`] instead of panicking;
//! [`try_serve_many`](InductiveServer::try_serve_many) additionally
//! isolates each request behind `catch_unwind`, so an internal panic in one
//! request surfaces as [`ServeError::Panicked`] while its siblings
//! complete. A per-node [`FallbackPolicy`] governs inductive nodes whose
//! attachment row is empty or whose mapping coverage falls below a
//! threshold. The `chaos` module sweeps systematically corrupted batches
//! through both serving modes to prove the taxonomy is total.
//!
//! # Tracing
//!
//! Every request gets a process-unique trace id (`try_serve` via
//! `mcond_obs::ensure_trace`, `try_serve_many` one per slot) stamped on all
//! of its span/point records, and the serve path is decomposed into stage
//! spans — `validate`, `attach`, `fallback` (when it fires), `propagate`,
//! `head` — each feeding a `serve.stage.*` histogram even when no event
//! sink is attached. When the flight recorder (`mcond_obs::flight`) is on,
//! a panicking request in [`try_serve_many`] dumps the worker's recent
//! event ring, trace-stamped, before reporting [`ServeError::Panicked`].
//!
//! # Concurrency
//!
//! The server is `Sync`: the base graph is shared behind an [`Arc`] and the
//! per-instance statistics sit behind a [`Mutex`], so [`serve_many`]
//! (`InductiveServer::serve_many`) can fan independent batches across the
//! `mcond-par` pool. Each request runs entirely on one worker — the nested
//! kernels inside a request stay serial (the pool forbids nested
//! parallelism), so per-batch results are identical to a sequential
//! [`serve`](InductiveServer::serve) loop.

use crate::serve_error::{panic_context, ServeError};
use mcond_gnn::{BaseDegrees, FrozenBase, GnnModel, GraphOps};
use mcond_graph::{Graph, NodeBatch};
use mcond_linalg::DMat;
use mcond_obs::{Histogram, MetricsSnapshot};
use mcond_sparse::{Coo, Csr};
use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Default cap on nodes per request; far above any sane batch, low enough
/// to reject a length field gone wild before it allocates.
pub const DEFAULT_MAX_BATCH: usize = 1 << 20;

/// Which forward pass answers requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// Split-operator fast path (the default): zero per-request base-side
    /// copies, final layer computes only the `n` inductive rows. Bitwise
    /// identical to [`ServeMode::Extended`].
    #[default]
    Exact,
    /// Legacy extended path: vstacks base and batch features, runs all
    /// layers over all `N' + n` rows, slices the bottom block. Kept as the
    /// reference the fast path is verified against.
    Extended,
    /// Frozen-base cache: per-layer base activations are cached under
    /// base-only normalisation at
    /// [`with_serve_mode`](InductiveServer::with_serve_mode) time and a
    /// request costs `O(L·(nnz + n·d))`. **Approximate** — the cache
    /// ignores the batch's back-edges into the base graph (exact for
    /// batches with no incremental edges; see `mcond_gnn::frozen` for the
    /// contract and the calibration test for measured deviation). Requests
    /// degraded to the original graph by
    /// [`FallbackPolicy::OriginalGraph`] are answered by the exact split
    /// path — the fallback already trades latency for accuracy.
    FrozenBase,
}

/// What to do with an inductive node whose attachment row (`a` row for
/// Eq. 3 serving, `aM` row for Eq. 11) is empty, or whose mapping coverage
/// (fraction of incremental mass surviving the sparsified `M`) falls below
/// the server's threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Fail the whole request with [`ServeError::NoAttachment`] — the
    /// caller decides what degraded service means.
    Reject,
    /// Serve the node from its own features only: its attachment row is
    /// dropped, so propagation sees just the self-loop (plus any batch
    /// interconnections). The default — with a zero threshold this is
    /// numerically identical to the pre-fallback behaviour, because only
    /// already-empty rows qualify.
    #[default]
    SelfLoopOnly,
    /// Degrade the batch from Eq. 11 to Eq. 3: re-attach it to the
    /// original graph provided via
    /// [`with_original_graph`](InductiveServer::with_original_graph).
    /// GCondenser-style quality gaps in the condensed graph then cost
    /// latency, not accuracy. Requires the original graph; errors with
    /// [`ServeError::FallbackUnavailable`] otherwise. On an
    /// original-graph server this is already the serving mode, so it
    /// behaves like [`FallbackPolicy::SelfLoopOnly`] without dropping rows.
    OriginalGraph,
}

/// The Eq. 3 fallback target a synthetic server can degrade to.
struct OriginalBase<'a> {
    adj: Arc<Csr>,
    features: &'a DMat,
    /// Degree sums of `adj`, shared across every degraded request.
    deg: BaseDegrees,
}

/// What one answered request contributes to the serving statistics.
struct RequestTally {
    /// Attachment fanout `‖aM̂‖₀` (or `‖a‖₀` on Eq. 3 serving).
    fanout: usize,
    /// Nodes the fallback policy handled in this request.
    fallback_nodes: u64,
    /// Base-feature bytes the fast path avoided copying.
    bytes_saved: u64,
    /// Whether the frozen-base cache answered the request.
    cache_hit: bool,
}

/// Per-instance serving statistics; kept on the server (not the global
/// registry) so concurrent servers — and parallel tests — never mix
/// numbers.
#[derive(Default)]
struct ServeStats {
    requests: u64,
    rejected: u64,
    fallback: u64,
    panics: u64,
    /// Base-feature bytes *not* copied per request by the split-operator
    /// fast path (the `N'×d×4` vstack the legacy path pays), cumulative.
    bytes_saved: u64,
    /// Requests answered from the frozen-base cache.
    cache_hits: u64,
    latency_us: Histogram,
    fanout: Histogram,
    batch_size: Histogram,
    coverage: Histogram,
}

/// A reusable inductive-inference endpoint over a fixed base graph
/// (original `T` per Eq. 3, or synthetic `S` + mapping per Eq. 11).
pub struct InductiveServer<'a> {
    base_adj: Arc<Csr>,
    base_features: &'a DMat,
    /// Degree sums of `base_adj`, computed once and shared by every
    /// request's extension (the per-layer base-degree terms of the fast
    /// path).
    base_deg: BaseDegrees,
    mapping: Option<&'a Csr>,
    model: &'a GnnModel,
    serve_mode: ServeMode,
    /// Per-layer base activations, present iff `serve_mode` is
    /// [`ServeMode::FrozenBase`].
    frozen: Option<FrozenBase>,
    fallback: FallbackPolicy,
    coverage_threshold: f32,
    max_batch: usize,
    original: Option<OriginalBase<'a>>,
    /// Version of the base graph this server was built against (0 for a
    /// static base). A frozen-base cache whose stamp trails this refuses
    /// to serve ([`ServeError::StaleCache`]).
    base_version: u64,
    stats: Mutex<ServeStats>,
}

impl<'a> InductiveServer<'a> {
    /// Serves inference on the original graph (Eq. 3 attachment).
    #[must_use]
    pub fn on_original(graph: &'a Graph, model: &'a GnnModel) -> Self {
        Self {
            base_adj: Arc::new(graph.adj.clone()),
            base_features: &graph.features,
            base_deg: BaseDegrees::of(&graph.adj),
            mapping: None,
            model,
            serve_mode: ServeMode::default(),
            frozen: None,
            fallback: FallbackPolicy::default(),
            coverage_threshold: 0.0,
            max_batch: DEFAULT_MAX_BATCH,
            original: None,
            base_version: 0,
            stats: Mutex::new(ServeStats::default()),
        }
    }

    /// Serves inference on the synthetic graph through the mapping
    /// (Eq. 11 attachment).
    ///
    /// # Panics
    /// Panics when the mapping's columns do not index the synthetic nodes.
    #[must_use]
    pub fn on_synthetic(graph: &'a Graph, mapping: &'a Csr, model: &'a GnnModel) -> Self {
        assert_eq!(
            mapping.cols(),
            graph.num_nodes(),
            "InductiveServer: mapping columns must index the synthetic nodes"
        );
        Self {
            base_adj: Arc::new(graph.adj.clone()),
            base_features: &graph.features,
            base_deg: BaseDegrees::of(&graph.adj),
            mapping: Some(mapping),
            model,
            serve_mode: ServeMode::default(),
            frozen: None,
            fallback: FallbackPolicy::default(),
            coverage_threshold: 0.0,
            max_batch: DEFAULT_MAX_BATCH,
            original: None,
            base_version: 0,
            stats: Mutex::new(ServeStats::default()),
        }
    }

    /// Sets the per-node [`FallbackPolicy`] (default
    /// [`FallbackPolicy::SelfLoopOnly`]).
    #[must_use]
    pub fn with_fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Selects the forward pass answering requests (default
    /// [`ServeMode::Exact`]). Switching to [`ServeMode::FrozenBase`] runs
    /// the base-only forward pass once, right here, and caches every
    /// propagation site's base activations (`serve.cache.builds` counter,
    /// `serve.cache.bytes` gauge); any other mode drops the cache.
    #[must_use]
    pub fn with_serve_mode(mut self, mode: ServeMode) -> Self {
        self.serve_mode = mode;
        self.frozen = (mode == ServeMode::FrozenBase).then(|| {
            // Stamped with the *current* base version: call
            // `with_base_version` first when booting a live (promoted)
            // base so the fresh cache is in sync.
            let frozen = FrozenBase::new(self.model, &self.base_adj, self.base_features)
                .with_version(self.base_version);
            mcond_obs::counter_add("serve.cache.builds", 1);
            #[allow(clippy::cast_precision_loss)]
            mcond_obs::gauge_set("serve.cache.bytes", frozen.bytes() as f64);
            frozen
        });
        self
    }

    /// Stamps the server with the live base's version (see
    /// `core::delta::LiveBase`). Requests answered from a frozen-base
    /// cache are checked against this stamp: a cache built (or last
    /// patched) at an older version is refused with
    /// [`ServeError::StaleCache`] instead of serving silently wrong
    /// logits. Defaults to `0` — matching what
    /// [`with_serve_mode`](InductiveServer::with_serve_mode) and
    /// [`mcond_gnn::FrozenBase::new`] stamp, so static bases never trip
    /// the check.
    #[must_use]
    pub fn with_base_version(mut self, version: u64) -> Self {
        self.base_version = version;
        self
    }

    /// The base version this server serves (see
    /// [`with_base_version`](InductiveServer::with_base_version)).
    #[must_use]
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Installs an externally built (or incrementally patched) frozen-base
    /// cache and switches to [`ServeMode::FrozenBase`]. Unlike
    /// [`with_serve_mode`](InductiveServer::with_serve_mode) this does not
    /// recompute the base forward pass — a live base that just patched its
    /// cache hands it over as-is, version stamp included.
    ///
    /// # Panics
    /// Panics when the cache does not cover this server's base node count.
    #[must_use]
    pub fn with_frozen_cache(mut self, frozen: FrozenBase) -> Self {
        assert_eq!(
            frozen.n_base(),
            self.base_adj.rows(),
            "with_frozen_cache: cache covers a different base node count"
        );
        #[allow(clippy::cast_precision_loss)]
        mcond_obs::gauge_set("serve.cache.bytes", frozen.bytes() as f64);
        self.serve_mode = ServeMode::FrozenBase;
        self.frozen = Some(frozen);
        self
    }

    /// Sets the mapping-coverage threshold below which a node triggers the
    /// fallback policy (default `0.0`: only empty attachment rows
    /// trigger). Coverage is the fraction of a node's incremental mass that
    /// survives the sparsified mapping, in `[0, 1]` for a row-stochastic
    /// `M`.
    #[must_use]
    pub fn with_coverage_threshold(mut self, threshold: f32) -> Self {
        self.coverage_threshold = threshold.max(0.0);
        self
    }

    /// Caps the number of nodes a single request may carry (default
    /// [`DEFAULT_MAX_BATCH`]); larger batches are rejected with
    /// [`ServeError::BatchTooLarge`].
    #[must_use]
    pub fn with_max_batch(mut self, max: usize) -> Self {
        self.max_batch = max;
        self
    }

    /// Attaches the original graph as the Eq. 3 degradation target for
    /// [`FallbackPolicy::OriginalGraph`].
    ///
    /// # Panics
    /// Panics when the graph does not match the batch indexing this server
    /// expects (mapping rows / base nodes) or the base feature dimension.
    #[must_use]
    pub fn with_original_graph(mut self, graph: &'a Graph) -> Self {
        assert_eq!(
            graph.num_nodes(),
            self.expected_inc_cols(),
            "with_original_graph: node count must match the batch indexing"
        );
        assert_eq!(
            graph.feature_dim(),
            self.base_features.cols(),
            "with_original_graph: feature dimension must match the base"
        );
        self.original = Some(OriginalBase {
            adj: Arc::new(graph.adj.clone()),
            features: &graph.features,
            deg: BaseDegrees::of(&graph.adj),
        });
        self
    }

    /// Number of base nodes.
    #[must_use]
    pub fn base_nodes(&self) -> usize {
        self.base_adj.rows()
    }

    /// The incremental-adjacency width every request must have: training
    /// nodes for Eq. 3 serving, mapping rows for Eq. 11. Callers building
    /// synthetic probe batches (e.g. a reload canary) size them with this.
    #[must_use]
    pub fn expected_incremental_cols(&self) -> usize {
        self.expected_inc_cols()
    }

    /// Feature dimension every request's rows must have.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.base_features.cols()
    }

    fn expected_inc_cols(&self) -> usize {
        self.mapping.map_or_else(|| self.base_adj.rows(), Csr::rows)
    }

    /// Logits (`n x C`) for one batch of inductive nodes.
    ///
    /// Thin panicking wrapper over [`try_serve`](InductiveServer::try_serve)
    /// for callers that control their inputs.
    ///
    /// # Panics
    /// Panics on any [`ServeError`], e.g. when the batch's incremental
    /// columns do not match the base (original-graph serving) or the
    /// mapping rows (synthetic serving).
    #[must_use]
    pub fn serve(&self, batch: &NodeBatch) -> DMat {
        self.try_serve(batch).unwrap_or_else(|e| panic!("serve: {e}"))
    }

    /// Logits (`n x C`) for one batch, with every failure mode reported as
    /// a typed [`ServeError`] instead of a panic.
    ///
    /// The batch is validated against the serving base first (dimensions,
    /// interconnect shape, finiteness), then sized against the batch cap;
    /// an empty batch short-circuits to a `0 x C` response without
    /// touching the kernels. Per-node attachment coverage is measured and
    /// the [`FallbackPolicy`] applied before the forward pass, and the
    /// response is withheld ([`ServeError::NonFiniteLogits`]) if the model
    /// produces a non-finite value.
    ///
    /// # Errors
    /// See [`ServeError`] for the full taxonomy.
    pub fn try_serve(&self, batch: &NodeBatch) -> Result<DMat, ServeError> {
        // One trace id per request (kept when the caller — e.g.
        // `try_serve_many` — already opened one for us).
        let _trace = mcond_obs::ensure_trace();
        let out = self.serve_validated(batch);
        if out.is_err() {
            mcond_obs::counter_add("serve.rejected", 1);
            let mut stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.rejected += 1;
        }
        out
    }

    fn serve_validated(&self, batch: &NodeBatch) -> Result<DMat, ServeError> {
        let serve_span = mcond_obs::span_with("serve", vec![("batch", batch.len().into())]);
        let start = Instant::now();
        {
            let _stage = mcond_obs::span_timed("validate", "serve.stage.validate");
            // Prefix-tolerant width check: a batch assembled against an
            // older, narrower base (before a delta promotion grew the
            // index space) stays valid — appended ids never change the
            // meaning of existing ones.
            batch.validate_against_prefix(self.expected_inc_cols(), self.base_features.cols())?;
            if batch.len() > self.max_batch {
                return Err(ServeError::BatchTooLarge { len: batch.len(), max: self.max_batch });
            }
        }
        if batch.is_empty() {
            // Fast path: no degree updates, no forward pass — just the
            // `0 x C` shape the caller expects.
            self.record_request(
                batch,
                &[],
                RequestTally { fanout: 0, fallback_nodes: 0, bytes_saved: 0, cache_hit: false },
                start,
            );
            return Ok(DMat::zeros(0, self.model.out_dim()));
        }

        // A prefix-width batch (built before the base grew) is widened to
        // the current index space — pure metadata, entries untouched — so
        // every downstream operator sees consistent block shapes. The
        // mapping conversion indexes rows by column value and needs no
        // widening; the direct paths (Eq. 3 serving, original-graph
        // degradation) do.
        let inc_batch: Cow<'_, Csr> = if batch.incremental.cols() < self.expected_inc_cols() {
            Cow::Owned(batch.incremental.widen_cols(self.expected_inc_cols()))
        } else {
            Cow::Borrowed(&batch.incremental)
        };

        // Attachment rows and per-node mapping coverage. The batch's own
        // incremental rows are borrowed — only the mapping conversion (and
        // a firing `clear_rows` fallback) materialises a new matrix.
        let attach_stage = mcond_obs::span_timed("attach", "serve.stage.attach");
        let (inc, coverage): (Cow<'_, Csr>, Vec<f32>) = match self.mapping {
            None => {
                let cov: Vec<f32> = (0..batch.len())
                    .map(|i| if batch.incremental.row_cols(i).is_empty() { 0.0 } else { 1.0 })
                    .collect();
                (Cow::Borrowed(inc_batch.as_ref()), cov)
            }
            Some(mapping) => {
                let am = crate::inference::spmm_sparse(&batch.incremental, mapping);
                // Coverage is the fraction of the node's *absolute*
                // incremental mass surviving the mapping, clamped to
                // [0, 1]: signed sums would zero out (and spuriously
                // reject) nodes whose edge weights cancel, and could
                // report > 1 into the coverage histogram.
                let cov: Vec<f32> = (0..batch.len())
                    .map(|i| {
                        let raw: f32 = batch.incremental.row_vals(i).iter().map(|v| v.abs()).sum();
                        if raw > 0.0 {
                            let kept: f32 = am.row_vals(i).iter().map(|v| v.abs()).sum();
                            // + 0.0 normalises the -0.0 that `Sum`'s float
                            // identity yields for an empty `aM` row, so
                            // errors report "0.000", not "-0.000".
                            (kept / raw).clamp(0.0, 1.0) + 0.0
                        } else {
                            0.0
                        }
                    })
                    .collect();
                (Cow::Owned(am), cov)
            }
        };
        let uncovered: Vec<usize> = (0..batch.len())
            .filter(|&i| inc.row_cols(i).is_empty() || coverage[i] < self.coverage_threshold)
            .collect();
        drop(attach_stage);

        let mut inc = inc;
        let mut fallback_nodes = 0u64;
        let mut use_original = false;
        if !uncovered.is_empty() {
            let _stage = mcond_obs::span_timed("fallback", "serve.stage.fallback");
            match self.fallback {
                FallbackPolicy::Reject => {
                    let node = uncovered[0];
                    return Err(ServeError::NoAttachment { node, coverage: coverage[node] });
                }
                FallbackPolicy::SelfLoopOnly => {
                    fallback_nodes = uncovered.len() as u64;
                    if uncovered.iter().any(|&i| !inc.row_cols(i).is_empty()) {
                        inc = Cow::Owned(clear_rows(&inc, &uncovered));
                    }
                }
                FallbackPolicy::OriginalGraph => {
                    fallback_nodes = uncovered.len() as u64;
                    if self.mapping.is_some() {
                        if self.original.is_none() {
                            return Err(ServeError::FallbackUnavailable { node: uncovered[0] });
                        }
                        use_original = true;
                    }
                    // Eq. 3 serving is already on the original graph:
                    // nothing to degrade to, serve the rows as they are.
                }
            }
            if fallback_nodes > 0 {
                mcond_obs::counter_add("serve.fallback", fallback_nodes);
            }
        }

        // Forward pass on the chosen base (synthetic, or the Eq. 3 target
        // when the whole batch degraded to the original graph). All blocks
        // are borrowed into the extension — nothing is cloned.
        let (base_adj, base_features, base_deg, inc): (&Csr, &DMat, &BaseDegrees, &Csr) =
            if use_original {
                let original = self.original.as_ref().expect("checked above");
                (&original.adj, original.features, &original.deg, inc_batch.as_ref())
            } else {
                (&self.base_adj, self.base_features, &self.base_deg, inc.as_ref())
            };
        let inter = &batch.interconnect;
        let fanout = inc.nnz();
        let mut bytes_saved = 0u64;
        let mut cache_hit = false;
        let propagate_stage = mcond_obs::span_timed("propagate", "serve.stage.propagate");
        let out = match self.serve_mode {
            ServeMode::Extended => {
                let ops = GraphOps::extended_with(base_adj, inc, inter, base_deg);
                let x = base_features.vstack(&batch.features);
                let logits = self.model.predict(&ops, &x);
                logits.slice_rows(base_adj.rows(), logits.rows())
            }
            ServeMode::Exact => {
                bytes_saved = feature_bytes(base_features);
                let ops = GraphOps::extended_with(base_adj, inc, inter, base_deg);
                self.model.predict_split(&ops, base_features, &batch.features)
            }
            ServeMode::FrozenBase if !use_original => {
                let frozen = self.frozen.as_ref().expect("cache built by with_serve_mode");
                if frozen.base_version() != self.base_version {
                    // A delta promotion mutated the base without patching
                    // or rebuilding the cache: its activations describe a
                    // graph that no longer exists. Refuse rather than
                    // answer with silently wrong logits.
                    return Err(ServeError::StaleCache {
                        cache_version: frozen.base_version(),
                        base_version: self.base_version,
                    });
                }
                bytes_saved = feature_bytes(base_features);
                cache_hit = true;
                self.model.predict_frozen(frozen, inc, inter, &batch.features)
            }
            ServeMode::FrozenBase => {
                // Degraded to the original graph: the cache covers the
                // primary base only — answer exactly (split path).
                bytes_saved = feature_bytes(base_features);
                let ops = GraphOps::extended_with(base_adj, inc, inter, base_deg);
                self.model.predict_split(&ops, base_features, &batch.features)
            }
        };
        drop(propagate_stage);
        {
            let _stage = mcond_obs::span_timed("head", "serve.stage.head");
            if !out.all_finite() {
                return Err(ServeError::NonFiniteLogits);
            }
        }
        // The serve span covers the serving computation — its stage spans
        // decompose it (near-)completely. Request bookkeeping below (stats
        // mutex, `serve.request` point, histogram records) is telemetry
        // overhead, kept outside the span so it never pollutes the
        // profile's stage coverage; `latency_us` still measures it via
        // `start`.
        drop(serve_span);

        if cache_hit {
            mcond_obs::counter_add("serve.cache.hits", 1);
        }
        self.record_request(
            batch,
            &coverage,
            RequestTally { fanout, fallback_nodes, bytes_saved, cache_hit },
            start,
        );
        Ok(out)
    }

    /// Books one answered request into the per-server statistics and the
    /// event log.
    fn record_request(
        &self,
        batch: &NodeBatch,
        coverage: &[f32],
        tally: RequestTally,
        start: Instant,
    ) {
        let latency_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        {
            let mut stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.requests += 1;
            stats.fallback += tally.fallback_nodes;
            stats.bytes_saved += tally.bytes_saved;
            stats.cache_hits += u64::from(tally.cache_hit);
            #[allow(clippy::cast_precision_loss)]
            {
                if tally.bytes_saved > 0 {
                    mcond_obs::gauge_set("serve.bytes_saved", stats.bytes_saved as f64);
                }
                stats.latency_us.record(latency_us as f64);
                stats.fanout.record(tally.fanout as f64);
                stats.batch_size.record(batch.len() as f64);
                for &c in coverage {
                    stats.coverage.record(f64::from(c));
                }
            }
        }
        if mcond_obs::enabled() {
            mcond_obs::point(
                "serve.request",
                &[
                    ("batch", batch.len().into()),
                    ("fanout", tally.fanout.into()),
                    ("fallback", tally.fallback_nodes.into()),
                    ("latency_us", latency_us.into()),
                ],
            );
        }
    }

    /// Logits for every batch, fanned across the `mcond-par` pool.
    ///
    /// One pool task per request: results and statistics are exactly what a
    /// sequential [`serve`](InductiveServer::serve) loop would produce (only
    /// the interleaving of histogram records differs, which no summary
    /// statistic observes). Output order matches input order.
    ///
    /// # Panics
    /// Panics when any batch fails [`try_serve`](InductiveServer::try_serve),
    /// exactly as [`serve`](InductiveServer::serve) would — use
    /// [`try_serve_many`](InductiveServer::try_serve_many) to keep one bad
    /// batch from failing the fan-out.
    #[must_use]
    pub fn serve_many(&self, batches: &[NodeBatch]) -> Vec<DMat> {
        let _span = mcond_obs::span_with("serve_many", vec![("batches", batches.len().into())]);
        let slots: Vec<Mutex<Option<DMat>>> =
            batches.iter().map(|_| Mutex::new(None)).collect();
        mcond_par::parallel_for_chunks(batches.len(), 1, |range| {
            for i in range {
                let out = self.serve(&batches[i]);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("serve_many: pool completed with an unfilled slot")
            })
            .collect()
    }

    /// Per-request results for every batch, fanned across the `mcond-par`
    /// pool with **panic isolation**: each request runs behind
    /// `catch_unwind`, so a batch that panics inside the server (a
    /// misconfiguration surfacing in a kernel, say) yields
    /// `Err(`[`ServeError::Panicked`]`)` in its slot while every sibling
    /// request completes normally. The stats mutex recovers from poisoning,
    /// so the server stays fully usable afterwards.
    ///
    /// Successful results are bitwise identical to a sequential
    /// [`try_serve`](InductiveServer::try_serve) loop at any thread count,
    /// regardless of how many siblings fail. Output order matches input
    /// order.
    #[must_use]
    pub fn try_serve_many(&self, batches: &[NodeBatch]) -> Vec<Result<DMat, ServeError>> {
        self.try_serve_many_traced(batches).into_iter().map(|(out, _)| out).collect()
    }

    /// [`try_serve_many`](InductiveServer::try_serve_many), additionally
    /// returning the per-request trace id alongside each slot. The id is
    /// the one `begin_trace` assigned for that request's span — the same
    /// value stamped on its log events and flight records — so a network
    /// front end can hand it back to the caller (`x-mcond-trace`) for
    /// end-to-end correlation. When no event consumer is active the trace
    /// layer is inert and every id is `0`.
    #[must_use]
    pub fn try_serve_many_traced(
        &self,
        batches: &[NodeBatch],
    ) -> Vec<(Result<DMat, ServeError>, u64)> {
        type Slot = Mutex<Option<(Result<DMat, ServeError>, u64)>>;
        let _span =
            mcond_obs::span_with("try_serve_many", vec![("batches", batches.len().into())]);
        let slots: Vec<Slot> = batches.iter().map(|_| Mutex::new(None)).collect();
        mcond_par::parallel_for_chunks(batches.len(), 1, |range| {
            for i in range {
                // Per-request trace id, opened *outside* the unwind
                // boundary so the panic handler (and its flight dump)
                // still attributes to the request that died.
                let trace = mcond_obs::begin_trace();
                let trace_id = trace.id();
                let out = catch_unwind(AssertUnwindSafe(|| self.try_serve(&batches[i])))
                    .unwrap_or_else(|payload| {
                        if mcond_obs::flight::active() {
                            // Post-mortem: the last events on this thread,
                            // trace-stamped, as one `flight` record.
                            let _ = mcond_obs::flight::dump("serve.panic");
                        }
                        mcond_obs::counter_add("serve.panic", 1);
                        let mut stats =
                            self.stats.lock().unwrap_or_else(PoisonError::into_inner);
                        stats.panics += 1;
                        drop(stats);
                        Err(ServeError::Panicked { context: panic_context(payload.as_ref()) })
                    });
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                    Some((out, trace_id));
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("try_serve_many: pool completed with an unfilled slot")
            })
            .collect()
    }

    /// Freezes this server's request statistics (latency, attachment
    /// fanout `‖aM̂‖₀`, batch sizes, per-node mapping coverage, the
    /// rejected/fallback/panic tallies, cache hits, and the cumulative
    /// base-feature bytes the fast path avoided copying) into a snapshot
    /// for reports.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        #[allow(clippy::cast_precision_loss)]
        MetricsSnapshot {
            counters: vec![
                ("serve.requests".to_owned(), stats.requests),
                ("serve.rejected".to_owned(), stats.rejected),
                ("serve.fallback".to_owned(), stats.fallback),
                ("serve.panic".to_owned(), stats.panics),
                ("serve.cache.hits".to_owned(), stats.cache_hits),
            ],
            gauges: vec![("serve.bytes_saved".to_owned(), stats.bytes_saved as f64)],
            histograms: vec![
                ("serve.latency_us".to_owned(), stats.latency_us.summary()),
                ("serve.fanout".to_owned(), stats.fanout.summary()),
                ("serve.batch_size".to_owned(), stats.batch_size.summary()),
                ("serve.coverage".to_owned(), stats.coverage.summary()),
            ],
        }
    }
}

/// Size in bytes of a dense feature matrix — the per-request copy the
/// split path avoids.
fn feature_bytes(x: &DMat) -> u64 {
    (x.rows() * x.cols() * core::mem::size_of::<f32>()) as u64
}

/// A copy of `m` with the given rows structurally emptied — the
/// `SelfLoopOnly` fallback's attachment pruning.
fn clear_rows(m: &Csr, rows: &[usize]) -> Csr {
    let mut drop = vec![false; m.rows()];
    for &i in rows {
        drop[i] = true;
    }
    let mut coo = Coo::with_capacity(m.rows(), m.cols(), m.nnz());
    for (i, j, v) in m.iter() {
        if !drop[i] {
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{condense, infer_inductive, InferenceTarget, McondConfig};
    use mcond_gnn::GnnKind;
    use mcond_graph::{load_dataset, Scale};
    use mcond_linalg::approx_eq;

    fn setup() -> (mcond_graph::InductiveDataset, crate::Condensed, GnnModel) {
        let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
        let condensed = condense(
            &data,
            &McondConfig {
                ratio: 0.02,
                outer_loops: 1,
                relay_steps: 3,
                mapping_steps: 5,
                support_cap: 32,
                ..McondConfig::default()
            },
        );
        let model = GnnModel::new(
            GnnKind::Gcn,
            data.full.feature_dim(),
            16,
            data.full.num_classes,
            1,
        );
        (data, condensed, model)
    }

    /// 6-node toy for fallback-policy tests: train {0,1,2} triangle; val
    /// {3}; test {4,5}. Synthetic graph with 2 nodes; the mapping covers
    /// train nodes {0,1} only — train node 2's row is empty, as after
    /// extreme Eq. 14 pruning — so test node 5 (connected only to train 2)
    /// gets an empty `aM` row.
    fn fallback_fixture() -> (mcond_graph::InductiveDataset, Graph, Csr, GnnModel) {
        use mcond_graph::InductiveDataset;
        use mcond_linalg::MatRng;

        let mut coo = Coo::new(6, 6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
            coo.push_sym(i, j, 1.0);
        }
        let features = MatRng::seed_from(0).normal(6, 3, 0.0, 1.0);
        let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
        let data = InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5]);

        let syn = Graph::new(
            Csr::eye(2),
            DMat::from_rows(&[&[1., 0., 0.], &[0., 1., 0.]]),
            vec![0, 1],
            2,
        );
        let mut map = Coo::new(3, 2);
        map.push(0, 0, 0.5);
        map.push(1, 0, 0.5);
        // train node 2: all mapping mass pruned.
        let mapping = map.to_csr();
        let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
        (data, syn, mapping, model)
    }

    #[test]
    fn server_matches_materialised_path_on_original() {
        let (data, _, model) = setup();
        let original = data.original_graph();
        let server = InductiveServer::on_original(&original, &model);
        for batch in data.test_batches(60, true) {
            let lazy = server.serve(&batch);
            let eager =
                infer_inductive(&model, &InferenceTarget::Original(&original), &batch);
            assert_eq!(lazy.shape(), eager.shape());
            for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
                assert!(approx_eq(*a, *b, 1e-4), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn server_matches_materialised_path_on_synthetic() {
        let (data, condensed, model) = setup();
        let server =
            InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model);
        let batch = data.test_batches(80, false).remove(0);
        let lazy = server.serve(&batch);
        let eager = infer_inductive(
            &model,
            &InferenceTarget::Synthetic {
                graph: &condensed.synthetic,
                mapping: &condensed.mapping,
            },
            &batch,
        );
        for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-4), "{a} vs {b}");
        }
    }

    #[test]
    fn server_agrees_for_every_architecture() {
        let (data, condensed, _) = setup();
        let batch = data.test_batches(40, true).remove(0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(
                kind,
                data.full.feature_dim(),
                8,
                data.full.num_classes,
                2,
            );
            let server = InductiveServer::on_synthetic(
                &condensed.synthetic,
                &condensed.mapping,
                &model,
            );
            let lazy = server.serve(&batch);
            let eager = infer_inductive(
                &model,
                &InferenceTarget::Synthetic {
                    graph: &condensed.synthetic,
                    mapping: &condensed.mapping,
                },
                &batch,
            );
            for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
                assert!(approx_eq(*a, *b, 1e-4), "{}: {a} vs {b}", kind.name());
            }
        }
    }

    /// Concurrent fan-out must be invisible in the results: per-batch
    /// logits bitwise-match a sequential serve loop, and the request
    /// counter reflects every batch exactly once.
    #[test]
    fn serve_many_matches_sequential_serve_loop() {
        let (data, condensed, model) = setup();
        let batches = data.test_batches(30, true);
        assert!(batches.len() > 1, "need several batches to exercise fan-out");

        let sequential = InductiveServer::on_synthetic(
            &condensed.synthetic,
            &condensed.mapping,
            &model,
        );
        let expected: Vec<DMat> =
            batches.iter().map(|b| sequential.serve(b)).collect();

        let concurrent = InductiveServer::on_synthetic(
            &condensed.synthetic,
            &condensed.mapping,
            &model,
        );
        let got = mcond_par::with_thread_limit(4, || concurrent.serve_many(&batches));

        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g.as_slice(), e.as_slice(), "batch {i} drifted");
        }

        let seq_snap = sequential.metrics_snapshot();
        let par_snap = concurrent.metrics_snapshot();
        assert_eq!(seq_snap.counters, par_snap.counters);
        let counter = |name: &str| {
            par_snap
                .counters
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(counter("serve.requests"), batches.len() as u64);
        assert_eq!(counter("serve.rejected"), 0);
        assert_eq!(counter("serve.panic"), 0);
    }

    #[test]
    #[should_panic(expected = "different base graph")]
    fn mismatched_batch_is_rejected() {
        let (data, _, model) = setup();
        let original = data.original_graph();
        let server = InductiveServer::on_original(&original, &model);
        // A batch built against the synthetic mapping's indexing of a
        // *different* dataset.
        let other = load_dataset("flickr", Scale::Small, 0).unwrap();
        let bad_batch = other.test_batches(10, false).remove(0);
        let _ = server.serve(&bad_batch);
    }

    /// Empty batches short-circuit to `0 x C` on both serving modes — no
    /// degree updates, no forward pass — and still count as requests.
    #[test]
    fn empty_batch_fast_path_returns_zero_by_c() {
        let (data, syn, mapping, model) = fallback_fixture();
        let original = data.original_graph();
        let empty = data.batch(&[], true);

        let on_original = InductiveServer::on_original(&original, &model);
        let out = on_original.serve(&empty);
        assert_eq!(out.shape(), (0, model.out_dim()));

        let on_synthetic = InductiveServer::on_synthetic(&syn, &mapping, &model);
        let out = on_synthetic.try_serve(&empty).expect("empty batch is valid");
        assert_eq!(out.shape(), (0, 2));

        let snap = on_synthetic.metrics_snapshot();
        assert!(snap.counters.contains(&("serve.requests".to_owned(), 1)));
        assert!(snap.counters.contains(&("serve.rejected".to_owned(), 0)));
    }

    #[test]
    fn oversized_batch_is_rejected_with_typed_error() {
        let (data, syn, mapping, model) = fallback_fixture();
        let server =
            InductiveServer::on_synthetic(&syn, &mapping, &model).with_max_batch(1);
        let batch = data.batch(&[4, 5], true);
        assert_eq!(
            server.try_serve(&batch),
            Err(ServeError::BatchTooLarge { len: 2, max: 1 })
        );
        let snap = server.metrics_snapshot();
        assert!(snap.counters.contains(&("serve.rejected".to_owned(), 1)));
    }

    /// Node 5's `aM` row is empty (its only training neighbour has a fully
    /// pruned mapping row), so each policy takes its branch.
    #[test]
    fn fallback_policies_cover_the_empty_attachment_row() {
        let (data, syn, mapping, model) = fallback_fixture();
        let batch = data.batch(&[5], true);

        // Reject: typed error naming the node.
        let reject = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_fallback(FallbackPolicy::Reject);
        match reject.try_serve(&batch) {
            Err(ServeError::NoAttachment { node: 0, coverage }) => {
                assert!(approx_eq(coverage, 0.0, 1e-6));
            }
            other => panic!("expected NoAttachment, got {other:?}"),
        }

        // SelfLoopOnly (default): serves finite logits, counts the node.
        let self_loop = InductiveServer::on_synthetic(&syn, &mapping, &model);
        let out = self_loop.try_serve(&batch).expect("self-loop fallback serves");
        assert_eq!(out.shape(), (1, 2));
        assert!(out.all_finite());
        assert!(self_loop
            .metrics_snapshot()
            .counters
            .contains(&("serve.fallback".to_owned(), 1)));

        // OriginalGraph without a target: typed error, not a panic.
        let unarmed = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_fallback(FallbackPolicy::OriginalGraph);
        assert_eq!(
            unarmed.try_serve(&batch),
            Err(ServeError::FallbackUnavailable { node: 0 })
        );

        // OriginalGraph with the original attached: bitwise-identical to
        // serving the same batch on an original-graph server (Eq. 3).
        let original = data.original_graph();
        let armed = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_fallback(FallbackPolicy::OriginalGraph)
            .with_original_graph(&original);
        let degraded = armed.try_serve(&batch).expect("degraded serve succeeds");
        let reference = InductiveServer::on_original(&original, &model).serve(&batch);
        assert_eq!(degraded.as_slice(), reference.as_slice());
        assert!(armed
            .metrics_snapshot()
            .counters
            .contains(&("serve.fallback".to_owned(), 1)));
    }

    /// A coverage threshold above what the mapping preserves forces the
    /// fallback even for non-empty `aM` rows; `SelfLoopOnly` then prunes
    /// the weak attachment instead of serving it.
    #[test]
    fn coverage_threshold_triggers_fallback_on_weak_rows() {
        let (data, syn, mapping, model) = fallback_fixture();
        // Node 4 attaches to train node 1, whose mapping mass is 0.5: the
        // aM row is non-empty with coverage 0.5.
        let batch = data.batch(&[4], false);

        let lenient = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_fallback(FallbackPolicy::Reject)
            .with_coverage_threshold(0.4);
        assert!(lenient.try_serve(&batch).is_ok(), "coverage 0.5 passes a 0.4 bar");

        let strict = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_fallback(FallbackPolicy::Reject)
            .with_coverage_threshold(0.9);
        match strict.try_serve(&batch) {
            Err(ServeError::NoAttachment { node: 0, coverage }) => {
                assert!(approx_eq(coverage, 0.5, 1e-5), "coverage {coverage}");
            }
            other => panic!("expected NoAttachment, got {other:?}"),
        }

        // SelfLoopOnly under the same bar prunes the attachment: the node
        // serves as if it had no synthetic neighbours at all.
        let pruned = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_coverage_threshold(0.9)
            .try_serve(&batch)
            .expect("self-loop fallback serves");
        let isolated = {
            let mut b = batch.clone();
            b.incremental = Csr::empty(1, 3);
            InductiveServer::on_synthetic(&syn, &mapping, &model)
                .try_serve(&b)
                .expect("isolated serve")
        };
        assert_eq!(pruned.as_slice(), isolated.as_slice());
    }

    /// A frozen cache whose version stamp trails the live base is refused
    /// with a typed error — stale-cache serving must be impossible.
    #[test]
    fn stale_frozen_cache_is_refused_not_served() {
        let (data, syn, mapping, model) = fallback_fixture();
        let batch = data.batch(&[4, 5], true);

        // Version in sync (both 0 by default): the cache answers.
        let fresh = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_serve_mode(ServeMode::FrozenBase);
        assert!(fresh.try_serve(&batch).is_ok(), "in-sync cache serves");

        // The base moved on (a delta promotion bumped its version) but the
        // cache kept its old stamp: typed refusal, not wrong logits.
        let stale = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_serve_mode(ServeMode::FrozenBase)
            .with_base_version(3);
        match stale.try_serve(&batch) {
            Err(ServeError::StaleCache { cache_version: 0, base_version: 3 }) => {}
            other => panic!("expected StaleCache, got {other:?}"),
        }

        // Re-stamping the cache (what a patch does) restores service, and
        // the exact modes never consult the stamp.
        let frozen = mcond_gnn::FrozenBase::new(&model, &syn.adj, &syn.features).with_version(3);
        let patched = InductiveServer::on_synthetic(&syn, &mapping, &model)
            .with_base_version(3)
            .with_frozen_cache(frozen);
        assert!(patched.try_serve(&batch).is_ok(), "re-stamped cache serves");
        let exact = InductiveServer::on_synthetic(&syn, &mapping, &model).with_base_version(3);
        assert!(exact.try_serve(&batch).is_ok(), "exact path ignores the stamp");
    }

    /// A batch built against a narrower (pre-promotion) base is served —
    /// its columns address a prefix of the grown index space — and its
    /// logits match the same batch widened by hand.
    #[test]
    fn prefix_width_batch_is_served_after_base_growth() {
        let (data, syn, mapping, model) = fallback_fixture();
        let batch = data.batch(&[4, 5], true);
        // Grow the mapping by one (promoted) row: 4 rows over 2 synthetic
        // nodes. The old 3-wide batch must still be answerable.
        let mut grown = Coo::new(4, 2);
        for (i, j, v) in mapping.iter() {
            grown.push(i, j, v);
        }
        grown.push(3, 1, 1.0);
        let grown = grown.to_csr();
        let server = InductiveServer::on_synthetic(&syn, &grown, &model);
        let narrow = server.try_serve(&batch).expect("prefix batch serves");
        let widened = {
            let mut b = batch.clone();
            b.incremental = b.incremental.widen_cols(4);
            server.try_serve(&b).expect("widened batch serves")
        };
        assert_eq!(narrow.as_slice(), widened.as_slice());
        // Wider than the base still fails validation.
        let mut too_wide = batch.clone();
        too_wide.incremental = too_wide.incremental.widen_cols(9);
        assert!(matches!(
            server.try_serve(&too_wide),
            Err(ServeError::InvalidBatch(mcond_graph::BatchError::IncrementalWidth { .. }))
        ));
    }
}
