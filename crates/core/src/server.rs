//! Batch inference serving.
//!
//! [`infer_inductive`](crate::infer_inductive) materialises the extended
//! graph per batch: it copies the entire base graph into a fresh CSR and
//! re-normalises it, which is `O(‖A‖₀)` per batch — fine for one-off
//! evaluation, wasteful for a serving loop. [`InductiveServer`] instead
//! pre-normalises nothing and uses the lazy extended
//! [`Propagator`](mcond_gnn::Propagator): per batch it computes only the
//! incremental degree updates and streams the propagation through the
//! shared base CSR, so the per-batch cost is
//! `O(nnz(a) + nnz(ã) + forward pass)`.
//!
//! Results are exactly equal to the materialised path (verified by test).
//!
//! # Concurrency
//!
//! The server is `Sync`: the base graph is shared behind an [`Arc`] and the
//! per-instance statistics sit behind a [`Mutex`], so [`serve_many`]
//! (`InductiveServer::serve_many`) can fan independent batches across the
//! `mcond-par` pool. Each request runs entirely on one worker — the nested
//! kernels inside a request stay serial (the pool forbids nested
//! parallelism), so per-batch results are identical to a sequential
//! [`serve`](InductiveServer::serve) loop.

use mcond_gnn::{GnnModel, GraphOps};
use mcond_graph::{Graph, NodeBatch};
use mcond_linalg::DMat;
use mcond_obs::{Histogram, MetricsSnapshot};
use mcond_sparse::Csr;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Per-instance serving statistics; kept on the server (not the global
/// registry) so concurrent servers — and parallel tests — never mix
/// numbers.
#[derive(Default)]
struct ServeStats {
    requests: u64,
    latency_us: Histogram,
    fanout: Histogram,
    batch_size: Histogram,
}

/// A reusable inductive-inference endpoint over a fixed base graph
/// (original `T` per Eq. 3, or synthetic `S` + mapping per Eq. 11).
pub struct InductiveServer<'a> {
    base_adj: Arc<Csr>,
    base_features: &'a DMat,
    mapping: Option<&'a Csr>,
    model: &'a GnnModel,
    stats: Mutex<ServeStats>,
}

impl<'a> InductiveServer<'a> {
    /// Serves inference on the original graph (Eq. 3 attachment).
    #[must_use]
    pub fn on_original(graph: &'a Graph, model: &'a GnnModel) -> Self {
        Self {
            base_adj: Arc::new(graph.adj.clone()),
            base_features: &graph.features,
            mapping: None,
            model,
            stats: Mutex::new(ServeStats::default()),
        }
    }

    /// Serves inference on the synthetic graph through the mapping
    /// (Eq. 11 attachment).
    ///
    /// # Panics
    /// Panics when the mapping's columns do not index the synthetic nodes.
    #[must_use]
    pub fn on_synthetic(graph: &'a Graph, mapping: &'a Csr, model: &'a GnnModel) -> Self {
        assert_eq!(
            mapping.cols(),
            graph.num_nodes(),
            "InductiveServer: mapping columns must index the synthetic nodes"
        );
        Self {
            base_adj: Arc::new(graph.adj.clone()),
            base_features: &graph.features,
            mapping: Some(mapping),
            model,
            stats: Mutex::new(ServeStats::default()),
        }
    }

    /// Number of base nodes.
    #[must_use]
    pub fn base_nodes(&self) -> usize {
        self.base_adj.rows()
    }

    /// Logits (`n x C`) for one batch of inductive nodes.
    ///
    /// # Panics
    /// Panics when the batch's incremental columns do not match the base
    /// (original-graph serving) or the mapping rows (synthetic serving).
    #[must_use]
    pub fn serve(&self, batch: &NodeBatch) -> DMat {
        let _span = mcond_obs::span_with("serve", vec![("batch", batch.len().into())]);
        let start = Instant::now();
        let inc = match self.mapping {
            None => {
                assert_eq!(
                    batch.incremental.cols(),
                    self.base_adj.rows(),
                    "serve: batch indexes a different base graph"
                );
                Arc::new(batch.incremental.clone())
            }
            Some(mapping) => {
                assert_eq!(
                    batch.incremental.cols(),
                    mapping.rows(),
                    "serve: batch indexes a different original graph"
                );
                Arc::new(crate::inference::spmm_sparse(&batch.incremental, mapping))
            }
        };
        let inter = Arc::new(batch.interconnect.clone());
        let fanout = inc.nnz();
        let ops = GraphOps::extended(&self.base_adj, &inc, &inter);
        let x = self.base_features.vstack(&batch.features);
        let logits = self.model.predict(&ops, &x);
        let out = logits.slice_rows(self.base_nodes(), logits.rows());

        let latency_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        {
            let mut stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.requests += 1;
            #[allow(clippy::cast_precision_loss)]
            {
                stats.latency_us.record(latency_us as f64);
                stats.fanout.record(fanout as f64);
                stats.batch_size.record(batch.len() as f64);
            }
        }
        if mcond_obs::enabled() {
            mcond_obs::point(
                "serve.request",
                &[
                    ("batch", batch.len().into()),
                    ("fanout", fanout.into()),
                    ("latency_us", latency_us.into()),
                ],
            );
        }
        out
    }

    /// Logits for every batch, fanned across the `mcond-par` pool.
    ///
    /// One pool task per request: results and statistics are exactly what a
    /// sequential [`serve`](InductiveServer::serve) loop would produce (only
    /// the interleaving of histogram records differs, which no summary
    /// statistic observes). Output order matches input order.
    ///
    /// # Panics
    /// Panics when any batch indexes a different base graph, exactly as
    /// [`serve`](InductiveServer::serve) would.
    #[must_use]
    pub fn serve_many(&self, batches: &[NodeBatch]) -> Vec<DMat> {
        let _span = mcond_obs::span_with("serve_many", vec![("batches", batches.len().into())]);
        let slots: Vec<Mutex<Option<DMat>>> =
            batches.iter().map(|_| Mutex::new(None)).collect();
        mcond_par::parallel_for_chunks(batches.len(), 1, |range| {
            for i in range {
                let out = self.serve(&batches[i]);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("serve_many: pool completed with an unfilled slot")
            })
            .collect()
    }

    /// Freezes this server's request statistics (latency, attachment
    /// fanout `‖aM̂‖₀`, batch sizes) into a snapshot for reports.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        MetricsSnapshot {
            counters: vec![("serve.requests".to_owned(), stats.requests)],
            gauges: Vec::new(),
            histograms: vec![
                ("serve.latency_us".to_owned(), stats.latency_us.summary()),
                ("serve.fanout".to_owned(), stats.fanout.summary()),
                ("serve.batch_size".to_owned(), stats.batch_size.summary()),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{condense, infer_inductive, InferenceTarget, McondConfig};
    use mcond_gnn::GnnKind;
    use mcond_graph::{load_dataset, Scale};
    use mcond_linalg::approx_eq;

    fn setup() -> (mcond_graph::InductiveDataset, crate::Condensed, GnnModel) {
        let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
        let condensed = condense(
            &data,
            &McondConfig {
                ratio: 0.02,
                outer_loops: 1,
                relay_steps: 3,
                mapping_steps: 5,
                support_cap: 32,
                ..McondConfig::default()
            },
        );
        let model = GnnModel::new(
            GnnKind::Gcn,
            data.full.feature_dim(),
            16,
            data.full.num_classes,
            1,
        );
        (data, condensed, model)
    }

    #[test]
    fn server_matches_materialised_path_on_original() {
        let (data, _, model) = setup();
        let original = data.original_graph();
        let server = InductiveServer::on_original(&original, &model);
        for batch in data.test_batches(60, true) {
            let lazy = server.serve(&batch);
            let eager =
                infer_inductive(&model, &InferenceTarget::Original(&original), &batch);
            assert_eq!(lazy.shape(), eager.shape());
            for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
                assert!(approx_eq(*a, *b, 1e-4), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn server_matches_materialised_path_on_synthetic() {
        let (data, condensed, model) = setup();
        let server =
            InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model);
        let batch = data.test_batches(80, false).remove(0);
        let lazy = server.serve(&batch);
        let eager = infer_inductive(
            &model,
            &InferenceTarget::Synthetic {
                graph: &condensed.synthetic,
                mapping: &condensed.mapping,
            },
            &batch,
        );
        for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-4), "{a} vs {b}");
        }
    }

    #[test]
    fn server_agrees_for_every_architecture() {
        let (data, condensed, _) = setup();
        let batch = data.test_batches(40, true).remove(0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(
                kind,
                data.full.feature_dim(),
                8,
                data.full.num_classes,
                2,
            );
            let server = InductiveServer::on_synthetic(
                &condensed.synthetic,
                &condensed.mapping,
                &model,
            );
            let lazy = server.serve(&batch);
            let eager = infer_inductive(
                &model,
                &InferenceTarget::Synthetic {
                    graph: &condensed.synthetic,
                    mapping: &condensed.mapping,
                },
                &batch,
            );
            for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
                assert!(approx_eq(*a, *b, 1e-4), "{}: {a} vs {b}", kind.name());
            }
        }
    }

    /// Concurrent fan-out must be invisible in the results: per-batch
    /// logits bitwise-match a sequential serve loop, and the request
    /// counter reflects every batch exactly once.
    #[test]
    fn serve_many_matches_sequential_serve_loop() {
        let (data, condensed, model) = setup();
        let batches = data.test_batches(30, true);
        assert!(batches.len() > 1, "need several batches to exercise fan-out");

        let sequential = InductiveServer::on_synthetic(
            &condensed.synthetic,
            &condensed.mapping,
            &model,
        );
        let expected: Vec<DMat> =
            batches.iter().map(|b| sequential.serve(b)).collect();

        let concurrent = InductiveServer::on_synthetic(
            &condensed.synthetic,
            &condensed.mapping,
            &model,
        );
        let got = mcond_par::with_thread_limit(4, || concurrent.serve_many(&batches));

        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g.as_slice(), e.as_slice(), "batch {i} drifted");
        }

        let seq_snap = sequential.metrics_snapshot();
        let par_snap = concurrent.metrics_snapshot();
        assert_eq!(seq_snap.counters, par_snap.counters);
        assert_eq!(
            par_snap.counters,
            vec![("serve.requests".to_owned(), batches.len() as u64)]
        );
    }

    #[test]
    #[should_panic(expected = "different base graph")]
    fn mismatched_batch_is_rejected() {
        let (data, _, model) = setup();
        let original = data.original_graph();
        let server = InductiveServer::on_original(&original, &model);
        // A batch built against the synthetic mapping's indexing of a
        // *different* dataset.
        let other = load_dataset("flickr", Scale::Small, 0).unwrap();
        let bad_batch = other.test_batches(10, false).remove(0);
        let _ = server.serve(&bad_batch);
    }
}
