//! Batch inference serving.
//!
//! [`infer_inductive`](crate::infer_inductive) materialises the extended
//! graph per batch: it copies the entire base graph into a fresh CSR and
//! re-normalises it, which is `O(‖A‖₀)` per batch — fine for one-off
//! evaluation, wasteful for a serving loop. [`InductiveServer`] instead
//! pre-normalises nothing and uses the lazy extended
//! [`Propagator`](mcond_gnn::Propagator): per batch it computes only the
//! incremental degree updates and streams the propagation through the
//! shared base CSR, so the per-batch cost is
//! `O(nnz(a) + nnz(ã) + forward pass)`.
//!
//! Results are exactly equal to the materialised path (verified by test).

use mcond_gnn::{GnnModel, GraphOps};
use mcond_graph::{Graph, NodeBatch};
use mcond_linalg::DMat;
use mcond_obs::{Histogram, MetricsSnapshot};
use mcond_sparse::Csr;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Per-instance serving statistics; kept on the server (not the global
/// registry) so concurrent servers — and parallel tests — never mix
/// numbers.
#[derive(Default)]
struct ServeStats {
    requests: u64,
    latency_us: Histogram,
    fanout: Histogram,
    batch_size: Histogram,
}

/// A reusable inductive-inference endpoint over a fixed base graph
/// (original `T` per Eq. 3, or synthetic `S` + mapping per Eq. 11).
pub struct InductiveServer<'a> {
    base_adj: Rc<Csr>,
    base_features: &'a DMat,
    mapping: Option<&'a Csr>,
    model: &'a GnnModel,
    stats: RefCell<ServeStats>,
}

impl<'a> InductiveServer<'a> {
    /// Serves inference on the original graph (Eq. 3 attachment).
    #[must_use]
    pub fn on_original(graph: &'a Graph, model: &'a GnnModel) -> Self {
        Self {
            base_adj: Rc::new(graph.adj.clone()),
            base_features: &graph.features,
            mapping: None,
            model,
            stats: RefCell::new(ServeStats::default()),
        }
    }

    /// Serves inference on the synthetic graph through the mapping
    /// (Eq. 11 attachment).
    ///
    /// # Panics
    /// Panics when the mapping's columns do not index the synthetic nodes.
    #[must_use]
    pub fn on_synthetic(graph: &'a Graph, mapping: &'a Csr, model: &'a GnnModel) -> Self {
        assert_eq!(
            mapping.cols(),
            graph.num_nodes(),
            "InductiveServer: mapping columns must index the synthetic nodes"
        );
        Self {
            base_adj: Rc::new(graph.adj.clone()),
            base_features: &graph.features,
            mapping: Some(mapping),
            model,
            stats: RefCell::new(ServeStats::default()),
        }
    }

    /// Number of base nodes.
    #[must_use]
    pub fn base_nodes(&self) -> usize {
        self.base_adj.rows()
    }

    /// Logits (`n x C`) for one batch of inductive nodes.
    ///
    /// # Panics
    /// Panics when the batch's incremental columns do not match the base
    /// (original-graph serving) or the mapping rows (synthetic serving).
    #[must_use]
    pub fn serve(&self, batch: &NodeBatch) -> DMat {
        let _span = mcond_obs::span_with("serve", vec![("batch", batch.len().into())]);
        let start = Instant::now();
        let inc = match self.mapping {
            None => {
                assert_eq!(
                    batch.incremental.cols(),
                    self.base_adj.rows(),
                    "serve: batch indexes a different base graph"
                );
                Rc::new(batch.incremental.clone())
            }
            Some(mapping) => {
                assert_eq!(
                    batch.incremental.cols(),
                    mapping.rows(),
                    "serve: batch indexes a different original graph"
                );
                Rc::new(crate::inference::spmm_sparse(&batch.incremental, mapping))
            }
        };
        let inter = Rc::new(batch.interconnect.clone());
        let fanout = inc.nnz();
        let ops = GraphOps::extended(&self.base_adj, &inc, &inter);
        let x = self.base_features.vstack(&batch.features);
        let logits = self.model.predict(&ops, &x);
        let out = logits.slice_rows(self.base_nodes(), logits.rows());

        let latency_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        {
            let mut stats = self.stats.borrow_mut();
            stats.requests += 1;
            #[allow(clippy::cast_precision_loss)]
            {
                stats.latency_us.record(latency_us as f64);
                stats.fanout.record(fanout as f64);
                stats.batch_size.record(batch.len() as f64);
            }
        }
        if mcond_obs::enabled() {
            mcond_obs::point(
                "serve.request",
                &[
                    ("batch", batch.len().into()),
                    ("fanout", fanout.into()),
                    ("latency_us", latency_us.into()),
                ],
            );
        }
        out
    }

    /// Freezes this server's request statistics (latency, attachment
    /// fanout `‖aM̂‖₀`, batch sizes) into a snapshot for reports.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let stats = self.stats.borrow();
        MetricsSnapshot {
            counters: vec![("serve.requests".to_owned(), stats.requests)],
            gauges: Vec::new(),
            histograms: vec![
                ("serve.latency_us".to_owned(), stats.latency_us.summary()),
                ("serve.fanout".to_owned(), stats.fanout.summary()),
                ("serve.batch_size".to_owned(), stats.batch_size.summary()),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{condense, infer_inductive, InferenceTarget, McondConfig};
    use mcond_gnn::GnnKind;
    use mcond_graph::{load_dataset, Scale};
    use mcond_linalg::approx_eq;

    fn setup() -> (mcond_graph::InductiveDataset, crate::Condensed, GnnModel) {
        let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
        let condensed = condense(
            &data,
            &McondConfig {
                ratio: 0.02,
                outer_loops: 1,
                relay_steps: 3,
                mapping_steps: 5,
                support_cap: 32,
                ..McondConfig::default()
            },
        );
        let model = GnnModel::new(
            GnnKind::Gcn,
            data.full.feature_dim(),
            16,
            data.full.num_classes,
            1,
        );
        (data, condensed, model)
    }

    #[test]
    fn server_matches_materialised_path_on_original() {
        let (data, _, model) = setup();
        let original = data.original_graph();
        let server = InductiveServer::on_original(&original, &model);
        for batch in data.test_batches(60, true) {
            let lazy = server.serve(&batch);
            let eager =
                infer_inductive(&model, &InferenceTarget::Original(&original), &batch);
            assert_eq!(lazy.shape(), eager.shape());
            for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
                assert!(approx_eq(*a, *b, 1e-4), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn server_matches_materialised_path_on_synthetic() {
        let (data, condensed, model) = setup();
        let server =
            InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model);
        let batch = data.test_batches(80, false).remove(0);
        let lazy = server.serve(&batch);
        let eager = infer_inductive(
            &model,
            &InferenceTarget::Synthetic {
                graph: &condensed.synthetic,
                mapping: &condensed.mapping,
            },
            &batch,
        );
        for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-4), "{a} vs {b}");
        }
    }

    #[test]
    fn server_agrees_for_every_architecture() {
        let (data, condensed, _) = setup();
        let batch = data.test_batches(40, true).remove(0);
        for kind in GnnKind::ALL {
            let model = GnnModel::new(
                kind,
                data.full.feature_dim(),
                8,
                data.full.num_classes,
                2,
            );
            let server = InductiveServer::on_synthetic(
                &condensed.synthetic,
                &condensed.mapping,
                &model,
            );
            let lazy = server.serve(&batch);
            let eager = infer_inductive(
                &model,
                &InferenceTarget::Synthetic {
                    graph: &condensed.synthetic,
                    mapping: &condensed.mapping,
                },
                &batch,
            );
            for (a, b) in lazy.as_slice().iter().zip(eager.as_slice()) {
                assert!(approx_eq(*a, *b, 1e-4), "{}: {a} vs {b}", kind.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "different base graph")]
    fn mismatched_batch_is_rejected() {
        let (data, _, model) = setup();
        let original = data.original_graph();
        let server = InductiveServer::on_original(&original, &model);
        // A batch built against the synthetic mapping's indexing of a
        // *different* dataset.
        let other = load_dataset("flickr", Scale::Small, 0).unwrap();
        let bad_batch = other.test_batches(10, false).remove(0);
        let _ = server.serve(&bad_batch);
    }
}
