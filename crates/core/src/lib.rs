//! **MCond** — mapping-aware graph condensation (ICDE 2024), the paper's
//! core contribution, plus every baseline its evaluation compares against.
//!
//! Given an original training graph `T = {A, X, Y}`, [`condense`] jointly
//! learns:
//!
//! 1. a small synthetic graph `S = {A', X', Y'}` via gradient matching
//!    (Eq. 4–5) with a pairwise-MLP adjacency generator (Eq. 6) and a
//!    topology-preserving structure loss (Eq. 8–9), and
//! 2. a sparse one-to-many **mapping matrix** `M : N x N'` (Eq. 15 init /
//!    normalisation) trained under transductive (Eq. 10) and inductive
//!    (Eq. 12) constraints,
//!
//! alternating between the two (Algorithm 1) and finishing with threshold
//! sparsification (Eq. 14). At inference time, [`attach_to_synthetic`]
//! implements Eq. (11): an unseen node with incremental adjacency `a` into
//! the original nodes is wired into `S` through `aM`, so message passing
//! runs on `N' ≪ N` nodes.
//!
//! Baselines: [`coreset`] (Random / Degree / Herding / K-Center) and
//! [`vng`] (virtual node graph via weighted k-means).
//!
//! # Example
//! ```no_run
//! use mcond_core::{condense, McondConfig};
//! use mcond_graph::{load_dataset, Scale};
//! let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
//! let result = condense(&data, &McondConfig { ratio: 0.02, ..McondConfig::default() });
//! println!("synthetic nodes: {}", result.synthetic.num_nodes());
//! ```

mod adjgen;
mod artifact;
pub mod chaos;
mod checkpoint;
mod condense;
mod coreset;
mod delta;
mod epoch;
mod inference;
mod mapping;
mod relay;
mod sampling;
mod serve_error;
mod server;
mod vng;

pub use adjgen::AdjacencyGenerator;
pub use artifact::{load_condensed, save_condensed, Artifact};
pub use checkpoint::Checkpoint;
pub use condense::{condense, CondenseHistory, Condensed, GradDistance, McondConfig};
pub use coreset::{coreset, CoresetMethod, ReducedGraph};
pub use delta::{CacheOutcome, DeltaError, DeltaLineage, GraphDelta, LiveBase, PromotionReport};
pub use epoch::{EpochServer, EpochSlot};
pub use inference::{attach_to_original, attach_to_synthetic, infer_inductive, InferenceTarget};
pub use mapping::{class_correlation_of, Mapping};
pub use relay::Relay;
pub use sampling::sample_edge_batch;
pub use serve_error::ServeError;
pub use server::{FallbackPolicy, InductiveServer, ServeMode, DEFAULT_MAX_BATCH};
pub use vng::vng;
