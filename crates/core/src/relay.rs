//! The relay GNN `f(·)` of §III-A.
//!
//! Following the paper's protocol (§IV-A), the relay used during
//! condensation is SGC: `H = Â^L X W + b`. Because SGC is linear in its
//! parameters, the cross-entropy weight gradient has the closed form
//! `G_W = Zᵀ E`, `G_b = 1ᵀ E` with `Z = Â^L X` and
//! `E = (softmax(ZW + b) - onehot(Y)) / N` — which is what lets gradient
//! matching differentiate *through the relay gradient* exactly with
//! first-order autodiff (see `mcond-autodiff`'s `softmax_error`).

use mcond_autodiff::{Adam, Tape, Var};
use mcond_linalg::{DMat, MatRng};
use std::sync::Arc;

/// A relay SGC model: one weight `d x C` and one bias `1 x C`.
pub struct Relay {
    /// Linear weight.
    pub w: DMat,
    /// Bias row.
    pub b: DMat,
    /// Propagation depth `L`.
    pub hops: usize,
}

impl Relay {
    /// Fresh Glorot-initialised relay (one draw from `P_θ0` of Eq. 4).
    #[must_use]
    pub fn init(feature_dim: usize, num_classes: usize, hops: usize, rng: &mut MatRng) -> Self {
        Self {
            w: rng.glorot(feature_dim, num_classes),
            b: DMat::zeros(1, num_classes),
            hops,
        }
    }

    /// Embeddings `H = Z W + b` for pre-propagated features `Z` (tape-free).
    #[must_use]
    pub fn embed(&self, z: &DMat) -> DMat {
        z.matmul(&self.w).add_row_broadcast(self.b.row(0))
    }

    /// The analytic cross-entropy gradient on pre-propagated features:
    /// `[G_W; G_b]` stacked into one `(d + 1) x C` matrix (the per-layer
    /// stack of Eq. 5's gradient set).
    #[must_use]
    pub fn gradient(&self, z: &DMat, labels: &[usize]) -> DMat {
        let n = z.rows().max(1) as f32;
        let mut err = self.embed(z).softmax_rows();
        for (i, &y) in labels.iter().enumerate() {
            let v = err.get(i, y) - 1.0;
            err.set(i, y, v);
        }
        err.scale_assign(1.0 / n);
        let gw = z.matmul_tn(&err);
        let gb = DMat::from_vec(1, err.cols(), err.col_sums());
        gw.vstack(&gb)
    }

    /// Tape expression of the same stacked gradient for a *variable*
    /// pre-propagated feature node `z` (the synthetic side of Eq. 4).
    /// `w`/`b` enter as constants — the relay is frozen while `S` updates.
    pub fn gradient_on_tape(&self, tape: &mut Tape, z: Var, labels: Arc<Vec<usize>>) -> Var {
        let w = tape.constant(self.w.clone());
        let b = tape.constant(self.b.clone());
        let zw = tape.matmul(z, w);
        let logits = tape.add_row_broadcast(zw, b);
        let err = tape.softmax_error(logits, labels);
        let zt = tape.transpose(z);
        let gw = tape.matmul(zt, err);
        // G_b = column sums of E == onesᵀ E.
        let n = tape.value(err).rows();
        let ones = tape.constant(DMat::filled(1, n, 1.0));
        let gb = tape.matmul(ones, err);
        tape.vstack(gw, gb)
    }

    /// Tape expression of the embeddings `Z W + b` for a variable `z`.
    pub fn embed_on_tape(&self, tape: &mut Tape, z: Var) -> Var {
        let w = tape.constant(self.w.clone());
        let b = tape.constant(self.b.clone());
        let zw = tape.matmul(z, w);
        tape.add_row_broadcast(zw, b)
    }

    /// One optimisation step of the relay parameters on a (detached)
    /// synthetic graph — line 11 of Algorithm 1. Returns the loss.
    pub fn train_step(
        &mut self,
        z_detached: &DMat,
        labels: &[usize],
        opt_w: &mut Adam,
        opt_b: &mut Adam,
    ) -> f32 {
        let mut tape = Tape::new();
        let w = tape.param(self.w.clone());
        let b = tape.param(self.b.clone());
        let z = tape.constant(z_detached.clone());
        let zw = tape.matmul(z, w);
        let logits = tape.add_row_broadcast(zw, b);
        let loss = tape.softmax_cross_entropy(logits, Arc::new(labels.to_vec()));
        let value = tape.scalar(loss);
        let mut grads = tape.backward(loss);
        if let Some(g) = grads.take(w) {
            opt_w.step(&mut self.w, &g);
        }
        if let Some(g) = grads.take(b) {
            opt_b.step(&mut self.b, &g);
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::approx_eq;

    fn fixture() -> (Relay, DMat, Vec<usize>) {
        let mut rng = MatRng::seed_from(3);
        let relay = Relay::init(4, 3, 2, &mut rng);
        let z = rng.normal(6, 4, 0.0, 1.0);
        let labels = vec![0usize, 1, 2, 0, 1, 2];
        (relay, z, labels)
    }

    #[test]
    fn analytic_gradient_matches_tape_gradient() {
        let (relay, z, labels) = fixture();
        let analytic = relay.gradient(&z, &labels);

        // Tape version with z constant should produce identical values.
        let mut tape = Tape::new();
        let zv = tape.constant(z.clone());
        let g = relay.gradient_on_tape(&mut tape, zv, Arc::new(labels.clone()));
        let tape_val = tape.value(g);
        assert_eq!(analytic.shape(), tape_val.shape());
        for (a, b) in analytic.as_slice().iter().zip(tape_val.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-5), "{a} vs {b}");
        }
    }

    #[test]
    fn analytic_gradient_matches_autodiff_of_ce() {
        // Differentiate CE(ZW + b) w.r.t. W/b with the tape and compare.
        let (relay, z, labels) = fixture();
        let mut tape = Tape::new();
        let w = tape.param(relay.w.clone());
        let b = tape.param(relay.b.clone());
        let zv = tape.constant(z.clone());
        let zw = tape.matmul(zv, w);
        let logits = tape.add_row_broadcast(zw, b);
        let loss = tape.softmax_cross_entropy(logits, Arc::new(labels.clone()));
        let grads = tape.backward(loss);
        let stacked = relay.gradient(&z, &labels);
        let gw = grads.get(w).unwrap();
        let gb = grads.get(b).unwrap();
        for i in 0..gw.rows() {
            for j in 0..gw.cols() {
                assert!(approx_eq(stacked.get(i, j), gw.get(i, j), 1e-5));
            }
        }
        for j in 0..gb.cols() {
            assert!(approx_eq(stacked.get(gw.rows(), j), gb.get(0, j), 1e-5));
        }
    }

    #[test]
    fn train_step_reduces_loss() {
        let (mut relay, z, labels) = fixture();
        let mut ow = Adam::new(0.1, relay.w.rows(), relay.w.cols());
        let mut ob = Adam::new(0.1, 1, relay.b.cols());
        let first = relay.train_step(&z, &labels, &mut ow, &mut ob);
        let mut last = first;
        for _ in 0..60 {
            last = relay.train_step(&z, &labels, &mut ow, &mut ob);
        }
        assert!(last < first * 0.5, "{first} -> {last}");
    }

    #[test]
    fn embed_shapes() {
        let (relay, z, _) = fixture();
        assert_eq!(relay.embed(&z).shape(), (6, 3));
    }
}
