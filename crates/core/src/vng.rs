//! The VNG baseline (Si et al., "Serving graph compression for graph neural
//! networks", ICLR 2023): a *virtual node graph* built by plain weighted
//! k-means over node embeddings, with the virtual adjacency reconstructed
//! from the GNN forward pass `P̃ᵀAP̃` and an implicit one-to-one
//! node→cluster mapping.
//!
//! The paper contrasts VNG's plain (class-agnostic) weighted k-means and
//! dense virtual adjacency with MCond's learned one-to-many mapping — all
//! three properties are reproduced here: clustering ignores labels (virtual
//! labels come from majority vote), the mapping is one-hot per original
//! node, and the virtual adjacency is dense.

use crate::coreset::ReducedGraph;
use mcond_graph::Graph;
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};

/// Builds the virtual node graph with `n_virtual` nodes.
///
/// * `embeddings` — vectors clustered by degree-weighted k-means.
///
/// # Panics
/// Panics when `n_virtual` is zero or exceeds the node count.
#[must_use]
pub fn vng(graph: &Graph, embeddings: &DMat, n_virtual: usize, seed: u64) -> ReducedGraph {
    let degrees: Vec<f32> =
        graph.adj.row_nnz().iter().map(|&d| (d as f32).max(1.0)).collect();
    let mut rng = MatRng::seed_from(seed);

    let members: Vec<usize> = (0..graph.num_nodes()).collect();
    let assignment = weighted_kmeans(&members, embeddings, &degrees, n_virtual, &mut rng);
    let k_total = n_virtual;

    // Virtual labels: degree-weighted majority class per cluster.
    let mut class_mass = vec![vec![0f32; graph.num_classes]; k_total];
    for (i, &c) in assignment.iter().enumerate() {
        class_mass[c][graph.labels[i]] += degrees[i];
    }
    let labels_virtual: Vec<usize> = class_mass
        .iter()
        .map(|mass| {
            mass.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite mass"))
                .map(|(c, _)| c)
                .unwrap_or(0)
        })
        .collect();

    // Weighted cluster means as virtual features.
    let mut weight_sums = vec![0f32; k_total];
    for (i, &c) in assignment.iter().enumerate() {
        weight_sums[c] += degrees[i];
    }
    let mut features = DMat::zeros(k_total, graph.feature_dim());
    for (i, &c) in assignment.iter().enumerate() {
        let w = degrees[i] / weight_sums[c];
        for (dst, v) in features.row_mut(c).iter_mut().zip(graph.features.row(i)) {
            *dst += w * *v;
        }
    }

    // Virtual adjacency A_v = P̃ᵀ A P̃ with P̃ the weight-normalised
    // assignment — the forward-pass reconstruction of VNG. Dense by
    // construction (the property the paper's Fig. 3 discussion calls out).
    let mut adj_dense = DMat::zeros(k_total, k_total);
    for (i, j, v) in graph.adj.iter() {
        let (ci, cj) = (assignment[i], assignment[j]);
        let w = (degrees[i] / weight_sums[ci]) * (degrees[j] / weight_sums[cj]);
        let val = adj_dense.get(ci, cj) + v * w;
        adj_dense.set(ci, cj, val);
    }
    let adj = Csr::from_dense(&adj_dense);

    // One-to-one mapping: each original node points at its cluster.
    let mut map = Coo::new(graph.num_nodes(), k_total);
    for (i, &c) in assignment.iter().enumerate() {
        map.push(i, c, 1.0);
    }

    ReducedGraph {
        graph: Graph::new(adj, features, labels_virtual, graph.num_classes),
        mapping: map.to_csr(),
    }
}

/// Degree-weighted Lloyd k-means over the rows of `embeddings[members]`.
/// Returns each member's cluster id in `0..k`; every cluster is non-empty.
fn weighted_kmeans(
    members: &[usize],
    embeddings: &DMat,
    weights: &[f32],
    k: usize,
    rng: &mut MatRng,
) -> Vec<usize> {
    let d = embeddings.cols();
    assert!(k >= 1 && k <= members.len(), "weighted_kmeans: bad k");
    // Init: k distinct random members as centers.
    let seeds = rng.sample_indices(members.len(), k);
    let mut centers: Vec<Vec<f32>> =
        seeds.iter().map(|&s| embeddings.row(members[s]).to_vec()).collect();
    let mut assign = vec![0usize; members.len()];

    for _iter in 0..20 {
        let mut changed = false;
        for (pos, &m) in members.iter().enumerate() {
            let row = embeddings.row(m);
            let mut best = 0usize;
            let mut best_dist = f32::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let dist: f32 =
                    row.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            if assign[pos] != best {
                assign[pos] = best;
                changed = true;
            }
        }
        // Recompute weighted centers; reseed empty clusters.
        let mut sums = vec![vec![0f32; d]; k];
        let mut mass = vec![0f32; k];
        for (pos, &m) in members.iter().enumerate() {
            let w = weights[m];
            mass[assign[pos]] += w;
            for (s, v) in sums[assign[pos]].iter_mut().zip(embeddings.row(m)) {
                *s += w * *v;
            }
        }
        for c in 0..k {
            if mass[c] > 0.0 {
                for s in &mut sums[c] {
                    *s /= mass[c];
                }
                centers[c] = std::mem::take(&mut sums[c]);
            } else {
                let steal = rng.index(members.len());
                centers[c] = embeddings.row(members[steal]).to_vec();
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Guarantee non-empty clusters: move a point from the largest cluster
    // into any empty one.
    let mut counts = vec![0usize; k];
    for &a in &assign {
        counts[a] += 1;
    }
    for c in 0..k {
        if counts[c] == 0 {
            let donor = (0..members.len())
                .max_by_key(|&pos| counts[assign[pos]])
                .expect("non-empty member set");
            counts[assign[donor]] -= 1;
            assign[donor] = c;
            counts[c] += 1;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_graph::{generate_sbm, SbmConfig};

    fn dataset() -> Graph {
        generate_sbm(&SbmConfig {
            nodes: 150,
            edges: 500,
            feature_dim: 8,
            num_classes: 3,
            center_scale: 1.5,
            ..SbmConfig::default()
        })
    }

    #[test]
    fn vng_produces_requested_size_and_full_mapping() {
        let g = dataset();
        let reduced = vng(&g, &g.features, 12, 0);
        assert_eq!(reduced.graph.num_nodes(), 12);
        assert_eq!(reduced.mapping.rows(), 150);
        // One-to-one: every original node maps to exactly one cluster.
        assert_eq!(reduced.mapping.nnz(), 150);
        for i in 0..150 {
            assert_eq!(reduced.mapping.row_cols(i).len(), 1);
        }
    }

    #[test]
    fn virtual_labels_are_valid_classes() {
        let g = dataset();
        let reduced = vng(&g, &g.features, 9, 1);
        assert!(reduced.graph.labels.iter().all(|&y| y < 3));
    }

    #[test]
    fn virtual_adjacency_preserves_total_edge_mass_bound() {
        let g = dataset();
        let reduced = vng(&g, &g.features, 10, 2);
        let mass: f32 = reduced.graph.adj.iter().map(|(_, _, v)| v).sum();
        assert!(mass > 0.0);
        assert!(mass <= g.adj.nnz() as f32 + 1e-3);
    }

    #[test]
    fn clusters_mostly_respect_well_separated_classes() {
        // With strong feature separation, k-means clusters should be fairly
        // class-pure (majority label agrees with most members).
        let g = dataset();
        let reduced = vng(&g, &g.features, 9, 3);
        let mut agree = 0usize;
        for (orig, cluster, _) in reduced.mapping.iter() {
            if g.labels[orig] == reduced.graph.labels[cluster] {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / g.num_nodes() as f64 > 0.6,
            "only {agree}/150 nodes match their cluster label"
        );
    }

    #[test]
    fn kmeans_clusters_are_non_empty() {
        let g = dataset();
        let reduced = vng(&g, &g.features, 15, 4);
        let mut sizes = vec![0usize; 15];
        for (_, c, _) in reduced.mapping.iter() {
            sizes[c] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    }

    #[test]
    fn clustering_is_class_agnostic() {
        // Shuffled labels must not change the clustering (only the virtual
        // labels).
        let g = dataset();
        let mut g2 = g.clone();
        g2.labels.rotate_left(31);
        let a = vng(&g, &g.features, 8, 5);
        let b = vng(&g2, &g2.features, 8, 5);
        assert_eq!(a.mapping, b.mapping);
    }
}
