//! Algorithm 1: alternating optimisation of the synthetic graph `S` and the
//! mapping matrix `M`.

use crate::adjgen::AdjacencyGenerator;
use crate::coreset::class_budgets;
use crate::mapping::Mapping;
use crate::relay::Relay;
use crate::sampling::sample_edge_batch;
use mcond_autodiff::{Adam, Tape};
use mcond_graph::{Graph, InductiveDataset};
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{renormalize_rows, sparsify_dense, sym_normalize, Csr};
use std::sync::Arc;

/// Distance used to compare relay gradients in the matching objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradDistance {
    /// Eq. (5): summed column-wise cosine distances (the paper's choice).
    Cosine,
    /// Plain Frobenius distance `‖G - G'‖_F` (DosCond-style) — the DESIGN.md
    /// ablation comparator.
    L2,
}

/// Hyper-parameters of MCond (defaults follow §IV-A where stated).
#[derive(Clone, Debug)]
pub struct McondConfig {
    /// Condensation ratio `r = N'/N`.
    pub ratio: f64,
    /// Outer loops `K` (each draws a fresh relay initialisation `θ₀`).
    pub outer_loops: usize,
    /// Inner steps `T` per outer loop (synthetic-graph updates, each
    /// followed by one relay step).
    pub relay_steps: usize,
    /// Mapping updates per outer loop.
    pub mapping_steps: usize,
    /// Propagation depth `L` (paper: 2-layer models).
    pub hops: usize,
    /// Hidden width of the MLP_Φ adjacency generator.
    pub adjgen_hidden: usize,
    /// Structure-loss weight `λ` (Eq. 9).
    pub lambda: f32,
    /// Inductive-loss weight `β` (Eq. 13).
    pub beta: f32,
    /// Learning rate `η₁` for `X'`.
    pub lr_feat: f32,
    /// Learning rate `η₂` for Φ.
    pub lr_phi: f32,
    /// Learning rate for `M` (paper: 0.1).
    pub lr_map: f32,
    /// Learning rate for the relay GNN.
    pub lr_relay: f32,
    /// `ε` of Eq. (15) (paper: 1e-5).
    pub epsilon: f32,
    /// Sparsification threshold `µ` for `A'` (Eq. 14).
    pub mu: f32,
    /// Sparsification threshold `δ` for `M` (Eq. 14).
    pub delta: f32,
    /// Edge samples per structure-loss batch (half positive/half negative).
    pub structure_batch: usize,
    /// Cap on support (validation) nodes used by the inductive loss per
    /// step; the dense block of Eq. (11) is `(N' + n)²`.
    pub support_cap: usize,
    /// Row mini-batch size for the transductive loss (`0` = all rows).
    /// Eq. (10) is a sum over original-node rows, so sampling rows is plain
    /// SGD; required at paper scale where the full `N x N'` product per
    /// step is prohibitive.
    pub transductive_batch: usize,
    /// Ablation: disable the structure loss `L_str` ("w/o L_str").
    pub use_structure_loss: bool,
    /// Ablation: disable the inductive loss `L_ind` ("w/o L_ind").
    pub use_inductive_loss: bool,
    /// Disable mapping training entirely — this is the GCond baseline (the
    /// returned mapping is the normalised class-aware init).
    pub train_mapping: bool,
    /// Class-aware init for `M` (§III-E); `false` gives the Fig. 5(c)
    /// random-init comparator.
    pub class_aware_init: bool,
    /// Gradient-distance variant (ablation; the paper uses cosine).
    pub grad_distance: GradDistance,
    /// Match gradients per class (as the original GCond implementation
    /// does) instead of over the whole graph at once. Per-class matching is
    /// `C+1`x more work per step; at the default whole-graph setting the
    /// class balance is carried by the label-proportional `Y'`.
    pub per_class_matching: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McondConfig {
    fn default() -> Self {
        Self {
            ratio: 0.02,
            outer_loops: 4,
            relay_steps: 12,
            mapping_steps: 30,
            hops: 2,
            adjgen_hidden: 64,
            lambda: 0.1,
            beta: 100.0,
            lr_feat: 0.05,
            lr_phi: 0.01,
            lr_map: 0.1,
            lr_relay: 0.05,
            epsilon: 1e-5,
            mu: 0.5,
            delta: 0.01,
            structure_batch: 256,
            support_cap: 128,
            transductive_batch: 0,
            use_structure_loss: true,
            use_inductive_loss: true,
            train_mapping: true,
            class_aware_init: true,
            grad_distance: GradDistance::Cosine,
            per_class_matching: false,
            seed: 0,
        }
    }
}

impl McondConfig {
    /// The GCond baseline: gradient matching only, no structure loss, no
    /// mapping training.
    #[must_use]
    pub fn gcond(ratio: f64, seed: u64) -> Self {
        Self {
            ratio,
            use_structure_loss: false,
            use_inductive_loss: false,
            train_mapping: false,
            seed,
            ..Self::default()
        }
    }
}

/// Per-step loss traces of a condensation run.
#[derive(Clone, Debug, Default)]
pub struct CondenseHistory {
    /// Gradient-matching loss `L_gra` per synthetic-graph step.
    pub grad_loss: Vec<f32>,
    /// Structure loss `L_str` per synthetic-graph step (empty when
    /// disabled).
    pub structure_loss: Vec<f32>,
    /// Transductive loss `L_tra` per mapping step.
    pub transductive_loss: Vec<f32>,
    /// Inductive loss `L_ind` per mapping step (empty when disabled).
    pub inductive_loss: Vec<f32>,
    /// Total mapping loss `L_M` per mapping step — Fig. 5(c)'s y-axis.
    pub mapping_loss: Vec<f32>,
}

/// The result of condensation.
pub struct Condensed {
    /// `S = {A', X', Y'}` with the sparsified adjacency.
    pub synthetic: Graph,
    /// Sparsified mapping `M : N x N'`.
    pub mapping: Csr,
    /// Dense `A'` before Eq. (14) — kept for the Fig. 6 sweeps.
    pub dense_adj: DMat,
    /// Dense normalised `M` before Eq. (14).
    pub dense_mapping: DMat,
    /// Loss traces.
    pub history: CondenseHistory,
}

impl Condensed {
    /// Re-applies Eq. (14) with new thresholds to the stored dense matrices
    /// (the Fig. 6 experiment varies `δ` without re-condensing).
    #[must_use]
    pub fn resparsify(&self, mu: f32, delta: f32) -> (Csr, Csr) {
        let (adj, _) = sparsify_dense(&self.dense_adj, mu);
        let (map, _) = sparsify_dense(&self.dense_mapping, delta);
        // Thresholding drops probability mass; restore the row-stochastic
        // semantics of `M` (empty rows — fully pruned nodes — stay empty).
        (adj, renormalize_rows(&map))
    }
}

/// Runs MCond (Algorithm 1) on the dataset's original (training) graph.
///
/// # Panics
/// Panics when the ratio yields fewer synthetic nodes than classes.
#[must_use]
pub fn condense(data: &InductiveDataset, cfg: &McondConfig) -> Condensed {
    let original = data.original_graph();
    let n = original.num_nodes();
    let d = original.feature_dim();
    let c = original.num_classes;
    let n_syn = ((cfg.ratio * n as f64).round() as usize).max(c);
    let _condense_span = mcond_obs::span_with(
        "condense",
        vec![("n", n.into()), ("n_syn", n_syn.into()), ("d", d.into()), ("c", c.into())],
    );
    let mut rng = MatRng::seed_from(cfg.seed);

    // --- Synthetic labels Y' (fixed, class-proportional) and X' init
    // (random real features per class, as in GCond). -----------------------
    let budgets = class_budgets(&original.class_counts(), n_syn);
    let mut labels_syn = Vec::with_capacity(n_syn);
    let mut init_rows = Vec::with_capacity(n_syn);
    for (class, &budget) in budgets.iter().enumerate() {
        let members = original.class_members(class);
        let picks = rng.sample_indices(members.len(), budget.min(members.len()));
        for p in &picks {
            init_rows.push(members[*p]);
        }
        // If the class has fewer members than budget, repeat samples.
        for extra in picks.len()..budget {
            init_rows.push(members[extra % members.len()]);
        }
        labels_syn.extend(std::iter::repeat_n(class, budget));
    }
    let mut x_syn = original.features.select_rows(&init_rows);
    // Small jitter so repeated rows are not identical.
    let jitter = rng.normal(x_syn.rows(), x_syn.cols(), 0.0, 0.01);
    x_syn.add_assign(&jitter);
    let labels_syn_rc = Arc::new(labels_syn.clone());

    // --- Original-graph precomputation. -----------------------------------
    let ahat = sym_normalize(&original.adj);
    let mut z_orig = original.features.clone();
    for _ in 0..cfg.hops {
        z_orig = ahat.spmm(&z_orig);
    }

    // --- Per-class row indices for per-class gradient matching. ------------
    let orig_class_rows: Vec<Vec<usize>> =
        (0..c).map(|class| original.class_members(class)).collect();
    let syn_class_rows: Vec<Arc<Vec<usize>>> = (0..c)
        .map(|class| {
            Arc::new(
                labels_syn
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &y)| (y == class).then_some(i))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let class_fractions: Vec<f32> =
        original.class_counts().iter().map(|&cnt| cnt as f32 / n as f32).collect();

    // --- Support nodes (validation split, capped). -------------------------
    let support_nodes: Vec<usize> = {
        let cap = cfg.support_cap.min(data.val_idx.len());
        let picks = rng.sample_indices(data.val_idx.len(), cap);
        picks.into_iter().map(|p| data.val_idx[p]).collect()
    };
    let support = (!support_nodes.is_empty()).then(|| data.batch(&support_nodes, false));
    // Propagated features of the support nodes on the *original* graph
    // (θ-independent; embeddings follow by multiplying with the relay).
    let z_support_orig = support.as_ref().map(|sup| {
        let ext_adj = original.adj.block_extend(&sup.incremental, &sup.interconnect);
        let ext_hat = sym_normalize(&ext_adj);
        let mut z = original.features.vstack(&sup.features);
        for _ in 0..cfg.hops {
            z = ext_hat.spmm(&z);
        }
        z.slice_rows(n, n + sup.len())
    });

    // --- Trainable pieces. --------------------------------------------------
    let mut generator = AdjacencyGenerator::init(d, cfg.adjgen_hidden, &mut rng);
    let mut gen_opts = generator.optimizers(cfg.lr_phi);
    let mut feat_opt = Adam::new(cfg.lr_feat, n_syn, d);
    let mut mapping = if cfg.class_aware_init {
        Mapping::class_init(&original.labels, &labels_syn, cfg.epsilon)
    } else {
        Mapping::random_init(n, n_syn, cfg.epsilon, &mut rng)
    };
    let mut map_opt = Adam::new(cfg.lr_map, n, n_syn);
    let mut history = CondenseHistory::default();

    // --- Algorithm 1 main loop. ---------------------------------------------
    for outer in 0..cfg.outer_loops {
        let _outer_span = mcond_obs::span_with("condense.outer", vec![("outer", outer.into())]);
        let mut relay = Relay::init(d, c, cfg.hops, &mut rng);
        let mut relay_opt_w = Adam::new(cfg.lr_relay, d, c);
        let mut relay_opt_b = Adam::new(cfg.lr_relay, 1, c);

        // ---- Update synthetic graph (lines 6–11). -------------------------
        for t in 0..cfg.relay_steps {
            let m_norm = mapping.normalized_detached();

            let mut tape = Tape::new();
            let phi = generator.tape_params(&mut tape);
            let xs = tape.param(x_syn.clone());
            let adj_syn = generator.adjacency(&mut tape, &phi, xs);
            let ahat_syn = tape.sym_normalize(adj_syn);
            let mut z = xs;
            for _ in 0..cfg.hops {
                z = tape.matmul(ahat_syn, z);
            }

            let distance = |tape: &mut Tape, target: mcond_autodiff::Var, g| match cfg
                .grad_distance
            {
                GradDistance::Cosine => tape.cosine_col_dist(target, g),
                GradDistance::L2 => {
                    let diff = tape.sub(target, g);
                    tape.frobenius(diff)
                }
            };
            let l_gra = if cfg.per_class_matching {
                // Σ_c (N_c/N) · dist(G_c, G'_c) over class-restricted
                // gradients (the original GCond objective).
                let mut total: Option<mcond_autodiff::Var> = None;
                for class in 0..c {
                    let rows_syn = &syn_class_rows[class];
                    if rows_syn.is_empty() || orig_class_rows[class].is_empty() {
                        continue;
                    }
                    let z_orig_c = z_orig.select_rows(&orig_class_rows[class]);
                    let labels_c = vec![class; orig_class_rows[class].len()];
                    let g_orig_c = relay.gradient(&z_orig_c, &labels_c);
                    let z_c = tape.select_rows(z, Arc::clone(rows_syn));
                    let g_syn_c = relay.gradient_on_tape(
                        &mut tape,
                        z_c,
                        Arc::new(vec![class; rows_syn.len()]),
                    );
                    let target = tape.constant(g_orig_c);
                    let dist = distance(&mut tape, target, g_syn_c);
                    let weighted = tape.scale(dist, class_fractions[class]);
                    total = Some(match total {
                        Some(acc) => tape.add(acc, weighted),
                        None => weighted,
                    });
                }
                total.expect("at least one non-empty class")
            } else {
                let g_orig = relay.gradient(&z_orig, &original.labels);
                let g_syn =
                    relay.gradient_on_tape(&mut tape, z, Arc::clone(&labels_syn_rc));
                let g_target = tape.constant(g_orig);
                distance(&mut tape, g_target, g_syn)
            };
            history.grad_loss.push(tape.scalar(l_gra));

            let l_s = if cfg.use_structure_loss {
                // For SGC, the relay's node embeddings H' = f(A', X') are
                // the propagated features Â'^L X' (the classifier W is the
                // separate readout of Eq. 2), i.e. the node `z` itself.
                // Only the batch's rows of H̃ = M̂ H' are needed, so gather
                // those rows of M̂ before the N-row product — identical loss
                // and gradients, but O(|B|·N'·d) instead of O(N·N'·d).
                let batch = sample_edge_batch(&original.adj, cfg.structure_batch, &mut rng);
                let mut ids: Vec<usize> = batch
                    .iter()
                    .flat_map(|&(i, j, _)| [i as usize, j as usize])
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                let local_of = |node: u32| -> u32 {
                    ids.binary_search(&(node as usize)).expect("node in id set") as u32
                };
                let local_batch: Vec<(u32, u32, f32)> =
                    batch.iter().map(|&(i, j, t)| (local_of(i), local_of(j), t)).collect();
                let m_const = tape.constant(m_norm.select_rows(&ids));
                let h_tilde = tape.matmul(m_const, z);
                let l_str = tape.pair_bce(h_tilde, Arc::new(local_batch));
                history.structure_loss.push(tape.scalar(l_str));
                let weighted = tape.scale(l_str, cfg.lambda);
                tape.add(l_gra, weighted)
            } else {
                l_gra
            };

            let mut grads = tape.backward(l_s);
            if let Some(g) = grads.take(xs) {
                feat_opt.step(&mut x_syn, &g);
            }
            generator.apply(&mut grads, &phi, &mut gen_opts);

            // Relay step on the detached synthetic graph (line 11).
            let z_det = propagate_synthetic(&generator, &x_syn, cfg.hops);
            relay.train_step(&z_det, &labels_syn, &mut relay_opt_w, &mut relay_opt_b);

            if mcond_obs::enabled() {
                let mut fields = vec![
                    ("outer", outer.into()),
                    ("step", t.into()),
                    ("l_gra", history.grad_loss.last().copied().unwrap_or(f32::NAN).into()),
                ];
                if cfg.use_structure_loss {
                    if let Some(&l_str) = history.structure_loss.last() {
                        fields.push(("l_str", l_str.into()));
                    }
                }
                mcond_obs::point("condense.relay_step", &fields);
            }
        }

        // ---- Update mapping matrix (lines 12–15). --------------------------
        // Embeddings are the relay's propagated features (see the structure
        // loss above): H = Â^L X on the original graph, H' = Â'^L X' on the
        // synthetic graph, and the support rows of the extended propagation.
        if cfg.train_mapping {
            // The mapping must be trained against the graph that will be
            // *deployed*: the µ-sparsified A' (Eq. 14). Using the dense
            // pre-threshold A' here changes the degrees — and hence the
            // symmetric normalisation — enough that a mapping tuned on it
            // misfires at inference time.
            let adj_syn_det =
                generator.adjacency_detached(&x_syn).map(|v| if v >= cfg.mu { v } else { 0.0 });
            let h_syn = {
                let ahat_syn = mcond_sparse::sym_normalize_dense(&adj_syn_det);
                let mut z = x_syn.clone();
                for _ in 0..cfg.hops {
                    z = ahat_syn.matmul(&z);
                }
                z
            };
            let h_orig = &z_orig;
            let h_support = z_support_orig.as_ref();

            for step in 0..cfg.mapping_steps {
                let mut tape = Tape::new();
                let raw = mapping.tape_param(&mut tape);
                let m_hat = mapping.normalized(&mut tape, raw);

                // L_tra (Eq. 10), optionally over a sampled row mini-batch
                // (`transductive_batch` > 0) — plain SGD over Eq. (10)'s
                // row sum, needed at paper scale where the full N x N'
                // product per step is prohibitive.
                let (m_rows, h_rows, rows_used) =
                    if cfg.transductive_batch > 0 && cfg.transductive_batch < n {
                        let ids = Arc::new(rng.sample_indices(n, cfg.transductive_batch));
                        let m_sel = tape.select_rows(m_hat, Arc::clone(&ids));
                        let h_sel = h_orig.select_rows(&ids);
                        (m_sel, h_sel, cfg.transductive_batch)
                    } else {
                        (m_hat, h_orig.clone(), n)
                    };
                let h_syn_c = tape.constant(h_syn.clone());
                let h_tilde = tape.matmul(m_rows, h_syn_c);
                let h_orig_c = tape.constant(h_rows);
                let diff = tape.sub(h_orig_c, h_tilde);
                let l21 = tape.l21(diff);
                let l_tra = tape.scale(l21, 1.0 / rows_used as f32);
                history.transductive_loss.push(tape.scalar(l_tra));

                let l_m = match (&support, &h_support, cfg.use_inductive_loss) {
                    (Some(sup), Some(h_sup_target), true) => {
                        // L_ind (Eq. 11–12): connect support nodes to S
                        // through aM̂ and compare embeddings.
                        let am = tape.spmm(Arc::new(sup.incremental.clone()), m_hat);
                        let a_syn_c = tape.constant(adj_syn_det.clone());
                        let am_t = tape.transpose(am);
                        let top = tape.hstack(a_syn_c, am_t);
                        let corner =
                            tape.constant(sup.interconnect.to_dense());
                        let bottom = tape.hstack(am, corner);
                        let block = tape.vstack(top, bottom);
                        let block_hat = tape.sym_normalize(block);
                        let x_ext = tape.constant(x_syn.vstack(&sup.features));
                        let mut z_ext = x_ext;
                        for _ in 0..cfg.hops {
                            z_ext = tape.matmul(block_hat, z_ext);
                        }
                        let h_sup_syn = tape.slice_rows(z_ext, n_syn, n_syn + sup.len());
                        let target = tape.constant((*h_sup_target).clone());
                        let diff_sup = tape.sub(target, h_sup_syn);
                        let l21_sup = tape.l21(diff_sup);
                        let l_ind = tape.scale(l21_sup, 1.0 / sup.len() as f32);
                        history.inductive_loss.push(tape.scalar(l_ind));
                        let weighted = tape.scale(l_ind, cfg.beta);
                        tape.add(l_tra, weighted)
                    }
                    _ => l_tra,
                };
                history.mapping_loss.push(tape.scalar(l_m));

                if mcond_obs::enabled() {
                    let mut fields = vec![
                        ("outer", outer.into()),
                        ("step", step.into()),
                        ("l_tra", history.transductive_loss.last().copied().unwrap_or(f32::NAN).into()),
                        ("l_map", history.mapping_loss.last().copied().unwrap_or(f32::NAN).into()),
                    ];
                    if cfg.use_inductive_loss {
                        if let Some(&l_ind) = history.inductive_loss.last() {
                            fields.push(("l_ind", l_ind.into()));
                        }
                    }
                    mcond_obs::point("condense.mapping_step", &fields);
                }

                let mut grads = tape.backward(l_m);
                if let Some(g) = grads.take(raw) {
                    map_opt.step(&mut mapping.raw, &g);
                }
            }
        }
    }

    // --- Eq. (14) sparsification. -------------------------------------------
    let dense_adj = generator.adjacency_detached(&x_syn);
    let dense_mapping = mapping.normalized_detached();
    let (adj_sparse, adj_stats) = sparsify_dense(&dense_adj, cfg.mu);
    let (map_sparse, map_stats) = sparsify_dense(&dense_mapping, cfg.delta);
    // Eq. (14) drops sub-threshold mass, so surviving rows of `M` no longer
    // sum to 1; renormalise them (empty rows stay empty) so inductive
    // propagation `a M` keeps its random-walk interpretation.
    let map_sparse = renormalize_rows(&map_sparse);
    mcond_obs::point(
        "condense.sparsify",
        &[
            ("adj_nnz_before", (adj_stats.kept + adj_stats.dropped).into()),
            ("adj_nnz_after", adj_stats.kept.into()),
            ("map_nnz_before", (map_stats.kept + map_stats.dropped).into()),
            ("map_nnz_after", map_stats.kept.into()),
        ],
    );
    mcond_obs::emit_snapshot("condense");

    Condensed {
        synthetic: Graph::new(adj_sparse, x_syn, labels_syn, c),
        mapping: map_sparse,
        dense_adj,
        dense_mapping,
        history,
    }
}

/// Detached propagation `Z' = Â'^L X'` for the current generator/features.
fn propagate_synthetic(generator: &AdjacencyGenerator, x_syn: &DMat, hops: usize) -> DMat {
    let adj = generator.adjacency_detached(x_syn);
    let ahat = mcond_sparse::sym_normalize_dense(&adj);
    let mut z = x_syn.clone();
    for _ in 0..hops {
        z = ahat.matmul(&z);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_graph::{load_dataset, Scale};

    fn quick_cfg() -> McondConfig {
        McondConfig {
            ratio: 0.03,
            outer_loops: 2,
            relay_steps: 4,
            mapping_steps: 6,
            structure_batch: 64,
            support_cap: 24,
            ..McondConfig::default()
        }
    }

    #[test]
    fn condense_produces_consistent_shapes() {
        let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
        let result = condense(&data, &quick_cfg());
        let n = data.train_idx.len();
        let n_syn = result.synthetic.num_nodes();
        assert_eq!(n_syn, (0.03 * n as f64).round() as usize);
        assert_eq!(result.mapping.rows(), n);
        assert_eq!(result.mapping.cols(), n_syn);
        assert_eq!(result.synthetic.labels.len(), n_syn);
        assert_eq!(result.dense_adj.shape(), (n_syn, n_syn));
    }

    #[test]
    fn synthetic_labels_match_class_distribution() {
        let data = load_dataset("pubmed", Scale::Small, 1).unwrap();
        let result = condense(&data, &quick_cfg());
        let counts = result.synthetic.class_counts();
        assert!(counts.iter().all(|&c| c >= 1));
        // The largest original class keeps the largest synthetic budget.
        let orig_counts = data.original_graph().class_counts();
        let max_orig = orig_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .unwrap()
            .0;
        let max_syn = counts.iter().enumerate().max_by_key(|&(_, &v)| v).unwrap().0;
        assert_eq!(max_orig, max_syn);
    }

    #[test]
    fn losses_are_recorded_and_finite() {
        let data = load_dataset("pubmed", Scale::Small, 2).unwrap();
        let cfg = quick_cfg();
        let result = condense(&data, &cfg);
        let expected_steps = cfg.outer_loops * cfg.relay_steps;
        assert_eq!(result.history.grad_loss.len(), expected_steps);
        assert_eq!(result.history.structure_loss.len(), expected_steps);
        assert_eq!(
            result.history.mapping_loss.len(),
            cfg.outer_loops * cfg.mapping_steps
        );
        assert!(result
            .history
            .grad_loss
            .iter()
            .chain(&result.history.mapping_loss)
            .all(|v| v.is_finite()));
    }

    #[test]
    fn mapping_training_reduces_mapping_loss() {
        let data = load_dataset("pubmed", Scale::Small, 3).unwrap();
        let cfg = McondConfig { mapping_steps: 40, ..quick_cfg() };
        let result = condense(&data, &cfg);
        let losses = &result.history.mapping_loss;
        let first_block_mean: f32 =
            losses[..5].iter().sum::<f32>() / 5.0;
        let last_block_mean: f32 =
            losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            last_block_mean < first_block_mean,
            "{first_block_mean} -> {last_block_mean}"
        );
    }

    #[test]
    fn gcond_config_disables_mapping_training() {
        let data = load_dataset("pubmed", Scale::Small, 4).unwrap();
        let result = condense(&data, &McondConfig::gcond(0.03, 4));
        assert!(result.history.mapping_loss.is_empty());
        assert!(result.history.structure_loss.is_empty());
        // Mapping still usable (normalised class init).
        assert!(result.mapping.nnz() > 0);
    }

    #[test]
    fn l2_distance_variant_condenses() {
        let data = load_dataset("pubmed", Scale::Small, 8).unwrap();
        let cfg = McondConfig { grad_distance: GradDistance::L2, ..quick_cfg() };
        let result = condense(&data, &cfg);
        assert!(result.history.grad_loss.iter().all(|v| v.is_finite()));
        // L2 losses are norms, not cosine sums: strictly positive.
        assert!(result.history.grad_loss.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn per_class_matching_condenses_and_differs_from_whole_graph() {
        let data = load_dataset("pubmed", Scale::Small, 9).unwrap();
        let whole = condense(&data, &quick_cfg());
        let cfg = McondConfig { per_class_matching: true, ..quick_cfg() };
        let per_class = condense(&data, &cfg);
        assert_eq!(
            whole.synthetic.num_nodes(),
            per_class.synthetic.num_nodes()
        );
        assert_ne!(whole.synthetic.features, per_class.synthetic.features);
        assert!(per_class.history.grad_loss.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transductive_row_batching_still_learns() {
        let data = load_dataset("pubmed", Scale::Small, 10).unwrap();
        let cfg = McondConfig {
            transductive_batch: 64,
            mapping_steps: 40,
            ..quick_cfg()
        };
        let result = condense(&data, &cfg);
        let losses = &result.history.mapping_loss;
        assert!(losses.iter().all(|v| v.is_finite()));
        let first: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let last: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn resparsify_is_monotone() {
        let data = load_dataset("pubmed", Scale::Small, 5).unwrap();
        let result = condense(&data, &quick_cfg());
        let (_, loose) = result.resparsify(0.0, 0.0);
        let (_, tight) = result.resparsify(0.9, 0.5);
        assert!(tight.nnz() <= loose.nnz());
    }
}
