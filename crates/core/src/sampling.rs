//! Positive/negative edge sampling for the structure loss (Eq. 8).

use mcond_linalg::MatRng;
use mcond_sparse::Csr;

/// Samples a mini-batch `B` of edge pairs from adjacency `adj`: `count / 2`
/// positives (existing edges, target 1) and `count / 2` negatives (uniform
/// non-adjacent pairs, target 0).
///
/// Returns `(i, j, target)` triples ready for `Tape::pair_bce`. Graphs with
/// no edges yield negatives only.
///
/// # Panics
/// Panics when `adj` has fewer than two nodes or `count == 0`.
#[must_use]
pub fn sample_edge_batch(adj: &Csr, count: usize, rng: &mut MatRng) -> Vec<(u32, u32, f32)> {
    assert!(adj.rows() >= 2, "sample_edge_batch: need at least two nodes");
    assert!(count > 0, "sample_edge_batch: empty batch requested");
    let n = adj.rows();
    let mut batch = Vec::with_capacity(count);

    // Positives: draw a random node weighted by presence of edges, then a
    // random neighbour. Rejection on isolated nodes.
    let positives = if adj.nnz() > 0 { count / 2 } else { 0 };
    let mut guard = 0;
    while batch.len() < positives && guard < positives * 50 {
        guard += 1;
        let i = rng.index(n);
        let cols = adj.row_cols(i);
        if cols.is_empty() {
            continue;
        }
        let j = cols[rng.index(cols.len())];
        batch.push((i as u32, j, 1.0));
    }

    // Negatives: uniform pairs rejected if adjacent or identical.
    while batch.len() < count {
        let i = rng.index(n);
        let j = rng.index(n);
        if i == j || adj.get(i, j) != 0.0 {
            continue;
        }
        batch.push((i as u32, j as u32, 0.0));
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_sparse::Coo;

    fn ring(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push_sym(i, (i + 1) % n, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn positives_are_edges_and_negatives_are_not() {
        let adj = ring(20);
        let mut rng = MatRng::seed_from(1);
        let batch = sample_edge_batch(&adj, 40, &mut rng);
        assert_eq!(batch.len(), 40);
        for &(i, j, t) in &batch {
            let present = adj.get(i as usize, j as usize) != 0.0;
            if t == 1.0 {
                assert!(present, "positive ({i},{j}) is not an edge");
            } else {
                assert!(!present, "negative ({i},{j}) is an edge");
                assert_ne!(i, j);
            }
        }
    }

    #[test]
    fn batch_is_balanced() {
        let adj = ring(30);
        let mut rng = MatRng::seed_from(2);
        let batch = sample_edge_batch(&adj, 50, &mut rng);
        let pos = batch.iter().filter(|&&(_, _, t)| t == 1.0).count();
        assert_eq!(pos, 25);
    }

    #[test]
    fn edgeless_graph_yields_only_negatives() {
        let adj = Csr::empty(10, 10);
        let mut rng = MatRng::seed_from(3);
        let batch = sample_edge_batch(&adj, 10, &mut rng);
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|&(_, _, t)| t == 0.0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let adj = ring(15);
        let a = sample_edge_batch(&adj, 20, &mut MatRng::seed_from(7));
        let b = sample_edge_batch(&adj, 20, &mut MatRng::seed_from(7));
        assert_eq!(a, b);
    }
}
