//! The mapping matrix `M : N x N'` (§III-C–E).
//!
//! `M` encodes each original node as a weighted ensemble of synthetic nodes
//! (Eq. 7). It is trained densely with the Eq. (15) normalisation applied
//! on the forward pass, and thresholded into a sparse matrix at the end
//! (Eq. 14).

use mcond_autodiff::{Tape, Var};
use mcond_linalg::DMat;

/// The trainable mapping from original to synthetic nodes.
pub struct Mapping {
    /// Raw (pre-normalisation) parameters.
    pub raw: DMat,
    /// The `ε` of Eq. (15), suppressing subtle noisy weights.
    pub epsilon: f32,
}

impl Mapping {
    /// Class-aware initialisation (§III-E): a constant positive raw weight
    /// when original node `i` and synthetic node `j` share a class, a
    /// constant negative weight otherwise.
    ///
    /// The paper states "set `M_ij` to a constant (e.g. 1)" for same-class
    /// pairs and 0 otherwise; because Eq. (15) passes the raw values through
    /// a sigmoid before row-normalising, a 1-vs-0 raw contrast yields only a
    /// 0.73-vs-0.5 weight contrast — too flat to matter for many-class
    /// datasets. We use ±4 so the *normalised* init is strongly
    /// block-diagonal (σ(4) ≈ 0.98 vs σ(-4) ≈ 0.02), which realises the
    /// intended "same-class only" initial mapping.
    #[must_use]
    pub fn class_init(original_labels: &[usize], synthetic_labels: &[usize], epsilon: f32) -> Self {
        const SAME: f32 = 4.0;
        const DIFF: f32 = -4.0;
        let mut raw = DMat::filled(original_labels.len(), synthetic_labels.len(), DIFF);
        for (i, &yi) in original_labels.iter().enumerate() {
            for (j, &yj) in synthetic_labels.iter().enumerate() {
                if yi == yj {
                    raw.set(i, j, SAME);
                }
            }
        }
        Self { raw, epsilon }
    }

    /// Random uniform initialisation — the Fig. 5(c) ablation comparator.
    #[must_use]
    pub fn random_init(
        n_original: usize,
        n_synthetic: usize,
        epsilon: f32,
        rng: &mut mcond_linalg::MatRng,
    ) -> Self {
        Self { raw: rng.uniform(n_original, n_synthetic, 0.0, 1.0), epsilon }
    }

    /// Registers the raw parameters on a tape.
    pub fn tape_param(&self, tape: &mut Tape) -> Var {
        tape.param(self.raw.clone())
    }

    /// Eq. (15) on the tape: `M̂_i = ReLU(σ(M_i) / Σ_j σ(M_ij) - ε)`.
    pub fn normalized(&self, tape: &mut Tape, raw: Var) -> Var {
        let sig = tape.sigmoid(raw);
        let div = tape.div_row_sum(sig);
        let shifted = tape.add_const(div, -self.epsilon);
        tape.relu(shifted)
    }

    /// Tape-free evaluation of the normalised mapping.
    #[must_use]
    pub fn normalized_detached(&self) -> DMat {
        let mut m = self.raw.sigmoid();
        for i in 0..m.rows() {
            let row = m.row_mut(i);
            let s: f32 = row.iter().sum();
            if s != 0.0 {
                for v in row.iter_mut() {
                    *v /= s;
                }
            }
        }
        m.map(|v| (v - self.epsilon).max(0.0))
    }

    /// Class-correlation block structure of this mapping (normalised form)
    /// — the quantity visualised in Fig. 5(a)/(b).
    #[must_use]
    pub fn class_correlation(
        &self,
        original_labels: &[usize],
        synthetic_labels: &[usize],
        num_classes: usize,
    ) -> DMat {
        class_correlation_of(
            &self.normalized_detached(),
            original_labels,
            synthetic_labels,
            num_classes,
        )
    }
}

/// Class-correlation block matrix of an arbitrary (already normalised)
/// dense mapping: entry `(a, b)` is the mean weight from original nodes of
/// class `a` to synthetic nodes of class `b`.
#[must_use]
pub fn class_correlation_of(
    m: &DMat,
    original_labels: &[usize],
    synthetic_labels: &[usize],
    num_classes: usize,
) -> DMat {
    let mut sums = DMat::zeros(num_classes, num_classes);
    let mut counts = vec![0f64; num_classes * num_classes];
    for (i, &yi) in original_labels.iter().enumerate() {
        for (j, &yj) in synthetic_labels.iter().enumerate() {
            let v = sums.get(yi, yj) + m.get(i, j);
            sums.set(yi, yj, v);
            counts[yi * num_classes + yj] += 1.0;
        }
    }
    for a in 0..num_classes {
        for b in 0..num_classes {
            let c = counts[a * num_classes + b];
            if c > 0.0 {
                let v = sums.get(a, b) / c as f32;
                sums.set(a, b, v);
            }
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_linalg::{approx_eq, MatRng};

    #[test]
    fn class_init_is_block_structured() {
        let m = Mapping::class_init(&[0, 1, 0], &[0, 1], 1e-5);
        assert_eq!(m.raw.get(0, 0), 4.0);
        assert_eq!(m.raw.get(0, 1), -4.0);
        assert_eq!(m.raw.get(1, 1), 4.0);
        assert_eq!(m.raw.get(2, 0), 4.0);
        // Normalised init is strongly block-diagonal.
        let norm = m.normalized_detached();
        assert!(norm.get(0, 0) > 0.9);
        assert!(norm.get(0, 1) < 0.1);
    }

    #[test]
    fn normalized_rows_are_subunit_distributions() {
        let mut rng = MatRng::seed_from(1);
        let m = Mapping::random_init(10, 4, 1e-3, &mut rng);
        let norm = m.normalized_detached();
        for i in 0..10 {
            let s: f32 = norm.row(i).iter().sum();
            assert!(s <= 1.0 + 1e-5, "row {i} sums to {s}");
            assert!(s > 0.5, "row {i} lost too much mass: {s}");
            assert!(norm.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn epsilon_suppresses_small_weights() {
        // With a large epsilon, uniform rows get fully suppressed.
        let m = Mapping { raw: DMat::zeros(2, 5), epsilon: 0.5 };
        let norm = m.normalized_detached();
        assert!(norm.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tape_and_detached_normalisation_agree() {
        let mut rng = MatRng::seed_from(2);
        let m = Mapping::random_init(6, 3, 1e-4, &mut rng);
        let mut tape = Tape::new();
        let raw = m.tape_param(&mut tape);
        let norm_var = m.normalized(&mut tape, raw);
        let tape_val = tape.value(norm_var);
        let detached = m.normalized_detached();
        for (a, b) in tape_val.as_slice().iter().zip(detached.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-5), "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_reaches_raw_mapping() {
        let mut rng = MatRng::seed_from(3);
        let m = Mapping::random_init(5, 3, 1e-4, &mut rng);
        let h_syn = rng.normal(3, 2, 0.0, 1.0);
        let target = rng.normal(5, 2, 0.0, 1.0);
        let mut tape = Tape::new();
        let raw = m.tape_param(&mut tape);
        let norm = m.normalized(&mut tape, raw);
        let hs = tape.constant(h_syn);
        let approx = tape.matmul(norm, hs); // Eq. (7): H̃ = M H'
        let tgt = tape.constant(target);
        let diff = tape.sub(tgt, approx);
        let loss = tape.l21(diff);
        let grads = tape.backward(loss);
        let g = grads.get(raw).expect("no gradient for M");
        assert!(g.frobenius_norm() > 0.0);
    }

    #[test]
    fn class_correlation_diagonal_dominates_for_class_init() {
        let orig = vec![0, 0, 1, 1, 2, 2];
        let syn = vec![0, 1, 2];
        let m = Mapping::class_init(&orig, &syn, 1e-5);
        let corr = m.class_correlation(&orig, &syn, 3);
        // After the Eq. (15) sigmoid normalisation, same-class weight is
        // σ(1)-based and off-class σ(0)-based, so the diagonal dominates
        // without reaching 1.
        for a in 0..3 {
            assert!(corr.get(a, a) > 1.0 / 3.0, "diagonal below uniform");
            for b in 0..3 {
                if a != b {
                    assert!(corr.get(a, b) < corr.get(a, a));
                }
            }
        }
    }
}
