//! Deployment artifacts: persist a condensation result as a directory
//! bundle so the (tiny) synthetic graph and mapping can ship without the
//! original graph — the storage win the paper's Fig. 3/4 measure.
//!
//! Layout of an artifact directory:
//!
//! ```text
//! <dir>/synthetic.mcg   the synthetic graph S = {A', X', Y'} (MCG1)
//! <dir>/mapping.mcs     the sparsified mapping M : N x N' (MCS1)
//! ```

use crate::Condensed;
use mcond_graph::{load_graph, save_graph, Graph};
use mcond_sparse::{load_csr, save_csr, Csr};
use std::io;
use std::path::Path;

/// The deployable subset of a condensation result.
#[derive(Debug)]
pub struct Artifact {
    /// The synthetic graph `S`.
    pub synthetic: Graph,
    /// The sparsified mapping `M`.
    pub mapping: Csr,
}

impl Artifact {
    /// Total on-disk/in-memory footprint in bytes (adjacency + features +
    /// labels + mapping) — the deployment storage the paper compares.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.synthetic.adj.storage_bytes()
            + self.synthetic.features.len() * std::mem::size_of::<f32>()
            + self.synthetic.labels.len() * std::mem::size_of::<u32>()
            + self.mapping.storage_bytes()
    }
}

/// Writes the deployable pieces of `condensed` into `dir` (created if
/// missing).
///
/// # Errors
/// Propagates I/O errors.
pub fn save_condensed(condensed: &Condensed, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    save_graph(&condensed.synthetic, &dir.join("synthetic.mcg"))?;
    save_csr(&condensed.mapping, &dir.join("mapping.mcs"))
}

/// Loads an artifact bundle written by [`save_condensed`].
///
/// # Errors
/// Propagates I/O errors; cross-file inconsistencies yield `InvalidData`.
pub fn load_condensed(dir: &Path) -> io::Result<Artifact> {
    let synthetic = load_graph(&dir.join("synthetic.mcg"))?;
    let mapping = load_csr(&dir.join("mapping.mcs"))?;
    if mapping.cols() != synthetic.num_nodes() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "mapping has {} columns but the synthetic graph has {} nodes",
                mapping.cols(),
                synthetic.num_nodes()
            ),
        ));
    }
    Ok(Artifact { synthetic, mapping })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{condense, McondConfig};
    use mcond_graph::{load_dataset, Scale};

    fn quick() -> Condensed {
        let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
        condense(
            &data,
            &McondConfig {
                ratio: 0.02,
                outer_loops: 1,
                relay_steps: 2,
                mapping_steps: 3,
                support_cap: 16,
                ..McondConfig::default()
            },
        )
    }

    #[test]
    fn artifact_round_trips() {
        let condensed = quick();
        let dir = std::env::temp_dir().join("mcond_artifact_test");
        save_condensed(&condensed, &dir).unwrap();
        let artifact = load_condensed(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(artifact.synthetic.adj, condensed.synthetic.adj);
        assert_eq!(artifact.synthetic.features, condensed.synthetic.features);
        assert_eq!(artifact.synthetic.labels, condensed.synthetic.labels);
        assert_eq!(artifact.mapping, condensed.mapping);
    }

    #[test]
    fn mismatched_bundle_is_rejected() {
        let condensed = quick();
        let dir = std::env::temp_dir().join("mcond_artifact_bad");
        save_condensed(&condensed, &dir).unwrap();
        // Overwrite the mapping with one of the wrong width.
        let wrong = Csr::eye(3);
        mcond_sparse::save_csr(&wrong, &dir.join("mapping.mcs")).unwrap();
        let err = load_condensed(&dir).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn storage_accounting_is_positive_and_consistent() {
        let condensed = quick();
        let dir = std::env::temp_dir().join("mcond_artifact_storage");
        save_condensed(&condensed, &dir).unwrap();
        let artifact = load_condensed(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let bytes = artifact.storage_bytes();
        assert!(bytes > 0);
        assert!(
            bytes
                >= artifact.synthetic.adj.storage_bytes()
                    + artifact.mapping.storage_bytes()
        );
    }
}
