//! The serving layer's error taxonomy.
//!
//! Every way a request can fail at the [`InductiveServer`] boundary is a
//! [`ServeError`] variant — a malformed request is rejected with a typed
//! error, never a panic, and an *internal* panic (a server misconfiguration
//! surfacing inside a kernel) is isolated per request by
//! [`try_serve_many`](crate::InductiveServer::try_serve_many) and reported
//! as [`ServeError::Panicked`]. See `DESIGN.md` §4f.

use mcond_graph::BatchError;
use std::fmt;

/// Why a serve request was not answered with logits.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The request failed [`NodeBatch::validate_against`]
    /// (`mcond_graph::NodeBatch::validate_against`): a dimension mismatch
    /// against the base/mapping, an inconsistent shape, or non-finite
    /// input values.
    InvalidBatch(BatchError),
    /// The batch exceeds the server's configured size cap
    /// ([`InductiveServer::with_max_batch`](crate::InductiveServer::with_max_batch)).
    BatchTooLarge {
        /// Nodes in the rejected batch.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// Under [`FallbackPolicy::Reject`](crate::FallbackPolicy::Reject): an
    /// inductive node's attachment row (`a` or `aM`) is empty or its
    /// mapping coverage fell below the configured threshold.
    NoAttachment {
        /// Batch-local index of the first offending node.
        node: usize,
        /// Its mapping coverage (fraction of incremental mass surviving
        /// the sparsified `M`; 0 for an empty row).
        coverage: f32,
    },
    /// [`FallbackPolicy::OriginalGraph`](crate::FallbackPolicy::OriginalGraph)
    /// was triggered but no original graph was attached via
    /// [`InductiveServer::with_original_graph`](crate::InductiveServer::with_original_graph).
    FallbackUnavailable {
        /// Batch-local index of the first node needing the fallback.
        node: usize,
    },
    /// The forward pass produced a non-finite logit (degenerate model
    /// weights, e.g. after a diverged training run): the response is
    /// withheld rather than serving garbage.
    NonFiniteLogits,
    /// A panic escaped the serving internals and was caught at the request
    /// boundary; sibling requests in the same
    /// [`try_serve_many`](crate::InductiveServer::try_serve_many) call are
    /// unaffected.
    Panicked {
        /// The panic payload's message, when it carried one.
        context: String,
    },
    /// The request's deadline budget expired while it waited in a serving
    /// queue; it was answered without occupying a batch slot so live
    /// requests behind it are not delayed by work nobody is waiting for.
    DeadlineExceeded {
        /// How long the request had waited when the budget was checked.
        waited_ms: u64,
        /// The budget the caller (or the front end's default) granted.
        budget_ms: u64,
    },
    /// The serving runtime abandoned the request without computing logits —
    /// the batcher watchdog respawned a stalled worker and failed its
    /// orphaned queue entries, or the server shut down with the request
    /// still queued. The request may be retried against a healthy server.
    Aborted {
        /// What the runtime was doing when it gave the request up.
        reason: &'static str,
    },
    /// The server's frozen-base cache was built against an older version
    /// of a live base graph than the one now being served (a delta
    /// promotion mutated the base without patching or rebuilding the
    /// cache). Answering from the stale cache would return silently wrong
    /// logits, so the request is refused until the cache is refreshed.
    StaleCache {
        /// Version the cache was frozen at.
        cache_version: u64,
        /// Version of the live base graph.
        base_version: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidBatch(e) => write!(f, "invalid batch: {e}"),
            ServeError::BatchTooLarge { len, max } => {
                write!(f, "batch of {len} nodes exceeds the server cap of {max}")
            }
            ServeError::NoAttachment { node, coverage } => write!(
                f,
                "node {node} has no usable attachment (mapping coverage \
                 {coverage:.3}) and the fallback policy is Reject"
            ),
            ServeError::FallbackUnavailable { node } => write!(
                f,
                "node {node} needs the original-graph fallback but no original \
                 graph is attached to this server"
            ),
            ServeError::NonFiniteLogits => {
                write!(f, "forward pass produced non-finite logits; response withheld")
            }
            ServeError::Panicked { context } => {
                write!(f, "request panicked inside the server: {context}")
            }
            ServeError::DeadlineExceeded { waited_ms, budget_ms } => write!(
                f,
                "request deadline of {budget_ms} ms expired after {waited_ms} ms \
                 in the serving queue"
            ),
            ServeError::Aborted { reason } => {
                write!(f, "request abandoned by the serving runtime: {reason}")
            }
            ServeError::StaleCache { cache_version, base_version } => write!(
                f,
                "frozen-base cache at version {cache_version} trails the live \
                 base at version {base_version}; refusing to serve stale logits"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::InvalidBatch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BatchError> for ServeError {
    fn from(e: BatchError) -> Self {
        ServeError::InvalidBatch(e)
    }
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_context(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_and_chains_the_source() {
        let e = ServeError::from(BatchError::IncrementalWidth { got: 3, expected: 7 });
        assert!(e.to_string().contains("different base graph"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::NonFiniteLogits).is_none());
    }

    #[test]
    fn panic_context_handles_all_payload_kinds() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static msg");
        assert_eq!(panic_context(s.as_ref()), "static msg");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned msg"));
        assert_eq!(panic_context(s.as_ref()), "owned msg");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_context(s.as_ref()), "non-string panic payload");
    }
}
